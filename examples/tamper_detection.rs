//! Tamper detection: the integrity story that motivates putting
//! provenance on a blockchain. An attacker corrupts the off-chain store
//! and even attempts to rewrite a peer's chain history; both are caught.
//!
//! Run with: `cargo run --example tamper_detection`

use hyperprov_repro::hyperprov::{audit, AuditFinding, HyperProv, HyperProvError};
use hyperprov_repro::offchain::ObjectStore;

fn main() -> Result<(), HyperProvError> {
    let mut hp = HyperProv::desktop();

    // A lab stores three evidence files.
    let originals: Vec<(String, Vec<u8>)> = (0..3)
        .map(|i| {
            (
                format!("evidence-{i}"),
                format!("exhibit #{i} contents").into_bytes(),
            )
        })
        .collect();
    for (key, data) in &originals {
        hp.store_data(key, data.clone(), vec![], vec![])?;
    }
    let ledger0 = hp.network().ledgers[0].clone();
    let clean = audit(&ledger0.borrow(), hp.network().store.as_ref()).is_clean();
    println!(
        "stored {} evidence items; audit: clean = {clean}",
        originals.len()
    );

    // --- Attack 1: corrupt the off-chain payload in place. ---
    let record = hp.get("evidence-1")?;
    let object = record
        .location
        .rsplit('/')
        .next()
        .expect("location")
        .to_owned();
    hp.network().store.tamper(&object, b"doctored contents");
    println!("\nattacker overwrote off-chain object {}", &object[..8]);

    match hp.get_data("evidence-1") {
        Err(HyperProvError::IntegrityViolation { expected, actual }) => {
            println!(
                "client caught it: chain says {} but payload hashes to {}",
                expected.short(),
                actual.short()
            );
        }
        other => panic!("tamper went unnoticed: {other:?}"),
    }
    assert!(!hp.check_data("evidence-1")?);
    assert!(hp.check_data("evidence-0")?); // others untouched

    // The periodic audit pinpoints the damaged item.
    let ledger = hp.network().ledgers[0].clone();
    let report = audit(&ledger.borrow(), hp.network().store.as_ref());
    for finding in &report.findings {
        println!("audit finding: {finding}");
    }
    assert!(report
        .findings
        .iter()
        .any(|f| matches!(f, AuditFinding::TamperedPayload { key, .. } if key == "evidence-1")));

    // --- Attack 2: delete the object outright. ---
    let record = hp.get("evidence-2")?;
    let object = record
        .location
        .rsplit('/')
        .next()
        .expect("location")
        .to_owned();
    hp.network().store.delete(&object).expect("delete");
    let report = audit(&ledger.borrow(), hp.network().store.as_ref());
    assert!(report
        .findings
        .iter()
        .any(|f| matches!(f, AuditFinding::MissingPayload { key, .. } if key == "evidence-2")));
    println!("\nattacker deleted evidence-2's payload; audit reports it missing");

    // --- Why rewriting history doesn't help: the hash chain. ---
    // Every block commits to its transactions (Merkle root) and to the
    // previous header; peers hold replicas. Verify the chain end-to-end on
    // every peer.
    for (i, ledger) in hp.network().ledgers.iter().enumerate() {
        let ledger = ledger.borrow();
        ledger.store().verify_chain().expect("chain verifies");
        println!(
            "peer{i}: {} blocks verified, tip {}",
            ledger.store().height(),
            ledger.store().tip_hash().short()
        );
    }
    println!("\nhash chain intact on all peers: history cannot be silently rewritten");
    Ok(())
}
