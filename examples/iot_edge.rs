//! IoT at the edge: the paper's motivating scenario. A Raspberry Pi
//! network of camera nodes stores frames, derives motion-detection events
//! from them, and an auditor verifies the whole pipeline — then we meter
//! the energy the edge device spent, ODROID-style.
//!
//! Run with: `cargo run --example iot_edge`

use hyperprov_repro::device::{EnergyModel, PowerMeter};
use hyperprov_repro::hyperprov::{audit, HyperProv, HyperProvError};
use hyperprov_repro::sim::SimDuration;

fn main() -> Result<(), HyperProvError> {
    // Four Raspberry Pi 3B+ devices on one switch, as in the paper's edge
    // testbed; peer 0's device also runs the client process.
    let mut hp = HyperProv::rpi();
    let started = hp.now();

    // A camera captures frames; each frame goes off-chain with its
    // provenance on-chain.
    let mut frame_keys = Vec::new();
    for i in 0..5 {
        let frame = fake_jpeg(i, 32 * 1024);
        let key = format!("cam0/frame-{i:04}");
        hp.store_data(
            &key,
            frame,
            vec![],
            vec![
                ("device".into(), "rpi-cam0".into()),
                ("kind".into(), "frame".into()),
            ],
        )?;
        frame_keys.push(key);
    }
    println!("captured {} frames on the edge", frame_keys.len());

    // An on-device analytics job derives a motion event from three frames:
    // lineage records exactly which frames triggered it.
    let event_key = "cam0/motion-event-0001";
    hp.store_data(
        event_key,
        b"{\"motion\":true,\"score\":0.93}".to_vec(),
        frame_keys[1..4].to_vec(),
        vec![("kind".into(), "motion-event".into())],
    )?;
    let lineage = hp.get_lineage(event_key, 3)?;
    println!("motion event lineage ({} nodes):", lineage.len());
    for entry in &lineage {
        println!("  depth {} -> {}", entry.depth, entry.record.key);
    }

    // The site auditor cross-checks every peer's ledger against the
    // off-chain store.
    for (i, ledger) in hp.network().ledgers.iter().enumerate() {
        let report = audit(&ledger.borrow(), hp.network().store.as_ref());
        println!(
            "peer{i} audit: {} blocks, {} records, {} payloads -> {}",
            report.blocks_checked,
            report.records_checked,
            report.payloads_checked,
            if report.is_clean() {
                "CLEAN"
            } else {
                "FINDINGS!"
            }
        );
        assert!(report.is_clean());
    }

    // How much power did the edge device (peer + client) draw?
    let meter = PowerMeter::new(EnergyModel::raspberry_pi(), SimDuration::from_secs(1));
    let peer_cpu = hp.network().sim.cpu(hp.network().peers[0]);
    let client_cpu = hp.network().sim.cpu(hp.network().clients[0]);
    let now = hp.now();
    let avg = meter.average_watts_combined(&[peer_cpu, client_cpu], started, now, true);
    let joules = avg * (now - started).as_secs_f64();
    println!(
        "edge device over {}: avg {avg:.2} W, {joules:.1} J total (HLF idle is {:.2} W)",
        now - started,
        EnergyModel::raspberry_pi().hlf_idle_watts,
    );
    Ok(())
}

/// A deterministic stand-in for camera frame bytes.
fn fake_jpeg(seed: u64, size: usize) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..size)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as u8
        })
        .collect()
}
