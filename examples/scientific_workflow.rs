//! Scientific-workflow provenance: a multi-stage pipeline (raw data →
//! cleaning → two models → comparison report) with full lineage, reverse
//! checksum lookup, and an Open Provenance Model export — the
//! research-reproducibility use case from the paper's introduction.
//!
//! Run with: `cargo run --example scientific_workflow`

use hyperprov_repro::hyperprov::{HyperProv, HyperProvError, OpmGraph, OpmNodeKind};
use hyperprov_repro::ledger::Digest;

fn main() -> Result<(), HyperProvError> {
    let mut hp = HyperProv::desktop();

    // Stage 0: two raw instrument dumps.
    hp.store_data(
        "raw/run-a.csv",
        csv(1),
        vec![],
        meta("instrument", "spectrometer-A"),
    )?;
    hp.store_data(
        "raw/run-b.csv",
        csv(2),
        vec![],
        meta("instrument", "spectrometer-B"),
    )?;

    // Stage 1: cleaning merges both runs.
    hp.store_data(
        "clean/merged.parquet",
        b"cleaned-and-merged".to_vec(),
        vec!["raw/run-a.csv".into(), "raw/run-b.csv".into()],
        meta("tool", "cleaner v2.1"),
    )?;

    // Stage 2: two competing models trained on the cleaned data.
    hp.store_data(
        "models/linear.bin",
        b"linear-weights".to_vec(),
        vec!["clean/merged.parquet".into()],
        meta("algo", "ridge"),
    )?;
    hp.store_data(
        "models/forest.bin",
        b"forest-weights".to_vec(),
        vec!["clean/merged.parquet".into()],
        meta("algo", "random-forest"),
    )?;

    // Stage 3: the paper-ready comparison report uses both models.
    hp.store_data(
        "paper/figure4.pdf",
        b"%PDF-1.7 comparison".to_vec(),
        vec!["models/linear.bin".into(), "models/forest.bin".into()],
        meta("claim", "forest beats ridge by 3.2%"),
    )?;

    // Reviewer question 1: what went into figure 4?
    let lineage = hp.get_lineage("paper/figure4.pdf", 10)?;
    println!("figure4.pdf depends on {} artifacts:", lineage.len() - 1);
    for entry in lineage.iter().skip(1) {
        println!(
            "  depth {}: {} (by {})",
            entry.depth, entry.record.key, entry.record.creator.subject
        );
    }
    assert_eq!(lineage.len(), 6); // figure + 2 models + clean + 2 raws

    // Reviewer question 2: is this file byte-identical to a ledger item?
    let suspicious = csv(1);
    let keys = hp.get_keys_by_checksum(Digest::of(&suspicious))?;
    println!("bytes match ledger item(s): {keys:?}");
    assert_eq!(keys, vec!["raw/run-a.csv"]);

    // Export the whole workflow as an OPM graph for the paper's appendix.
    let records: Vec<_> = lineage.iter().map(|e| e.record.clone()).collect();
    let graph = OpmGraph::from_records(records.iter());
    println!(
        "OPM graph: {} artifacts, {} processes, {} agents, {} edges",
        graph.nodes_of(OpmNodeKind::Artifact).len(),
        graph.nodes_of(OpmNodeKind::Process).len(),
        graph.nodes_of(OpmNodeKind::Agent).len(),
        graph.edges().len()
    );
    println!("--- graphviz DOT ---\n{}", graph.to_dot());
    Ok(())
}

fn csv(run: u8) -> Vec<u8> {
    format!("wavelength,intensity\n400,{run}.01\n410,{run}.07\n").into_bytes()
}

fn meta(key: &str, value: &str) -> Vec<(String, String)> {
    vec![(key.to_owned(), value.to_owned())]
}
