//! Quickstart: store a data item with provenance, fetch it back verified,
//! and inspect its on-chain history.
//!
//! Run with: `cargo run --example quickstart`

use hyperprov_repro::hyperprov::{HyperProv, HyperProvError};

fn main() -> Result<(), HyperProvError> {
    // Spin up the paper's desktop testbed: four peers (2x Xeon E5-1603,
    // i7-4700MQ, i3-2310M), a solo orderer, an SSHFS-like storage node and
    // one client — all inside a deterministic simulation.
    let mut hp = HyperProv::desktop();
    println!("network up at virtual time {}", hp.now());

    // Store a payload off-chain and post its provenance metadata on-chain.
    let payload = b"temperature,humidity\n21.3,0.52\n21.4,0.51\n".to_vec();
    let record = hp.store_data(
        "sensor-readings-2026-07-06",
        payload.clone(),
        vec![],
        vec![("sensor".into(), "bme280-north".into())],
    )?;
    println!(
        "stored: key={} checksum={} location={} creator={}",
        record.key,
        record.checksum.short(),
        record.location,
        record.creator
    );

    // Fetch it back: the client re-hashes the payload and verifies it
    // against the on-chain checksum.
    let (fetched, data) = hp.get_data("sensor-readings-2026-07-06")?;
    assert_eq!(data, payload);
    println!(
        "fetched {} bytes, checksum verified against block chain ({})",
        data.len(),
        fetched.checksum.short()
    );

    // Post a new version and look at the history.
    hp.store_data(
        "sensor-readings-2026-07-06",
        b"temperature,humidity\n21.5,0.50\n".to_vec(),
        vec![],
        vec![
            ("sensor".into(), "bme280-north".into()),
            ("revised".into(), "true".into()),
        ],
    )?;
    let history = hp.get_history("sensor-readings-2026-07-06")?;
    println!("history has {} versions:", history.len());
    for (i, entry) in history.iter().enumerate() {
        let checksum = entry
            .record
            .as_ref()
            .map(|r| r.checksum.short())
            .unwrap_or_else(|| "(deleted)".into());
        println!("  v{i}: block {} checksum {checksum}", entry.block);
    }

    println!("done at virtual time {}", hp.now());
    Ok(())
}
