//! Criterion micro-benchmarks for the substrate hot paths: hashing,
//! canonical codec, Merkle roots, state-DB operations on both storage
//! backends, the hybrid event queue, endorsement-policy evaluation and a
//! full single-transaction pipeline step.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyperprov::{HyperProvChaincode, RecordInput, CHAINCODE_NAME};
use hyperprov_fabric::{
    endorse, Chaincode, ChaincodeRegistry, ChaincodeStub, EndorsementPolicy, MspBuilder, MspId,
    Proposal, SignedProposal,
};
use hyperprov_ledger::{
    Decode, Digest, Encode, HistoryDb, KvWrite, MerkleTree, StateDb, StateKey, Version,
};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [1usize << 10, 1 << 16, 1 << 20] {
        let data = vec![0xA5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| Digest::of(data));
        });
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut b = MspBuilder::new(1);
    let cert = b
        .enroll("client", &MspId::new("org1"))
        .certificate()
        .clone();
    let record = hyperprov::ProvenanceRecord::from_input(
        "item-key",
        RecordInput::new(Digest::of(b"payload"))
            .with_location("sshfs://store0/abcdef", 4096)
            .with_parents(vec!["p1".into(), "p2".into(), "p3".into()])
            .with_meta("sensor", "cam-3")
            .with_meta("format", "jpeg"),
        cert,
    );
    let bytes = record.to_bytes();
    let mut group = c.benchmark_group("codec");
    group.bench_function("record_encode", |bencher| {
        bencher.iter(|| record.to_bytes());
    });
    group.bench_function("record_decode", |bencher| {
        bencher.iter(|| hyperprov::ProvenanceRecord::from_bytes(&bytes).unwrap());
    });
    group.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle_root");
    for n in [10usize, 100, 1000] {
        let leaves: Vec<Digest> = (0..n)
            .map(|i| Digest::of(&(i as u64).to_le_bytes()))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &leaves, |b, leaves| {
            b.iter(|| MerkleTree::root_of(leaves));
        });
    }
    group.finish();
}

/// A named state-DB constructor, one per storage backend.
type Backend = (&'static str, fn() -> StateDb);

fn bench_statedb(c: &mut Criterion) {
    // Both storage backends on the same workload: the B-tree oracle and
    // the flat-sorted scale backend.
    let backends: [Backend; 2] = [("btree", StateDb::new), ("flat", StateDb::flat)];
    let mut group = c.benchmark_group("statedb");
    for (backend, make) in backends {
        let mut db = make();
        for i in 0..10_000u32 {
            db.apply_write(
                &KvWrite {
                    key: StateKey::new("cc", format!("key-{i:06}")),
                    value: Some(vec![0u8; 128]),
                },
                Version::new(1, i),
            );
        }
        group.bench_function(&format!("point_get/{backend}"), |b| {
            b.iter(|| db.get(&StateKey::new("cc", "key-004999")));
        });
        group.bench_function(&format!("range_100/{backend}"), |b| {
            b.iter(|| db.range("cc", "key-005000", "key-005100").count());
        });
        group.bench_function(&format!("apply_write/{backend}"), |b| {
            let mut db = db.clone();
            let mut i = 0u32;
            b.iter(|| {
                i += 1;
                db.apply_write(
                    &KvWrite {
                        key: StateKey::new("cc", format!("w-{i}")),
                        value: Some(vec![0u8; 128]),
                    },
                    Version::new(2, i),
                );
            });
        });
    }
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    use hyperprov_sim::{Actor, Context, DetRng, Event, SimDuration, Simulation};
    use rand::Rng;

    /// Keeps ~10k timers in flight across all three queue tiers (near
    /// heap, wheel slots, overflow map) until its budget runs out.
    struct TimerStorm {
        rng: DetRng,
        budget: u32,
    }
    impl Actor<()> for TimerStorm {
        fn on_event(&mut self, ctx: &mut Context<'_, ()>, _event: Event<()>) {
            if self.budget == 0 {
                return;
            }
            self.budget -= 1;
            let delay = match self.budget % 3 {
                0 => self.rng.gen_range(1..1_000_000u64),
                1 => self.rng.gen_range(1_000_000..200_000_000u64),
                _ => self.rng.gen_range(200_000_000..10_000_000_000u64),
            };
            ctx.set_timer(SimDuration::from_nanos(delay), 0);
        }
    }

    c.bench_function("event_queue_mixed_horizon_40k", |b| {
        b.iter(|| {
            let mut sim: Simulation<()> = Simulation::new(7);
            let storm = sim.add_actor(Box::new(TimerStorm {
                rng: DetRng::new(9),
                budget: 30_000,
            }));
            let mut seed_rng = DetRng::new(11);
            for _ in 0..10_000 {
                let delay = seed_rng.gen_range(1..10_000_000_000u64);
                sim.start_timer(storm, SimDuration::from_nanos(delay), 0);
            }
            sim.run();
            sim.events_processed()
        });
    });
}

fn bench_policy(c: &mut Criterion) {
    let orgs: Vec<MspId> = (0..8).map(|i| MspId::new(format!("org{i}"))).collect();
    let policy = EndorsementPolicy::out_of(
        5,
        orgs.iter()
            .cloned()
            .map(EndorsementPolicy::signed_by)
            .collect(),
    );
    let endorsers: Vec<MspId> = orgs[..5].to_vec();
    c.bench_function("policy_eval_5_of_8", |b| {
        b.iter(|| policy.is_satisfied_by(endorsers.iter()));
    });
}

fn bench_endorse(c: &mut Criterion) {
    let mut builder = MspBuilder::new(1);
    let peer = builder.enroll("peer0", &MspId::new("org1"));
    let client = builder.enroll("client0", &MspId::new("org1"));
    let msp = builder.build();
    let mut registry = ChaincodeRegistry::new();
    registry.install(Arc::new(HyperProvChaincode::new()));
    let state = StateDb::new();
    let history = HistoryDb::new();
    let input = RecordInput::new(Digest::of(b"data")).with_location("sshfs://s/x", 4096);
    let proposal = Proposal {
        channel: "ch".into(),
        chaincode: CHAINCODE_NAME.into(),
        function: "post".into(),
        args: vec![b"item".to_vec(), input.to_bytes()],
        creator: client.certificate().clone(),
        nonce: 1,
    };
    let signed = SignedProposal {
        signature: client.sign(&proposal.to_bytes()),
        proposal,
    };
    c.bench_function("endorse_hyperprov_post", |b| {
        b.iter(|| endorse(&peer, &registry, &msp, &state, &history, None, &signed));
    });
}

fn bench_chaincode_lineage(c: &mut Criterion) {
    // Pre-build a 32-deep lineage chain in a state DB, then measure the
    // chaincode-side BFS.
    let mut builder = MspBuilder::new(1);
    let client = builder.enroll("client0", &MspId::new("org1"));
    let cert = client.certificate().clone();
    let cc = HyperProvChaincode::new();
    let mut state = StateDb::new();
    let history = HistoryDb::new();
    for i in 0..32u32 {
        let parents = if i == 0 {
            vec![]
        } else {
            vec![format!("n{}", i - 1)]
        };
        let input = RecordInput::new(Digest::of(&i.to_le_bytes())).with_parents(parents);
        let args = vec![format!("n{i}").into_bytes(), input.to_bytes()];
        let mut stub = ChaincodeStub::new(CHAINCODE_NAME, "post", &args, &cert, &state, &history);
        cc.invoke(&mut stub).unwrap();
        let (rwset, _, _) = stub.into_results();
        state.apply_writes(&rwset.writes, Version::new(u64::from(i) + 1, 0));
    }
    let args = vec![b"n31".to_vec(), b"64".to_vec()];
    c.bench_function("chaincode_lineage_depth32", |b| {
        b.iter(|| {
            let mut stub = ChaincodeStub::new(
                CHAINCODE_NAME,
                "get_lineage",
                &args,
                &cert,
                &state,
                &history,
            );
            cc.invoke(&mut stub).unwrap()
        });
    });
}

fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_sha256,
    bench_codec,
    bench_merkle,
    bench_statedb,
    bench_event_queue,
    bench_policy,
    bench_endorse,
    bench_chaincode_lineage
}
criterion_main!(benches);
