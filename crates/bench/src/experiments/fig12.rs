//! Figures 1 and 2: throughput and response time vs data-item size, on
//! the desktop (Fig. 1) and Raspberry Pi (Fig. 2) testbeds.
//!
//! "Fig. 1 shows how increasing the size of data items impacts both
//! throughput and response times, when off-chain storage is involved [...]
//! which incurs the overhead of data transfer and checksum calculation.
//! Fig. 2 shows similar trend [...] for RPi though greater variation,
//! however absolute performance for RPi is lower than desktop machines."

use std::collections::BTreeMap;

use hyperprov::{HyperProvNetwork, NetworkConfig};
use hyperprov_fabric::BatchConfig;
use hyperprov_sim::{DetRng, Histogram, SimDuration};

use crate::report::{breakdown_table, merge_stages, MetricsExporter};
use crate::runner::{run_closed_loop, Summary};
use crate::table::{fmt_bytes, Table};
use crate::workload::{payload, store_cmd};

/// Which testbed to sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Platform {
    /// The 4-desktop setup (Fig. 1).
    Desktop,
    /// The 4-RPi setup (Fig. 2).
    Rpi,
}

impl Platform {
    fn config(self, clients: usize) -> NetworkConfig {
        match self {
            Platform::Desktop => NetworkConfig::desktop(clients),
            Platform::Rpi => NetworkConfig::rpi(clients),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Platform::Desktop => "desktop",
            Platform::Rpi => "rpi",
        }
    }
}

/// A size sweep plus its observability artefacts.
#[derive(Debug)]
pub struct SweepReport {
    /// The figure's series table (throughput / response time vs size).
    pub table: Table,
    /// Per-stage latency breakdown aggregated over every run of the sweep.
    pub breakdown: Table,
    /// One metrics + trace snapshot per `(size, seed)` run.
    pub exporter: MetricsExporter,
}

/// Runs the data-size sweep for one platform, producing the figure's
/// series (`size, throughput (tx/s) ± std, response time (ms) ± std`)
/// plus the stage-attribution report and JSON export.
pub fn size_sweep(platform: Platform, quick: bool) -> SweepReport {
    let (sizes, clients, duration, seeds): (Vec<usize>, usize, SimDuration, u64) = if quick {
        (
            vec![1 << 10, 1 << 16, 1 << 20],
            16,
            SimDuration::from_secs(10),
            1,
        )
    } else {
        (
            vec![
                1 << 10, // 1 KiB
                1 << 12,
                1 << 14,
                1 << 16, // 64 KiB
                1 << 18,
                1 << 20, // 1 MiB
                1 << 22,
                1 << 24, // 16 MiB
            ],
            32,
            SimDuration::from_secs(30),
            3,
        )
    };

    let fig = match platform {
        Platform::Desktop => "Fig. 1",
        Platform::Rpi => "Fig. 2",
    };
    let mut table = Table::new(
        format!(
            "{fig}: throughput and response times vs data size ({})",
            platform.name()
        ),
        &[
            "data size",
            "throughput (tx/s)",
            "tput std",
            "resp time (ms)",
            "resp p95 (ms)",
            "resp std (ms)",
            "errors",
        ],
    );

    let mut exporter = MetricsExporter::new(match platform {
        Platform::Desktop => "fig1_desktop",
        Platform::Rpi => "fig2_rpi",
    });
    let mut stages: BTreeMap<String, Histogram> = BTreeMap::new();
    for &size in &sizes {
        let mut tputs = Vec::new();
        let mut lat_means = Vec::new();
        let mut lat_p95s = Vec::new();
        let mut lat_stds = Vec::new();
        let mut errors = 0u64;
        for seed in 0..seeds {
            let summary = run_one(
                platform,
                clients,
                size,
                duration,
                100 + seed,
                &mut exporter,
                &mut stages,
            );
            tputs.push(summary.throughput);
            lat_means.push(summary.mean_latency_ms());
            lat_p95s.push(summary.latency_ms(0.95));
            lat_stds.push(summary.stddev_latency_ms());
            errors += summary.err;
        }
        table.push_row(vec![
            fmt_bytes(size as u64),
            format!("{:.1}", mean(&tputs)),
            format!("{:.1}", std_dev(&tputs)),
            format!("{:.1}", mean(&lat_means)),
            format!("{:.1}", mean(&lat_p95s)),
            format!("{:.1}", mean(&lat_stds)),
            errors.to_string(),
        ]);
    }
    let breakdown = breakdown_table(
        format!("{fig}: per-stage latency breakdown ({})", platform.name()),
        &stages,
    );
    SweepReport {
        table,
        breakdown,
        exporter,
    }
}

#[allow(clippy::too_many_arguments)]
fn run_one(
    platform: Platform,
    clients: usize,
    size: usize,
    duration: SimDuration,
    seed: u64,
    exporter: &mut MetricsExporter,
    stages: &mut BTreeMap<String, Histogram>,
) -> Summary {
    let config = platform
        .config(clients)
        .with_seed(seed)
        .with_batch(BatchConfig {
            // The thesis tunes the batch timeout well below the default
            // 2 s for throughput experiments; 100 ms keeps batching
            // without letting the timeout dominate small-item latencies.
            timeout: SimDuration::from_millis(100),
            ..BatchConfig::default()
        });
    let mut net = HyperProvNetwork::build(&config);
    let mut rng = DetRng::new(seed).fork("payload");
    let result = run_closed_loop(
        &mut net,
        duration,
        SimDuration::from_secs(10),
        move |client, seq| {
            let data = payload(&mut rng, size);
            store_cmd(format!("item-c{client}-s{seq}"), data)
        },
    );
    exporter.add_run(&format!("size={size} seed={seed}"), &net.sim);
    merge_stages(stages, &net.sim);
    Summary::of(&result.completions, result.span)
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (0 for < 2 samples).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}
