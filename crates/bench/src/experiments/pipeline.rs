//! T-PIPELINE: FastFabric-style commit-path acceleration sweep.
//!
//! The paper's commit path validates every transaction serially on one
//! core; this campaign measures what the peers gain from the three
//! optimisations the commit pipeline adds on top of that baseline:
//! multi-lane VSCC (endorsement signature + policy checks fanned out over
//! the device's cores), validate/apply pipelining across consecutive
//! blocks, and the two verification caches (the `(cert, digest,
//! signature)` memo and the endorser hot-state read cache). Swept: lanes
//! 1/2/4 × caches on/off on the desktop and RPi testbeds under a
//! saturating closed-loop `post` load with hot parent keys. Reported per
//! cell: commit-stage goodput, validate-stage p50/p99, and the cache hit
//! rates.

use hyperprov::{
    ClientCommand, CommitPipeline, HyperProvNetwork, NetworkConfig, NodeMsg, OpId, OpOutput,
    RecordInput,
};
use hyperprov_fabric::BatchConfig;
use hyperprov_ledger::Digest;
use hyperprov_sim::{json, Histogram, SimDuration, SloObjective, SloSpec};

use crate::report::MetricsExporter;
use crate::runner::run_closed_loop;
use crate::table::Table;

use super::Platform;

/// The pipeline campaign's artefacts.
#[derive(Debug)]
pub struct PipelineReport {
    /// The acceleration table (one row per platform × lanes × caches).
    pub table: Table,
    /// One metrics + trace snapshot per cell.
    pub exporter: MetricsExporter,
    /// Machine-readable per-cell goodput and commit-stage quantiles,
    /// written to the repo-root `BENCH_commit.json` on full runs.
    pub bench_json: String,
}

/// Number of shared parent records the load phase links every post to;
/// endorsers re-read these hot keys on each proposal, which is what the
/// read cache memoises.
const HOT_PARENTS: usize = 4;

struct Cell {
    goodput: f64,
    errors: u64,
    validate_p50_ms: f64,
    validate_p99_ms: f64,
    sigcache_pct: f64,
    readcache_pct: f64,
}

/// Sums every counter whose name ends with `suffix` (cache counters are
/// namespaced per peer/channel; the sweep reports the fleet-wide rate).
fn counter_sum(net: &HyperProvNetwork, suffix: &str) -> u64 {
    net.sim
        .metrics()
        .counters()
        .filter(|(name, _)| name.ends_with(suffix))
        .map(|(_, v)| v)
        .sum()
}

fn hit_pct(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        100.0 * hits as f64 / total as f64
    }
}

/// Runs one (platform, lanes, caches) cell: seeds the hot parent records,
/// then drives a closed-loop `post` load where every record links to one
/// of the shared parents.
fn run_cell(
    platform: Platform,
    pipeline: CommitPipeline,
    clients: usize,
    duration: SimDuration,
    seed: u64,
    slos: &[SloSpec],
    exporter: &mut MetricsExporter,
) -> Cell {
    let (lanes, caches) = (pipeline.lanes, pipeline.sig_cache);
    let config = match platform {
        Platform::Desktop => NetworkConfig::desktop(clients),
        Platform::Rpi => NetworkConfig::rpi(clients),
    }
    .with_seed(seed)
    .with_batch(BatchConfig {
        timeout: SimDuration::from_millis(100),
        ..BatchConfig::default()
    })
    .with_pipeline(pipeline)
    .with_slos(slos.to_vec());
    let mut net = HyperProvNetwork::build(&config);

    // Seed the shared parents all load-phase posts will link to.
    for p in 0..HOT_PARENTS {
        let done = one_op(
            &mut net,
            ClientCommand::Post {
                key: format!("parent-{p}"),
                input: RecordInput::new(Digest::of(b"pipeline-parent")),
                op: OpId(0),
            },
        );
        assert!(done.is_some(), "parent {p} must commit");
    }

    // Load phase: unique keys, each linking to a hot parent so endorsers
    // re-read the same state keys proposal after proposal.
    let result = run_closed_loop(
        &mut net,
        duration,
        SimDuration::from_secs(10),
        |client, seq| ClientCommand::Post {
            key: format!("item-c{client}-s{seq}"),
            input: RecordInput::new(Digest::of(b"pipeline-bench")).with_parents(vec![format!(
                "parent-{}",
                (client + seq as usize) % HOT_PARENTS
            )]),
            op: OpId(0),
        },
    );

    let mut errors = 0u64;
    let mut commit = Histogram::new();
    for (_, completion) in &result.completions {
        match &completion.outcome {
            Ok(OpOutput::Committed {
                record: Some(_), ..
            }) => commit.record(completion.latency().as_nanos()),
            Ok(_) => {}
            Err(_) => errors += 1,
        }
    }
    let goodput = commit.count() as f64 / result.span.as_secs_f64();
    // The "validate" span covers the whole per-block commit (VSCC +
    // MVCC/apply) in both the legacy and the pipelined path, so its
    // quantiles are comparable across the sweep.
    let validate = net
        .sim
        .tracer()
        .stage_histogram("validate")
        .cloned()
        .unwrap_or_default();

    exporter.add_run(
        &format!(
            "platform={} lanes={lanes} caches={}",
            platform.name(),
            if caches { "on" } else { "off" }
        ),
        &net.sim,
    );
    Cell {
        goodput,
        errors,
        validate_p50_ms: validate.quantile(0.50) as f64 / 1e6,
        validate_p99_ms: validate.quantile(0.99) as f64 / 1e6,
        sigcache_pct: hit_pct(
            counter_sum(&net, "sigcache.hits"),
            counter_sum(&net, "sigcache.misses"),
        ),
        readcache_pct: hit_pct(
            counter_sum(&net, "readcache.hits"),
            counter_sum(&net, "readcache.misses"),
        ),
    }
}

/// Issues one operation on client 0 and runs until it completes,
/// returning its latency in milliseconds (`None` if it failed).
fn one_op(net: &mut HyperProvNetwork, mut cmd: ClientCommand) -> Option<f64> {
    crate::runner::set_op(&mut cmd, OpId(1));
    let client = net.clients[0];
    net.sim.inject_message(client, NodeMsg::Client(cmd));
    let queue = net.completions[0].clone();
    for _ in 0..10_000 {
        if let Some(completion) = queue.borrow_mut().pop_front() {
            let latency_ms = completion.latency().as_nanos() as f64 / 1e6;
            return completion.outcome.ok().map(|_| latency_ms);
        }
        if net.sim.run_events(64) == 0 {
            let now = net.sim.now();
            net.sim.run_until(now + SimDuration::from_millis(100));
        }
    }
    panic!("operation never completed");
}

/// Runs the lanes × caches sweep, producing the T-PIPELINE table, its
/// metrics export and the machine-readable `BENCH_commit.json` body.
pub fn pipeline_sweep(quick: bool) -> PipelineReport {
    type Cfg = (Vec<Platform>, Vec<(usize, bool)>, usize, SimDuration);
    let (platforms, cells, clients, duration): Cfg = if quick {
        (
            vec![Platform::Desktop],
            vec![(1, false), (4, true)],
            8,
            SimDuration::from_secs(4),
        )
    } else {
        (
            vec![Platform::Desktop, Platform::Rpi],
            vec![
                (1, false),
                (1, true),
                (2, false),
                (2, true),
                (4, false),
                (4, true),
            ],
            96,
            SimDuration::from_secs(10),
        )
    };

    let mut table = Table::new(
        "T-PIPELINE: commit goodput vs lanes and caches",
        &[
            "platform",
            "lanes",
            "caches",
            "goodput (tx/s)",
            "vs serial",
            "validate p50 (ms)",
            "validate p99 (ms)",
            "sigcache hit%",
            "readcache hit%",
            "errors",
        ],
    );
    let mut exporter = MetricsExporter::new("table_commit_pipeline");
    // Full runs also watch the commit path with SLOs (validate-span
    // latency, committed-tx goodput); the burn series land in the metrics
    // export. Quick runs stay SLO-free so the export remains byte-
    // identical to the committed `pipeline_quick.metrics.json` fixture.
    let slos = if quick {
        Vec::new()
    } else {
        vec![
            SloSpec::new(
                "validate-p99",
                SloObjective::LatencyQuantile {
                    source: "validate".into(),
                    q: 0.99,
                    budget: SimDuration::from_millis(250),
                },
                SimDuration::from_secs(2),
            ),
            SloSpec::new(
                "commit-goodput",
                SloObjective::GoodputFloor {
                    source: "commit.tx".into(),
                    floor_per_sec: 20.0,
                },
                SimDuration::from_secs(2),
            ),
        ]
    };
    let mut rows = Vec::new();
    for &platform in &platforms {
        let mut serial_goodput = None;
        for &(lanes, caches) in &cells {
            let pipeline = CommitPipeline {
                lanes,
                sig_cache: caches,
                read_cache: caches,
            };
            let cell = run_cell(
                platform,
                pipeline,
                clients,
                duration,
                100,
                &slos,
                &mut exporter,
            );
            let baseline = *serial_goodput.get_or_insert(cell.goodput);
            let speedup = if baseline > 0.0 {
                cell.goodput / baseline
            } else {
                0.0
            };
            table.push_row(vec![
                platform.name().to_owned(),
                lanes.to_string(),
                (if caches { "on" } else { "off" }).to_owned(),
                format!("{:.1}", cell.goodput),
                format!("{speedup:.2}x"),
                format!("{:.2}", cell.validate_p50_ms),
                format!("{:.2}", cell.validate_p99_ms),
                format!("{:.1}", cell.sigcache_pct),
                format!("{:.1}", cell.readcache_pct),
                cell.errors.to_string(),
            ]);
            rows.push(
                json::Obj::new()
                    .str("platform", platform.name())
                    .u64("lanes", lanes as u64)
                    .str("caches", if caches { "on" } else { "off" })
                    .f64("goodput_tx_s", cell.goodput)
                    .f64("speedup_vs_serial", speedup)
                    .f64("commit_p50_ms", cell.validate_p50_ms)
                    .f64("commit_p99_ms", cell.validate_p99_ms)
                    .build(),
            );
        }
    }
    let bench_json = json::pretty(
        &json::Obj::new()
            .str("campaign", "T-PIPELINE")
            .str("metric", "commit-stage goodput and validate-span quantiles")
            .raw("cells", &json::array(rows))
            .build(),
    );
    PipelineReport {
        table,
        exporter,
        bench_json,
    }
}
