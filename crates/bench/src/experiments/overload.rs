//! T-OVERLOAD: goodput, backpressure and queue wait past saturation.
//!
//! The original work-at-arrival architecture serviced every arrival, so
//! offered load past a node's CPU capacity only grew latency without
//! bound — overload could not be expressed as loss. With bounded
//! admission queues the peers nack excess proposals
//! ([`hyperprov_fabric::BUSY_REASON`]), so this sweep drives open-loop
//! store load past saturation on both testbeds and reports goodput,
//! drop/nack rate and p99 queue wait: the saturation knee the paper only
//! observes qualitatively, made quantitative.

use std::collections::BTreeMap;

use hyperprov::{HyperProvNetwork, NetworkConfig};
use hyperprov_fabric::BatchConfig;
use hyperprov_sim::{DetRng, Histogram, OverloadPolicy, QueueConfig, SimDuration, SimTime};

use super::Platform;
use crate::report::{breakdown_table, merge_stages, MetricsExporter};
use crate::runner::{run_open_loop, Summary};
use crate::table::Table;
use crate::workload::{payload, store_cmd, uniform_arrivals};

/// Peer admission-queue bound used throughout the sweep.
const PEER_QUEUE_CAPACITY: usize = 32;

/// Payload size: the 1 KiB point of Fig. 1/Fig. 2, where the testbeds
/// saturate at roughly 530 tx/s (desktop) and 75 tx/s (RPi).
const ITEM_BYTES: usize = 1 << 10;

/// The overload sweep plus its observability artefacts.
#[derive(Debug)]
pub struct OverloadReport {
    /// Goodput / rejection series per platform and offered rate.
    pub table: Table,
    /// Per-stage latency breakdown (includes the `queue.wait` stage).
    pub breakdown: Table,
    /// One metrics + trace snapshot per `(platform, rate)` run.
    pub exporter: MetricsExporter,
}

fn base_config(platform: Platform, clients: usize) -> NetworkConfig {
    match platform {
        Platform::Desktop => NetworkConfig::desktop(clients),
        Platform::Rpi => NetworkConfig::rpi(clients),
    }
}

/// Runs the overload sweep: uniform open-loop arrivals from well below to
/// well past each testbed's saturation rate, peers bounded at
/// [`PEER_QUEUE_CAPACITY`] with the nack policy.
pub fn overload_sweep(quick: bool) -> OverloadReport {
    let (desktop_rates, rpi_rates, clients, duration, drain): (
        Vec<f64>,
        Vec<f64>,
        usize,
        SimDuration,
        SimDuration,
    ) = if quick {
        (
            vec![300.0, 900.0],
            vec![40.0, 130.0],
            8,
            SimDuration::from_secs(5),
            SimDuration::from_secs(5),
        )
    } else {
        (
            vec![200.0, 400.0, 600.0, 800.0, 1000.0],
            vec![25.0, 50.0, 75.0, 100.0, 150.0],
            16,
            SimDuration::from_secs(20),
            SimDuration::from_secs(15),
        )
    };

    let mut table = Table::new(
        format!(
            "T-OVERLOAD: goodput and backpressure vs offered load (open loop, \
             1 KiB items, peers bounded {PEER_QUEUE_CAPACITY}/nack)"
        ),
        &[
            "platform",
            "offered (tx/s)",
            "offered ops",
            "completed ok",
            "goodput (tx/s)",
            "rejected",
            "reject rate",
            "queue.wait p99 (ms)",
        ],
    );
    let mut exporter = MetricsExporter::new("table_overload");
    let mut stages: BTreeMap<String, Histogram> = BTreeMap::new();

    for (platform, rates) in [
        (Platform::Desktop, desktop_rates),
        (Platform::Rpi, rpi_rates),
    ] {
        for &rate in &rates {
            let config = base_config(platform, clients)
                .with_seed(7)
                .with_batch(BatchConfig {
                    timeout: SimDuration::from_millis(100),
                    ..BatchConfig::default()
                })
                .with_peer_queue(QueueConfig::new(PEER_QUEUE_CAPACITY, OverloadPolicy::Nack));
            let mut net = HyperProvNetwork::build(&config);
            let mut rng = DetRng::new(7).fork("overload");
            let schedule: Vec<(SimTime, usize, hyperprov::ClientCommand)> =
                uniform_arrivals(rate, duration, clients)
                    .into_iter()
                    .enumerate()
                    .map(|(i, (t, c))| {
                        let data = payload(&mut rng, ITEM_BYTES);
                        (t, c, store_cmd(format!("item-{i}-c{c}"), data))
                    })
                    .collect();
            let offered = schedule.len() as u64;
            let result = run_open_loop(&mut net, schedule, drain);
            let summary = Summary::of(&result.completions, result.span);

            let n_peers = net.peers.len();
            let rejected: u64 = (0..n_peers)
                .map(|i| {
                    net.sim.metrics().counter(&format!("queue.nacked.peer{i}"))
                        + net.sim.metrics().counter(&format!("queue.dropped.peer{i}"))
                })
                .sum();
            let mut wait = Histogram::new();
            for i in 0..n_peers {
                if let Some(h) = net.sim.metrics().histogram(&format!("queue.wait.peer{i}")) {
                    wait.merge(h);
                }
            }

            exporter.add_run(&format!("{} rate={rate:.0}", platform.name()), &net.sim);
            merge_stages(&mut stages, &net.sim);
            table.push_row(vec![
                platform.name().to_owned(),
                format!("{rate:.0}"),
                offered.to_string(),
                summary.ok.to_string(),
                format!("{:.1}", summary.throughput),
                rejected.to_string(),
                format!("{:.1}%", rejected as f64 / (offered.max(1)) as f64 * 100.0),
                format!("{:.3}", wait.quantile(0.99) as f64 / 1e6),
            ]);
        }
    }

    let breakdown = breakdown_table(
        "T-OVERLOAD: per-stage latency breakdown (both platforms, all rates)",
        &stages,
    );
    OverloadReport {
        table,
        breakdown,
        exporter,
    }
}
