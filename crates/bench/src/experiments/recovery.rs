//! T-RECOVERY: crash recovery at deep chains, with and without
//! Merkle-rooted state snapshots, plus elastic membership.
//!
//! The tentpole claim: with a snapshot policy, a restarted peer's
//! recovery work is bounded by the *state* size and the snapshot
//! interval — O(1) in chain length — while the genesis-replay path grows
//! linearly with the chain. The campaign measures both on a reference
//! peer driven to 1k/10k/100k blocks (quick mode uses shorter chains),
//! crashes it at the tip and reads the `peer0.recovery.*` gauges on
//! restart. A second scenario exercises elastic membership end to end: a
//! spare peer joins a live network mid-run, bootstraps from a provider's
//! snapshot, and converges to the incumbents' state hash. Full runs emit
//! the machine-readable `BENCH_recovery.json` trajectory, whose
//! flat-vs-linear shape the `bench_regress` gate checks structurally.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use hyperprov::{
    ClientCommand, HyperProvNetwork, NetworkConfig, NodeMsg, OpId, RecordInput, SnapshotPolicy,
};
use hyperprov_device::DeviceProfile;
use hyperprov_fabric::{
    endorsement_message, BatchConfig, ChaincodeRegistry, ChannelPolicies, Committer, CostModel,
    Endorsement, EndorsementPolicy, Envelope, FabricMsg, Msp, MspBuilder, MspId, PeerActor,
    Proposal, SigningIdentity,
};
use hyperprov_ledger::{Block, ChannelId, Digest, KvWrite, RwSet, StateKey, DEFAULT_CHANNEL};
use hyperprov_sim::{json, CpuResource, SimDuration, Simulation};

use crate::report::MetricsExporter;
use crate::table::Table;

/// Campaign seed (identities, network jitter).
const SEED: u64 = 17;

/// Distinct state keys the deep-chain workload cycles through: the world
/// state (and so the snapshot) stays bounded while the chain grows.
const KEY_SPACE: u64 = 256;

/// Value size written by every deep-chain transaction.
const VALUE_BYTES: usize = 64;

/// The recovery campaign's artefacts.
#[derive(Debug)]
pub struct RecoveryReport {
    /// One row per (chain length × snapshot mode) restart cell.
    pub table: Table,
    /// The elastic-membership scenario's single-row summary.
    pub elastic: Table,
    /// One metrics snapshot per cell.
    pub exporter: MetricsExporter,
    /// Machine-readable cells, written to the repo-root
    /// `BENCH_recovery.json` on full runs.
    pub bench_json: String,
}

/// Shared identities for the standalone deep-chain cells.
struct ChainKit {
    msp: Arc<Msp>,
    client: SigningIdentity,
    endorser: SigningIdentity,
    peer: SigningIdentity,
}

fn chain_kit() -> ChainKit {
    let mut b = MspBuilder::new(SEED);
    let client = b.enroll("client", &MspId::new("org1"));
    let endorser = b.enroll("endorser", &MspId::new("org1"));
    let peer = b.enroll("peer0", &MspId::new("org1"));
    ChainKit {
        msp: b.build(),
        client,
        endorser,
        peer,
    }
}

fn policies() -> ChannelPolicies {
    ChannelPolicies::new(EndorsementPolicy::any_of([MspId::new("org1")]))
}

/// One endorsed single-write envelope: tx `i` writes key `k{i % KEY_SPACE}`.
fn chain_envelope(kit: &ChainKit, i: u64) -> Envelope {
    let key = format!("k{}", i % KEY_SPACE);
    let rwset = RwSet {
        reads: vec![],
        writes: vec![KvWrite {
            key: StateKey::new("cc", key),
            value: Some(vec![(i % 251) as u8; VALUE_BYTES]),
        }],
    };
    let proposal = Proposal {
        channel: DEFAULT_CHANNEL.into(),
        chaincode: "cc".into(),
        function: "put".into(),
        args: vec![],
        creator: kit.client.certificate().clone(),
        nonce: i + 1,
    };
    let msg = endorsement_message(&proposal.tx_id(), b"r", &rwset);
    Envelope {
        proposal,
        payload: b"r".to_vec(),
        rwset,
        event: None,
        endorsements: vec![Endorsement {
            endorser: kit.endorser.certificate().clone(),
            signature: kit.endorser.sign(&msg),
        }],
    }
}

/// Builds a valid chain of `n` single-tx blocks by committing each block
/// to a host-side oracle ledger (so heights and previous-hash links are
/// real), returning the blocks for in-sim delivery.
fn build_chain(kit: &ChainKit, n: u64) -> Vec<Arc<Block>> {
    let mut oracle = Committer::for_channel(DEFAULT_CHANNEL.into(), kit.msp.clone(), policies());
    let mut blocks = Vec::with_capacity(n as usize);
    for i in 0..n {
        let env = chain_envelope(kit, i);
        let block = Block::build(
            oracle.height(),
            oracle.store().tip_hash(),
            vec![env.to_raw()],
        );
        oracle
            .commit_block(block.clone())
            .expect("oracle chain must commit");
        blocks.push(Arc::new(block));
    }
    blocks
}

/// One deep-chain restart cell's measurements.
struct RestartCell {
    chain_blocks: u64,
    snapshots_on: bool,
    snapshots_cut: u64,
    store_blocks: u64,
    recovery_cost_ms: f64,
    replayed_blocks: u64,
    snapshot_boots: u64,
}

/// Drives a single reference peer (desktop-class CPU) to `chain.len()`
/// blocks via block delivery, crashes it at the tip, restarts it and
/// reads the recovery gauges.
fn run_restart_cell(
    kit: &ChainKit,
    chain: &[Arc<Block>],
    snapshots: Option<SnapshotPolicy>,
    exporter: &mut MetricsExporter,
) -> RestartCell {
    let channel: ChannelId = DEFAULT_CHANNEL.into();
    let committer = Rc::new(RefCell::new(Committer::for_channel(
        channel.clone(),
        kit.msp.clone(),
        policies(),
    )));
    let mut actor: PeerActor<FabricMsg> = PeerActor::new(
        kit.peer.clone(),
        ChaincodeRegistry::new(),
        committer.clone(),
        CostModel::default(),
        "peer0",
    )
    .with_recovery_metrics();
    let snapshots_on = snapshots.is_some();
    if let Some(policy) = snapshots {
        actor = actor.with_snapshots(policy);
    }

    let mut sim: Simulation<FabricMsg> = Simulation::new(SEED);
    let id = sim.add_actor_with_cpu(
        Box::new(actor),
        CpuResource::new(DeviceProfile::xeon_e5_1603().cpu_speed),
    );
    sim.set_actor_label(id, "peer");
    for block in chain {
        sim.inject_message(id, FabricMsg::DeliverBlock(channel.clone(), block.clone()));
    }
    // Long horizon: the virtual CPU serialises ~ms of commit work per
    // block; the loop stops as soon as the event queue drains.
    let horizon = SimDuration::from_secs(7_200);
    let now = sim.now();
    sim.run_until(now + horizon);
    assert_eq!(
        committer.borrow().height(),
        chain.len() as u64,
        "the peer must commit the whole chain before the crash"
    );
    let store_blocks = chain.len() as u64 - committer.borrow().store().base_height();

    sim.crash_actor(id);
    sim.restart_actor(id);
    let now = sim.now();
    sim.run_until(now + horizon);

    let metrics = sim.metrics();
    let cell = RestartCell {
        chain_blocks: chain.len() as u64,
        snapshots_on,
        snapshots_cut: metrics.counter("peer0.snapshots.cut"),
        store_blocks,
        recovery_cost_ms: metrics.gauge("peer0.recovery.cost_ms").unwrap_or(0.0),
        replayed_blocks: metrics
            .gauge("peer0.recovery.replayed_blocks")
            .unwrap_or(0.0) as u64,
        snapshot_boots: metrics
            .gauge("peer0.recovery.snapshot_boots")
            .unwrap_or(0.0) as u64,
    };
    exporter.add_run(
        &format!(
            "restart blocks={} snapshots={}",
            cell.chain_blocks,
            if snapshots_on { "on" } else { "off" }
        ),
        &sim,
    );
    cell
}

/// The elastic-membership scenario's measurements.
struct ElasticCell {
    chain_blocks: u64,
    catchup_ms: f64,
    snapshot_boots: u64,
    converged: bool,
    converged_after_traffic: bool,
}

/// Issues one operation on client 0 and runs until it completes.
fn one_op(net: &mut HyperProvNetwork, mut cmd: ClientCommand) {
    crate::runner::set_op(&mut cmd, OpId(1));
    let client = net.clients[0];
    net.sim.inject_message(client, NodeMsg::Client(cmd));
    let queue = net.completions[0].clone();
    for _ in 0..100_000 {
        if let Some(completion) = queue.borrow_mut().pop_front() {
            assert!(completion.outcome.is_ok(), "elastic workload op failed");
            return;
        }
        if net.sim.run_events(64) == 0 {
            let now = net.sim.now();
            net.sim.run_until(now + SimDuration::from_millis(100));
        }
    }
    panic!("operation never completed");
}

/// True when the joiner's ledger matches peer 0's height and state hash.
fn converged(net: &HyperProvNetwork, joiner: usize) -> bool {
    let a = net.ledgers[0].borrow();
    let b = net.ledgers[joiner].borrow();
    b.height() == a.height() && b.state().state_hash() == a.state().state_hash()
}

/// Runs the elastic scenario: a live desktop network commits `records`
/// items, a spare peer joins, and the cell reports its virtual-time
/// catch-up latency and snapshot bootstrap.
fn run_elastic_cell(records: u64, exporter: &mut MetricsExporter) -> ElasticCell {
    let config = NetworkConfig::desktop(1)
        .with_seed(SEED)
        .with_batch(BatchConfig {
            timeout: SimDuration::from_millis(50),
            ..BatchConfig::default()
        })
        .with_snapshots(SnapshotPolicy::every(8))
        .with_recovery_metrics()
        .with_spare_peers(1);
    let mut net = HyperProvNetwork::build(&config);
    for i in 0..records {
        let key = format!("rec-{i}");
        let input = RecordInput::new(Digest::of(key.as_bytes()));
        one_op(
            &mut net,
            ClientCommand::Post {
                key,
                input,
                op: OpId(0),
            },
        );
    }
    let chain_blocks = net.ledgers[0].borrow().height();

    let joined_at = net.sim.now();
    let _ = net.add_peer();
    let joiner = net.peers.len() - 1;
    let mut catchup_ms = None;
    for _ in 0..120 {
        let now = net.sim.now();
        net.sim.run_until(now + SimDuration::from_millis(250));
        if converged(&net, joiner) {
            let elapsed = net.sim.now().saturating_duration_since(joined_at);
            catchup_ms = Some(elapsed.as_nanos() as f64 / 1e6);
            break;
        }
    }
    let did_converge = catchup_ms.is_some();

    // Fresh traffic after the join must reach the joiner through its
    // deliver subscription.
    for i in 0..3 {
        let key = format!("post-{i}");
        let input = RecordInput::new(Digest::of(key.as_bytes()));
        one_op(
            &mut net,
            ClientCommand::Post {
                key,
                input,
                op: OpId(0),
            },
        );
    }
    let now = net.sim.now();
    net.sim.run_until(now + SimDuration::from_secs(2));
    let converged_after_traffic = converged(&net, joiner);

    let boots = net
        .sim
        .metrics()
        .counter(&format!("peer{joiner}.snapshot_boots"));
    exporter.add_run(&format!("elastic records={records}"), &net.sim);
    ElasticCell {
        chain_blocks,
        catchup_ms: catchup_ms.unwrap_or(-1.0),
        snapshot_boots: boots,
        converged: did_converge,
        converged_after_traffic,
    }
}

/// Chain lengths per mode: the full sweep spans two orders of magnitude
/// so the flat-vs-linear contrast is unambiguous. All lengths are
/// congruent modulo the snapshot interval, so every snapshot-mode cell
/// replays the same fixed delta tail — what varies between cells is only
/// the chain length the claim says must not matter.
fn chain_lengths(quick: bool) -> Vec<u64> {
    if quick {
        vec![250, 450, 850] // ≡ 50 (mod 100)
    } else {
        vec![1_000, 10_000, 100_000] // ≡ 100 (mod 300)
    }
}

/// Snapshot interval for the restart cells (stated in the table title).
fn snapshot_interval(quick: bool) -> u64 {
    if quick {
        100
    } else {
        300
    }
}

/// Runs the full recovery campaign: the deep-chain restart sweep with
/// snapshots on and off, then the elastic-membership scenario.
pub fn recovery_sweep(quick: bool) -> RecoveryReport {
    let lengths = chain_lengths(quick);
    let interval = snapshot_interval(quick);
    let mut table = Table::new(
        format!(
            "T-RECOVERY: crash recovery at deep chains (reference desktop peer, \
             {KEY_SPACE}-key state, snapshot interval {interval})"
        ),
        &[
            "chain (blocks)",
            "snapshots",
            "cut",
            "store at crash (blocks)",
            "recovery cost (ms)",
            "replayed (blocks)",
            "snapshot boots",
        ],
    );
    let mut exporter = MetricsExporter::new("table_recovery");
    let kit = chain_kit();
    let chain = build_chain(&kit, *lengths.iter().max().expect("non-empty sweep"));

    let mut cells = Vec::new();
    for &n in &lengths {
        for snapshots_on in [true, false] {
            let policy = snapshots_on.then(|| SnapshotPolicy::every(interval));
            let cell = run_restart_cell(&kit, &chain[..n as usize], policy, &mut exporter);
            table.push_row(vec![
                cell.chain_blocks.to_string(),
                if cell.snapshots_on { "on" } else { "off" }.to_owned(),
                cell.snapshots_cut.to_string(),
                cell.store_blocks.to_string(),
                format!("{:.2}", cell.recovery_cost_ms),
                cell.replayed_blocks.to_string(),
                cell.snapshot_boots.to_string(),
            ]);
            cells.push(
                json::Obj::new()
                    .str("mode", "restart")
                    .u64("chain_blocks", cell.chain_blocks)
                    .u64("snapshots", u64::from(cell.snapshots_on))
                    .u64("snapshots_cut", cell.snapshots_cut)
                    .u64("store_blocks", cell.store_blocks)
                    .f64("recovery_cost_ms", cell.recovery_cost_ms)
                    .u64("replayed_blocks", cell.replayed_blocks)
                    .u64("snapshot_boots", cell.snapshot_boots)
                    .build(),
            );
        }
    }

    let mut elastic = Table::new(
        "T-RECOVERY: elastic membership (spare peer joins a live desktop network)",
        &[
            "chain at join (blocks)",
            "catch-up (virtual ms)",
            "snapshot boots",
            "converged",
            "converged after new traffic",
        ],
    );
    let records = if quick { 12 } else { 48 };
    let cell = run_elastic_cell(records, &mut exporter);
    elastic.push_row(vec![
        cell.chain_blocks.to_string(),
        if cell.converged {
            format!("{:.1}", cell.catchup_ms)
        } else {
            "never".to_owned()
        },
        cell.snapshot_boots.to_string(),
        cell.converged.to_string(),
        cell.converged_after_traffic.to_string(),
    ]);
    cells.push(
        json::Obj::new()
            .str("mode", "elastic")
            .u64("chain_blocks", cell.chain_blocks)
            .f64("catchup_ms", cell.catchup_ms)
            .u64("snapshot_boots", cell.snapshot_boots)
            .u64("converged", u64::from(cell.converged))
            .u64(
                "converged_after_traffic",
                u64::from(cell.converged_after_traffic),
            )
            .build(),
    );

    let bench_json = json::pretty(
        &json::Obj::new()
            .str("campaign", "T-RECOVERY")
            .str(
                "metric",
                "restart recovery cost vs chain length (snapshots on/off) + elastic join",
            )
            .raw("cells", &json::array(cells))
            .build(),
    );
    RecoveryReport {
        table,
        elastic,
        exporter,
        bench_json,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The quick sweep already shows the tentpole property: snapshot
    /// recovery cost is flat (within 2x) across a 4x chain-length spread,
    /// while genesis replay grows with the chain; and the elastic joiner
    /// converges via a snapshot bootstrap.
    #[test]
    fn quick_recovery_is_flat_with_snapshots_and_linear_without() {
        let report = recovery_sweep(true);
        let doc = hyperprov_sim::json::parse(&report.bench_json).unwrap();
        let cells = doc.get("cells").unwrap().as_array().unwrap();
        let costs = |on: u64| -> Vec<(u64, f64)> {
            cells
                .iter()
                .filter(|c| c.get("mode").and_then(|m| m.as_str()) == Some("restart"))
                .filter(|c| c.get("snapshots").and_then(|s| s.as_u64()) == Some(on))
                .map(|c| {
                    (
                        c.get("chain_blocks").unwrap().as_u64().unwrap(),
                        c.get("recovery_cost_ms").unwrap().as_f64().unwrap(),
                    )
                })
                .collect()
        };
        let on = costs(1);
        let off = costs(0);
        assert_eq!(on.len(), 3);
        assert_eq!(off.len(), 3);
        let (on_min, on_max) = on
            .iter()
            .fold((f64::INFINITY, 0.0f64), |(lo, hi), &(_, c)| {
                (lo.min(c), hi.max(c))
            });
        assert!(
            on_max <= 2.0 * on_min,
            "snapshot recovery must be flat: min {on_min} max {on_max}"
        );
        let shortest = off.iter().find(|(n, _)| *n == 250).unwrap().1;
        let longest = off.iter().find(|(n, _)| *n == 850).unwrap().1;
        assert!(
            longest >= 3.0 * shortest,
            "genesis replay must grow with the chain: {shortest} -> {longest}"
        );
        // At every length, snapshots beat genesis replay.
        for ((n, with), (_, without)) in on.iter().zip(off.iter()) {
            assert!(
                with < without,
                "snapshots must cut recovery cost at {n} blocks"
            );
        }

        let elastic = cells
            .iter()
            .find(|c| c.get("mode").and_then(|m| m.as_str()) == Some("elastic"))
            .unwrap();
        assert_eq!(elastic.get("converged").unwrap().as_u64(), Some(1));
        assert_eq!(
            elastic.get("converged_after_traffic").unwrap().as_u64(),
            Some(1)
        );
        assert!(elastic.get("snapshot_boots").unwrap().as_u64().unwrap() >= 1);
    }
}
