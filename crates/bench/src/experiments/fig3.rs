//! Figure 3: energy consumption on the Raspberry Pi over 10-minute
//! intervals at increasing load levels.
//!
//! "Measurements of the energy consumption of RPi devices running both
//! peer and client processes for 10 minutes [...] highlight that running
//! HyperProv without any active transactions barely consumes any power
//! (2.71 W) compared to an idle RPi running without HLF, while at the peak
//! load level consumes only 10.7 % more as compared to idle, and maximum
//! up to 3.64 W."
//!
//! We meter the device hosting peer 0 *and* client 0 (their utilisations
//! sum, clamped at one core) with a virtual 1 Hz power meter over each
//! 10-minute interval.

use hyperprov::{HyperProvNetwork, NetworkConfig};
use hyperprov_device::{EnergyModel, PowerMeter};
use hyperprov_sim::{DetRng, SimDuration, SimTime};

use crate::runner::{run_open_loop, Summary};
use crate::table::Table;
use crate::workload::{payload, poisson_arrivals, store_cmd};

/// Runs the energy profile. Each load level is a fresh 10-minute run (a
/// shortened interval in quick mode).
pub fn energy_profile(quick: bool) -> Table {
    let interval = if quick {
        SimDuration::from_secs(60)
    } else {
        SimDuration::from_secs(600)
    };
    let rates: Vec<f64> = if quick {
        vec![0.0, 5.0, 20.0]
    } else {
        vec![0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0]
    };

    let mut table = Table::new(
        "Fig. 3: energy consumption on RPi, 10-minute intervals",
        &[
            "load level",
            "offered (tx/s)",
            "achieved (tx/s)",
            "avg power (W)",
            "peak power (W)",
            "energy (J)",
            "vs HLF-idle",
        ],
    );

    // Reference row: an idle RPi with no HLF software at all.
    let model = EnergyModel::raspberry_pi();
    let idle_no_hlf = model.power(0.0, false);
    table.push_row(vec![
        "idle (no HLF)".into(),
        "0.0".into(),
        "0.0".into(),
        format!("{idle_no_hlf:.2}"),
        format!("{idle_no_hlf:.2}"),
        format!("{:.0}", idle_no_hlf * interval.as_secs_f64()),
        "-".into(),
    ]);

    let hlf_idle = model.power(0.0, true);
    for &rate in &rates {
        let (achieved, avg, peak) = run_level(rate, interval, quick);
        let label = if rate == 0.0 {
            "HLF idle".to_owned()
        } else {
            format!("{rate:.0} tx/s")
        };
        table.push_row(vec![
            label,
            format!("{rate:.1}"),
            format!("{achieved:.1}"),
            format!("{avg:.2}"),
            format!("{peak:.2}"),
            format!("{:.0}", avg * interval.as_secs_f64()),
            format!("{:+.1}%", (avg / hlf_idle - 1.0) * 100.0),
        ]);
    }

    // Peak: offer well beyond the device's capacity (open loop).
    let (achieved, avg, peak) = run_level(120.0, interval, quick);
    table.push_row(vec![
        "peak (saturated)".into(),
        "120.0".into(),
        format!("{achieved:.1}"),
        format!("{avg:.2}"),
        format!("{peak:.2}"),
        format!("{:.0}", avg * interval.as_secs_f64()),
        format!("{:+.1}%", (avg / hlf_idle - 1.0) * 100.0),
    ]);
    table
}

fn meter(net: &HyperProvNetwork, from: SimTime, to: SimTime) -> (f64, f64) {
    let meter = PowerMeter::new(EnergyModel::raspberry_pi(), SimDuration::from_secs(1));
    let peer_cpu = net.sim.cpu(net.peers[0]);
    let client_cpu = net.sim.cpu(net.clients[0]);
    let cpus = [peer_cpu, client_cpu];
    (
        meter.average_watts_combined(&cpus, from, to, true),
        meter.peak_watts_combined(&cpus, from, to, true),
    )
}

fn run_level(rate: f64, interval: SimDuration, quick: bool) -> (f64, f64, f64) {
    let mut net = HyperProvNetwork::build(&NetworkConfig::rpi(1).with_seed(42));
    let mut rng = DetRng::new(42).fork("fig3");
    let size = if quick { 512 } else { 1024 };
    let schedule: Vec<_> = poisson_arrivals(&mut rng.fork("arrivals"), rate, interval, 1)
        .into_iter()
        .enumerate()
        .map(|(i, (t, c))| {
            let data = payload(&mut rng, size);
            (t, c, store_cmd(format!("item-{i}"), data))
        })
        .collect();
    let start = net.sim.now();
    let result = run_open_loop(&mut net, schedule, SimDuration::from_secs(5));
    // Meter exactly the 10-minute interval.
    let end = start + interval;
    if net.sim.now() < end {
        net.sim.run_until(end);
    }
    let summary = Summary::of(&result.completions, interval);
    let (avg, peak) = meter(&net, start, end);
    (summary.throughput, avg, peak)
}
