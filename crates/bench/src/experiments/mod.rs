//! The paper's experiments, one module per figure/table.
//!
//! Every experiment returns a [`crate::Table`] whose rows regenerate the
//! corresponding artefact of the paper (see DESIGN.md §5 for the index).
//! Pass `quick = true` to run shortened sweeps (used by the test suite);
//! the binaries default to the full parameters.

mod baselines;
mod contention;
mod faults;
mod fig12;
mod fig3;
mod lineage;
mod overload;
mod pipeline;
mod profile;
mod queries;
mod recovery;
mod scale;
mod sharding;

pub use baselines::baseline_comparison;
pub use contention::contention_sweep;
pub use faults::{
    fault_campaign, fault_scenario_json, FaultScenario, FaultsReport, FAULT_SCENARIOS,
};
pub use fig12::{mean, size_sweep, std_dev, Platform};
pub use fig3::energy_profile;
pub use lineage::{lineage_sweep, LineageReport};
pub use overload::{overload_sweep, OverloadReport};
pub use pipeline::{pipeline_sweep, PipelineReport};
pub use profile::{sim_bench, sim_bench_with_scale, SimBenchReport};
pub use queries::{batch_sweep, query_latency};
pub use recovery::{recovery_sweep, RecoveryReport};
pub use scale::{scale_campaign, ScaleReport};
pub use sharding::{sharding_sweep, ShardingReport};

use std::path::Path;

use crate::runner::Artefact;
use crate::table::Table;

/// Where CSV outputs land (`<repo>/results`).
pub fn results_dir() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live at the repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
}

/// Saves a table's CSV under [`results_dir`] and renders the table plus a
/// save-status line. Library code never prints; the binaries write the
/// returned string to stdout.
#[must_use = "the rendered report must be printed by the calling binary"]
pub fn render_and_save(table: &Table, csv_name: &str) -> String {
    let status = match table.save_csv(&results_dir(), csv_name) {
        Ok(path) => format!("[saved {}]", path.display()),
        Err(err) => format!("[warning: could not save CSV: {err}]"),
    };
    format!("{table}{status}\n")
}

/// Saves a [`crate::report::MetricsExporter`]'s JSON under [`results_dir`]
/// and renders a save-status line for the calling binary to print.
#[must_use = "the rendered status must be printed by the calling binary"]
pub fn render_and_save_metrics(exporter: &crate::report::MetricsExporter) -> String {
    match exporter.save() {
        Ok(path) => format!("[saved {}]\n", path.display()),
        Err(err) => format!("[warning: could not save metrics JSON: {err}]\n"),
    }
}

/// Saves a pre-serialized document verbatim as `results/<file_name>` and
/// renders a save-status line for the calling binary to print.
#[must_use = "the rendered status must be printed by the calling binary"]
pub fn render_and_save_raw(body: &str, file_name: &str) -> String {
    let dir = results_dir();
    let saved = std::fs::create_dir_all(&dir).and_then(|()| {
        let path = dir.join(file_name);
        std::fs::write(&path, body)?;
        Ok(path)
    });
    match saved {
        Ok(path) => format!("[saved {}]\n", path.display()),
        Err(err) => format!("[warning: could not save {file_name}: {err}]\n"),
    }
}

/// Fig. 1 artefacts: the desktop size sweep, its stage breakdown and its
/// metrics export.
pub fn fig1_artefacts(quick: bool) -> Vec<Artefact> {
    let report = size_sweep(Platform::Desktop, quick);
    vec![
        Artefact::table(report.table, "fig1_desktop"),
        Artefact::table(report.breakdown, "fig1_desktop_stages"),
        Artefact::metrics(report.exporter),
    ]
}

/// Fig. 2 artefacts: the RPi size sweep, its stage breakdown and its
/// metrics export.
pub fn fig2_artefacts(quick: bool) -> Vec<Artefact> {
    let report = size_sweep(Platform::Rpi, quick);
    vec![
        Artefact::table(report.table, "fig2_rpi"),
        Artefact::table(report.breakdown, "fig2_rpi_stages"),
        Artefact::metrics(report.exporter),
    ]
}

/// Fig. 3 artefacts: the energy profile table.
pub fn fig3_artefacts(quick: bool) -> Vec<Artefact> {
    vec![Artefact::table(energy_profile(quick), "fig3_energy")]
}

/// T-TPUT artefacts: the batch-size sweep table.
pub fn batch_sweep_artefacts(quick: bool) -> Vec<Artefact> {
    vec![Artefact::table(batch_sweep(quick), "table_batch_sweep")]
}

/// T-QUERY artefacts: the per-operator latency table.
pub fn query_latency_artefacts(quick: bool) -> Vec<Artefact> {
    vec![Artefact::table(query_latency(quick), "table_query_latency")]
}

/// T-BASE artefacts: the baseline-comparison table.
pub fn baselines_artefacts(quick: bool) -> Vec<Artefact> {
    vec![Artefact::table(
        baseline_comparison(quick),
        "table_baselines",
    )]
}

/// T-MVCC artefacts: the contention-sweep table.
pub fn contention_artefacts(quick: bool) -> Vec<Artefact> {
    vec![Artefact::table(contention_sweep(quick), "table_contention")]
}

/// T-OVERLOAD artefacts: the overload table, its stage breakdown and its
/// metrics export.
pub fn overload_artefacts(quick: bool) -> Vec<Artefact> {
    let report = overload_sweep(quick);
    vec![
        Artefact::table(report.table, "table_overload"),
        Artefact::table(report.breakdown, "table_overload_stages"),
        Artefact::metrics(report.exporter),
    ]
}

/// T-FAULTS artefacts: the fault campaign table, its recovery timeline,
/// the per-run SLO verdicts, the desktop peer-crash Perfetto trace and
/// the metrics export (which carries the SLO burn-rate series).
pub fn faults_artefacts(quick: bool) -> Vec<Artefact> {
    let report = fault_campaign(quick);
    vec![
        Artefact::table(report.table, "table_faults"),
        Artefact::table(report.timeline, "table_faults_timeline"),
        Artefact::table(report.verdicts, "table_faults_slo"),
        Artefact::raw(report.trace_json, "table_faults_peer_crash.trace.json"),
        Artefact::metrics(report.exporter),
    ]
}

/// T-PIPELINE artefacts: the commit-acceleration sweep table and its
/// metrics export. Full runs additionally write the machine-readable
/// `BENCH_commit.json` at the repo root so future PRs have a perf
/// trajectory to compare against.
pub fn pipeline_artefacts(quick: bool) -> Vec<Artefact> {
    let report = pipeline_sweep(quick);
    if !quick {
        let path = results_dir().join("..").join("BENCH_commit.json");
        if let Err(err) = std::fs::write(&path, &report.bench_json) {
            eprintln!("[warning: could not save {}: {err}]", path.display());
        }
    }
    vec![
        Artefact::table(report.table, "table_commit_pipeline"),
        Artefact::metrics(report.exporter),
    ]
}

/// T-SHARDING artefacts: the shard-count sweep table and its metrics
/// export.
pub fn sharding_artefacts(quick: bool) -> Vec<Artefact> {
    let report = sharding_sweep(quick);
    vec![
        Artefact::table(report.table, "table_sharding"),
        Artefact::metrics(report.exporter),
    ]
}

/// T-LINEAGE artefacts: the lineage-query sweep table and its metrics
/// export. Full runs additionally write the machine-readable
/// `BENCH_lineage.json` at the repo root — the committed trajectory of
/// DAG-index query cost vs the hop-by-hop oracle walk.
pub fn lineage_artefacts(quick: bool) -> Vec<Artefact> {
    let report = lineage_sweep(quick);
    if !quick {
        let path = results_dir().join("..").join("BENCH_lineage.json");
        if let Err(err) = std::fs::write(&path, &report.bench_json) {
            eprintln!("[warning: could not save {}: {err}]", path.display());
        }
    }
    vec![
        Artefact::table(report.table, "table_lineage"),
        Artefact::metrics(report.exporter),
    ]
}

/// T-RECOVERY artefacts: the deep-chain restart sweep, the elastic
/// membership row and the metrics export. Full runs additionally write
/// the machine-readable `BENCH_recovery.json` at the repo root — the
/// committed flat-vs-linear recovery-cost trajectory the regression gate
/// validates.
pub fn recovery_artefacts(quick: bool) -> Vec<Artefact> {
    let report = recovery_sweep(quick);
    if !quick {
        let path = results_dir().join("..").join("BENCH_recovery.json");
        if let Err(err) = std::fs::write(&path, &report.bench_json) {
            eprintln!("[warning: could not save {}: {err}]", path.display());
        }
    }
    vec![
        Artefact::table(report.table, "table_recovery"),
        Artefact::table(report.elastic, "table_recovery_elastic"),
        Artefact::metrics(report.exporter),
    ]
}

/// BENCH-SIM artefacts: the host-side simulator profile table and its
/// machine-readable JSON body (the committed `BENCH_sim.json` baseline is
/// written by `bench_regress --update`, not here — host numbers must not
/// silently drift under `run_all`).
pub fn sim_bench_artefacts(quick: bool) -> Vec<Artefact> {
    let report = sim_bench(quick);
    vec![
        Artefact::table(report.table, "bench_sim"),
        Artefact::raw(report.bench_json, "bench_sim.json"),
    ]
}

/// T-SCALE artefacts: the 10k-client / 1M-key scale table and its
/// machine-readable section body (the committed copy lives inside
/// `BENCH_sim.json`, written by `bench_regress --update`).
pub fn scale_artefacts(quick: bool) -> Vec<Artefact> {
    let report = scale_campaign(quick);
    vec![
        Artefact::table(report.table, "table_scale"),
        Artefact::raw(
            hyperprov_sim::json::pretty(&report.section_json),
            "bench_scale.json",
        ),
    ]
}

/// Every campaign, in `run_all` order.
pub const ALL_CAMPAIGNS: &[fn(bool) -> Vec<Artefact>] = &[
    fig1_artefacts,
    fig2_artefacts,
    fig3_artefacts,
    batch_sweep_artefacts,
    query_latency_artefacts,
    baselines_artefacts,
    contention_artefacts,
    overload_artefacts,
    faults_artefacts,
    sharding_artefacts,
    pipeline_artefacts,
    lineage_artefacts,
    recovery_artefacts,
    scale_artefacts,
    sim_bench_artefacts,
];
