//! The paper's experiments, one module per figure/table.
//!
//! Every experiment returns a [`crate::Table`] whose rows regenerate the
//! corresponding artefact of the paper (see DESIGN.md §5 for the index).
//! Pass `quick = true` to run shortened sweeps (used by the test suite);
//! the binaries default to the full parameters.

mod baselines;
mod contention;
mod faults;
mod fig12;
mod fig3;
mod overload;
mod queries;

pub use baselines::baseline_comparison;
pub use contention::contention_sweep;
pub use faults::{
    fault_campaign, fault_scenario_json, FaultScenario, FaultsReport, FAULT_SCENARIOS,
};
pub use fig12::{size_sweep, Platform};
pub use fig3::energy_profile;
pub use overload::{overload_sweep, OverloadReport};
pub use queries::{batch_sweep, query_latency};

use std::path::Path;

use crate::table::Table;

/// Where CSV outputs land (`<repo>/results`).
pub fn results_dir() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live at the repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
}

/// Saves a table's CSV under [`results_dir`] and renders the table plus a
/// save-status line. Library code never prints; the binaries write the
/// returned string to stdout.
#[must_use = "the rendered report must be printed by the calling binary"]
pub fn render_and_save(table: &Table, csv_name: &str) -> String {
    let status = match table.save_csv(&results_dir(), csv_name) {
        Ok(path) => format!("[saved {}]", path.display()),
        Err(err) => format!("[warning: could not save CSV: {err}]"),
    };
    format!("{table}{status}\n")
}

/// Saves a [`crate::report::MetricsExporter`]'s JSON under [`results_dir`]
/// and renders a save-status line for the calling binary to print.
#[must_use = "the rendered status must be printed by the calling binary"]
pub fn render_and_save_metrics(exporter: &crate::report::MetricsExporter) -> String {
    match exporter.save() {
        Ok(path) => format!("[saved {}]\n", path.display()),
        Err(err) => format!("[warning: could not save metrics JSON: {err}]\n"),
    }
}
