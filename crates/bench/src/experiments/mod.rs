//! The paper's experiments, one module per figure/table.
//!
//! Every experiment returns a [`crate::Table`] whose rows regenerate the
//! corresponding artefact of the paper (see DESIGN.md §5 for the index).
//! Pass `quick = true` to run shortened sweeps (used by the test suite);
//! the binaries default to the full parameters.

mod baselines;
mod contention;
mod fig12;
mod fig3;
mod queries;

pub use baselines::baseline_comparison;
pub use contention::contention_sweep;
pub use fig12::{size_sweep, Platform};
pub use fig3::energy_profile;
pub use queries::{batch_sweep, query_latency};

use std::path::Path;

use crate::table::Table;

/// Where CSV outputs land (`<repo>/results`).
pub fn results_dir() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live at the repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
}

/// Prints a table and saves its CSV under [`results_dir`].
pub fn emit(table: &Table, csv_name: &str) {
    println!("{table}");
    match table.save_csv(&results_dir(), csv_name) {
        Ok(path) => println!("[saved {}]\n", path.display()),
        Err(err) => eprintln!("[warning: could not save CSV: {err}]\n"),
    }
}
