//! BENCH-SIM: host-side profile of the simulator itself.
//!
//! Everything else in the harness reports *virtual*-time results; this
//! campaign measures the *host* — how fast the event loop chews through
//! a reference workload on the machine running the benchmarks. It drives
//! a fixed seeded closed-loop store workload with the
//! [`hyperprov_sim::SimProfiler`] enabled and reports two kinds of
//! numbers:
//!
//! * **model** metrics — completions, goodput and latency quantiles in
//!   virtual time, plus the kernel's event/message counts. These are
//!   fully deterministic for the fixed seed, so the regression gate
//!   (`bench_regress`) compares them with tight tolerances.
//! * **host** metrics — wall-clock run time, events processed per
//!   wall-second, per-actor-type handler time shares and peak RSS. These
//!   vary run to run and machine to machine; the gate only applies loose
//!   ratio bounds.
//!
//! The JSON body is what `bench_regress --update` commits to the
//! repo-root `BENCH_sim.json` baseline.

use hyperprov::{HyperProvNetwork, NetworkConfig};
use hyperprov_fabric::BatchConfig;
use hyperprov_sim::{json, DetRng, SimDuration};

use crate::runner::{run_closed_loop, Summary};
use crate::table::Table;
use crate::workload::{payload, store_cmd};

/// Campaign seed (workload payloads).
const SEED: u64 = 23;

/// Payload size of the reference store workload.
const ITEM_BYTES: usize = 1 << 10;

/// The host-profile campaign's artefacts.
#[derive(Debug)]
pub struct SimBenchReport {
    /// Headline model + host metrics, one row per metric.
    pub table: Table,
    /// The machine-readable profile (the `BENCH_sim.json` body).
    pub bench_json: String,
}

/// Runs the reference workload with the profiler enabled and summarises
/// the simulator's host-side performance.
pub fn sim_bench(quick: bool) -> SimBenchReport {
    sim_bench_inner(quick, None)
}

/// Like [`sim_bench`], but embedding a pre-rendered T-SCALE section body
/// (see [`super::scale_campaign`]) as the profile's `scale` member — the
/// combined document `bench_regress --update` commits to
/// `BENCH_sim.json`.
pub fn sim_bench_with_scale(quick: bool, scale_section: &str) -> SimBenchReport {
    sim_bench_inner(quick, Some(scale_section))
}

/// Host-measurement repeats: the reference workload finishes in tens of
/// milliseconds, where scheduler noise swings wall time by ~10 % run to
/// run. The model is fully deterministic for the fixed seed, so we run
/// the workload a few times and report the fastest run's host profile —
/// standard minimum-of-repeats benchmarking.
const HOST_REPEATS: usize = 3;

fn sim_bench_inner(quick: bool, scale_section: Option<&str>) -> SimBenchReport {
    let (clients, secs) = if quick { (8, 6) } else { (32, 20) };
    let config = NetworkConfig::desktop(clients)
        .with_seed(SEED)
        .with_batch(BatchConfig {
            timeout: SimDuration::from_millis(100),
            ..BatchConfig::default()
        });

    let mut best: Option<(HyperProvNetwork, crate::runner::RunResult)> = None;
    for _ in 0..HOST_REPEATS {
        let mut net = HyperProvNetwork::build(&config);
        net.sim.enable_profiler();
        let mut rng = DetRng::new(SEED).fork("bench-sim");
        let result = run_closed_loop(
            &mut net,
            SimDuration::from_secs(secs),
            SimDuration::from_secs(5),
            |client, seq| {
                store_cmd(
                    format!("item-c{client}-s{seq}"),
                    payload(&mut rng, ITEM_BYTES),
                )
            },
        );
        match &best {
            Some((fastest, fastest_result)) => {
                // Repeats of a deterministic model must agree exactly.
                assert_eq!(
                    fastest.sim.events_processed(),
                    net.sim.events_processed(),
                    "model diverged across host-measurement repeats"
                );
                assert!(
                    fastest_result.completions.len() == result.completions.len()
                        && fastest_result
                            .completions
                            .iter()
                            .zip(&result.completions)
                            .all(|((ca, a), (cb, b))| {
                                ca == cb && a.started == b.started && a.finished == b.finished
                            }),
                    "completion timeline diverged across host-measurement repeats"
                );
                if net.sim.profiler().wall_elapsed() < fastest.sim.profiler().wall_elapsed() {
                    best = Some((net, result));
                }
            }
            None => best = Some((net, result)),
        }
    }
    let (net, result) = best.expect("HOST_REPEATS >= 1");
    let summary = Summary::of(&result.completions, result.span);

    let hot = net.sim.hot_counters();
    let events = net.sim.events_processed();
    let host_json = net.sim.profiler().snapshot_json(events, hot);
    let model_json = json::Obj::new()
        .u64("ok", summary.ok)
        .u64("err", summary.err)
        .f64("goodput_tx_s", summary.throughput)
        .f64("op_p50_ms", summary.latency_ms(0.50))
        .f64("op_p95_ms", summary.latency_ms(0.95))
        .u64("events", events)
        .u64("messages", hot.messages_sent)
        .u64("timers", hot.timers_set)
        .u64("cpu_jobs", hot.cpu_jobs)
        .build();
    let mut obj = json::Obj::new()
        .str("campaign", "BENCH-SIM")
        .str("mode", if quick { "quick" } else { "full" })
        .str(
            "workload",
            &format!("closed-loop store, {clients} clients, {ITEM_BYTES} B items, {secs}s"),
        )
        .raw("model", &model_json)
        .raw("host", &host_json);
    if let Some(scale) = scale_section {
        obj = obj.raw("scale", scale);
    }
    let bench_json = json::pretty(&obj.build());

    let wall = net.sim.profiler().wall_elapsed().as_secs_f64();
    let mut table = Table::new(
        format!(
            "BENCH-SIM: host-side simulator profile (closed-loop store, {clients} clients, \
             1 KiB items, {secs}s virtual)"
        ),
        &["metric", "value"],
    );
    let events_per_sec = if wall > 0.0 {
        events as f64 / wall
    } else {
        0.0
    };
    let rss_mib = hyperprov_sim::peak_rss_bytes().unwrap_or(0) as f64 / (1 << 20) as f64;
    for (metric, value) in [
        ("model: completions ok", summary.ok.to_string()),
        (
            "model: goodput (tx/s virtual)",
            format!("{:.1}", summary.throughput),
        ),
        (
            "model: op p95 (ms virtual)",
            format!("{:.2}", summary.latency_ms(0.95)),
        ),
        ("model: kernel events", events.to_string()),
        ("model: messages sent", hot.messages_sent.to_string()),
        ("host: wall (s)", format!("{wall:.3}")),
        ("host: events/sec (wall)", format!("{events_per_sec:.0}")),
        (
            "host: handler wall (s)",
            format!("{:.3}", net.sim.profiler().handler_wall().as_secs_f64()),
        ),
        ("host: peak RSS (MiB)", format!("{rss_mib:.1}")),
    ] {
        table.push_row(vec![metric.to_owned(), value]);
    }

    SimBenchReport { table, bench_json }
}
