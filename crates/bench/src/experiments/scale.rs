//! T-SCALE: the harness at edge-population scale — 10,000 open-loop
//! clients posting provenance records over 1,000,000 unique keys.
//!
//! The paper's testbeds stop at a handful of clients; ROADMAP open item 2
//! asks for "millions of users" workload campaigns, which first requires
//! the simulator itself (event kernel, metrics fast path, ledger
//! storage) to get out of the way. This campaign is the proof: a
//! deployment two to three orders of magnitude past the reference
//! workloads, runnable on one host.
//!
//! Scale knobs exercised (all opt-in, defaults stay byte-identical):
//!
//! * [`NetworkConfig::with_targeted_events`] — commit events route to the
//!   submitting client only, instead of a per-event broadcast to every
//!   subscriber (quadratic at 10k clients);
//! * [`NetworkConfig::with_flat_state`] — the flat-sorted state backend,
//!   faster point lookups on a million-key world state;
//! * lazily generated open-loop schedules
//!   ([`crate::runner::run_open_loop_lazy`]) — the million-command
//!   schedule never materialises in memory.
//!
//! Like BENCH-SIM, the campaign reports deterministic *model* metrics
//! (completions, goodput, latency quantiles in virtual time) and
//! machine-dependent *host* metrics (wall seconds, events per
//! wall-second, peak RSS). `bench_regress --update` records the quick
//! variant as the `scale` section of the committed `BENCH_sim.json`.

use hyperprov::{HyperProvNetwork, NetworkConfig};
use hyperprov_fabric::BatchConfig;
use hyperprov_sim::{json, SimDuration};

use crate::runner::{run_open_loop_lazy, Summary};
use crate::table::Table;
use crate::workload::{post_cmd, uniform_arrivals};

/// Campaign seed.
const SEED: u64 = 29;

/// The T-SCALE campaign's artefacts.
#[derive(Debug)]
pub struct ScaleReport {
    /// Headline model + host metrics, one row per metric.
    pub table: Table,
    /// The machine-readable `scale` section body for `BENCH_sim.json`.
    pub section_json: String,
}

/// Runs the scale campaign: `quick` shrinks the population three orders
/// of magnitude for CI smoke runs; the full run is 10k clients x 100
/// unique keys each = 1M operations.
pub fn scale_campaign(quick: bool) -> ScaleReport {
    // The full offered rate sits at ~80 % of the pipeline's saturated
    // goodput for metadata posts at this batch shape (~490 tx/s measured
    // under overload), so the backlog stays bounded and every operation
    // completes inside the drain window.
    let (clients, keys_per_client, rate) = if quick {
        (200usize, 5u64, 500.0)
    } else {
        (10_000usize, 100u64, 400.0)
    };
    let total_ops = clients as u64 * keys_per_client;
    let window = SimDuration::from_secs_f64(total_ops as f64 / rate);

    let config = NetworkConfig::desktop(clients)
        .with_seed(SEED)
        .with_flat_state()
        .with_targeted_events()
        .with_batch(BatchConfig {
            max_message_count: 500,
            timeout: SimDuration::from_millis(250),
            ..BatchConfig::default()
        });
    let mut net = HyperProvNetwork::build(&config);
    net.sim.enable_profiler();

    // Uniform open-loop arrivals, round-robin over the population. Each
    // operation posts a metadata-only record under a key unique to
    // (client, sequence) — `total_ops` distinct keys overall.
    let arrivals = uniform_arrivals(rate, window, clients);
    let per_client = keys_per_client;
    let result = run_open_loop_lazy(
        &mut net,
        &arrivals,
        SimDuration::from_secs(600),
        |client, index| {
            let seq = index / clients as u64;
            debug_assert!(seq < per_client);
            let key = format!("scale-c{client:05}-k{seq:03}");
            let checksum = key.clone().into_bytes();
            post_cmd(key, &checksum)
        },
    );
    // Goodput over the full window from first arrival to quiescence —
    // the sustained rate the modelled system absorbed, not the injection
    // rate.
    let total_span = net
        .sim
        .now()
        .saturating_duration_since(hyperprov_sim::SimTime::ZERO);
    let summary = Summary::of(&result.completions, total_span);

    let hot = net.sim.hot_counters();
    let events = net.sim.events_processed();
    let wall = net.sim.profiler().wall_elapsed().as_secs_f64();
    let events_per_sec = if wall > 0.0 {
        events as f64 / wall
    } else {
        0.0
    };
    let peak_rss = hyperprov_sim::peak_rss_bytes().unwrap_or(0);

    let model_json = json::Obj::new()
        .u64("issued", result.issued)
        .u64("ok", summary.ok)
        .u64("err", summary.err)
        .u64("unique_keys", total_ops)
        .f64("goodput_tx_s", summary.throughput)
        .f64("op_p50_ms", summary.latency_ms(0.50))
        .f64("op_p95_ms", summary.latency_ms(0.95))
        .u64("events", events)
        .u64("messages", hot.messages_sent)
        .build();
    let host_json = json::Obj::new()
        .f64("wall_s", wall)
        .f64("events_per_sec", events_per_sec)
        .u64("peak_rss_bytes", peak_rss)
        .build();
    // Compact on purpose: the section is embedded via `Obj::raw` into the
    // BENCH-SIM document, which pretty-prints the combined body once.
    let section_json = json::Obj::new()
        .str(
            "workload",
            &format!("open-loop post, {clients} clients, {total_ops} unique keys, {rate:.0} ops/s"),
        )
        .raw("model", &model_json)
        .raw("host", &host_json)
        .build();

    let mut table = Table::new(
        format!(
            "T-SCALE: {clients} open-loop clients, {total_ops} unique keys \
             ({rate:.0} ops/s, targeted events, flat state)"
        ),
        &["metric", "value"],
    );
    let rss_mib = peak_rss as f64 / (1 << 20) as f64;
    for (metric, value) in [
        ("model: operations issued", result.issued.to_string()),
        ("model: completions ok", summary.ok.to_string()),
        ("model: completions err", summary.err.to_string()),
        (
            "model: goodput (tx/s virtual)",
            format!("{:.1}", summary.throughput),
        ),
        (
            "model: op p50 (ms virtual)",
            format!("{:.2}", summary.latency_ms(0.50)),
        ),
        (
            "model: op p95 (ms virtual)",
            format!("{:.2}", summary.latency_ms(0.95)),
        ),
        ("model: kernel events", events.to_string()),
        ("model: messages sent", hot.messages_sent.to_string()),
        ("host: wall (s)", format!("{wall:.3}")),
        ("host: events/sec (wall)", format!("{events_per_sec:.0}")),
        ("host: peak RSS (MiB)", format!("{rss_mib:.1}")),
    ] {
        table.push_row(vec![metric.to_owned(), value]);
    }

    ScaleReport {
        table,
        section_json,
    }
}
