//! Thesis-style tables: orderer batch-size sweep and per-operator query
//! latencies.

use hyperprov::{ClientCommand, HyperProvNetwork, NetworkConfig, OpId};
use hyperprov_fabric::BatchConfig;
use hyperprov_ledger::Digest;
use hyperprov_sim::{DetRng, SimDuration, SimTime};

use crate::runner::{run_closed_loop, run_closed_loop_counted, run_open_loop, Summary};
use crate::table::Table;
use crate::workload::{payload, post_cmd, store_cmd};

/// Builds the `i`-th command of a query-operator case.
type CommandFactory = Box<dyn Fn(u64) -> ClientCommand>;

/// T-TPUT: peak throughput and latency vs the orderer's
/// `MaxMessageCount`, metadata-only posts.
pub fn batch_sweep(quick: bool) -> Table {
    let (batch_sizes, clients, duration): (Vec<usize>, usize, SimDuration) = if quick {
        (vec![1, 10], 8, SimDuration::from_secs(10))
    } else {
        (vec![1, 5, 10, 50, 100], 16, SimDuration::from_secs(30))
    };
    let mut table = Table::new(
        "T-TPUT: throughput vs orderer batch size (metadata-only posts, desktop)",
        &[
            "max msg count",
            "throughput (tx/s)",
            "resp p50 (ms)",
            "resp p95 (ms)",
            "blocks cut",
        ],
    );
    for &batch in &batch_sizes {
        let config = NetworkConfig::desktop(clients)
            .with_seed(7)
            .with_batch(BatchConfig {
                max_message_count: batch,
                timeout: SimDuration::from_millis(500),
                ..BatchConfig::default()
            });
        let mut net = HyperProvNetwork::build(&config);
        let mut rng = DetRng::new(7).fork("batch");
        let result = run_closed_loop(
            &mut net,
            duration,
            SimDuration::from_secs(10),
            move |client, seq| {
                let body = payload(&mut rng, 64);
                post_cmd(format!("b{client}-{seq}"), &body)
            },
        );
        let summary = Summary::of(&result.completions, result.span);
        table.push_row(vec![
            batch.to_string(),
            format!("{:.1}", summary.throughput),
            format!("{:.1}", summary.latency_ms(0.5)),
            format!("{:.1}", summary.latency_ms(0.95)),
            net.sim.metrics().counter("orderer.blocks_cut").to_string(),
        ]);
    }
    table
}

/// T-QUERY: latency of each client operator against a pre-loaded ledger.
pub fn query_latency(quick: bool) -> Table {
    let (preload, lineage_depth, queries_per_op) = if quick { (40, 6, 10) } else { (400, 16, 50) };

    // Build and preload one network: a lineage chain of `lineage_depth`
    // plus `preload` independent items, with a few versions on one key.
    let config = NetworkConfig::desktop(1)
        .with_seed(5)
        .with_batch(BatchConfig {
            max_message_count: 1,
            ..BatchConfig::default()
        });
    let mut net = HyperProvNetwork::build(&config);
    let mut rng = DetRng::new(5).fork("query");

    // Preload via closed loop: first the chain, then the flat items, then
    // 4 extra versions of "versioned".
    let chain_keys: Vec<String> = (0..lineage_depth).map(|i| format!("chain-{i}")).collect();
    let mut ops: Vec<ClientCommand> = Vec::new();
    for (i, key) in chain_keys.iter().enumerate() {
        let parents = if i == 0 {
            vec![]
        } else {
            vec![chain_keys[i - 1].clone()]
        };
        ops.push(ClientCommand::StoreData {
            key: key.clone(),
            data: payload(&mut rng, 256),
            parents,
            metadata: vec![],
            op: OpId(0),
        });
    }
    for i in 0..preload {
        ops.push(store_cmd(format!("flat-{i}"), payload(&mut rng, 256)));
    }
    let shared_payload = payload(&mut rng, 256);
    for _ in 0..5 {
        ops.push(store_cmd("versioned".into(), shared_payload.clone()));
    }
    let total = ops.len() as u64;
    let mut ops_iter = ops.into_iter();
    let preload_result = run_closed_loop_counted(&mut net, total, move |_c, _s| {
        ops_iter.next().expect("preload exhausted")
    });
    let preload_ok = preload_result
        .completions
        .iter()
        .filter(|(_, c)| c.outcome.is_ok())
        .count() as u64;
    assert_eq!(preload_ok, total, "preload had failures");

    let mut table = Table::new(
        "T-QUERY: query latency by operator (desktop, pre-loaded ledger)",
        &["operator", "mean (ms)", "p95 (ms)", "samples"],
    );

    let last_chain = chain_keys.last().expect("non-empty chain").clone();
    let shared_checksum = Digest::of(&shared_payload);
    let cases: Vec<(&str, CommandFactory)> = vec![
        (
            "get",
            Box::new(move |i| ClientCommand::Get {
                key: format!("flat-{}", i % preload as u64),
                op: OpId(0),
            }),
        ),
        (
            "get_data (256B)",
            Box::new(move |i| ClientCommand::GetData {
                key: format!("flat-{}", i % preload as u64),
                op: OpId(0),
            }),
        ),
        (
            "get_history (6 versions)",
            Box::new(move |_| ClientCommand::GetHistory {
                key: "versioned".into(),
                op: OpId(0),
            }),
        ),
        (
            "get_keys_by_checksum",
            Box::new(move |_| ClientCommand::GetKeysByChecksum {
                checksum: shared_checksum,
                op: OpId(0),
            }),
        ),
        (
            "get_lineage (full chain)",
            Box::new(move |_| ClientCommand::GetLineage {
                key: last_chain.clone(),
                depth: 64,
                op: OpId(0),
            }),
        ),
    ];

    for (name, factory) in cases {
        // Queries do not commit, so space them out open-loop.
        let start = net.sim.now();
        let schedule: Vec<(SimTime, usize, ClientCommand)> = (0..queries_per_op)
            .map(|i| {
                (
                    start + SimDuration::from_millis(200) * (i + 1),
                    0usize,
                    factory(i),
                )
            })
            .collect();
        let result = run_open_loop(&mut net, schedule, SimDuration::from_secs(5));
        let summary = Summary::of(&result.completions, result.span);
        assert_eq!(
            summary.err, 0,
            "{name}: unexpected query failures ({} ok)",
            summary.ok
        );
        table.push_row(vec![
            name.to_owned(),
            format!("{:.2}", summary.mean_latency_ms()),
            format!("{:.2}", summary.latency_ms(0.95)),
            summary.ok.to_string(),
        ]);
    }
    table
}
