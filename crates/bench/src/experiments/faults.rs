//! T-FAULTS: fault-injection campaigns — node crashes, Raft leader kill
//! and network partitions under the Fig. 1-style store workload.
//!
//! The paper argues HyperProv is *resilient* provenance but never
//! measures it. This campaign quantifies the claim: a closed-loop 1 KiB
//! `StoreData` workload runs on both testbeds while a [`FaultPlan`]
//! injects one fault window per scenario, and the report shows goodput
//! before / during / after the fault, the time for goodput to recover to
//! ≥90 % of its pre-fault mean, and the client-side retry/timeout
//! economics. Clients run with per-op deadlines and the deterministic
//! jittered-backoff [`RetryPolicy`], so every operation terminates — the
//! hung-client column must read zero.

use hyperprov::{HyperProvNetwork, NetworkConfig, NodeMsg, RetryPolicy};
use hyperprov_fabric::{BatchConfig, RaftOrdererActor};
use hyperprov_sim::{
    chrome_trace_json, ActorId, DetRng, FaultPlan, SimDuration, SimTime, SloObjective, SloSpec,
};

use super::Platform;
use crate::report::{push_slo_verdicts, slo_verdict_table, MetricsExporter};
use crate::runner::run_closed_loop;
use crate::table::Table;
use crate::workload::{payload, store_cmd};

/// Payload size: the 1 KiB point of Fig. 1/Fig. 2.
const ITEM_BYTES: usize = 1 << 10;

/// Campaign seed (workload payloads, backoff jitter, fault schedule).
const SEED: u64 = 11;

/// Goodput must return to this fraction of the pre-fault mean to count
/// as recovered.
const RECOVERY_FRACTION: f64 = 0.9;

/// The fault scenarios of the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultScenario {
    /// Crash one endorsing peer mid-run, restart it at the end of the
    /// window; it replays its block store and catches up from the
    /// orderer.
    PeerCrash,
    /// Crash the elected Raft ordering leader; the cluster elects a new
    /// leader and broadcasts are redirected.
    LeaderKill,
    /// Partition half the peers from the ordering service, then heal;
    /// the cut-off peers catch up via block re-delivery.
    Partition,
}

impl FaultScenario {
    /// Scenario label used in tables and run names.
    pub fn name(self) -> &'static str {
        match self {
            FaultScenario::PeerCrash => "peer-crash",
            FaultScenario::LeaderKill => "raft-leader-kill",
            FaultScenario::Partition => "partition-heal",
        }
    }
}

/// All three scenarios, in report order.
pub const FAULT_SCENARIOS: [FaultScenario; 3] = [
    FaultScenario::PeerCrash,
    FaultScenario::LeaderKill,
    FaultScenario::Partition,
];

/// Campaign timing parameters (virtual time).
#[derive(Debug, Clone, Copy)]
struct Params {
    clients: usize,
    /// Workload duration (injection window).
    duration: SimDuration,
    /// Drain grace after the last injection.
    grace: SimDuration,
    /// Fault window start, relative to workload start.
    fault_from: SimDuration,
    /// Fault window end (restart/heal), relative to workload start.
    fault_to: SimDuration,
}

impl Params {
    fn new(quick: bool) -> Self {
        if quick {
            Params {
                clients: 4,
                duration: SimDuration::from_secs(9),
                grace: SimDuration::from_secs(8),
                fault_from: SimDuration::from_secs(3),
                fault_to: SimDuration::from_secs(5),
            }
        } else {
            Params {
                clients: 8,
                duration: SimDuration::from_secs(25),
                grace: SimDuration::from_secs(15),
                fault_from: SimDuration::from_secs(10),
                fault_to: SimDuration::from_secs(15),
            }
        }
    }
}

/// The rolling window the campaign's SLOs are evaluated over. Half the
/// shortest (quick-mode) fault window, so a fault both breaches the
/// objectives and lets them recover within the run.
const SLO_WINDOW: SimDuration = SimDuration::from_secs(2);

/// The campaign's objectives, watched by every run: store goodput above
/// a floor, the client error fraction below a ceiling and end-to-end op
/// latency within a p90 budget. A healthy network holds all three; the
/// fault window is expected to breach at least the first two, and the
/// burn-rate series in the metrics export are the recovery curves.
fn fault_slos() -> Vec<SloSpec> {
    vec![
        SloSpec::new(
            "store-goodput",
            SloObjective::GoodputFloor {
                source: "client.ok".into(),
                floor_per_sec: 3.0,
            },
            SLO_WINDOW,
        ),
        SloSpec::new(
            "client-errors",
            SloObjective::ErrorRateCeiling {
                ok_source: "client.ok".into(),
                err_source: "client.err".into(),
                ceiling: 0.05,
            },
            SLO_WINDOW,
        ),
        SloSpec::new(
            "op-p90",
            SloObjective::LatencyQuantile {
                source: "op".into(),
                q: 0.9,
                budget: SimDuration::from_millis(800),
            },
            SLO_WINDOW,
        ),
    ]
}

/// The fault campaign plus its observability artefacts.
#[derive(Debug)]
pub struct FaultsReport {
    /// One row per `(platform, scenario)`: phase goodputs,
    /// time-to-recover and retry/timeout counts.
    pub table: Table,
    /// Per-second goodput timeline of every run (the recovery curves).
    pub timeline: Table,
    /// Per-run SLO verdicts (goodput floor, error ceiling, latency
    /// budget) over the fault windows.
    pub verdicts: Table,
    /// One metrics + trace + SLO snapshot per run.
    pub exporter: MetricsExporter,
    /// Chrome/Perfetto `trace_events` export of the desktop peer-crash
    /// run, saved as `table_faults_peer_crash.trace.json`.
    pub trace_json: String,
}

fn base_config(platform: Platform, scenario: FaultScenario, params: &Params) -> NetworkConfig {
    let base = match platform {
        Platform::Desktop => NetworkConfig::desktop(params.clients),
        Platform::Rpi => NetworkConfig::rpi(params.clients),
    };
    let config = base
        .with_seed(SEED)
        .with_batch(BatchConfig {
            timeout: SimDuration::from_millis(100),
            ..BatchConfig::default()
        })
        .with_deadlines(
            Some(SimDuration::from_secs(2)),
            Some(SimDuration::from_secs(4)),
        )
        .with_retry(RetryPolicy::new(6))
        .with_slos(fault_slos());
    match scenario {
        FaultScenario::LeaderKill => config.with_raft_orderers(3),
        _ => config,
    }
}

/// The currently elected Raft ordering leader, if any member claims the
/// role.
fn raft_leader(net: &HyperProvNetwork) -> Option<ActorId> {
    net.orderers.iter().copied().find(|&id| {
        net.sim
            .actor_ref(id)
            .and_then(|actor| actor.as_any())
            .and_then(|any| any.downcast_ref::<RaftOrdererActor<NodeMsg>>())
            .is_some_and(|orderer| orderer.is_leader())
    })
}

fn build_plan(
    net: &HyperProvNetwork,
    scenario: FaultScenario,
    from: SimTime,
    to: SimTime,
) -> FaultPlan {
    match scenario {
        FaultScenario::PeerCrash => FaultPlan::new().crash_window(net.peers[0], from, to),
        FaultScenario::LeaderKill => {
            let leader = raft_leader(net).unwrap_or(net.orderers[0]);
            FaultPlan::new().crash_window(leader, from, to)
        }
        FaultScenario::Partition => {
            let cut = &net.peers[net.peers.len() / 2..];
            FaultPlan::new().partition_window(cut, &[net.orderer], from, to)
        }
    }
}

/// Statistics of one campaign run.
struct RunStats {
    ok: u64,
    err: u64,
    hung: u64,
    timeouts: u64,
    retries: u64,
    exhausted: u64,
    pre_goodput: f64,
    during_goodput: f64,
    post_goodput: f64,
    /// Seconds after the heal/restart until goodput first reaches
    /// [`RECOVERY_FRACTION`] of the pre-fault mean. `None` = never.
    time_to_recover: Option<f64>,
    buckets: Vec<u64>,
}

fn mean(buckets: &[u64]) -> f64 {
    if buckets.is_empty() {
        0.0
    } else {
        buckets.iter().sum::<u64>() as f64 / buckets.len() as f64
    }
}

/// Runs one `(platform, scenario)` campaign, appends its snapshot to the
/// exporter and its SLO verdicts to the verdict table, and captures the
/// first run's Perfetto trace into `trace` (filled once per campaign).
fn run_scenario(
    platform: Platform,
    scenario: FaultScenario,
    params: &Params,
    exporter: &mut MetricsExporter,
    verdicts: &mut Table,
    trace: &mut Option<String>,
) -> RunStats {
    let config = base_config(platform, scenario, params);
    let mut net = HyperProvNetwork::build(&config);
    if scenario == FaultScenario::LeaderKill {
        // Let the cluster elect a leader before the workload starts, so
        // the plan can target the actual leader.
        net.sim.run_until(SimTime::from_secs(2));
    }
    let t0 = net.sim.now();
    build_plan(&net, scenario, t0 + params.fault_from, t0 + params.fault_to).install(&mut net.sim);

    let mut rng = DetRng::new(SEED).fork("faults").fork(scenario.name());
    let label = scenario.name();
    let result = run_closed_loop(&mut net, params.duration, params.grace, |c, seq| {
        store_cmd(
            format!("item-{label}-c{c}-{seq}"),
            payload(&mut rng, ITEM_BYTES),
        )
    });

    // Per-second goodput buckets over [t0, t0 + duration + grace).
    let n_buckets = (params.duration + params.grace)
        .as_nanos()
        .div_ceil(1_000_000_000) as usize;
    let mut buckets = vec![0u64; n_buckets];
    let mut ok = 0u64;
    let mut err = 0u64;
    for (_, completion) in &result.completions {
        if completion.outcome.is_ok() {
            ok += 1;
            let idx = (completion.finished.saturating_duration_since(t0).as_nanos() / 1_000_000_000)
                as usize;
            if let Some(slot) = buckets.get_mut(idx) {
                *slot += 1;
            }
        } else {
            err += 1;
        }
    }

    let fault_from_s = (params.fault_from.as_nanos() / 1_000_000_000) as usize;
    let fault_to_s = (params.fault_to.as_nanos() / 1_000_000_000) as usize;
    let duration_s = (params.duration.as_nanos() / 1_000_000_000) as usize;
    // Skip the first second (closed-loop warm-up) for the pre-fault mean.
    let pre = mean(&buckets[1.min(fault_from_s)..fault_from_s]);
    let during = mean(&buckets[fault_from_s..fault_to_s.min(buckets.len())]);
    let recover_idx = (fault_to_s..duration_s.min(buckets.len()))
        .find(|&s| buckets[s] as f64 >= RECOVERY_FRACTION * pre);
    let time_to_recover = recover_idx.map(|s| (s + 1 - fault_to_s) as f64);
    let post = recover_idx
        .map(|s| mean(&buckets[s..duration_s.min(buckets.len())]))
        .unwrap_or(0.0);

    let run_label = format!("{} {}", platform.name(), scenario.name());
    push_slo_verdicts(verdicts, &run_label, &net.sim);
    if trace.is_none() {
        *trace = Some(chrome_trace_json(net.sim.tracer()));
    }
    exporter.add_run(&run_label, &net.sim);

    // The timeline reports the injection window only; completions landing
    // in the drain tail still count towards `ok`/`err`.
    buckets.truncate(duration_s);

    RunStats {
        ok,
        err,
        timeouts: net.sim.metrics().counter("client.timeouts"),
        retries: net.sim.metrics().counter("client.retries"),
        exhausted: net.sim.metrics().counter("client.exhausted"),
        hung: result.issued - result.completions.len() as u64,
        pre_goodput: pre,
        during_goodput: during,
        post_goodput: post,
        time_to_recover,
        buckets,
    }
}

/// Runs the full fault campaign: every scenario on both testbeds.
pub fn fault_campaign(quick: bool) -> FaultsReport {
    let params = Params::new(quick);
    let mut table = Table::new(
        format!(
            "T-FAULTS: goodput under injected faults (closed loop, {} clients, 1 KiB items, \
             fault window {}..{}s, deadlines + retry)",
            params.clients,
            params.fault_from.as_nanos() / 1_000_000_000,
            params.fault_to.as_nanos() / 1_000_000_000,
        ),
        &[
            "platform",
            "scenario",
            "pre goodput (tx/s)",
            "fault goodput (tx/s)",
            "post goodput (tx/s)",
            "recover (s)",
            "ok",
            "err",
            "timeouts",
            "retries",
            "exhausted",
            "hung clients",
        ],
    );
    let mut timeline = Table::new(
        "T-FAULTS: per-second goodput timelines",
        &["platform", "scenario", "second", "ok (tx/s)"],
    );
    let mut exporter = MetricsExporter::new("table_faults");
    let mut verdicts = slo_verdict_table(format!(
        "T-FAULTS: SLO verdicts (rolling {}s windows)",
        SLO_WINDOW.as_nanos() / 1_000_000_000,
    ));
    let mut trace_json = None;

    for platform in [Platform::Desktop, Platform::Rpi] {
        for scenario in FAULT_SCENARIOS {
            let stats = run_scenario(
                platform,
                scenario,
                &params,
                &mut exporter,
                &mut verdicts,
                &mut trace_json,
            );
            table.push_row(vec![
                platform.name().to_owned(),
                scenario.name().to_owned(),
                format!("{:.1}", stats.pre_goodput),
                format!("{:.1}", stats.during_goodput),
                format!("{:.1}", stats.post_goodput),
                stats
                    .time_to_recover
                    .map_or("-".to_owned(), |s| format!("{s:.0}")),
                stats.ok.to_string(),
                stats.err.to_string(),
                stats.timeouts.to_string(),
                stats.retries.to_string(),
                stats.exhausted.to_string(),
                stats.hung.to_string(),
            ]);
            for (second, &count) in stats.buckets.iter().enumerate() {
                timeline.push_row(vec![
                    platform.name().to_owned(),
                    scenario.name().to_owned(),
                    second.to_string(),
                    count.to_string(),
                ]);
            }
        }
    }

    FaultsReport {
        table,
        timeline,
        verdicts,
        exporter,
        trace_json: trace_json.unwrap_or_else(|| "{\"traceEvents\":[]}".to_owned()),
    }
}

/// A single short peer-crash run rendered as metrics JSON — the
/// determinism property the test suite checks across repeated runs.
pub fn fault_scenario_json(seed: u64) -> String {
    let params = Params::new(true);
    let config = NetworkConfig::desktop(params.clients)
        .with_seed(seed)
        .with_batch(BatchConfig {
            timeout: SimDuration::from_millis(100),
            ..BatchConfig::default()
        })
        .with_deadlines(
            Some(SimDuration::from_secs(2)),
            Some(SimDuration::from_secs(4)),
        )
        .with_retry(RetryPolicy::new(6));
    let mut net = HyperProvNetwork::build(&config);
    let t0 = net.sim.now();
    FaultPlan::new()
        .crash_window(net.peers[0], t0 + params.fault_from, t0 + params.fault_to)
        .install(&mut net.sim);
    let mut rng = DetRng::new(seed).fork("faults");
    run_closed_loop(&mut net, params.duration, params.grace, |c, seq| {
        store_cmd(format!("item-c{c}-{seq}"), payload(&mut rng, ITEM_BYTES))
    });
    let mut exporter = MetricsExporter::new("table_faults_prop");
    exporter.add_run(&format!("seed={seed}"), &net.sim);
    exporter.to_json()
}
