//! T-MVCC: ablation — MVCC invalidation under key contention.
//!
//! Fabric's optimistic concurrency (and therefore HyperProv's) invalidates
//! a transaction whose read versions changed between endorsement and
//! commit. Independent clients posting to a shared ("hot") key race inside
//! blocks; this sweep measures the invalidation rate as the hot fraction
//! grows — the cost of using HyperProv for high-contention keys.

use hyperprov::{ClientCommand, HyperProvError, HyperProvNetwork, NetworkConfig, OpId};
use hyperprov_ledger::ValidationCode;
use hyperprov_sim::{DetRng, SimDuration, SimTime};

use crate::runner::run_open_loop;
use crate::table::Table;
use crate::workload::{payload, poisson_arrivals, KeyChooser};

/// Runs the contention sweep.
pub fn contention_sweep(quick: bool) -> Table {
    let (fractions, rate, duration, clients): (Vec<f64>, f64, SimDuration, usize) = if quick {
        (vec![0.0, 0.8], 30.0, SimDuration::from_secs(10), 4)
    } else {
        (
            vec![0.0, 0.1, 0.3, 0.5, 0.8, 1.0],
            50.0,
            SimDuration::from_secs(30),
            8,
        )
    };

    let mut table = Table::new(
        "T-MVCC: invalidation rate vs hot-key fraction (open loop, desktop)",
        &[
            "hot fraction",
            "offered (tx/s)",
            "committed valid",
            "mvcc conflicts",
            "conflict rate",
        ],
    );

    for &fraction in &fractions {
        let mut net = HyperProvNetwork::build(&NetworkConfig::desktop(clients).with_seed(3));
        let mut rng = DetRng::new(3).fork("contention");
        let mut chooser = KeyChooser::new(fraction, rng.fork("keys"));
        let schedule: Vec<(SimTime, usize, ClientCommand)> =
            poisson_arrivals(&mut rng.fork("arrivals"), rate, duration, clients)
                .into_iter()
                .map(|(t, c)| {
                    let key = chooser.next_key();
                    let body = payload(&mut rng, 64);
                    (
                        t,
                        c,
                        ClientCommand::Post {
                            key,
                            input: hyperprov::RecordInput::new(hyperprov_ledger::Digest::of(&body)),
                            op: OpId(0),
                        },
                    )
                })
                .collect();
        let result = run_open_loop(&mut net, schedule, SimDuration::from_secs(15));
        let mut valid = 0u64;
        let mut conflicts = 0u64;
        let mut other = 0u64;
        for (_, completion) in &result.completions {
            match &completion.outcome {
                Ok(_) => valid += 1,
                Err(HyperProvError::Invalidated(ValidationCode::MvccReadConflict)) => {
                    conflicts += 1
                }
                Err(_) => other += 1,
            }
        }
        let total = valid + conflicts + other;
        table.push_row(vec![
            format!("{fraction:.1}"),
            format!("{rate:.0}"),
            valid.to_string(),
            conflicts.to_string(),
            if total > 0 {
                format!("{:.1}%", conflicts as f64 / total as f64 * 100.0)
            } else {
                "-".into()
            },
        ]);
    }
    table
}
