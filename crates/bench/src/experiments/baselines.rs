//! T-BASE: HyperProv vs the on-chain-data variant vs a ProvChain-like
//! public PoW chain.
//!
//! Quantifies the paper's two positioning claims: (1) moving payloads
//! off-chain keeps throughput flat-ish as items grow while the on-chain
//! variant collapses, and (2) a permissioned chain costs orders of
//! magnitude less energy and finalisation latency than a public PoW
//! anchor.

use hyperprov::{HyperProvNetwork, NetworkConfig};
use hyperprov_baseline::{OnChainNetwork, PowChain, PowConfig, PowTx};
use hyperprov_device::{EnergyModel, PowerMeter};
use hyperprov_fabric::BatchConfig;
use hyperprov_sim::{DetRng, SimDuration, SimTime};

use crate::runner::{run_closed_loop_counted, Driveable, Summary};
use crate::table::{fmt_bytes, Table};
use crate::workload::{payload, store_cmd};

/// Runs the three-system comparison at several item sizes.
pub fn baseline_comparison(quick: bool) -> Table {
    // The workload is bounded by *operation count*, not duration: the
    // on-chain baseline replicates every payload into all four peers'
    // block stores, state and history databases, so a time-bounded run at
    // large item sizes exhausts host memory — which is itself the paper's
    // argument for off-chain storage. 1 MiB items at 300 ops stay within
    // ~1.5 GiB of replicated ledger.
    let (sizes, clients, ops): (Vec<usize>, usize, u64) = if quick {
        (vec![1 << 10, 1 << 18], 4, 60)
    } else {
        (vec![1 << 10, 1 << 16, 1 << 20], 8, 300)
    };
    let duration = ops; // virtual seconds offered to the PoW chain

    let mut table = Table::new(
        "T-BASE: HyperProv vs on-chain data vs ProvChain-like PoW",
        &[
            "system",
            "item size",
            "throughput (tx/s)",
            "latency p50 (ms)",
            "chain bytes/tx",
            "energy/tx (J)",
        ],
    );

    for &size in &sizes {
        // --- HyperProv (off-chain payloads) ---
        let config = hyperprov_config(clients);
        let mut net = HyperProvNetwork::build(&config);
        let (summary, span, chain_bytes) =
            run_fabric(&mut net, size, ops, |net| chain_bytes_of(&net.ledgers));
        let energy = fabric_energy_per_tx(&net, &summary, span);
        push(&mut table, "HyperProv", size, &summary, chain_bytes, energy);

        // --- On-chain data baseline ---
        let config = hyperprov_config(clients);
        let mut net = OnChainNetwork::build(&config);
        let (summary, span, chain_bytes) =
            run_fabric(&mut net, size, ops, |net| chain_bytes_of(&net.ledgers));
        let energy = onchain_energy_per_tx(&net, &summary, span);
        push(
            &mut table,
            "on-chain data",
            size,
            &summary,
            chain_bytes,
            energy,
        );

        // --- ProvChain-like PoW anchor ---
        let (summary_tput, latency_ms, bytes_per_tx, energy) =
            run_pow(size, SimDuration::from_secs(duration), quick);
        table.push_row(vec![
            "ProvChain-like PoW".into(),
            fmt_bytes(size as u64),
            format!("{summary_tput:.1}"),
            format!("{latency_ms:.0}"),
            fmt_bytes(bytes_per_tx),
            format!("{energy:.0}"),
        ]);
    }
    table
}

fn hyperprov_config(clients: usize) -> NetworkConfig {
    // One block per transaction: batching policy would otherwise interact
    // with envelope sizes (big envelopes overflow PreferredMaxBytes and
    // cut immediately while small ones wait out the timeout), muddying
    // the payload-cost comparison this table is about.
    NetworkConfig::desktop(clients)
        .with_seed(21)
        .with_batch(BatchConfig {
            max_message_count: 1,
            ..BatchConfig::default()
        })
}

fn run_fabric<N: Driveable>(
    net: &mut N,
    size: usize,
    ops: u64,
    chain_bytes: impl Fn(&N) -> u64,
) -> (Summary, SimDuration, u64) {
    let mut rng = DetRng::new(77).fork("baseline");
    let result = run_closed_loop_counted(net, ops, move |c, s| {
        store_cmd(format!("item-{c}-{s}"), payload(&mut rng, size))
    });
    let span = result.span;
    let summary = Summary::of(&result.completions, span);
    let bytes = chain_bytes(net);
    (summary, span, bytes)
}

fn chain_bytes_of(ledgers: &[std::rc::Rc<std::cell::RefCell<hyperprov_fabric::Committer>>]) -> u64 {
    let ledger = ledgers[0].borrow();
    ledger
        .store()
        .iter()
        .flat_map(|b| b.envelopes.iter())
        .map(|e| e.bytes.len() as u64)
        .sum()
}

fn push(
    table: &mut Table,
    system: &str,
    size: usize,
    summary: &Summary,
    chain_bytes: u64,
    energy: f64,
) {
    let per_tx = chain_bytes.checked_div(summary.ok).unwrap_or(0);
    table.push_row(vec![
        system.into(),
        fmt_bytes(size as u64),
        format!("{:.1}", summary.throughput),
        format!("{:.0}", summary.latency_ms(0.5)),
        fmt_bytes(per_tx),
        format!("{energy:.2}"),
    ]);
}

/// Whole-network energy per committed transaction for the HyperProv
/// deployment (peers + orderer + storage + clients, desktop model).
fn fabric_energy_per_tx(net: &HyperProvNetwork, summary: &Summary, span: SimDuration) -> f64 {
    let meter = PowerMeter::new(EnergyModel::desktop(), SimDuration::from_secs(1));
    let from = SimTime::ZERO;
    let to = SimTime::ZERO + span;
    let duration = span;
    let mut joules = 0.0;
    for id in net
        .peers
        .iter()
        .chain(std::iter::once(&net.orderer))
        .chain(std::iter::once(&net.storage))
        .chain(net.clients.iter())
    {
        joules += meter.average_watts(net.sim.cpu(*id), from, to, true) * duration.as_secs_f64();
    }
    if summary.ok > 0 {
        joules / summary.ok as f64
    } else {
        joules
    }
}

fn onchain_energy_per_tx(net: &OnChainNetwork, summary: &Summary, span: SimDuration) -> f64 {
    let meter = PowerMeter::new(EnergyModel::desktop(), SimDuration::from_secs(1));
    let from = SimTime::ZERO;
    let to = SimTime::ZERO + span;
    let duration = span;
    let mut joules = 0.0;
    for id in net
        .peers
        .iter()
        .chain(std::iter::once(&net.orderer))
        .chain(net.clients.iter())
    {
        joules += meter.average_watts(net.sim.cpu(*id), from, to, true) * duration.as_secs_f64();
    }
    if summary.ok > 0 {
        joules / summary.ok as f64
    } else {
        joules
    }
}

/// Pushes the same offered load through the PoW chain. Records carry only
/// metadata (~300 B), as in ProvChain — but finality waits for mining and
/// confirmations, and the miners burn power continuously.
fn run_pow(size: usize, duration: SimDuration, quick: bool) -> (f64, f64, u64, f64) {
    let _ = size; // metadata-only on the public chain regardless of item size
    let config = PowConfig::default();
    let mut chain = PowChain::new(config, 9);
    let record_bytes = 300u64;
    // Offer one anchor per second (the permissioned systems do far more;
    // PoW latency is what dominates regardless of rate).
    let offered = duration.as_secs_f64() as u64;
    for i in 0..offered {
        chain.submit(PowTx {
            id: i,
            submitted: SimTime::from_secs(i),
            bytes: record_bytes,
        });
    }
    // Let the chain settle: every tx needs mining + confirmations.
    let settle = if quick { 4_000 } else { 40_000 };
    chain.advance_to(SimTime::from_secs(settle));
    let commits = chain.commits();
    let mean_latency_ms = if commits.is_empty() {
        0.0
    } else {
        commits
            .iter()
            .map(|c| (c.finalized - c.tx.submitted).as_secs_f64() * 1e3)
            .sum::<f64>()
            / commits.len() as f64
    };
    // Throughput over the offered window (the chain keeps up at 1 tx/s;
    // the figure of merit here is latency + energy).
    let tput = commits.len() as f64 / duration.as_secs_f64().max(1.0);
    let energy_per_tx = if commits.is_empty() {
        f64::INFINITY
    } else {
        chain.mining_energy_joules(duration) / commits.len() as f64
    };
    (tput.min(1.0), mean_latency_ms, record_bytes, energy_per_tx)
}
