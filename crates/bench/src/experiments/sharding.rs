//! T-SHARDING: multi-channel (sharded) scaling, desktop and RPi testbeds.
//!
//! The paper deploys a single Fabric channel; this campaign measures what
//! the architecture gains from hash-partitioning the provenance keyspace
//! over several channels, each with its own ordering pipeline and hosting
//! peer subset. Swept: shard count 1/2/4/8. Reported per cell: aggregate
//! goodput of a metadata-only `post` workload, commit latency per
//! channel, and the cost of the queries that must now scatter-gather or
//! hop across shards (`list`, `get_lineage`).

use hyperprov::{
    ChannelRouter, ChannelSpec, ClientCommand, HashRouter, HyperProvNetwork, NetworkConfig,
    NodeMsg, OpId, OpOutput, RecordInput,
};
use hyperprov_fabric::BatchConfig;
use hyperprov_ledger::Digest;
use hyperprov_sim::{Histogram, SimDuration};

use crate::report::MetricsExporter;
use crate::runner::run_closed_loop;
use crate::table::Table;
use crate::workload::post_cmd;

use super::{mean, Platform};

/// The sharding campaign's artefacts.
#[derive(Debug)]
pub struct ShardingReport {
    /// The scaling table (one row per platform × shard count).
    pub table: Table,
    /// One metrics + trace snapshot per cell.
    pub exporter: MetricsExporter,
}

/// Channel specifications for a `channels`-shard deployment over
/// `n_peers` peers: shard `c` is hosted by the peers with
/// `p % min(channels, n_peers) == c % min(channels, n_peers)`, so peers
/// partition across shards (and each peer hosts `channels / n_peers`
/// shards once there are more shards than peers).
fn shard_specs(channels: usize, n_peers: usize) -> Vec<ChannelSpec> {
    if channels == 1 {
        // Keep the default channel name: a 1-shard deployment is the
        // legacy single-channel layout, byte-identical metrics included.
        return vec![ChannelSpec::new(hyperprov_ledger::DEFAULT_CHANNEL)];
    }
    let groups = channels.min(n_peers);
    (0..channels)
        .map(|c| {
            let hosts: Vec<usize> = (0..n_peers).filter(|p| p % groups == c % groups).collect();
            ChannelSpec::new(format!("{}-{c}", hyperprov_ledger::DEFAULT_CHANNEL)).with_peers(hosts)
        })
        .collect()
}

struct Cell {
    goodput: f64,
    errors: u64,
    commit_mean_ms: f64,
    per_channel_ms: Vec<f64>,
    lineage_ms: f64,
    list_ms: f64,
}

/// Runs one (platform, shard count) cell: a closed-loop metadata-only
/// `post` load phase, then a cross-shard query phase (an 8-deep lineage
/// chain plus full-ledger `list`).
fn run_cell(
    platform: Platform,
    channels: usize,
    clients: usize,
    duration: SimDuration,
    seed: u64,
    exporter: &mut MetricsExporter,
) -> Cell {
    let mut config = match platform {
        Platform::Desktop => NetworkConfig::desktop(clients),
        Platform::Rpi => NetworkConfig::rpi(clients),
    }
    .with_seed(seed)
    .with_batch(BatchConfig {
        timeout: SimDuration::from_millis(100),
        ..BatchConfig::default()
    });
    let n_peers = config.peer_devices.len();
    config = config.with_channel_specs(shard_specs(channels, n_peers));
    // Lineage chains hop shards, and a shard cannot see parents stored on
    // its neighbours — cross-channel parent links need the permissive
    // chaincode (same setting across the sweep, so cells stay comparable).
    config.permissive = true;
    let mut net = HyperProvNetwork::build(&config);

    // Load phase: unique keys, hash-routed across the shards.
    let result = run_closed_loop(
        &mut net,
        duration,
        SimDuration::from_secs(10),
        |client, seq| post_cmd(format!("item-c{client}-s{seq}"), b"shard-bench"),
    );

    let mut errors = 0u64;
    let mut commit = Histogram::new();
    let mut per_channel: Vec<Histogram> = (0..channels).map(|_| Histogram::new()).collect();
    for (_, completion) in &result.completions {
        match &completion.outcome {
            Ok(OpOutput::Committed {
                record: Some(record),
                ..
            }) => {
                let nanos = completion.latency().as_nanos();
                commit.record(nanos);
                per_channel[HashRouter.route(&record.key, channels)].record(nanos);
            }
            Ok(_) => {}
            Err(_) => errors += 1,
        }
    }
    let goodput = commit.count() as f64 / result.span.as_secs_f64();

    // Query phase. First lay down a lineage chain deep enough to hop
    // between shards a few times, one link at a time (children must see
    // committed parents).
    let chain_depth = 8usize;
    for i in 0..chain_depth {
        let parents = if i == 0 {
            vec![]
        } else {
            vec![format!("chain-{}", i - 1)]
        };
        let input = RecordInput::new(Digest::of(b"chain")).with_parents(parents);
        let done = one_op(
            &mut net,
            ClientCommand::Post {
                key: format!("chain-{i}"),
                input,
                op: OpId(0),
            },
        );
        assert!(done.is_some(), "chain link {i} must commit");
    }
    let lineage_ms = mean(
        &(0..4)
            .map(|_| {
                one_op(
                    &mut net,
                    ClientCommand::GetLineage {
                        key: format!("chain-{}", chain_depth - 1),
                        depth: chain_depth as u32,
                        op: OpId(0),
                    },
                )
                .expect("lineage over a committed chain")
            })
            .collect::<Vec<f64>>(),
    );
    let list_ms = mean(
        &(0..4)
            .map(|_| one_op(&mut net, ClientCommand::List { op: OpId(0) }).expect("list succeeds"))
            .collect::<Vec<f64>>(),
    );

    exporter.add_run(
        &format!("platform={} channels={channels}", platform.name()),
        &net.sim,
    );
    Cell {
        goodput,
        errors,
        commit_mean_ms: commit.mean() / 1e6,
        per_channel_ms: per_channel.iter().map(|h| h.mean() / 1e6).collect(),
        lineage_ms,
        list_ms,
    }
}

/// Issues one operation on client 0 and runs until it completes,
/// returning its latency in milliseconds (`None` if it failed).
fn one_op(net: &mut HyperProvNetwork, mut cmd: ClientCommand) -> Option<f64> {
    crate::runner::set_op(&mut cmd, OpId(1));
    let client = net.clients[0];
    net.sim.inject_message(client, NodeMsg::Client(cmd));
    let queue = net.completions[0].clone();
    for _ in 0..10_000 {
        if let Some(completion) = queue.borrow_mut().pop_front() {
            let latency_ms = completion.latency().as_nanos() as f64 / 1e6;
            return completion.outcome.ok().map(|_| latency_ms);
        }
        if net.sim.run_events(64) == 0 {
            let now = net.sim.now();
            net.sim.run_until(now + SimDuration::from_millis(100));
        }
    }
    panic!("operation never completed");
}

/// Runs the shard-count sweep, producing the T-SHARDING table and its
/// metrics export.
pub fn sharding_sweep(quick: bool) -> ShardingReport {
    let (shard_counts, platforms, clients, duration): (Vec<usize>, Vec<Platform>, usize, _) =
        if quick {
            (
                vec![1, 2],
                vec![Platform::Desktop],
                8,
                SimDuration::from_secs(5),
            )
        } else {
            (
                vec![1, 2, 4, 8],
                vec![Platform::Desktop, Platform::Rpi],
                256,
                SimDuration::from_secs(10),
            )
        };

    let mut table = Table::new(
        "T-SHARDING: goodput and query cost vs shard count",
        &[
            "platform",
            "channels",
            "goodput (tx/s)",
            "commit mean (ms)",
            "per-channel commit (ms)",
            "lineage (ms)",
            "list (ms)",
            "errors",
        ],
    );
    let mut exporter = MetricsExporter::new("table_sharding");
    for &platform in &platforms {
        for &channels in &shard_counts {
            let cell = run_cell(platform, channels, clients, duration, 100, &mut exporter);
            table.push_row(vec![
                platform.name().to_owned(),
                channels.to_string(),
                format!("{:.1}", cell.goodput),
                format!("{:.2}", cell.commit_mean_ms),
                cell.per_channel_ms
                    .iter()
                    .map(|ms| format!("{ms:.2}"))
                    .collect::<Vec<_>>()
                    .join("/"),
                format!("{:.2}", cell.lineage_ms),
                format!("{:.2}", cell.list_ms),
                cell.errors.to_string(),
            ]);
        }
    }
    ShardingReport { table, exporter }
}
