//! T-LINEAGE: one-shot DAG-index queries vs the hop-by-hop oracle walk.
//!
//! The materialized provenance graph answers ancestry/closure queries
//! from a per-channel index maintained at commit time, and the sharded
//! client resolves cross-shard traversals with one batched frontier
//! exchange per shard per level instead of one RPC per hop. This
//! campaign quantifies that: over [`crate::workload::deep_dag`] DAGs of
//! swept depth × fan-out, on single- and 4-shard deployments (desktop
//! and RPi), it reports the legacy `get_lineage` oracle walk's p50/p99
//! against the `get_ancestry` index query's, the transitive-closure
//! cost, and the index query's latency while concurrent writers keep
//! committing into the same channels. Full runs also emit the
//! machine-readable `BENCH_lineage.json` trajectory.

use hyperprov::{ClientCommand, HyperProvNetwork, NetworkConfig, NodeMsg, OpId, RecordInput};
use hyperprov_fabric::BatchConfig;
use hyperprov_ledger::Digest;
use hyperprov_sim::{json, SimDuration};

use crate::report::MetricsExporter;
use crate::table::Table;
use crate::workload::{deep_dag, deep_dag_sink};

use super::Platform;

/// The lineage campaign's artefacts.
#[derive(Debug)]
pub struct LineageReport {
    /// The query-cost table (one row per platform × shards × depth ×
    /// fan-out).
    pub table: Table,
    /// One metrics + trace snapshot per cell.
    pub exporter: MetricsExporter,
    /// Machine-readable per-cell quantiles and speedups, written to the
    /// repo-root `BENCH_lineage.json` on full runs.
    pub bench_json: String,
}

struct Cell {
    nodes: usize,
    oracle_p50_ms: f64,
    oracle_p99_ms: f64,
    graph_p50_ms: f64,
    graph_p99_ms: f64,
    closure_ms: f64,
    loaded_graph_p50_ms: f64,
    dangling: u64,
}

/// Channel specifications mirroring the T-SHARDING partitioning: shard
/// `c` hosted by the peers with `p % groups == c % groups`.
fn shard_specs(channels: usize, n_peers: usize) -> Vec<hyperprov::ChannelSpec> {
    if channels == 1 {
        return vec![hyperprov::ChannelSpec::new(
            hyperprov_ledger::DEFAULT_CHANNEL,
        )];
    }
    let groups = channels.min(n_peers);
    (0..channels)
        .map(|c| {
            let hosts: Vec<usize> = (0..n_peers).filter(|p| p % groups == c % groups).collect();
            hyperprov::ChannelSpec::new(format!("{}-{c}", hyperprov_ledger::DEFAULT_CHANNEL))
                .with_peers(hosts)
        })
        .collect()
}

/// Issues one operation on client 0 and runs until it completes,
/// returning its latency in milliseconds (`None` if it failed).
fn one_op(net: &mut HyperProvNetwork, mut cmd: ClientCommand) -> Option<f64> {
    crate::runner::set_op(&mut cmd, OpId(1));
    let client = net.clients[0];
    net.sim.inject_message(client, NodeMsg::Client(cmd));
    let queue = net.completions[0].clone();
    for _ in 0..100_000 {
        if let Some(completion) = queue.borrow_mut().pop_front() {
            let latency_ms = completion.latency().as_nanos() as f64 / 1e6;
            return completion.outcome.ok().map(|_| latency_ms);
        }
        if net.sim.run_events(64) == 0 {
            let now = net.sim.now();
            net.sim.run_until(now + SimDuration::from_millis(100));
        }
    }
    panic!("operation never completed");
}

/// The p-th percentile of a latency sample (nearest-rank).
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    assert!(!samples.is_empty());
    samples.sort_by(f64::total_cmp);
    let rank = ((p * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

/// Runs one (platform, shards, depth, fan-out) cell: commits the deep
/// DAG, then measures the oracle walk, the index queries, and the index
/// query under a concurrent `post` load from the other clients.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    platform: Platform,
    channels: usize,
    depth: u32,
    fan_out: usize,
    clients: usize,
    iters: usize,
    seed: u64,
    exporter: &mut MetricsExporter,
) -> Cell {
    let mut config = match platform {
        Platform::Desktop => NetworkConfig::desktop(clients),
        Platform::Rpi => NetworkConfig::rpi(clients),
    }
    .with_seed(seed)
    .with_batch(BatchConfig {
        timeout: SimDuration::from_millis(100),
        ..BatchConfig::default()
    });
    let n_peers = config.peer_devices.len();
    config = config.with_channel_specs(shard_specs(channels, n_peers));
    // Parent links hop shards, and a shard cannot see its neighbours'
    // state — cross-channel DAGs need the permissive chaincode (used
    // across the whole sweep so the cells stay comparable).
    config.permissive = true;
    let mut net = HyperProvNetwork::build(&config);

    // Commit the DAG one node at a time (children must see committed
    // parents at endorsement time).
    let dag = deep_dag(depth, fan_out);
    for (key, parents) in &dag {
        let input = RecordInput::new(Digest::of(key.as_bytes())).with_parents(parents.clone());
        let done = one_op(
            &mut net,
            ClientCommand::Post {
                key: key.clone(),
                input,
                op: OpId(0),
            },
        );
        assert!(done.is_some(), "DAG node {key} must commit");
    }
    let sink = deep_dag_sink().to_owned();

    // The legacy oracle: hop-by-hop record fetches, one frontier key at
    // a time on sharded layouts.
    let mut oracle: Vec<f64> = (0..iters)
        .map(|_| {
            one_op(
                &mut net,
                ClientCommand::GetLineage {
                    key: sink.clone(),
                    depth,
                    op: OpId(0),
                },
            )
            .expect("oracle walk over a committed DAG")
        })
        .collect();

    // The one-shot index query over the same DAG.
    let mut graph: Vec<f64> = (0..iters)
        .map(|_| {
            one_op(
                &mut net,
                ClientCommand::GetAncestry {
                    key: sink.clone(),
                    depth,
                    op: OpId(0),
                },
            )
            .expect("index ancestry over a committed DAG")
        })
        .collect();

    // Transitive closure from a mid-DAG node: ancestors and descendants
    // in one traversal (crosses shards in both directions).
    let mid = format!("dag-l{}-n0", depth / 2);
    let mut closure: Vec<f64> = (0..iters)
        .map(|_| {
            one_op(
                &mut net,
                ClientCommand::GetClosure {
                    key: mid.clone(),
                    depth,
                    op: OpId(0),
                },
            )
            .expect("closure over a committed DAG")
        })
        .collect();

    // Deep lineage under write load: every other client posts a fresh
    // record right before the query is issued, so ordering, commit and
    // index maintenance run concurrently with the traversal.
    let mut loaded: Vec<f64> = (0..iters)
        .map(|iter| {
            for c in 1..net.clients.len() {
                let key = format!("load-c{c}-i{iter}");
                let input = RecordInput::new(Digest::of(key.as_bytes()));
                net.sim.inject_message(
                    net.clients[c],
                    NodeMsg::Client(ClientCommand::Post {
                        key,
                        input,
                        op: OpId(2),
                    }),
                );
            }
            let ms = one_op(
                &mut net,
                ClientCommand::GetAncestry {
                    key: sink.clone(),
                    depth,
                    op: OpId(0),
                },
            )
            .expect("index ancestry under load");
            for c in 1..net.clients.len() {
                net.completions[c].borrow_mut().clear();
            }
            ms
        })
        .collect();
    // Let the background posts drain before snapshotting metrics.
    let now = net.sim.now();
    net.sim.run_until(now + SimDuration::from_secs(5));
    for c in 1..net.clients.len() {
        net.completions[c].borrow_mut().clear();
    }

    let dangling = net
        .sim
        .metrics()
        .counters()
        .filter(|(name, _)| name.ends_with("dangling_parent"))
        .map(|(_, v)| v)
        .sum();
    exporter.add_run(
        &format!(
            "platform={} channels={channels} depth={depth} fanout={fan_out}",
            platform.name()
        ),
        &net.sim,
    );
    Cell {
        nodes: dag.len(),
        oracle_p50_ms: percentile(&mut oracle, 0.50),
        oracle_p99_ms: percentile(&mut oracle, 0.99),
        graph_p50_ms: percentile(&mut graph, 0.50),
        graph_p99_ms: percentile(&mut graph, 0.99),
        closure_ms: percentile(&mut closure, 0.50),
        loaded_graph_p50_ms: percentile(&mut loaded, 0.50),
        dangling,
    }
}

/// Runs the depth × fan-out × shard sweep, producing the T-LINEAGE
/// table, its metrics export and the `BENCH_lineage.json` body.
pub fn lineage_sweep(quick: bool) -> LineageReport {
    type Cfg = (Vec<Platform>, Vec<usize>, Vec<(u32, usize)>, usize, usize);
    let (platforms, shard_counts, shapes, clients, iters): Cfg = if quick {
        (vec![Platform::Desktop], vec![1, 4], vec![(4, 2)], 2, 3)
    } else {
        (
            vec![Platform::Desktop, Platform::Rpi],
            vec![1, 4],
            vec![(2, 1), (2, 2), (8, 1), (8, 2), (16, 1), (16, 2)],
            4,
            9,
        )
    };

    let mut table = Table::new(
        "T-LINEAGE: DAG-index queries vs the hop-by-hop oracle walk",
        &[
            "platform",
            "shards",
            "depth",
            "fanout",
            "nodes",
            "oracle p50 (ms)",
            "oracle p99 (ms)",
            "graph p50 (ms)",
            "graph p99 (ms)",
            "speedup p50",
            "closure p50 (ms)",
            "loaded graph p50 (ms)",
            "dangling",
        ],
    );
    let mut exporter = MetricsExporter::new("table_lineage");
    let mut rows = Vec::new();
    for &platform in &platforms {
        for &channels in &shard_counts {
            for &(depth, fan_out) in &shapes {
                let cell = run_cell(
                    platform,
                    channels,
                    depth,
                    fan_out,
                    clients,
                    iters,
                    100,
                    &mut exporter,
                );
                let speedup = if cell.graph_p50_ms > 0.0 {
                    cell.oracle_p50_ms / cell.graph_p50_ms
                } else {
                    0.0
                };
                table.push_row(vec![
                    platform.name().to_owned(),
                    channels.to_string(),
                    depth.to_string(),
                    fan_out.to_string(),
                    cell.nodes.to_string(),
                    format!("{:.2}", cell.oracle_p50_ms),
                    format!("{:.2}", cell.oracle_p99_ms),
                    format!("{:.2}", cell.graph_p50_ms),
                    format!("{:.2}", cell.graph_p99_ms),
                    format!("{speedup:.2}x"),
                    format!("{:.2}", cell.closure_ms),
                    format!("{:.2}", cell.loaded_graph_p50_ms),
                    cell.dangling.to_string(),
                ]);
                rows.push(
                    json::Obj::new()
                        .str("platform", platform.name())
                        .u64("shards", channels as u64)
                        .u64("depth", u64::from(depth))
                        .u64("fan_out", fan_out as u64)
                        .u64("nodes", cell.nodes as u64)
                        .f64("oracle_p50_ms", cell.oracle_p50_ms)
                        .f64("oracle_p99_ms", cell.oracle_p99_ms)
                        .f64("graph_p50_ms", cell.graph_p50_ms)
                        .f64("graph_p99_ms", cell.graph_p99_ms)
                        .f64("speedup_p50", speedup)
                        .f64("closure_p50_ms", cell.closure_ms)
                        .f64("loaded_graph_p50_ms", cell.loaded_graph_p50_ms)
                        .build(),
                );
            }
        }
    }
    let bench_json = json::pretty(
        &json::Obj::new()
            .str("campaign", "T-LINEAGE")
            .str(
                "metric",
                "lineage-query latency: DAG-index vs hop-by-hop oracle",
            )
            .raw("cells", &json::array(rows))
            .build(),
    );
    LineageReport {
        table,
        exporter,
        bench_json,
    }
}
