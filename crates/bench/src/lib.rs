//! # hyperprov-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! HyperProv paper (and the thesis-style extended tables). See DESIGN.md
//! §5 for the experiment index and EXPERIMENTS.md for paper-vs-measured
//! results.
//!
//! Binaries (each accepts `--quick`):
//!
//! * `fig1_desktop`, `fig2_rpi` — throughput/response-time vs item size,
//! * `fig3_energy` — RPi power over 10-minute intervals by load level,
//! * `table_batch_sweep`, `table_query_latency`, `table_baselines`,
//!   `table_contention`, `table_overload`, `table_faults`,
//!   `table_sharding` — the extended tables,
//! * `bench_regress` — the CI perf-regression gate over the committed
//!   `BENCH_sim.json` baseline (`--update` regenerates it), and
//! * `run_all` — everything, saving CSVs under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod regress;
pub mod report;
pub mod runner;
pub mod table;
pub mod workload;

pub use report::MetricsExporter;
pub use table::Table;

/// Parses the conventional `--quick` flag from `std::env::args`.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick" || a == "-q")
}
