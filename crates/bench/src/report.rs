//! Observability reporting: per-stage latency breakdowns and the
//! machine-readable metrics export.
//!
//! Every experiment run leaves a [`hyperprov_sim::Tracer`] full of stage
//! spans and a [`hyperprov_sim::Metrics`] registry behind. This module
//! turns them into two artefacts:
//!
//! * a *stage breakdown* [`Table`] (count, mean, p50/p95/p99 per pipeline
//!   stage) answering "where did the time go", and
//! * a [`MetricsExporter`] that serializes counters/gauges/histograms/
//!   series and span summaries to pretty-printed JSON under `results/`.
//!
//! All output is deterministic: stages appear in pipeline order, metric
//! names are sorted, floats use shortest round-trip formatting and no
//! wall-clock data is recorded — two same-seed runs produce byte-identical
//! files.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::PathBuf;

use hyperprov_sim::{json, Histogram, Simulation};

use crate::experiments::results_dir;
use crate::table::Table;

/// Pipeline stages in pipeline order, used to sort breakdown rows.
/// Stages a run never recorded are skipped; stages not listed here sort
/// after these, alphabetically.
const STAGE_ORDER: &[&str] = &[
    "op",
    "offchain.put",
    "offchain.get",
    "offchain.server",
    "queue.wait",
    "endorse",
    "endorse.exec",
    "order.queue",
    "order.deliver",
    "validate",
    "commit.vscc",
    "commit.apply",
    "commit_wait",
    "query",
];

/// Merges a simulation's per-stage span histograms into `into` (keyed by
/// stage name), so breakdowns can aggregate over many runs.
pub fn merge_stages<M>(into: &mut BTreeMap<String, Histogram>, sim: &Simulation<M>) {
    for (stage, hist) in sim.tracer().stage_histograms() {
        into.entry(stage.to_owned()).or_default().merge(hist);
    }
}

/// Renders aggregated stage histograms as a latency breakdown table
/// (milliseconds), rows in pipeline order.
pub fn breakdown_table(title: impl Into<String>, stages: &BTreeMap<String, Histogram>) -> Table {
    let mut table = Table::new(
        title,
        &[
            "stage",
            "spans",
            "mean (ms)",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
        ],
    );
    let rank = |stage: &str| {
        STAGE_ORDER
            .iter()
            .position(|s| *s == stage)
            .unwrap_or(STAGE_ORDER.len())
    };
    let mut names: Vec<&String> = stages.keys().collect();
    names.sort_by_key(|n| (rank(n), n.as_str()));
    for name in names {
        let h = &stages[name];
        table.push_row(vec![
            name.clone(),
            h.count().to_string(),
            format!("{:.3}", h.mean() / 1e6),
            format!("{:.3}", h.quantile(0.50) as f64 / 1e6),
            format!("{:.3}", h.quantile(0.95) as f64 / 1e6),
            format!("{:.3}", h.quantile(0.99) as f64 / 1e6),
        ]);
    }
    table
}

/// Convenience: the breakdown of a single simulation run.
pub fn stage_breakdown<M>(title: impl Into<String>, sim: &Simulation<M>) -> Table {
    let mut stages = BTreeMap::new();
    merge_stages(&mut stages, sim);
    breakdown_table(title, &stages)
}

/// Collects per-run metric and trace snapshots of one experiment and
/// serializes them to `results/<experiment>.metrics.json`.
#[derive(Debug, Clone)]
pub struct MetricsExporter {
    experiment: String,
    runs: Vec<String>,
}

impl MetricsExporter {
    /// Creates an exporter for the named experiment (also the file stem).
    pub fn new(experiment: impl Into<String>) -> Self {
        MetricsExporter {
            experiment: experiment.into(),
            runs: Vec::new(),
        }
    }

    /// Snapshots a finished run's metrics registry, tracer and — when the
    /// deployment installed objectives — SLO monitor under a caller-chosen
    /// label (keep labels deterministic, e.g. `"size=1024 seed=100"` —
    /// they end up in the export verbatim). Runs without SLOs serialize
    /// exactly as before, keeping pre-SLO fixtures byte-identical.
    pub fn add_run<M>(&mut self, label: &str, sim: &Simulation<M>) {
        let mut obj = json::Obj::new()
            .str("label", label)
            .raw("metrics", &sim.metrics().snapshot_json())
            .raw("trace", &sim.tracer().snapshot_json());
        if sim.slo().is_active() {
            obj = obj.raw("slo", &sim.slo().snapshot_json(sim.now()));
        }
        self.runs.push(obj.build());
    }

    /// Number of snapshotted runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True if no runs have been recorded.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Renders the full export as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        json::pretty(
            &json::Obj::new()
                .str("experiment", &self.experiment)
                .raw("runs", &json::array(self.runs.iter().cloned()))
                .build(),
        )
    }

    /// Writes the export under [`results_dir`].
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the directory or file cannot be written.
    pub fn save(&self) -> io::Result<PathBuf> {
        let dir = results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.metrics.json", self.experiment));
        fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// An empty SLO verdict table; fill it with [`push_slo_verdicts`], one
/// call per run.
pub fn slo_verdict_table(title: impl Into<String>) -> Table {
    Table::new(
        title,
        &[
            "run",
            "slo",
            "objective",
            "evaluations",
            "breaches",
            "breach (s)",
            "worst burn",
            "verdict",
        ],
    )
}

/// Appends one verdict row per objective installed on `sim` (no-op for
/// runs without SLOs), labelled with the caller's run name.
pub fn push_slo_verdicts<M>(table: &mut Table, run: &str, sim: &Simulation<M>) {
    for v in sim.slo().verdicts(sim.now()) {
        table.push_row(vec![
            run.to_owned(),
            v.name,
            v.objective,
            v.evaluations.to_string(),
            v.breaches.to_string(),
            format!("{:.1}", v.breach_time.as_secs_f64()),
            format!("{:.2}", v.worst_burn),
            (if v.pass { "pass" } else { "FAIL" }).to_owned(),
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_with_spans() -> Simulation<()> {
        let mut sim: Simulation<()> = Simulation::new(7);
        sim.metrics_mut().incr("tx", 3);
        let tracer = sim.tracer_mut();
        tracer.span_start(hyperprov_sim::SimTime::ZERO, "tx1", "endorse", "");
        tracer.span_end(
            hyperprov_sim::SimTime::from_nanos(2_000_000),
            "tx1",
            "endorse",
            "",
        );
        sim
    }

    #[test]
    fn breakdown_lists_stages_in_pipeline_order() {
        let mut stages = BTreeMap::new();
        let mut h = Histogram::new();
        h.record(1_000_000);
        stages.insert("commit_wait".to_owned(), h.clone());
        stages.insert("endorse".to_owned(), h.clone());
        stages.insert("zz.custom".to_owned(), h);
        let table = breakdown_table("t", &stages);
        assert_eq!(table.cell(0, 0), Some("endorse"));
        assert_eq!(table.cell(1, 0), Some("commit_wait"));
        assert_eq!(table.cell(2, 0), Some("zz.custom"));
        assert_eq!(table.cell_f64(0, 2), Some(1.0));
    }

    #[test]
    fn exporter_is_deterministic() {
        let build = || {
            let sim = sim_with_spans();
            let mut exporter = MetricsExporter::new("unit");
            exporter.add_run("seed=7", &sim);
            exporter.to_json()
        };
        let a = build();
        assert_eq!(a, build());
        assert!(a.contains("\"experiment\": \"unit\""));
        assert!(a.contains("\"tx\": 3"));
        assert!(a.contains("\"endorse\""));
        assert!(!build().is_empty());
    }

    #[test]
    fn slo_section_appears_only_when_objectives_installed() {
        use hyperprov_sim::{SimDuration, SloObjective, SloSpec};

        let plain = sim_with_spans();
        let mut exporter = MetricsExporter::new("unit");
        exporter.add_run("plain", &plain);
        assert!(!exporter.to_json().contains("\"slo\""));

        let mut sim = sim_with_spans();
        sim.set_slos(vec![SloSpec::new(
            "endorse-p95",
            SloObjective::LatencyQuantile {
                source: "endorse".into(),
                q: 0.95,
                budget: SimDuration::from_millis(1),
            },
            SimDuration::from_secs(1),
        )]);
        let mut with_slo = MetricsExporter::new("unit");
        with_slo.add_run("slo", &sim);
        let json = with_slo.to_json();
        assert!(json.contains("\"slo\""));
        assert!(json.contains("\"endorse-p95\""));

        let mut table = slo_verdict_table("t");
        push_slo_verdicts(&mut table, "run-a", &sim);
        assert_eq!(table.len(), 1);
        assert_eq!(table.cell(0, 0), Some("run-a"));
        assert_eq!(table.cell(0, 1), Some("endorse-p95"));
        push_slo_verdicts(&mut table, "no-slos", &plain);
        assert_eq!(table.len(), 1, "runs without SLOs add no rows");
    }

    #[test]
    fn stage_breakdown_reads_the_tracer() {
        let sim = sim_with_spans();
        let table = stage_breakdown("t", &sim);
        assert_eq!(table.len(), 1);
        assert_eq!(table.cell(0, 0), Some("endorse"));
        assert_eq!(table.cell_f64(0, 2), Some(2.0));
    }
}
