//! The CI perf-regression gate: compare a fresh quick BENCH-SIM run
//! against the committed `BENCH_sim.json` baseline.
//!
//! [`run_regress`] reruns the [`crate::experiments::sim_bench`] reference
//! workload in quick mode and diffs its metrics against the repo-root
//! baseline with per-metric tolerances:
//!
//! * **model** metrics (virtual-time completions, goodput, latency
//!   quantiles, kernel event/message counts) are deterministic for the
//!   fixed seed, so they must match within [`MODEL_REL_TOL`] — a drift
//!   means the simulated system's behaviour changed and the baseline must
//!   be regenerated deliberately (`bench_regress --update`);
//! * **host** metrics (wall seconds, events per wall-second, peak RSS)
//!   are machine-dependent, so only loose ratio bounds apply: the gate
//!   fails when the host throughput collapses below `1/`[`HOST_RATIO`]
//!   of the baseline or memory/wall time balloons past [`HOST_RATIO`]×.
//!
//! The gate also structurally validates the committed `BENCH_commit.json`
//! trajectory file (parseable, right campaign, non-empty cells) so a
//! broken regeneration cannot land unnoticed. `ci.sh` runs the
//! `bench_regress` binary in quick mode and fails the build on any
//! out-of-tolerance row.

use std::path::PathBuf;

use hyperprov_sim::json::{parse, Value};

use crate::experiments::{results_dir, scale_campaign, sim_bench_with_scale};
use crate::table::Table;

/// Relative tolerance for deterministic model metrics.
pub const MODEL_REL_TOL: f64 = 0.01;

/// Ratio bound for host metrics: events/sec may not fall below
/// `baseline / HOST_RATIO`; wall time and peak RSS may not exceed
/// `baseline * HOST_RATIO`. Wide on purpose — CI machines differ.
pub const HOST_RATIO: f64 = 20.0;

/// Shape floor on the *committed* BENCH-SIM host profile: the machine
/// that regenerates the baseline must record at least this many events
/// per wall-second — twice what the pre-optimisation kernel managed on
/// the reference workload (108,959 ev/s). A slower baseline means the
/// kernel/storage optimisations regressed; the floor is checked against
/// the committed file, not the current machine, so CI boxes of any speed
/// can still run the comparison gate.
pub const BASELINE_EVENTS_FLOOR: f64 = 217_919.0;

/// Shape ceiling on the committed quick T-SCALE profile's peak RSS: the
/// scale machinery (timer wheel, interned names, flat state backend,
/// lazy schedules) must keep the quick run's footprint modest.
pub const SCALE_RSS_CEILING: f64 = 256.0 * 1024.0 * 1024.0;

/// The gate's outcome: the pass/fail table plus the overall verdict.
#[derive(Debug)]
pub struct RegressOutcome {
    /// One row per compared metric (metric, baseline, fresh, constraint,
    /// status).
    pub table: Table,
    /// True when every comparison passed.
    pub pass: bool,
    /// True when the baseline was (re)written instead of compared.
    pub updated: bool,
}

/// The committed baseline's path (`<repo>/BENCH_sim.json`).
pub fn baseline_path() -> PathBuf {
    results_dir().join("..").join("BENCH_sim.json")
}

/// The committed commit-path trajectory's path
/// (`<repo>/BENCH_commit.json`).
pub fn commit_bench_path() -> PathBuf {
    results_dir().join("..").join("BENCH_commit.json")
}

/// The committed lineage-query trajectory's path
/// (`<repo>/BENCH_lineage.json`).
pub fn lineage_bench_path() -> PathBuf {
    results_dir().join("..").join("BENCH_lineage.json")
}

/// The committed crash-recovery trajectory's path
/// (`<repo>/BENCH_recovery.json`).
pub fn recovery_bench_path() -> PathBuf {
    results_dir().join("..").join("BENCH_recovery.json")
}

/// Maximum allowed spread (max/min) of snapshot-mode recovery cost across
/// the committed chain-length sweep: the "O(1) in chain length" claim.
pub const RECOVERY_FLAT_RATIO: f64 = 2.0;

/// Validates the committed `BENCH_recovery.json` shape: snapshot-mode
/// recovery cost must be flat (within [`RECOVERY_FLAT_RATIO`]) across the
/// chain-length sweep, genesis replay must grow with the chain, and the
/// elastic joiner must have converged. Returns rows via `push_check`.
fn check_recovery_shape(table: &mut Table, doc: &Value) -> bool {
    let mut pass = true;
    let empty: [Value; 0] = [];
    let cells = doc.get("cells").and_then(Value::as_array).unwrap_or(&empty);
    let costs = |on: u64| -> Vec<(f64, f64)> {
        cells
            .iter()
            .filter(|c| c.get("mode").and_then(Value::as_str) == Some("restart"))
            .filter(|c| c.get("snapshots").and_then(Value::as_u64) == Some(on))
            .filter_map(|c| {
                Some((
                    c.get("chain_blocks")?.as_f64()?,
                    c.get("recovery_cost_ms")?.as_f64()?,
                ))
            })
            .collect()
    };

    let on = costs(1);
    let (on_min, on_max) = on
        .iter()
        .fold((f64::INFINITY, 0.0f64), |(lo, hi), &(_, c)| {
            (lo.min(c), hi.max(c))
        });
    let flat_ok = on.len() >= 2 && on_max <= RECOVERY_FLAT_RATIO * on_min;
    pass = push_check(
        table,
        "BENCH_recovery.json snapshot-mode flatness",
        Some(on_min),
        Some(on_max),
        &format!("max <= {RECOVERY_FLAT_RATIO}x min across chain lengths"),
        Some(flat_ok),
    ) && pass;

    let off = costs(0);
    let shortest = off
        .iter()
        .cloned()
        .min_by(|a, b| a.0.total_cmp(&b.0))
        .unwrap_or((0.0, 0.0));
    let longest = off
        .iter()
        .cloned()
        .max_by(|a, b| a.0.total_cmp(&b.0))
        .unwrap_or((0.0, 0.0));
    let linear_ok = off.len() >= 2 && longest.0 > shortest.0 && longest.1 > 2.0 * shortest.1;
    pass = push_check(
        table,
        "BENCH_recovery.json genesis-replay growth",
        Some(shortest.1),
        Some(longest.1),
        "longest chain's replay cost > 2x shortest's",
        Some(linear_ok),
    ) && pass;

    let elastic_ok = cells
        .iter()
        .filter(|c| c.get("mode").and_then(Value::as_str) == Some("elastic"))
        .all(|c| c.get("converged").and_then(Value::as_u64) == Some(1));
    let has_elastic = cells
        .iter()
        .any(|c| c.get("mode").and_then(Value::as_str) == Some("elastic"));
    pass = push_check(
        table,
        "BENCH_recovery.json elastic join",
        None,
        None,
        "elastic cell present and converged",
        Some(has_elastic && elastic_ok),
    ) && pass;
    pass
}

fn fmt_val(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

/// One comparison row; returns whether it passed.
fn push_check(
    table: &mut Table,
    metric: &str,
    baseline: Option<f64>,
    fresh: Option<f64>,
    constraint: &str,
    ok: Option<bool>,
) -> bool {
    let status = match ok {
        Some(true) => "ok",
        Some(false) => "FAIL",
        None => "skipped",
    };
    table.push_row(vec![
        metric.to_owned(),
        baseline.map_or("-".to_owned(), fmt_val),
        fresh.map_or("-".to_owned(), fmt_val),
        constraint.to_owned(),
        status.to_owned(),
    ]);
    ok != Some(false)
}

fn num(doc: &Value, section: &str, key: &str) -> Option<f64> {
    doc.get(section)?.get(key)?.as_f64()
}

fn scale_num(doc: &Value, section: &str, key: &str) -> Option<f64> {
    doc.get("scale")?.get(section)?.get(key)?.as_f64()
}

/// Runs the gate. With `update = true` the fresh quick profile is written
/// to [`baseline_path`] instead of being compared (the row table then
/// documents what was recorded).
pub fn run_regress(update: bool) -> RegressOutcome {
    let mut table = Table::new(
        "bench regress: fresh quick run vs committed BENCH_sim.json",
        &["metric", "baseline", "fresh", "constraint", "status"],
    );
    // The committed profile is the BENCH-SIM reference workload plus the
    // quick T-SCALE run as its `scale` section — one file, one trajectory.
    let scale = scale_campaign(true);
    let fresh_body = sim_bench_with_scale(true, &scale.section_json).bench_json;
    let fresh = parse(&fresh_body).expect("fresh BENCH-SIM profile must be valid JSON");

    if update {
        let path = baseline_path();
        let mut pass = true;
        match std::fs::write(&path, &fresh_body) {
            Ok(()) => {
                if let Some(model) = fresh.get("model").and_then(Value::entries) {
                    for (key, value) in model {
                        push_check(
                            &mut table,
                            &format!("model.{key}"),
                            value.as_f64(),
                            value.as_f64(),
                            "recorded",
                            None,
                        );
                    }
                }
            }
            Err(err) => {
                pass = push_check(
                    &mut table,
                    "baseline write",
                    None,
                    None,
                    &format!("write {}: {err}", path.display()),
                    Some(false),
                ) && pass;
            }
        }
        return RegressOutcome {
            table,
            pass,
            updated: true,
        };
    }

    let mut pass = true;
    let baseline = match std::fs::read_to_string(baseline_path()) {
        Ok(body) => match parse(&body) {
            Ok(doc) => Some(doc),
            Err(err) => {
                pass = push_check(
                    &mut table,
                    "BENCH_sim.json",
                    None,
                    None,
                    &format!("parse: {err}"),
                    Some(false),
                ) && pass;
                None
            }
        },
        Err(err) => {
            pass = push_check(
                &mut table,
                "BENCH_sim.json",
                None,
                None,
                &format!("missing baseline ({err}); run bench_regress --update"),
                Some(false),
            ) && pass;
            None
        }
    };

    if let Some(base) = &baseline {
        // Model metrics: compare every key the baseline recorded, tight
        // relative tolerance in both directions.
        let model_keys: Vec<String> = base
            .get("model")
            .and_then(Value::entries)
            .map(|fields| fields.iter().map(|(k, _)| k.clone()).collect())
            .unwrap_or_default();
        if model_keys.is_empty() {
            pass = push_check(
                &mut table,
                "model",
                None,
                None,
                "baseline has no model section",
                Some(false),
            ) && pass;
        }
        for key in &model_keys {
            let b = num(base, "model", key);
            let f = num(&fresh, "model", key);
            let ok = match (b, f) {
                (Some(b), Some(f)) => {
                    let tol = MODEL_REL_TOL * b.abs().max(1e-9);
                    Some((f - b).abs() <= tol)
                }
                _ => Some(false),
            };
            pass = push_check(
                &mut table,
                &format!("model.{key}"),
                b,
                f,
                &format!("within {:.0}%", MODEL_REL_TOL * 100.0),
                ok,
            ) && pass;
        }

        // Host metrics: loose ratio bounds, and only where the baseline
        // actually recorded a positive value (RSS is unavailable off
        // Linux, wall time can be zero on a skipped run).
        let host_checks: [(&str, bool); 3] = [
            ("events_per_sec", false), // lower bound: baseline / ratio
            ("wall_s", true),          // upper bound: baseline * ratio
            ("peak_rss_bytes", true),
        ];
        for (key, upper) in host_checks {
            let b = num(base, "host", key).filter(|v| *v > 0.0);
            let f = num(&fresh, "host", key);
            let (constraint, ok) = match (b, f) {
                (Some(b), Some(f)) if upper => (
                    format!("<= {:.0}x baseline", HOST_RATIO),
                    Some(f <= b * HOST_RATIO),
                ),
                (Some(b), Some(f)) => (
                    format!(">= baseline/{:.0}", HOST_RATIO),
                    Some(f >= b / HOST_RATIO),
                ),
                _ => ("no baseline value".to_owned(), None),
            };
            pass = push_check(&mut table, &format!("host.{key}"), b, f, &constraint, ok) && pass;
        }

        // T-SCALE section: the same discipline — deterministic model
        // metrics within tight tolerance, host metrics within loose ratio
        // bounds.
        let scale_model_keys: Vec<String> = base
            .get("scale")
            .and_then(|s| s.get("model"))
            .and_then(Value::entries)
            .map(|fields| fields.iter().map(|(k, _)| k.clone()).collect())
            .unwrap_or_default();
        if scale_model_keys.is_empty() {
            pass = push_check(
                &mut table,
                "scale",
                None,
                None,
                "baseline has no scale section; run bench_regress --update",
                Some(false),
            ) && pass;
        }
        for key in &scale_model_keys {
            let b = scale_num(base, "model", key);
            let f = scale_num(&fresh, "model", key);
            let ok = match (b, f) {
                (Some(b), Some(f)) => {
                    let tol = MODEL_REL_TOL * b.abs().max(1e-9);
                    Some((f - b).abs() <= tol)
                }
                _ => Some(false),
            };
            pass = push_check(
                &mut table,
                &format!("scale.model.{key}"),
                b,
                f,
                &format!("within {:.0}%", MODEL_REL_TOL * 100.0),
                ok,
            ) && pass;
        }
        let scale_host_checks: [(&str, bool); 3] = [
            ("events_per_sec", false),
            ("wall_s", true),
            ("peak_rss_bytes", true),
        ];
        for (key, upper) in scale_host_checks {
            let b = scale_num(base, "host", key).filter(|v| *v > 0.0);
            let f = scale_num(&fresh, "host", key);
            let (constraint, ok) = match (b, f) {
                (Some(b), Some(f)) if upper => (
                    format!("<= {:.0}x baseline", HOST_RATIO),
                    Some(f <= b * HOST_RATIO),
                ),
                (Some(b), Some(f)) => (
                    format!(">= baseline/{:.0}", HOST_RATIO),
                    Some(f >= b / HOST_RATIO),
                ),
                _ => ("no baseline value".to_owned(), None),
            };
            pass = push_check(
                &mut table,
                &format!("scale.host.{key}"),
                b,
                f,
                &constraint,
                ok,
            ) && pass;
        }

        // Shape checks on the committed trajectory itself — these gate
        // what `bench_regress --update` is allowed to record, so a
        // regressed kernel or a ballooning scale footprint cannot land as
        // the new normal. (Checked against the committed file, not the
        // current machine, so slow CI boxes can still run the gate.)
        let b_events = num(base, "host", "events_per_sec");
        pass = push_check(
            &mut table,
            "committed host.events_per_sec floor",
            b_events,
            Some(BASELINE_EVENTS_FLOOR),
            ">= 2x the pre-optimisation kernel",
            Some(b_events.is_some_and(|v| v >= BASELINE_EVENTS_FLOOR)),
        ) && pass;
        let b_rss = scale_num(base, "host", "peak_rss_bytes").filter(|v| *v > 0.0);
        pass = push_check(
            &mut table,
            "committed scale.host.peak_rss_bytes ceiling",
            b_rss,
            Some(SCALE_RSS_CEILING),
            "quick scale run stays under the RSS ceiling",
            b_rss.map(|v| v <= SCALE_RSS_CEILING),
        ) && pass;
        let issued = scale_num(base, "model", "issued");
        let ok_n = scale_num(base, "model", "ok");
        let err_n = scale_num(base, "model", "err");
        let complete = match (issued, ok_n, err_n) {
            (Some(i), Some(o), Some(e)) => Some(i > 0.0 && o == i && e == 0.0),
            _ => Some(false),
        };
        pass = push_check(
            &mut table,
            "committed scale completion",
            issued,
            ok_n,
            "every issued scale op completed ok",
            complete,
        ) && pass;
    }

    // Structural checks of the committed campaign trajectory baselines:
    // a broken regeneration must not land unnoticed.
    let trajectories: [(PathBuf, &str, &str); 3] = [
        (commit_bench_path(), "BENCH_commit.json", "T-PIPELINE"),
        (lineage_bench_path(), "BENCH_lineage.json", "T-LINEAGE"),
        (recovery_bench_path(), "BENCH_recovery.json", "T-RECOVERY"),
    ];
    for (path, name, campaign) in trajectories {
        match std::fs::read_to_string(path) {
            Ok(body) => {
                let doc = parse(&body).ok();
                let ok = doc.as_ref().is_some_and(|doc| {
                    doc.get("campaign").and_then(Value::as_str) == Some(campaign)
                        && doc
                            .get("cells")
                            .and_then(Value::as_array)
                            .is_some_and(|cells| !cells.is_empty())
                });
                pass = push_check(
                    &mut table,
                    name,
                    None,
                    None,
                    &format!("parses, campaign {campaign}, non-empty cells"),
                    Some(ok),
                ) && pass;
                // The recovery trajectory additionally asserts its shape:
                // flat snapshot recovery, linear genesis replay, elastic
                // convergence.
                if campaign == "T-RECOVERY" && ok {
                    if let Some(doc) = &doc {
                        pass = check_recovery_shape(&mut table, doc) && pass;
                    }
                }
            }
            Err(_) => {
                pass = push_check(&mut table, name, None, None, "not present", None) && pass;
            }
        }
    }

    RegressOutcome {
        table,
        pass,
        updated: false,
    }
}
