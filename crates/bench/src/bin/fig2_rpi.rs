//! Regenerates Fig. 2: throughput and response times vs data-item size on
//! the Raspberry Pi testbed.

use hyperprov_bench::experiments::{emit, size_sweep, Platform};

fn main() {
    let quick = hyperprov_bench::quick_flag();
    let table = size_sweep(Platform::Rpi, quick);
    emit(&table, "fig2_rpi");
}
