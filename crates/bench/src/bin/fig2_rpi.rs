//! Regenerates Fig. 2: throughput and response times vs data-item size on
//! the Raspberry Pi testbed, plus the per-stage latency breakdown and the
//! JSON metrics export.

use hyperprov_bench::experiments::{
    render_and_save, render_and_save_metrics, size_sweep, Platform,
};

fn main() {
    let quick = hyperprov_bench::quick_flag();
    let report = size_sweep(Platform::Rpi, quick);
    print!("{}", render_and_save(&report.table, "fig2_rpi"));
    print!("{}", render_and_save(&report.breakdown, "fig2_rpi_stages"));
    print!("{}", render_and_save_metrics(&report.exporter));
}
