//! T-PIPELINE: commit-path acceleration (multi-lane VSCC, validate/apply
//! pipelining, verification caches) vs the serial baseline, desktop and
//! RPi testbeds.

fn main() {
    hyperprov_bench::runner::bench_main(&[hyperprov_bench::experiments::pipeline_artefacts]);
}
