//! T-SHARDING: aggregate goodput, per-channel commit latency and
//! cross-shard query cost vs channel (shard) count, desktop and RPi
//! testbeds.

fn main() {
    hyperprov_bench::runner::bench_main(&[hyperprov_bench::experiments::sharding_artefacts]);
}
