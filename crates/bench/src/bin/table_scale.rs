//! T-SCALE: 10,000 open-loop clients over 1,000,000 unique keys —
//! targeted commit events, flat state backend and a lazily generated
//! schedule; reports modelled goodput plus host events/sec and peak RSS.

fn main() {
    hyperprov_bench::runner::bench_main(&[hyperprov_bench::experiments::scale_artefacts]);
}
