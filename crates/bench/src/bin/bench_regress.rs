//! The CI perf-regression gate: reruns the quick BENCH-SIM reference
//! workload and diffs it against the committed `BENCH_sim.json` baseline
//! (tight tolerances for deterministic model metrics, loose ratio bounds
//! for host wall-clock numbers). Exits non-zero on any out-of-tolerance
//! metric. `--update` regenerates the baseline instead of comparing.

fn main() {
    let update = std::env::args().any(|a| a == "--update");
    let outcome = hyperprov_bench::regress::run_regress(update);
    print!("{}", outcome.table);
    if outcome.updated {
        println!(
            "[updated {}]",
            hyperprov_bench::regress::baseline_path().display()
        );
    }
    if outcome.pass {
        println!("bench regress: PASS");
    } else {
        println!("bench regress: FAIL (a metric moved beyond tolerance)");
        std::process::exit(1);
    }
}
