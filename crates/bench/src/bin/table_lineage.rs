//! T-LINEAGE: DAG-index ancestry/closure query cost vs the hop-by-hop
//! oracle walk, over deep multi-parent DAGs on single- and 4-shard
//! deployments, desktop and RPi testbeds.

fn main() {
    hyperprov_bench::runner::bench_main(&[hyperprov_bench::experiments::lineage_artefacts]);
}
