//! T-TPUT: throughput vs orderer batch size.

use hyperprov_bench::experiments::{batch_sweep, render_and_save};

fn main() {
    let quick = hyperprov_bench::quick_flag();
    let table = batch_sweep(quick);
    print!("{}", render_and_save(&table, "table_batch_sweep"));
}
