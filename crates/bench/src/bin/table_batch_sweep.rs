//! T-TPUT: throughput vs orderer batch size.

use hyperprov_bench::experiments::{batch_sweep, emit};

fn main() {
    let quick = hyperprov_bench::quick_flag();
    let table = batch_sweep(quick);
    emit(&table, "table_batch_sweep");
}
