//! T-TPUT: throughput vs orderer batch size.

fn main() {
    hyperprov_bench::runner::bench_main(&[hyperprov_bench::experiments::batch_sweep_artefacts]);
}
