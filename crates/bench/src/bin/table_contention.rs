//! T-MVCC: MVCC invalidation under key contention.

use hyperprov_bench::experiments::{contention_sweep, emit};

fn main() {
    let quick = hyperprov_bench::quick_flag();
    let table = contention_sweep(quick);
    emit(&table, "table_contention");
}
