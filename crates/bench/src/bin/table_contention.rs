//! T-MVCC: MVCC invalidation under key contention.

fn main() {
    hyperprov_bench::runner::bench_main(&[hyperprov_bench::experiments::contention_artefacts]);
}
