//! T-MVCC: MVCC invalidation under key contention.

use hyperprov_bench::experiments::{contention_sweep, render_and_save};

fn main() {
    let quick = hyperprov_bench::quick_flag();
    let table = contention_sweep(quick);
    print!("{}", render_and_save(&table, "table_contention"));
}
