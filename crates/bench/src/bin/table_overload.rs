//! T-OVERLOAD: goodput, drop/nack rate and p99 queue wait past
//! saturation, desktop and RPi testbeds.

fn main() {
    hyperprov_bench::runner::bench_main(&[hyperprov_bench::experiments::overload_artefacts]);
}
