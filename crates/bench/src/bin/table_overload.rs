//! T-OVERLOAD: goodput, drop/nack rate and p99 queue wait past
//! saturation, desktop and RPi testbeds.

use hyperprov_bench::experiments::{overload_sweep, render_and_save, render_and_save_metrics};

fn main() {
    let quick = hyperprov_bench::quick_flag();
    let report = overload_sweep(quick);
    print!("{}", render_and_save(&report.table, "table_overload"));
    print!(
        "{}",
        render_and_save(&report.breakdown, "table_overload_stages")
    );
    print!("{}", render_and_save_metrics(&report.exporter));
}
