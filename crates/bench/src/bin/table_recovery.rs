//! T-RECOVERY: crash recovery cost at deep chains with and without
//! Merkle-rooted state snapshots, plus the elastic-membership scenario
//! (a spare peer joining a live network via snapshot catch-up).

fn main() {
    hyperprov_bench::runner::bench_main(&[hyperprov_bench::experiments::recovery_artefacts]);
}
