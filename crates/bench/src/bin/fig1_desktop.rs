//! Regenerates Fig. 1: throughput and response times vs data-item size on
//! the desktop testbed, plus the per-stage latency breakdown and the JSON
//! metrics export.

fn main() {
    hyperprov_bench::runner::bench_main(&[hyperprov_bench::experiments::fig1_artefacts]);
}
