//! Regenerates Fig. 1: throughput and response times vs data-item size on
//! the desktop testbed, plus the per-stage latency breakdown and the JSON
//! metrics export.

use hyperprov_bench::experiments::{
    render_and_save, render_and_save_metrics, size_sweep, Platform,
};

fn main() {
    let quick = hyperprov_bench::quick_flag();
    let report = size_sweep(Platform::Desktop, quick);
    print!("{}", render_and_save(&report.table, "fig1_desktop"));
    print!(
        "{}",
        render_and_save(&report.breakdown, "fig1_desktop_stages")
    );
    print!("{}", render_and_save_metrics(&report.exporter));
}
