//! Regenerates Fig. 1: throughput and response times vs data-item size on
//! the desktop testbed.

use hyperprov_bench::experiments::{emit, size_sweep, Platform};

fn main() {
    let quick = hyperprov_bench::quick_flag();
    let table = size_sweep(Platform::Desktop, quick);
    emit(&table, "fig1_desktop");
}
