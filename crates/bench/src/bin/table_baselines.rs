//! T-BASE: HyperProv vs on-chain data vs ProvChain-like PoW.

use hyperprov_bench::experiments::{baseline_comparison, render_and_save};

fn main() {
    let quick = hyperprov_bench::quick_flag();
    let table = baseline_comparison(quick);
    print!("{}", render_and_save(&table, "table_baselines"));
}
