//! T-BASE: HyperProv vs on-chain data vs ProvChain-like PoW.

use hyperprov_bench::experiments::{baseline_comparison, emit};

fn main() {
    let quick = hyperprov_bench::quick_flag();
    let table = baseline_comparison(quick);
    emit(&table, "table_baselines");
}
