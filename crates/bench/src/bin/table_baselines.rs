//! T-BASE: HyperProv vs on-chain data vs ProvChain-like PoW.

fn main() {
    hyperprov_bench::runner::bench_main(&[hyperprov_bench::experiments::baselines_artefacts]);
}
