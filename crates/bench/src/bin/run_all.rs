//! Runs every figure and table, saving CSVs under `results/`.

use hyperprov_bench::experiments::{
    baseline_comparison, batch_sweep, contention_sweep, emit, energy_profile, query_latency,
    size_sweep, Platform,
};

fn main() {
    let quick = hyperprov_bench::quick_flag();
    emit(&size_sweep(Platform::Desktop, quick), "fig1_desktop");
    emit(&size_sweep(Platform::Rpi, quick), "fig2_rpi");
    emit(&energy_profile(quick), "fig3_energy");
    emit(&batch_sweep(quick), "table_batch_sweep");
    emit(&query_latency(quick), "table_query_latency");
    emit(&baseline_comparison(quick), "table_baselines");
    emit(&contention_sweep(quick), "table_contention");
}
