//! Runs every figure and table, saving CSVs and metrics JSON under
//! `results/`.

fn main() {
    hyperprov_bench::runner::bench_main(hyperprov_bench::experiments::ALL_CAMPAIGNS);
}
