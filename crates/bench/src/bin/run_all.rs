//! Runs every figure and table, saving CSVs and metrics JSON under
//! `results/`.

use hyperprov_bench::experiments::{
    baseline_comparison, batch_sweep, contention_sweep, energy_profile, fault_campaign,
    overload_sweep, query_latency, render_and_save, render_and_save_metrics, size_sweep, Platform,
};

fn main() {
    let quick = hyperprov_bench::quick_flag();

    let fig1 = size_sweep(Platform::Desktop, quick);
    print!("{}", render_and_save(&fig1.table, "fig1_desktop"));
    print!(
        "{}",
        render_and_save(&fig1.breakdown, "fig1_desktop_stages")
    );
    print!("{}", render_and_save_metrics(&fig1.exporter));

    let fig2 = size_sweep(Platform::Rpi, quick);
    print!("{}", render_and_save(&fig2.table, "fig2_rpi"));
    print!("{}", render_and_save(&fig2.breakdown, "fig2_rpi_stages"));
    print!("{}", render_and_save_metrics(&fig2.exporter));

    print!("{}", render_and_save(&energy_profile(quick), "fig3_energy"));
    print!(
        "{}",
        render_and_save(&batch_sweep(quick), "table_batch_sweep")
    );
    print!(
        "{}",
        render_and_save(&query_latency(quick), "table_query_latency")
    );
    print!(
        "{}",
        render_and_save(&baseline_comparison(quick), "table_baselines")
    );
    print!(
        "{}",
        render_and_save(&contention_sweep(quick), "table_contention")
    );

    let overload = overload_sweep(quick);
    print!("{}", render_and_save(&overload.table, "table_overload"));
    print!(
        "{}",
        render_and_save(&overload.breakdown, "table_overload_stages")
    );
    print!("{}", render_and_save_metrics(&overload.exporter));

    let faults = fault_campaign(quick);
    print!("{}", render_and_save(&faults.table, "table_faults"));
    print!(
        "{}",
        render_and_save(&faults.timeline, "table_faults_timeline")
    );
    print!("{}", render_and_save_metrics(&faults.exporter));
}
