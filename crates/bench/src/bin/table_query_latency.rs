//! T-QUERY: query latency by client operator.

use hyperprov_bench::experiments::{query_latency, render_and_save};

fn main() {
    let quick = hyperprov_bench::quick_flag();
    let table = query_latency(quick);
    print!("{}", render_and_save(&table, "table_query_latency"));
}
