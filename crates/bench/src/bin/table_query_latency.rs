//! T-QUERY: query latency by client operator.

use hyperprov_bench::experiments::{emit, query_latency};

fn main() {
    let quick = hyperprov_bench::quick_flag();
    let table = query_latency(quick);
    emit(&table, "table_query_latency");
}
