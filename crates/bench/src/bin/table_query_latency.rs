//! T-QUERY: query latency by client operator.

fn main() {
    hyperprov_bench::runner::bench_main(&[hyperprov_bench::experiments::query_latency_artefacts]);
}
