//! T-FAULTS: goodput under injected faults (peer crash, Raft leader
//! kill, partition/heal), with recovery timelines, desktop and RPi
//! testbeds.

fn main() {
    hyperprov_bench::runner::bench_main(&[hyperprov_bench::experiments::faults_artefacts]);
}
