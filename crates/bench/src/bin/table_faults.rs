//! T-FAULTS: goodput under injected faults (peer crash, Raft leader
//! kill, partition/heal), with recovery timelines, desktop and RPi
//! testbeds.

use hyperprov_bench::experiments::{fault_campaign, render_and_save, render_and_save_metrics};

fn main() {
    let quick = hyperprov_bench::quick_flag();
    let report = fault_campaign(quick);
    print!("{}", render_and_save(&report.table, "table_faults"));
    print!(
        "{}",
        render_and_save(&report.timeline, "table_faults_timeline")
    );
    print!("{}", render_and_save_metrics(&report.exporter));
}
