//! Regenerates Fig. 3: energy consumption on RPi over 10-minute intervals
//! at increasing load levels.

use hyperprov_bench::experiments::{emit, energy_profile};

fn main() {
    let quick = hyperprov_bench::quick_flag();
    let table = energy_profile(quick);
    emit(&table, "fig3_energy");
}
