//! Regenerates Fig. 3: energy consumption on RPi over 10-minute intervals
//! at increasing load levels.

fn main() {
    hyperprov_bench::runner::bench_main(&[hyperprov_bench::experiments::fig3_artefacts]);
}
