//! Regenerates Fig. 3: energy consumption on RPi over 10-minute intervals
//! at increasing load levels.

use hyperprov_bench::experiments::{energy_profile, render_and_save};

fn main() {
    let quick = hyperprov_bench::quick_flag();
    let table = energy_profile(quick);
    print!("{}", render_and_save(&table, "fig3_energy"));
}
