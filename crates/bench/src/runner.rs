//! Workload drivers: closed-loop and open-loop harnesses over a built
//! network, plus latency/throughput summarisation.
//!
//! The paper's "custom benchmarking program" corresponds to
//! [`run_closed_loop`] (clients issue the next operation as soon as the
//! previous completes) and [`run_open_loop`] (operations arrive on a fixed
//! schedule regardless of completions — used for the energy load levels
//! and the contention sweep).

use hyperprov::{ClientCommand, ClientCompletion, CompletionQueue, NodeMsg, OpId};
use hyperprov_baseline::OnChainNetwork;
use hyperprov_sim::{ActorId, Histogram, SimDuration, SimTime, Simulation};

use crate::experiments::{render_and_save, render_and_save_metrics, render_and_save_raw};
use crate::report::MetricsExporter;
use crate::table::Table;

/// One savable output of a benchmark campaign: a named table (rendered
/// and saved as `<name>.csv` under `results/`) or a metrics-JSON export
/// (named by the exporter itself).
#[derive(Debug)]
pub enum Artefact {
    /// A table plus its CSV base name.
    Table {
        /// The rendered table.
        table: Table,
        /// CSV base name under `results/`.
        name: &'static str,
    },
    /// A metrics/trace JSON export.
    Metrics(MetricsExporter),
    /// A pre-serialized document saved verbatim (e.g. a Chrome/Perfetto
    /// `*.trace.json`).
    Raw {
        /// The document body, written as-is.
        body: String,
        /// Full file name under `results/` (including extension).
        name: &'static str,
    },
}

impl Artefact {
    /// A table artefact.
    pub fn table(table: Table, name: &'static str) -> Artefact {
        Artefact::Table { table, name }
    }

    /// A metrics-export artefact.
    pub fn metrics(exporter: MetricsExporter) -> Artefact {
        Artefact::Metrics(exporter)
    }

    /// A raw-document artefact (saved byte-for-byte under `results/`).
    pub fn raw(body: String, name: &'static str) -> Artefact {
        Artefact::Raw { body, name }
    }

    /// Saves the artefact under `results/` and renders it (plus a
    /// save-status line) for the calling binary to print.
    #[must_use = "the rendered report must be printed by the calling binary"]
    pub fn render_and_save(&self) -> String {
        match self {
            Artefact::Table { table, name } => render_and_save(table, name),
            Artefact::Metrics(exporter) => render_and_save_metrics(exporter),
            Artefact::Raw { body, name } => render_and_save_raw(body, name),
        }
    }
}

/// The shared `main` of every benchmark binary: parses `--quick` from the
/// process arguments, runs each campaign in order and prints/saves its
/// artefacts as soon as it finishes.
pub fn bench_main(campaigns: &[fn(bool) -> Vec<Artefact>]) {
    let quick = crate::quick_flag();
    for campaign in campaigns {
        for artefact in campaign(quick) {
            print!("{}", artefact.render_and_save());
        }
    }
}

/// Networks the drivers can operate: anything exposing a simulation,
/// client actors and their completion queues.
pub trait Driveable {
    /// The simulation.
    fn sim_mut(&mut self) -> &mut Simulation<NodeMsg>;
    /// Read access to the simulation.
    fn sim(&self) -> &Simulation<NodeMsg>;
    /// Number of clients.
    fn n_clients(&self) -> usize;
    /// Client `i`'s actor id.
    fn client(&self, i: usize) -> ActorId;
    /// Client `i`'s completion queue (shared handle).
    fn completions(&self, i: usize) -> CompletionQueue;
}

impl Driveable for hyperprov::HyperProvNetwork {
    fn sim_mut(&mut self) -> &mut Simulation<NodeMsg> {
        &mut self.sim
    }
    fn sim(&self) -> &Simulation<NodeMsg> {
        &self.sim
    }
    fn n_clients(&self) -> usize {
        self.clients.len()
    }
    fn client(&self, i: usize) -> ActorId {
        self.clients[i]
    }
    fn completions(&self, i: usize) -> CompletionQueue {
        self.completions[i].clone()
    }
}

impl Driveable for OnChainNetwork {
    fn sim_mut(&mut self) -> &mut Simulation<NodeMsg> {
        &mut self.sim
    }
    fn sim(&self) -> &Simulation<NodeMsg> {
        &self.sim
    }
    fn n_clients(&self) -> usize {
        self.clients.len()
    }
    fn client(&self, i: usize) -> ActorId {
        self.clients[i]
    }
    fn completions(&self, i: usize) -> CompletionQueue {
        self.completions[i].clone()
    }
}

/// Rewrites the operation id inside a command (the drivers own id
/// assignment).
pub fn set_op(cmd: &mut ClientCommand, new: OpId) {
    match cmd {
        ClientCommand::Post { op, .. }
        | ClientCommand::StoreData { op, .. }
        | ClientCommand::Get { op, .. }
        | ClientCommand::GetData { op, .. }
        | ClientCommand::CheckData { op, .. }
        | ClientCommand::GetHistory { op, .. }
        | ClientCommand::GetKeysByChecksum { op, .. }
        | ClientCommand::GetLineage { op, .. }
        | ClientCommand::GetAncestry { op, .. }
        | ClientCommand::GetDescendants { op, .. }
        | ClientCommand::GetClosure { op, .. }
        | ClientCommand::GetSubgraph { op, .. }
        | ClientCommand::Delete { op, .. }
        | ClientCommand::List { op } => *op = new,
    }
}

/// The outcome of a driver run.
#[derive(Debug)]
pub struct RunResult {
    /// `(client, completion)` pairs in completion order.
    pub completions: Vec<(usize, ClientCompletion)>,
    /// The measured span (excluding drain).
    pub span: SimDuration,
    /// Operations issued; `issued - completions.len()` operations were
    /// still hanging when the run stopped.
    pub issued: u64,
}

fn drain<N: Driveable>(net: &mut N, out: &mut Vec<(usize, ClientCompletion)>) -> Vec<usize> {
    let mut finished_clients = Vec::new();
    for c in 0..net.n_clients() {
        let queue = net.completions(c);
        let mut queue = queue.borrow_mut();
        while let Some(completion) = queue.pop_front() {
            out.push((c, completion));
            finished_clients.push(c);
        }
    }
    finished_clients
}

/// Runs a closed loop: every client keeps exactly one operation in
/// flight; `factory(client, seq)` builds each next command (its op id is
/// overwritten). Operations are issued until `duration` elapses; the run
/// then drains for up to `grace`.
pub fn run_closed_loop<N: Driveable>(
    net: &mut N,
    duration: SimDuration,
    grace: SimDuration,
    mut factory: impl FnMut(usize, u64) -> ClientCommand,
) -> RunResult {
    let start = net.sim().now();
    let end = start + duration;
    let hard_stop = end + grace;
    let n = net.n_clients();
    let mut seq = vec![0u64; n];
    let mut inflight = vec![false; n];
    let mut next_op = 0u64;
    let mut completions = Vec::new();

    let mut issue = |net: &mut N, c: usize, seq: &mut [u64], next_op: &mut u64| {
        let mut cmd = factory(c, seq[c]);
        seq[c] += 1;
        *next_op += 1;
        set_op(&mut cmd, OpId(*next_op));
        let target = net.client(c);
        net.sim_mut().inject_message(target, NodeMsg::Client(cmd));
    };

    for (c, busy) in inflight.iter_mut().enumerate() {
        issue(net, c, &mut seq, &mut next_op);
        *busy = true;
    }

    loop {
        let now = net.sim().now();
        if now >= hard_stop {
            break;
        }
        let progressed = net.sim_mut().run_events(1) > 0;
        for c in drain(net, &mut completions) {
            inflight[c] = false;
            if net.sim().now() < end {
                issue(net, c, &mut seq, &mut next_op);
                inflight[c] = true;
            }
        }
        if !progressed {
            if !inflight.iter().any(|&b| b) {
                break;
            }
            // Only future timers remain: jump ahead.
            let now = net.sim().now();
            net.sim_mut().run_until(now + SimDuration::from_millis(100));
        }
    }
    RunResult {
        issued: next_op,
        completions,
        span: duration,
    }
}

/// Runs a closed loop bounded by an *operation count* instead of a time
/// span: exactly `total_ops` operations are issued (one in flight per
/// client) and the run ends when all have completed. Used to preload
/// ledgers.
pub fn run_closed_loop_counted<N: Driveable>(
    net: &mut N,
    total_ops: u64,
    mut factory: impl FnMut(usize, u64) -> ClientCommand,
) -> RunResult {
    let start = net.sim().now();
    let n = net.n_clients();
    let mut issued = 0u64;
    let mut next_op = 0u64;
    let mut completions = Vec::new();

    let mut issue = |net: &mut N, c: usize, issued: &mut u64, next_op: &mut u64| {
        let mut cmd = factory(c, *issued);
        *issued += 1;
        *next_op += 1;
        set_op(&mut cmd, OpId(*next_op));
        let target = net.client(c);
        net.sim_mut().inject_message(target, NodeMsg::Client(cmd));
    };

    let mut outstanding = 0u64;
    for c in 0..n {
        if issued < total_ops {
            issue(net, c, &mut issued, &mut next_op);
            outstanding += 1;
        }
    }
    while outstanding > 0 {
        let progressed = net.sim_mut().run_events(1) > 0;
        for c in drain(net, &mut completions) {
            outstanding -= 1;
            if issued < total_ops {
                issue(net, c, &mut issued, &mut next_op);
                outstanding += 1;
            }
        }
        if !progressed && outstanding > 0 {
            let now = net.sim().now();
            net.sim_mut().run_until(now + SimDuration::from_millis(100));
        }
    }
    RunResult {
        span: net.sim().now().saturating_duration_since(start),
        completions,
        issued,
    }
}

/// Runs an open loop: commands are injected at scheduled instants
/// regardless of completions, then the network drains for `drain_for`.
///
/// The schedule must be sorted by time.
pub fn run_open_loop<N: Driveable>(
    net: &mut N,
    schedule: Vec<(SimTime, usize, ClientCommand)>,
    drain_for: SimDuration,
) -> RunResult {
    let start = net.sim().now();
    let mut completions = Vec::new();
    let mut next_op = 0u64;
    let mut last = start;
    for (at, client, mut cmd) in schedule {
        debug_assert!(at >= last, "schedule must be sorted");
        // Step to the arrival instant, draining as we go.
        while net.sim().now() < at {
            let limit_hit = {
                let sim = net.sim_mut();
                if sim.run_events(1) == 0 {
                    let now = sim.now();
                    sim.run_until((now + SimDuration::from_millis(100)).min(at));
                    sim.now() >= at
                } else {
                    false
                }
            };
            drain(net, &mut completions);
            if limit_hit {
                break;
            }
        }
        if net.sim().now() < at {
            net.sim_mut().run_until(at);
        }
        next_op += 1;
        set_op(&mut cmd, OpId(next_op));
        let target = net.client(client);
        net.sim_mut().inject_message(target, NodeMsg::Client(cmd));
        last = at;
    }
    let deadline = last + drain_for;
    while net.sim().now() < deadline {
        if net.sim_mut().run_events(64) == 0 {
            let now = net.sim().now();
            net.sim_mut()
                .run_until((now + SimDuration::from_millis(100)).min(deadline));
        }
        drain(net, &mut completions);
    }
    drain(net, &mut completions);
    RunResult {
        completions,
        span: last.saturating_duration_since(start),
        issued: next_op,
    }
}

/// Runs an open loop with lazily built commands — the large-scale
/// variant of [`run_open_loop`]. `arrivals` gives the issue instants and
/// issuing clients (sorted by time); `factory(client, index)` builds each
/// command only when its instant is reached, so a million-operation
/// schedule never materialises in memory. After the last arrival the
/// network drains until every issued operation has completed, bounded by
/// `drain_cap` of virtual time.
///
/// Completion queues are emptied in batches (not per event): with tens of
/// thousands of clients a per-event drain would dominate host time.
pub fn run_open_loop_lazy<N: Driveable>(
    net: &mut N,
    arrivals: &[(SimTime, usize)],
    drain_cap: SimDuration,
    mut factory: impl FnMut(usize, u64) -> ClientCommand,
) -> RunResult {
    const DRAIN_EVERY: usize = 4096;
    let start = net.sim().now();
    let mut completions = Vec::new();
    let mut next_op = 0u64;
    let mut last = start;
    for (index, &(at, client)) in arrivals.iter().enumerate() {
        debug_assert!(at >= last, "schedule must be sorted");
        net.sim_mut().run_until(at);
        let mut cmd = factory(client, index as u64);
        next_op += 1;
        set_op(&mut cmd, OpId(next_op));
        let target = net.client(client);
        net.sim_mut().inject_message(target, NodeMsg::Client(cmd));
        last = at;
        if index % DRAIN_EVERY == DRAIN_EVERY - 1 {
            drain(net, &mut completions);
        }
    }
    let deadline = last + drain_cap;
    while (completions.len() as u64) < next_op && net.sim().now() < deadline {
        let chunk = net.sim().now() + SimDuration::from_millis(500);
        net.sim_mut().run_until(chunk.min(deadline));
        drain(net, &mut completions);
    }
    drain(net, &mut completions);
    RunResult {
        completions,
        span: last.saturating_duration_since(start),
        issued: next_op,
    }
}

/// Aggregate statistics of a run.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Completed operations (success + failure).
    pub count: u64,
    /// Successful operations.
    pub ok: u64,
    /// Failed operations (rejections, invalidations, integrity errors).
    pub err: u64,
    /// Successful operations per second of measured span.
    pub throughput: f64,
    /// Latency statistics over successful operations (nanoseconds).
    pub latency: Histogram,
}

impl Summary {
    /// Builds a summary from completions over a measured span.
    pub fn of(completions: &[(usize, ClientCompletion)], span: SimDuration) -> Summary {
        let mut latency = Histogram::new();
        let mut ok = 0;
        let mut err = 0;
        for (_, completion) in completions {
            if completion.outcome.is_ok() {
                ok += 1;
                latency.record(completion.latency().as_nanos());
            } else {
                err += 1;
            }
        }
        let secs = span.as_secs_f64();
        Summary {
            count: ok + err,
            ok,
            err,
            throughput: if secs > 0.0 { ok as f64 / secs } else { 0.0 },
            latency,
        }
    }

    /// Mean latency in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        self.latency.mean() / 1e6
    }

    /// A latency quantile in milliseconds.
    pub fn latency_ms(&self, q: f64) -> f64 {
        self.latency.quantile(q) as f64 / 1e6
    }

    /// Latency standard deviation in milliseconds.
    pub fn stddev_latency_ms(&self) -> f64 {
        self.latency.stddev() / 1e6
    }
}
