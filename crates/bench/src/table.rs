//! Plain-text and CSV rendering for experiment results.

use std::fmt;
use std::fs;
use std::path::Path;

/// A rectangular results table with a title and column headers.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the headers.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width mismatch in table {:?}",
            self.title
        );
        self.rows.push(row);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// A cell by (row, column), if present.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .map(String::as_str)
    }

    /// A numeric cell parsed as f64 (commas stripped).
    pub fn cell_f64(&self, row: usize, col: usize) -> Option<f64> {
        self.cell(row, col)?.replace(',', "").parse().ok()
    }

    /// Renders CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV next to a `results/` directory under `dir`.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the directory or file cannot be written.
    pub fn save_csv(&self, dir: &Path, name: &str) -> std::io::Result<std::path::PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut parts = Vec::with_capacity(cells.len());
            for (i, cell) in cells.iter().enumerate() {
                parts.push(format!("{:>width$}", cell, width = widths[i]));
            }
            writeln!(f, "| {} |", parts.join(" | "))
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + widths.len() * 3 + 1;
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats a byte count with a binary-unit suffix.
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["size", "tput"]);
        t.push_row(vec!["1 KiB".into(), "120.5".into()]);
        t.push_row(vec!["1 MiB".into(), "4.2".into()]);
        t
    }

    #[test]
    fn display_aligns_columns() {
        let rendered = sample().to_string();
        assert!(rendered.contains("== demo =="));
        assert!(rendered.contains("1 KiB"));
        assert!(rendered.lines().count() >= 5);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1,5".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,5\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn cell_accessors() {
        let t = sample();
        assert_eq!(t.cell(0, 0), Some("1 KiB"));
        assert_eq!(t.cell_f64(1, 1), Some(4.2));
        assert_eq!(t.cell(5, 0), None);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(16 * 1024 * 1024), "16.0 MiB");
    }

    #[test]
    fn save_csv_writes_file() {
        let dir = std::env::temp_dir().join(format!("hyperprov-table-{}", std::process::id()));
        let path = sample().save_csv(&dir, "demo").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("size,tput"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
