//! Workload generation: payloads, arrival processes and key choosers.

use hyperprov::ClientCommand;
use hyperprov_sim::{DetRng, SimDuration, SimTime};
use rand::Rng;

/// Deterministic pseudo-random payload of `size` bytes.
pub fn payload(rng: &mut DetRng, size: usize) -> Vec<u8> {
    let mut data = vec![0u8; size];
    rng.fill_bytes_compat(&mut data);
    data
}

/// Extension shim so callers do not need the `RngCore` trait in scope.
trait FillBytes {
    fn fill_bytes_compat(&mut self, dest: &mut [u8]);
}
impl FillBytes for DetRng {
    fn fill_bytes_compat(&mut self, dest: &mut [u8]) {
        rand::RngCore::fill_bytes(self, dest);
    }
}

/// A Poisson arrival schedule: `rate` events/second over `duration`,
/// round-robined across `clients`.
pub fn poisson_arrivals(
    rng: &mut DetRng,
    rate: f64,
    duration: SimDuration,
    clients: usize,
) -> Vec<(SimTime, usize)> {
    assert!(clients > 0, "need at least one client");
    let mut out = Vec::new();
    if rate <= 0.0 {
        return out;
    }
    let mut t = SimTime::ZERO;
    let mut i = 0usize;
    loop {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let gap = SimDuration::from_secs_f64(-u.ln() / rate);
        t += gap;
        if t.as_nanos() > duration.as_nanos() {
            return out;
        }
        out.push((t, i % clients));
        i += 1;
    }
}

/// A uniform (fixed-interval) arrival schedule.
pub fn uniform_arrivals(rate: f64, duration: SimDuration, clients: usize) -> Vec<(SimTime, usize)> {
    assert!(clients > 0, "need at least one client");
    let mut out = Vec::new();
    if rate <= 0.0 {
        return out;
    }
    let gap = SimDuration::from_secs_f64(1.0 / rate);
    let mut t = SimTime::ZERO + gap;
    let mut i = 0usize;
    while t.as_nanos() <= duration.as_nanos() {
        out.push((t, i % clients));
        i += 1;
        t += gap;
    }
    out
}

/// Chooses keys with a *hot fraction*: with probability `hot_fraction` the
/// single hot key, otherwise a fresh unique key.
#[derive(Debug)]
pub struct KeyChooser {
    hot_fraction: f64,
    counter: u64,
    rng: DetRng,
}

impl KeyChooser {
    /// Creates a chooser; `hot_fraction` in `[0, 1]`.
    pub fn new(hot_fraction: f64, rng: DetRng) -> Self {
        KeyChooser {
            hot_fraction: hot_fraction.clamp(0.0, 1.0),
            counter: 0,
            rng,
        }
    }

    /// The next key.
    pub fn next_key(&mut self) -> String {
        self.counter += 1;
        if self.hot_fraction > 0.0 && self.rng.gen_range(0.0..1.0) < self.hot_fraction {
            "hot-item".to_owned()
        } else {
            format!("item-{}", self.counter)
        }
    }
}

/// A deep multi-parent DAG in topological commit order, SciChain-style:
/// `levels` levels of `fan_out` nodes, every node linking to *all* nodes
/// of the previous level, capped by a single sink (`deep_dag_sink`) whose
/// ancestry spans the full depth. Returns `(key, parents)` pairs; commit
/// them in order so every parent exists before its children.
pub fn deep_dag(levels: u32, fan_out: usize) -> Vec<(String, Vec<String>)> {
    assert!(levels >= 1, "need at least one level");
    assert!(fan_out >= 1, "need at least one node per level");
    let mut out = Vec::new();
    let mut prev: Vec<String> = Vec::new();
    for level in 0..levels {
        let current: Vec<String> = (0..fan_out).map(|n| format!("dag-l{level}-n{n}")).collect();
        for key in &current {
            out.push((key.clone(), prev.clone()));
        }
        prev = current;
    }
    out.push((deep_dag_sink().to_owned(), prev));
    out
}

/// The key of the sink node every [`deep_dag`] workload ends in — the
/// natural root for ancestry queries over the generated DAG.
pub fn deep_dag_sink() -> &'static str {
    "dag-sink"
}

/// Builds a `StoreData` command with a generated payload (op id is
/// assigned by the driver).
pub fn store_cmd(key: String, data: Vec<u8>) -> ClientCommand {
    ClientCommand::StoreData {
        key,
        data,
        parents: vec![],
        metadata: vec![],
        op: hyperprov::OpId(0),
    }
}

/// Builds a metadata-only `Post` command.
pub fn post_cmd(key: String, payload_checksum_of: &[u8]) -> ClientCommand {
    ClientCommand::Post {
        key,
        input: hyperprov::RecordInput::new(hyperprov_ledger::Digest::of(payload_checksum_of)),
        op: hyperprov::OpId(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_is_deterministic_per_seed() {
        let mut a = DetRng::new(3);
        let mut b = DetRng::new(3);
        assert_eq!(payload(&mut a, 100), payload(&mut b, 100));
        let mut c = DetRng::new(4);
        assert_ne!(payload(&mut a, 100), payload(&mut c, 100));
    }

    #[test]
    fn poisson_rate_roughly_matches() {
        let mut rng = DetRng::new(1);
        let arrivals = poisson_arrivals(&mut rng, 100.0, SimDuration::from_secs(100), 4);
        let n = arrivals.len() as f64;
        assert!((8_000.0..12_000.0).contains(&n), "{n}");
        // Sorted, client round-robin.
        assert!(arrivals.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(arrivals[0].1, 0);
        assert_eq!(arrivals[1].1, 1);
    }

    #[test]
    fn zero_rate_produces_nothing() {
        let mut rng = DetRng::new(1);
        assert!(poisson_arrivals(&mut rng, 0.0, SimDuration::from_secs(10), 1).is_empty());
        assert!(uniform_arrivals(0.0, SimDuration::from_secs(10), 1).is_empty());
    }

    #[test]
    fn uniform_arrivals_exact_count() {
        let arrivals = uniform_arrivals(10.0, SimDuration::from_secs(5), 2);
        assert_eq!(arrivals.len(), 50);
        assert_eq!(arrivals[0].0, SimTime::from_nanos(100_000_000));
    }

    #[test]
    fn key_chooser_extremes() {
        let mut unique = KeyChooser::new(0.0, DetRng::new(1));
        let keys: Vec<String> = (0..10).map(|_| unique.next_key()).collect();
        let mut dedup = keys.clone();
        dedup.dedup();
        assert_eq!(keys.len(), dedup.len());
        assert!(!keys.iter().any(|k| k == "hot-item"));

        let mut hot = KeyChooser::new(1.0, DetRng::new(1));
        assert!((0..10).all(|_| hot.next_key() == "hot-item"));
    }

    #[test]
    fn deep_dag_shape() {
        let dag = deep_dag(3, 2);
        assert_eq!(dag.len(), 7); // 3 levels x 2 nodes + sink
        assert!(dag[0].1.is_empty() && dag[1].1.is_empty());
        // Every non-source node links to all fan_out nodes one level up.
        assert_eq!(dag[2].1, vec!["dag-l0-n0", "dag-l0-n1"]);
        assert_eq!(dag[6].0, deep_dag_sink());
        assert_eq!(dag[6].1, vec!["dag-l2-n0", "dag-l2-n1"]);
        // Topological: parents always precede their children.
        for (i, (_, parents)) in dag.iter().enumerate() {
            for p in parents {
                assert!(dag[..i].iter().any(|(k, _)| k == p), "{p} before {i}");
            }
        }
    }

    #[test]
    fn mixed_hot_fraction_in_band() {
        let mut chooser = KeyChooser::new(0.5, DetRng::new(7));
        let hot = (0..1000)
            .filter(|_| chooser.next_key() == "hot-item")
            .count();
        assert!((400..600).contains(&hot), "{hot}");
    }
}
