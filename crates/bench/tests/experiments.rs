//! Guard tests for the experiment harness: quick-mode runs must produce
//! tables with the shapes the paper reports.

use hyperprov_bench::experiments::{batch_sweep, contention_sweep, query_latency};

#[test]
fn contention_conflicts_grow_with_hot_fraction() {
    let table = contention_sweep(true);
    assert_eq!(table.len(), 2); // fractions 0.0 and 0.8 in quick mode
    let cold_conflicts = table.cell_f64(0, 3).unwrap();
    let hot_conflicts = table.cell_f64(1, 3).unwrap();
    assert_eq!(cold_conflicts, 0.0, "unique keys cannot conflict");
    assert!(
        hot_conflicts > 0.0,
        "hot-key contention must produce MVCC conflicts: {table}"
    );
    // Work was actually committed in both settings.
    assert!(table.cell_f64(0, 2).unwrap() > 0.0);
    assert!(table.cell_f64(1, 2).unwrap() > 0.0);
}

#[test]
fn batch_size_one_has_lowest_latency() {
    let table = batch_sweep(true);
    assert_eq!(table.len(), 2); // batch sizes 1 and 10 in quick mode
    let p50_batch1 = table.cell_f64(0, 2).unwrap();
    let p50_batch10 = table.cell_f64(1, 2).unwrap();
    assert!(
        p50_batch1 < p50_batch10,
        "immediate cuts must beat timeout-bound batches: {table}"
    );
    assert!(table.cell_f64(0, 1).unwrap() > 0.0);
}

#[test]
fn query_latency_table_covers_all_operators() {
    let table = query_latency(true);
    assert_eq!(table.len(), 5);
    for row in 0..table.len() {
        let mean = table.cell_f64(row, 1).unwrap();
        let p95 = table.cell_f64(row, 2).unwrap();
        assert!(mean > 0.0, "row {row} has zero latency: {table}");
        assert!(p95 + 1e-9 >= mean * 0.5, "p95 sane for row {row}");
        assert!(table.cell_f64(row, 3).unwrap() > 0.0);
    }
    // Lineage over the whole chain must cost more than a point get.
    let get_mean = table.cell_f64(0, 1).unwrap();
    let lineage_mean = table.cell_f64(4, 1).unwrap();
    assert!(
        lineage_mean >= get_mean,
        "lineage should not be cheaper than a point get: {table}"
    );
}
