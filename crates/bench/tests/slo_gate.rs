//! Acceptance tests for Telemetry v2: the fault campaign's SLOs must
//! breach during the injected fault window and recover after it, the
//! burn-rate series must land in the metrics export, and a run's
//! Perfetto trace export must be structurally valid Chrome trace JSON.

use hyperprov::{HyperProvNetwork, NetworkConfig, NodeMsg, RetryPolicy};
use hyperprov_fabric::{BatchConfig, RaftOrdererActor};
use hyperprov_sim::json::parse;
use hyperprov_sim::{
    chrome_trace_json, ActorId, DetRng, FaultPlan, SimDuration, SimTime, SloObjective, SloSpec,
};

use hyperprov_bench::report::{push_slo_verdicts, slo_verdict_table, MetricsExporter};
use hyperprov_bench::runner::run_closed_loop;
use hyperprov_bench::workload::{payload, store_cmd};

const SEED: u64 = 11;
const FAULT_FROM: SimDuration = SimDuration::from_secs(3);
const FAULT_TO: SimDuration = SimDuration::from_secs(5);
const SLO_WINDOW: SimDuration = SimDuration::from_secs(2);

fn raft_leader(net: &HyperProvNetwork) -> Option<ActorId> {
    net.orderers.iter().copied().find(|&id| {
        net.sim
            .actor_ref(id)
            .and_then(|actor| actor.as_any())
            .and_then(|any| any.downcast_ref::<RaftOrdererActor<NodeMsg>>())
            .is_some_and(|orderer| orderer.is_leader())
    })
}

/// A quick-mode desktop Raft leader-kill run (the T-FAULTS scenario that
/// stalls ordering outright) with the campaign's SLO shapes installed.
/// Returns the driven network and the workload's start instant.
fn fault_run() -> (HyperProvNetwork, SimTime) {
    let config = NetworkConfig::desktop(4)
        .with_seed(SEED)
        .with_batch(BatchConfig {
            timeout: SimDuration::from_millis(100),
            ..BatchConfig::default()
        })
        .with_deadlines(
            Some(SimDuration::from_secs(2)),
            Some(SimDuration::from_secs(4)),
        )
        .with_retry(RetryPolicy::new(6))
        .with_raft_orderers(3)
        .with_slos(vec![
            SloSpec::new(
                "store-goodput",
                SloObjective::GoodputFloor {
                    source: "client.ok".into(),
                    floor_per_sec: 3.0,
                },
                SLO_WINDOW,
            ),
            SloSpec::new(
                "client-errors",
                SloObjective::ErrorRateCeiling {
                    ok_source: "client.ok".into(),
                    err_source: "client.err".into(),
                    ceiling: 0.05,
                },
                SLO_WINDOW,
            ),
        ]);
    let mut net = HyperProvNetwork::build(&config);
    // Let the cluster elect a leader, then schedule its crash mid-run.
    net.sim.run_until(SimTime::from_secs(2));
    let t0 = net.sim.now();
    let leader = raft_leader(&net).unwrap_or(net.orderers[0]);
    FaultPlan::new()
        .crash_window(leader, t0 + FAULT_FROM, t0 + FAULT_TO)
        .install(&mut net.sim);
    let mut rng = DetRng::new(SEED).fork("slo-gate");
    run_closed_loop(
        &mut net,
        SimDuration::from_secs(9),
        SimDuration::from_secs(8),
        |c, seq| store_cmd(format!("item-c{c}-{seq}"), payload(&mut rng, 1 << 10)),
    );
    (net, t0)
}

#[test]
fn fault_window_breaches_an_slo_and_recovers() {
    let (mut net, t0) = fault_run();
    let now = net.sim.now();
    net.sim.slo_mut().advance_to(now);

    // Killing the ordering leader stalls commits: the goodput floor must
    // breach, opening inside (or within one window of) the fault window,
    // and close again once the new leader catches the cluster up.
    let windows = net.sim.slo().breach_windows("store-goodput").unwrap();
    assert!(
        !windows.is_empty(),
        "the leader kill must breach the goodput floor"
    );
    let fault_breach = windows
        .iter()
        .find(|b| b.start >= t0 + FAULT_FROM && b.start <= t0 + FAULT_TO + SLO_WINDOW)
        .expect("a breach must open during the fault window");
    let recovered_at = fault_breach
        .end
        .expect("goodput must recover after the heal");
    assert!(recovered_at > t0 + FAULT_TO, "recovery follows the restart");

    // The burn series crosses 1.0 during the breach and drops back.
    let burn = net.sim.slo().burn_series("store-goodput").unwrap();
    assert!(burn.iter().any(|&(_, b)| b > 1.0));
    assert!(
        burn.iter().any(|&(at, b)| at >= recovered_at && b <= 1.0),
        "the series must show the recovery"
    );

    // Verdicts reflect the breach.
    let verdicts = net.sim.slo().verdicts(now);
    assert_eq!(verdicts.len(), 2);
    assert!(verdicts.iter().any(|v| !v.pass && v.breaches >= 1));

    // The machine-readable export carries the SLO section with the burn
    // series and breach windows, and the verdict table renders rows.
    let mut exporter = MetricsExporter::new("slo_gate");
    exporter.add_run("desktop raft-leader-kill", &net.sim);
    let json = exporter.to_json();
    assert!(json.contains("\"slo\""));
    assert!(json.contains("\"store-goodput\""));
    assert!(json.contains("\"burn\""));
    assert!(json.contains("\"breach_windows\""));

    let mut table = slo_verdict_table("verdicts");
    push_slo_verdicts(&mut table, "desktop raft-leader-kill", &net.sim);
    assert_eq!(table.len(), 2);
}

#[test]
fn perfetto_export_of_a_driven_run_is_valid() {
    let (net, _) = fault_run();
    let trace = chrome_trace_json(net.sim.tracer());
    let doc = parse(&trace).expect("trace export must be valid JSON");
    let events = doc.get("traceEvents").unwrap().as_array().unwrap();
    assert!(!events.is_empty());
    // Spans from the real pipeline show up as complete events with
    // sane phases; at least the endorse stage must be present.
    let mut saw_endorse = false;
    for ev in events {
        let ph = ev.get("ph").unwrap().as_str().unwrap();
        assert!(matches!(ph, "X" | "i" | "M"), "unexpected ph {ph}");
        if ph == "X" && ev.get("name").unwrap().as_str() == Some("endorse") {
            saw_endorse = true;
            assert!(ev.get("dur").unwrap().as_f64().unwrap() > 0.0);
        }
    }
    assert!(saw_endorse, "endorse spans must appear in the trace");
}
