//! Pinning tests: single-channel quick-mode metrics exports must stay
//! byte-identical to the committed fixtures. These guard the sharding
//! refactor's core promise — a one-channel deployment takes exactly the
//! legacy code paths (same actor layout, same metric names, same event
//! order), so seeded runs replay byte-for-byte across releases.

use hyperprov_bench::experiments::{fault_scenario_json, pipeline_sweep, size_sweep, Platform};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn fig1_quick_metrics_match_committed_fixture() {
    let json = size_sweep(Platform::Desktop, true).exporter.to_json();
    assert!(
        !json.contains("\"unclosed\""),
        "fig1 quick runs must not leak spans"
    );
    assert_eq!(
        json,
        fixture("fig1_quick.metrics.json"),
        "fig1 quick export drifted from the committed fixture; if the \
         change is intentional, regenerate tests/fixtures/fig1_quick.metrics.json"
    );
}

#[test]
fn fig2_quick_metrics_match_committed_fixture() {
    let json = size_sweep(Platform::Rpi, true).exporter.to_json();
    assert!(
        !json.contains("\"unclosed\""),
        "fig2 quick runs must not leak spans"
    );
    assert_eq!(
        json,
        fixture("fig2_quick.metrics.json"),
        "fig2 quick export drifted from the committed fixture; if the \
         change is intentional, regenerate tests/fixtures/fig2_quick.metrics.json"
    );
}

#[test]
fn pipeline_quick_metrics_match_committed_fixture() {
    // Covers both commit paths: the serial baseline cell (lanes = 1,
    // caches off) and the accelerated cell (4 lanes, both caches on).
    let json = pipeline_sweep(true).exporter.to_json();
    assert_eq!(
        json,
        fixture("pipeline_quick.metrics.json"),
        "T-PIPELINE quick export drifted from the committed fixture; if the \
         change is intentional, regenerate tests/fixtures/pipeline_quick.metrics.json"
    );
}

#[test]
fn fault_campaign_seed7_matches_committed_fixture() {
    let json = fault_scenario_json(7);
    assert_eq!(
        json,
        fixture("faults_seed7.metrics.json"),
        "fault campaign export drifted from the committed fixture; if the \
         change is intentional, regenerate tests/fixtures/faults_seed7.metrics.json"
    );
}
