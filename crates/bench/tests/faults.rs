//! Guard tests for the fault-injection campaign: the exported metrics
//! JSON must replay byte-identically for a fixed seed, so committed
//! `table_faults.metrics.json` artifacts are reproducible.

use hyperprov_bench::experiments::fault_scenario_json;

#[test]
fn fault_campaign_metrics_json_is_deterministic_per_seed() {
    for seed in [1u64, 7, 23] {
        let first = fault_scenario_json(seed);
        let second = fault_scenario_json(seed);
        assert_eq!(
            first, second,
            "seed {seed}: fault campaign must replay byte-identically"
        );
        assert!(
            first.contains("client.retries") || first.contains("fault.crashes"),
            "seed {seed}: exported JSON should carry fault/retry counters"
        );
    }
}
