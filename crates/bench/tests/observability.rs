//! Acceptance tests for the observability layer: tracer determinism
//! across identical seeded runs, byte-identical metrics exports, and the
//! stage breakdown accounting (within tolerance) for end-to-end latency.

use std::collections::BTreeMap;

use hyperprov::{HyperProvNetwork, NetworkConfig};
use hyperprov_bench::report::{merge_stages, MetricsExporter};
use hyperprov_bench::runner::run_closed_loop;
use hyperprov_bench::workload::{payload, store_cmd};
use hyperprov_sim::{DetRng, Histogram, SimDuration};

const SEED: u64 = 100;
const SIZE: usize = 1 << 16; // 64 KiB, a mid-range FIG1 point

/// Runs one FIG1-style store workload and returns the driven network.
fn fig1_run(seed: u64, clients: usize, secs: u64) -> HyperProvNetwork {
    let config = NetworkConfig::desktop(clients).with_seed(seed);
    let mut net = HyperProvNetwork::build(&config);
    let mut rng = DetRng::new(seed).fork("payload");
    run_closed_loop(
        &mut net,
        SimDuration::from_secs(secs),
        SimDuration::from_secs(10),
        move |client, seq| {
            let data = payload(&mut rng, SIZE);
            store_cmd(format!("item-c{client}-s{seq}"), data)
        },
    );
    net
}

#[test]
fn identical_seeds_give_identical_span_streams_and_exports() {
    let a = fig1_run(SEED, 8, 5);
    let b = fig1_run(SEED, 8, 5);

    // Span nesting and ordering are deterministic: same sequence numbers,
    // parents, keys and virtual timestamps in both runs.
    let dump = |net: &HyperProvNetwork| {
        net.sim
            .tracer()
            .finished_spans()
            .map(|s| {
                (
                    s.seq,
                    s.parent,
                    s.trace.clone(),
                    s.stage,
                    s.detail.clone(),
                    s.start,
                    s.end,
                )
            })
            .collect::<Vec<_>>()
    };
    let spans_a = dump(&a);
    assert!(!spans_a.is_empty(), "the run must record spans");
    assert_eq!(spans_a, dump(&b));

    // And the machine-readable export is byte-identical.
    let export = |net: &HyperProvNetwork| {
        let mut exporter = MetricsExporter::new("determinism");
        exporter.add_run("size=65536 seed=100", &net.sim);
        exporter.to_json()
    };
    assert_eq!(export(&a), export(&b));
}

#[test]
fn instrumentation_opens_and_closes_spans_consistently() {
    let net = fig1_run(SEED, 8, 5);
    let tracer = net.sim.tracer();
    assert_eq!(tracer.unmatched_ends(), 0, "every span_end must match");
    assert_eq!(tracer.duplicate_starts(), 0, "span keys must be unique");
    for stage in ["op", "offchain.put", "endorse", "commit_wait", "validate"] {
        assert!(
            tracer.stage_histogram(stage).is_some(),
            "stage {stage} missing from a store workload"
        );
    }
    // Zero span leaks: a fully drained run leaves no open spans, so the
    // per-stage unclosed report must be empty and stay out of the export.
    assert!(
        tracer.unclosed_by_stage().is_empty(),
        "leaked spans: {:?}",
        tracer.unclosed_by_stage()
    );
    assert!(
        !tracer.snapshot_json().contains("\"unclosed\""),
        "a leak-free run must not emit the unclosed report"
    );
}

#[test]
fn stage_breakdown_accounts_for_end_to_end_latency() {
    let net = fig1_run(SEED, 16, 10);
    let mut stages: BTreeMap<String, Histogram> = BTreeMap::new();
    merge_stages(&mut stages, &net.sim);

    let mean_ns = |stage: &str| stages[stage].mean();
    let e2e = mean_ns("op");
    // A store op is offchain transfer, then endorsement, then ordering +
    // validation + commit (all inside `commit_wait`); the only time the
    // three stages miss is the client<->gateway network hops.
    let sum = mean_ns("offchain.put") + mean_ns("endorse") + mean_ns("commit_wait");
    assert!(e2e > 0.0);
    let rel = (e2e - sum).abs() / e2e;
    assert!(
        rel < 0.25,
        "stage sum {sum} ns should be within 25% of end-to-end {e2e} ns (rel {rel:.3})"
    );
}
