//! Property-based tests of the provenance record model and the HyperProv
//! chaincode invariants.

use hyperprov::{
    decode_history, decode_lineage, encode_history, encode_lineage, HistoryRecord, LineageEntry,
    ProvenanceRecord, RecordInput,
};
use hyperprov_fabric::{Certificate, MspBuilder, MspId};
use hyperprov_ledger::{Decode, Digest, Encode};
use proptest::prelude::*;

fn cert() -> Certificate {
    let mut b = MspBuilder::new(1);
    b.enroll("client", &MspId::new("org1"))
        .certificate()
        .clone()
}

fn arb_input() -> impl Strategy<Value = RecordInput> {
    (
        any::<[u8; 32]>(),
        ".{0,40}",
        any::<u64>(),
        proptest::collection::vec("[a-zA-Z0-9 _./-]{1,16}", 0..5),
        proptest::collection::vec(("[a-z]{1,8}", ".{0,16}"), 0..4),
        any::<u64>(),
    )
        .prop_map(|(checksum, location, size, parents, metadata, ts)| {
            let mut input = RecordInput::new(Digest::from(checksum))
                .with_location(location, size)
                .with_parents(parents)
                .with_timestamp(ts);
            for (k, v) in metadata {
                input = input.with_meta(k, v);
            }
            input
        })
}

proptest! {
    #[test]
    fn record_input_round_trips(input in arb_input()) {
        let bytes = input.to_bytes();
        prop_assert_eq!(RecordInput::from_bytes(&bytes).unwrap(), input);
    }

    #[test]
    fn provenance_record_round_trips(input in arb_input(), key in ".{1,32}") {
        let record = ProvenanceRecord::from_input(key, input, cert());
        let bytes = record.to_bytes();
        prop_assert_eq!(ProvenanceRecord::from_bytes(&bytes).unwrap(), record);
    }

    #[test]
    fn record_encoding_canonical(input in arb_input()) {
        let a = ProvenanceRecord::from_input("k", input.clone(), cert());
        let b = ProvenanceRecord::from_input("k", input, cert());
        prop_assert_eq!(a.to_bytes(), b.to_bytes());
        prop_assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn metadata_always_sorted(pairs in proptest::collection::vec(("[a-z]{1,6}", "[a-z]{0,6}"), 0..8)) {
        let mut input = RecordInput::new(Digest::ZERO);
        for (k, v) in pairs {
            input = input.with_meta(k, v);
        }
        let sorted = input.metadata.windows(2).all(|w| w[0] <= w[1]);
        prop_assert!(sorted);
    }

    #[test]
    fn history_codec_round_trips(
        inputs in proptest::collection::vec(arb_input(), 0..5),
        deletes in any::<u8>(),
    ) {
        let entries: Vec<HistoryRecord> = inputs
            .into_iter()
            .enumerate()
            .map(|(i, input)| HistoryRecord {
                tx_id: Digest::of(&(i as u64).to_le_bytes()),
                block: i as u64,
                record: if deletes & (1 << (i % 8)) != 0 {
                    None
                } else {
                    Some(ProvenanceRecord::from_input(format!("k{i}"), input, cert()))
                },
            })
            .collect();
        let bytes = encode_history(&entries);
        prop_assert_eq!(decode_history(&bytes).unwrap(), entries);
    }

    #[test]
    fn lineage_codec_round_trips(inputs in proptest::collection::vec(arb_input(), 0..5)) {
        let entries: Vec<LineageEntry> = inputs
            .into_iter()
            .enumerate()
            .map(|(i, input)| LineageEntry {
                depth: i as u32,
                record: ProvenanceRecord::from_input(format!("k{i}"), input, cert()),
            })
            .collect();
        let bytes = encode_lineage(&entries);
        prop_assert_eq!(decode_lineage(&bytes).unwrap(), entries);
    }

    #[test]
    fn junk_never_panics(junk in proptest::collection::vec(any::<u8>(), 0..150)) {
        let _ = ProvenanceRecord::from_bytes(&junk);
        let _ = RecordInput::from_bytes(&junk);
        let _ = decode_history(&junk);
        let _ = decode_lineage(&junk);
    }
}
