//! Property-based tests of the provenance record model, the HyperProv
//! chaincode invariants, and the materialized DAG index (checked against
//! the legacy hop-by-hop oracle walk on random multi-parent DAGs).

use std::collections::{BTreeSet, HashMap};

use hyperprov::{
    decode_history, decode_lineage, encode_history, encode_lineage, HistoryRecord, HyperProv,
    LineageEntry, NetworkConfig, ProvenanceRecord, RecordInput,
};
use hyperprov_fabric::{Certificate, MspBuilder, MspId};
use hyperprov_ledger::{Decode, Digest, Encode};
use hyperprov_sim::DetRng;
use proptest::prelude::*;
use rand::Rng;

fn cert() -> Certificate {
    let mut b = MspBuilder::new(1);
    b.enroll("client", &MspId::new("org1"))
        .certificate()
        .clone()
}

fn arb_input() -> impl Strategy<Value = RecordInput> {
    (
        any::<[u8; 32]>(),
        ".{0,40}",
        any::<u64>(),
        proptest::collection::vec("[a-zA-Z0-9 _./-]{1,16}", 0..5),
        proptest::collection::vec(("[a-z]{1,8}", ".{0,16}"), 0..4),
        any::<u64>(),
    )
        .prop_map(|(checksum, location, size, parents, metadata, ts)| {
            let mut input = RecordInput::new(Digest::from(checksum))
                .with_location(location, size)
                .with_parents(parents)
                .with_timestamp(ts);
            for (k, v) in metadata {
                input = input.with_meta(k, v);
            }
            input
        })
}

proptest! {
    #[test]
    fn record_input_round_trips(input in arb_input()) {
        let bytes = input.to_bytes();
        prop_assert_eq!(RecordInput::from_bytes(&bytes).unwrap(), input);
    }

    #[test]
    fn provenance_record_round_trips(input in arb_input(), key in ".{1,32}") {
        let record = ProvenanceRecord::from_input(key, input, cert());
        let bytes = record.to_bytes();
        prop_assert_eq!(ProvenanceRecord::from_bytes(&bytes).unwrap(), record);
    }

    #[test]
    fn record_encoding_canonical(input in arb_input()) {
        let a = ProvenanceRecord::from_input("k", input.clone(), cert());
        let b = ProvenanceRecord::from_input("k", input, cert());
        prop_assert_eq!(a.to_bytes(), b.to_bytes());
        prop_assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn metadata_always_sorted(pairs in proptest::collection::vec(("[a-z]{1,6}", "[a-z]{0,6}"), 0..8)) {
        let mut input = RecordInput::new(Digest::ZERO);
        for (k, v) in pairs {
            input = input.with_meta(k, v);
        }
        let sorted = input.metadata.windows(2).all(|w| w[0] <= w[1]);
        prop_assert!(sorted);
    }

    #[test]
    fn history_codec_round_trips(
        inputs in proptest::collection::vec(arb_input(), 0..5),
        deletes in any::<u8>(),
    ) {
        let entries: Vec<HistoryRecord> = inputs
            .into_iter()
            .enumerate()
            .map(|(i, input)| HistoryRecord {
                tx_id: Digest::of(&(i as u64).to_le_bytes()),
                block: i as u64,
                record: if deletes & (1 << (i % 8)) != 0 {
                    None
                } else {
                    Some(ProvenanceRecord::from_input(format!("k{i}"), input, cert()))
                },
            })
            .collect();
        let bytes = encode_history(&entries);
        prop_assert_eq!(decode_history(&bytes).unwrap(), entries);
    }

    #[test]
    fn lineage_codec_round_trips(inputs in proptest::collection::vec(arb_input(), 0..5)) {
        let entries: Vec<LineageEntry> = inputs
            .into_iter()
            .enumerate()
            .map(|(i, input)| LineageEntry {
                depth: i as u32,
                record: ProvenanceRecord::from_input(format!("k{i}"), input, cert()),
            })
            .collect();
        let bytes = encode_lineage(&entries);
        prop_assert_eq!(decode_lineage(&bytes).unwrap(), entries);
    }

    #[test]
    fn junk_never_panics(junk in proptest::collection::vec(any::<u8>(), 0..150)) {
        let _ = ProvenanceRecord::from_bytes(&junk);
        let _ = RecordInput::from_bytes(&junk);
        let _ = decode_history(&junk);
        let _ = decode_lineage(&junk);
    }
}

/// A random multi-parent DAG in topological commit order: node `n{i}`
/// draws 0–3 parents uniformly from the nodes before it.
fn random_dag(rng: &mut DetRng, n: usize) -> Vec<(String, Vec<String>)> {
    (0..n)
        .map(|i| {
            let mut parents = BTreeSet::new();
            if i > 0 {
                for _ in 0..rng.gen_range(0..=3usize.min(i)) {
                    parents.insert(format!("n{}", rng.gen_range(0..i)));
                }
            }
            (format!("n{i}"), parents.into_iter().collect())
        })
        .collect()
}

/// Reference reachability over the generated DAG: `up` follows
/// child → parent edges, `down` the reverse, `both` treats edges as
/// undirected (the closure semantics of the graph index).
fn reach(dag: &[(String, Vec<String>)], start: &str, up: bool, down: bool) -> BTreeSet<String> {
    let mut fwd: HashMap<&str, Vec<&str>> = HashMap::new();
    let mut rev: HashMap<&str, Vec<&str>> = HashMap::new();
    for (child, parents) in dag {
        for parent in parents {
            fwd.entry(child).or_default().push(parent);
            rev.entry(parent).or_default().push(child);
        }
    }
    let mut seen = BTreeSet::from([start.to_owned()]);
    let mut frontier = vec![start.to_owned()];
    while let Some(node) = frontier.pop() {
        let mut next: Vec<&str> = Vec::new();
        if up {
            next.extend(fwd.get(node.as_str()).into_iter().flatten());
        }
        if down {
            next.extend(rev.get(node.as_str()).into_iter().flatten());
        }
        for n in next {
            if seen.insert(n.to_owned()) {
                frontier.push(n.to_owned());
            }
        }
    }
    seen
}

fn slice_keys(slice: &hyperprov::GraphSlice) -> BTreeSet<String> {
    slice.entries.iter().map(|(_, k)| k.clone()).collect()
}

/// The tentpole equivalence property: on random multi-parent DAGs, the
/// one-shot DAG-index queries return exactly the node sets the legacy
/// hop-by-hop oracle (for ancestry) and reference reachability (for
/// descendants/closure) produce — on both the single-channel layout and
/// a 4-shard deployment where every traversal crosses channels.
#[test]
fn dag_index_queries_match_oracle_on_random_dags() {
    for (case, &shards) in [1usize, 4, 1, 4, 1, 4].iter().enumerate() {
        let mut rng = DetRng::new(900 + case as u64);
        let n = rng.gen_range(6..=12usize);
        let dag = random_dag(&mut rng, n);

        let mut config = NetworkConfig::desktop(1)
            .with_seed(300 + case as u64)
            .with_channels(shards);
        // Cross-channel parent links need the permissive chaincode; use
        // it on both layouts so the cases stay comparable.
        config.permissive = true;
        let mut hp = HyperProv::with_config(&config);
        for (key, parents) in &dag {
            hp.post(
                key,
                RecordInput::new(Digest::of(key.as_bytes())).with_parents(parents.clone()),
            )
            .unwrap();
        }

        for probe in 0..3 {
            let root = format!("n{}", rng.gen_range(0..n));
            let ctx = format!("case {case} shards {shards} probe {probe} root {root} dag {dag:?}");

            let ancestry = hp.get_ancestry(&root, 64).unwrap();
            assert!(!ancestry.truncated, "{ctx}");
            assert!(ancestry.boundary.is_empty(), "{ctx}");
            assert_eq!(
                slice_keys(&ancestry),
                reach(&dag, &root, true, false),
                "{ctx}"
            );
            let oracle: BTreeSet<String> = hp
                .get_lineage(&root, 64)
                .unwrap()
                .iter()
                .map(|e| e.record.key.clone())
                .collect();
            assert_eq!(slice_keys(&ancestry), oracle, "{ctx}");

            let descendants = hp.get_descendants(&root, 64).unwrap();
            assert_eq!(
                slice_keys(&descendants),
                reach(&dag, &root, false, true),
                "{ctx}"
            );

            let closure = hp.get_closure(&root, 64).unwrap();
            assert_eq!(
                slice_keys(&closure),
                reach(&dag, &root, true, true),
                "{ctx}"
            );

            // The subgraph's edge list stays inside its node set and
            // matches the generated parent lists.
            let sub = hp.get_subgraph(&root, 64).unwrap();
            let nodes = slice_keys(&sub);
            for (child, parent) in &sub.edges {
                assert!(nodes.contains(child) && nodes.contains(parent), "{ctx}");
                let listed = dag
                    .iter()
                    .find(|(k, _)| k == child)
                    .is_some_and(|(_, parents)| parents.contains(parent));
                assert!(listed, "edge {child}->{parent} not in the DAG: {ctx}");
            }
        }
    }
}

/// Every peer's incrementally maintained index survives a crash/replay
/// cycle bit-for-bit, across every shard of a 4-channel deployment.
#[test]
fn dag_index_rebuild_matches_across_shards() {
    let mut rng = DetRng::new(77);
    let dag = random_dag(&mut rng, 10);
    let mut config = NetworkConfig::desktop(1).with_seed(7).with_channels(4);
    config.permissive = true;
    let mut hp = HyperProv::with_config(&config);
    for (key, parents) in &dag {
        hp.post(
            key,
            RecordInput::new(Digest::of(key.as_bytes())).with_parents(parents.clone()),
        )
        .unwrap();
    }
    let mut indexed = 0usize;
    for shard in &hp.network().channel_ledgers {
        for (peer, committer) in shard {
            let original = committer.borrow();
            assert!(original.graph_consistent(), "peer {peer}");
            let rebuilt = original.recover().unwrap();
            assert_eq!(
                rebuilt.graph().digest(),
                original.graph().digest(),
                "peer {peer}"
            );
            indexed += original.graph().len();
        }
    }
    assert!(indexed > 0, "the deployment must have indexed something");
}
