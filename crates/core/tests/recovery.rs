//! Crash-recovery and elastic-membership tests: snapshot bootstrap,
//! genesis replay, restart-during-partition retry, and a spare peer
//! joining a live network — all asserting state-hash convergence.

use hyperprov::{HyperProv, NetworkConfig, SnapshotPolicy};
use hyperprov_sim::SimDuration;

/// Desktop deployment with one client, a small snapshot interval and the
/// recovery gauges enabled.
fn snapshot_config() -> NetworkConfig {
    NetworkConfig::desktop(1)
        .with_snapshots(SnapshotPolicy::every(2))
        .with_recovery_metrics()
}

/// Runs the network for `secs` of virtual time (drain/catch-up windows).
fn settle(hp: &mut HyperProv, secs: u64) {
    let now = hp.network().sim.now();
    hp.network_mut()
        .sim
        .run_until(now + SimDuration::from_secs(secs));
}

/// State hash of peer `p`'s default-channel ledger.
fn state_hash(hp: &HyperProv, p: usize) -> hyperprov_ledger::Digest {
    hp.network().ledgers[p].borrow().state().state_hash()
}

fn height(hp: &HyperProv, p: usize) -> u64 {
    hp.network().ledgers[p].borrow().height()
}

/// A restarted peer with a snapshot boots from it (plus a bounded delta
/// replay), catches the blocks it missed while down from the orderer,
/// and converges to the live peers' state hash. Pruning keeps its block
/// store from retaining the full chain.
#[test]
fn restart_bootstraps_from_snapshot_and_catches_up() {
    let mut hp = HyperProv::with_config(&snapshot_config());
    for i in 0..8 {
        hp.store_data(&format!("pre-{i}"), vec![i as u8; 64], vec![], vec![])
            .unwrap();
    }
    let victim = hp.network().peers[1];
    hp.network_mut().sim.crash_actor(victim);
    for i in 0..4 {
        hp.store_data(&format!("mid-{i}"), vec![i as u8; 64], vec![], vec![])
            .unwrap();
    }
    hp.network_mut().sim.restart_actor(victim);
    settle(&mut hp, 10);

    assert_eq!(height(&hp, 1), height(&hp, 0));
    assert_eq!(state_hash(&hp, 1), state_hash(&hp, 0));
    let metrics = hp.network().sim.metrics();
    assert_eq!(metrics.counter("peer1.recoveries"), 1);
    assert!(
        metrics.counter("peer1.snapshot_boots") >= 1,
        "restart must take the snapshot fast path"
    );
    // The delta replay is bounded by the snapshot interval, not the
    // chain length.
    let replayed = metrics
        .gauge("peer1.recovery.replayed_blocks")
        .expect("recovery gauges enabled");
    assert!(
        replayed < height(&hp, 1) as f64,
        "snapshot boot must not replay the whole chain ({replayed} blocks)"
    );
    // Snapshot cutting prunes the store behind the horizon.
    let ledger = hp.network().ledgers[0].borrow();
    assert!(
        ledger.store().base_height() > 0,
        "pruning must advance the store base"
    );
    drop(ledger);
    // The network still serves reads and writes after the churn.
    hp.store_data("post", b"post".to_vec(), vec![], vec![])
        .unwrap();
    assert_eq!(hp.get("pre-0").unwrap().key, "pre-0");
}

/// Without a snapshot policy, restart falls back to the full genesis
/// replay — same convergence, linear replay cost.
#[test]
fn restart_replays_from_genesis_without_snapshots() {
    let config = NetworkConfig::desktop(1).with_recovery_metrics();
    let mut hp = HyperProv::with_config(&config);
    for i in 0..6 {
        hp.store_data(&format!("pre-{i}"), vec![i as u8; 64], vec![], vec![])
            .unwrap();
    }
    let victim = hp.network().peers[1];
    hp.network_mut().sim.crash_actor(victim);
    for i in 0..3 {
        hp.store_data(&format!("mid-{i}"), vec![i as u8; 64], vec![], vec![])
            .unwrap();
    }
    hp.network_mut().sim.restart_actor(victim);
    settle(&mut hp, 10);

    assert_eq!(height(&hp, 1), height(&hp, 0));
    assert_eq!(state_hash(&hp, 1), state_hash(&hp, 0));
    let metrics = hp.network().sim.metrics();
    assert_eq!(metrics.counter("peer1.recoveries"), 1);
    assert_eq!(metrics.counter("peer1.snapshot_boots"), 0);
    // Genesis replay walks the entire pre-crash store.
    let replayed = metrics
        .gauge("peer1.recovery.replayed_blocks")
        .expect("recovery gauges enabled");
    assert!(replayed > 0.0);
    // The store keeps the full chain when no pruning policy is set.
    assert_eq!(hp.network().ledgers[1].borrow().store().base_height(), 0);
}

/// A peer restarted while partitioned from the rest of the network loses
/// its first catch-up request; the retry timer re-issues it with backoff
/// until the partition heals, after which the peer converges.
#[test]
fn restart_during_partition_retries_until_heal() {
    let mut hp = HyperProv::with_config(&snapshot_config());
    for i in 0..6 {
        hp.store_data(&format!("pre-{i}"), vec![i as u8; 64], vec![], vec![])
            .unwrap();
    }
    let victim = hp.network().peers[1];
    hp.network_mut().sim.crash_actor(victim);
    for i in 0..4 {
        hp.store_data(&format!("mid-{i}"), vec![i as u8; 64], vec![], vec![])
            .unwrap();
    }
    // Cut the victim off from every other device, then restart it: the
    // catch-up request and all its retries are dropped.
    let others: Vec<_> = (0..hp.network().devices.len() as u32)
        .map(hyperprov_sim::ActorId)
        .filter(|id| *id != victim)
        .collect();
    hp.network_mut()
        .sim
        .network_mut()
        .partition_groups(&[victim], &others);
    hp.network_mut().sim.restart_actor(victim);
    settle(&mut hp, 8);

    let metrics = hp.network().sim.metrics();
    assert_eq!(metrics.counter("peer1.recoveries"), 1);
    assert!(
        metrics.counter("peer1.catchup_retries") >= 1,
        "lost catch-up requests must be retried"
    );
    assert!(
        height(&hp, 1) < height(&hp, 0),
        "partitioned peer cannot have caught up yet"
    );

    hp.network_mut().sim.network_mut().heal_all();
    settle(&mut hp, 20);
    assert_eq!(height(&hp, 1), height(&hp, 0));
    assert_eq!(state_hash(&hp, 1), state_hash(&hp, 0));
}

/// The same partition interleaving without snapshots: the genesis-replay
/// path retries and converges too.
#[test]
fn partition_retry_converges_on_genesis_replay_path() {
    let config = NetworkConfig::desktop(1).with_recovery_metrics();
    let mut hp = HyperProv::with_config(&config);
    for i in 0..5 {
        hp.store_data(&format!("pre-{i}"), vec![i as u8; 64], vec![], vec![])
            .unwrap();
    }
    let victim = hp.network().peers[1];
    hp.network_mut().sim.crash_actor(victim);
    for i in 0..3 {
        hp.store_data(&format!("mid-{i}"), vec![i as u8; 64], vec![], vec![])
            .unwrap();
    }
    let others: Vec<_> = (0..hp.network().devices.len() as u32)
        .map(hyperprov_sim::ActorId)
        .filter(|id| *id != victim)
        .collect();
    hp.network_mut()
        .sim
        .network_mut()
        .partition_groups(&[victim], &others);
    hp.network_mut().sim.restart_actor(victim);
    settle(&mut hp, 8);
    assert!(hp.network().sim.metrics().counter("peer1.catchup_retries") >= 1);

    hp.network_mut().sim.network_mut().heal_all();
    settle(&mut hp, 20);
    assert_eq!(height(&hp, 1), height(&hp, 0));
    assert_eq!(state_hash(&hp, 1), state_hash(&hp, 0));
}

/// Elastic membership: a spare peer added to a live network fetches the
/// latest snapshot from a provider, replays the delta, subscribes to
/// future blocks and converges — then keeps up with new traffic.
#[test]
fn added_peer_catches_up_via_snapshot_and_serves_queries() {
    let config = snapshot_config().with_spare_peers(1);
    let mut hp = HyperProv::with_config(&config);
    for i in 0..8 {
        hp.store_data(&format!("pre-{i}"), vec![i as u8; 64], vec![], vec![])
            .unwrap();
    }
    assert_eq!(hp.network().spare_peers_left(), 1);
    let joined = hp.network_mut().add_peer();
    assert_eq!(hp.network().spare_peers_left(), 0);
    settle(&mut hp, 15);

    let new_idx = hp.network().peers.len() - 1;
    assert_eq!(hp.network().peers[new_idx], joined);
    assert_eq!(height(&hp, new_idx), height(&hp, 0));
    assert_eq!(state_hash(&hp, new_idx), state_hash(&hp, 0));

    let metrics = hp.network().sim.metrics();
    let prefix = format!("peer{new_idx}");
    assert_eq!(metrics.counter(&format!("{prefix}.joins")), 1);
    assert!(
        metrics.counter(&format!("{prefix}.snapshot_boots")) >= 1,
        "the joiner must bootstrap from a provider's snapshot"
    );

    // The joiner answers provenance queries from its own ledger: its
    // graph index matches the incumbents' and resolves lineage.
    let new_ledger = hp.network().ledgers[new_idx].borrow();
    let old_ledger = hp.network().ledgers[0].borrow();
    assert_eq!(new_ledger.graph().digest(), old_ledger.graph().digest());
    assert!(new_ledger.graph().len() >= 8);
    drop((new_ledger, old_ledger));

    // New traffic reaches the joiner through its deliver subscription.
    for i in 0..3 {
        hp.store_data(&format!("post-{i}"), vec![i as u8; 64], vec![], vec![])
            .unwrap();
    }
    settle(&mut hp, 5);
    assert_eq!(height(&hp, new_idx), height(&hp, 0));
    assert_eq!(state_hash(&hp, new_idx), state_hash(&hp, 0));
}

/// A spare-free deployment with snapshots disabled is byte-identical to
/// the seed network: same virtual end time for the same workload.
#[test]
fn snapshot_machinery_off_by_default_is_inert() {
    let run = |config: &NetworkConfig| {
        let mut hp = HyperProv::with_config(config);
        for i in 0..4 {
            hp.store_data(&format!("k{i}"), vec![i as u8; 256], vec![], vec![])
                .unwrap();
        }
        hp.now()
    };
    let base = NetworkConfig::desktop(1).with_seed(7);
    // recovery_metrics only adds gauges at restart; spare enrollment adds
    // identities after all live ones. Neither may shift the timeline.
    let instrumented = NetworkConfig::desktop(1)
        .with_seed(7)
        .with_recovery_metrics()
        .with_spare_peers(2);
    assert_eq!(run(&base), run(&instrumented));
}
