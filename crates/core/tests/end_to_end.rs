//! End-to-end tests of the full HyperProv deployment: client library,
//! Fabric pipeline, off-chain storage and auditing, all under virtual
//! time.

use hyperprov::{
    audit, AuditFinding, HyperProv, HyperProvError, NetworkConfig, OpmGraph, RecordInput,
};
use hyperprov_ledger::Digest;

#[test]
fn store_get_round_trip_desktop() {
    let mut hp = HyperProv::desktop();
    let payload = b"sensor frame 001".to_vec();
    let record = hp
        .store_data(
            "frame-001",
            payload.clone(),
            vec![],
            vec![("camera".into(), "north".into())],
        )
        .unwrap();
    assert_eq!(record.checksum, Digest::of(&payload));
    assert_eq!(record.size, payload.len() as u64);
    assert!(record.location.starts_with("sshfs://store0/"));
    assert_eq!(record.meta("camera"), Some("north"));
    assert_eq!(record.creator.subject, "client0");

    let fetched = hp.get("frame-001").unwrap();
    assert_eq!(fetched, record);

    let (rec2, data) = hp.get_data("frame-001").unwrap();
    assert_eq!(rec2.checksum, record.checksum);
    assert_eq!(data, payload);
    assert!(hp.check_data("frame-001").unwrap());
}

#[test]
fn missing_key_is_rejected() {
    let mut hp = HyperProv::desktop();
    match hp.get("nonexistent") {
        Err(HyperProvError::Rejected(reason)) => assert!(reason.contains("not found")),
        other => panic!("expected rejection, got {other:?}"),
    }
}

#[test]
fn lineage_chain_traversal() {
    let mut hp = HyperProv::desktop();
    hp.store_data("raw", b"raw data".to_vec(), vec![], vec![])
        .unwrap();
    hp.store_data(
        "cleaned",
        b"clean data".to_vec(),
        vec!["raw".into()],
        vec![],
    )
    .unwrap();
    hp.store_data("model", b"weights".to_vec(), vec!["cleaned".into()], vec![])
        .unwrap();
    hp.store_data(
        "report",
        b"pdf".to_vec(),
        vec!["model".into(), "cleaned".into()],
        vec![],
    )
    .unwrap();

    let lineage = hp.get_lineage("report", 10).unwrap();
    let keys: Vec<&str> = lineage.iter().map(|e| e.record.key.as_str()).collect();
    assert_eq!(keys, vec!["report", "model", "cleaned", "raw"]);
    let depths: Vec<u32> = lineage.iter().map(|e| e.depth).collect();
    assert_eq!(depths, vec![0, 1, 1, 2]);

    // Depth-limited traversal stops early.
    let shallow = hp.get_lineage("report", 1).unwrap();
    assert_eq!(shallow.len(), 3); // report + model + cleaned

    // OPM export covers the whole graph.
    let records: Vec<_> = lineage.iter().map(|e| e.record.clone()).collect();
    let graph = OpmGraph::from_records(records.iter());
    assert_eq!(graph.nodes_of(hyperprov::OpmNodeKind::Artifact).len(), 4);
    assert!(graph.to_dot().contains("wasDerivedFrom"));
}

#[test]
fn missing_parent_rejected_by_chaincode() {
    let mut hp = HyperProv::desktop();
    let err = hp
        .store_data("orphan", b"x".to_vec(), vec!["ghost".into()], vec![])
        .unwrap_err();
    match err {
        HyperProvError::Rejected(reason) => assert!(reason.contains("ghost")),
        other => panic!("expected rejection, got {other:?}"),
    }
}

#[test]
fn history_records_every_version() {
    let mut hp = HyperProv::desktop();
    hp.store_data("doc", b"v1".to_vec(), vec![], vec![])
        .unwrap();
    hp.store_data("doc", b"v2".to_vec(), vec![], vec![])
        .unwrap();
    hp.store_data("doc", b"v3 final".to_vec(), vec![], vec![])
        .unwrap();
    let history = hp.get_history("doc").unwrap();
    assert_eq!(history.len(), 3);
    let checksums: Vec<Digest> = history
        .iter()
        .map(|h| h.record.as_ref().unwrap().checksum)
        .collect();
    assert_eq!(
        checksums,
        vec![
            Digest::of(b"v1"),
            Digest::of(b"v2"),
            Digest::of(b"v3 final")
        ]
    );
    // Blocks are increasing.
    assert!(history.windows(2).all(|w| w[0].block <= w[1].block));
}

#[test]
fn checksum_reverse_lookup() {
    let mut hp = HyperProv::desktop();
    let payload = b"shared bytes".to_vec();
    hp.store_data("copy-a", payload.clone(), vec![], vec![])
        .unwrap();
    hp.store_data("copy-b", payload.clone(), vec![], vec![])
        .unwrap();
    hp.store_data("other", b"different".to_vec(), vec![], vec![])
        .unwrap();
    let keys = hp.get_keys_by_checksum(Digest::of(&payload)).unwrap();
    assert_eq!(keys, vec!["copy-a", "copy-b"]);
}

#[test]
fn delete_removes_current_but_keeps_history() {
    let mut hp = HyperProv::desktop();
    hp.store_data("temp", b"x".to_vec(), vec![], vec![])
        .unwrap();
    hp.delete("temp").unwrap();
    assert!(hp.get("temp").is_err());
    let history = hp.get_history("temp").unwrap();
    assert_eq!(history.len(), 2);
    assert!(history[1].record.is_none()); // the delete marker
}

#[test]
fn tampering_detected_end_to_end() {
    let mut hp = HyperProv::desktop();
    let record = hp
        .store_data("victim", b"original".to_vec(), vec![], vec![])
        .unwrap();

    // Corrupt the off-chain object behind HyperProv's back.
    let object = record.location.rsplit('/').next().unwrap().to_owned();
    assert!(hp.network().store.tamper(&object, b"evil bytes"));

    // get_data detects the mismatch.
    match hp.get_data("victim") {
        Err(HyperProvError::IntegrityViolation { expected, actual }) => {
            assert_eq!(expected, Digest::of(b"original"));
            assert_eq!(actual, Digest::of(b"evil bytes"));
        }
        other => panic!("expected integrity violation, got {other:?}"),
    }
    // check_data reports false rather than failing.
    assert!(!hp.check_data("victim").unwrap());

    // The auditor sees it too.
    let ledger = hp.network().ledgers[0].clone();
    let report = audit(&ledger.borrow(), hp.network().store.as_ref());
    assert!(!report.is_clean());
    assert!(report
        .findings
        .iter()
        .any(|f| matches!(f, AuditFinding::TamperedPayload { key, .. } if key == "victim")));
}

#[test]
fn audit_clean_network_and_ledger_convergence() {
    let mut hp = HyperProv::desktop();
    for i in 0..8 {
        hp.store_data(&format!("item{i}"), vec![i as u8; 64], vec![], vec![])
            .unwrap();
    }
    // All four peers converge to the same chain tip and state.
    let heights: Vec<u64> = hp
        .network()
        .ledgers
        .iter()
        .map(|l| l.borrow().height())
        .collect();
    assert!(heights.iter().all(|&h| h == heights[0] && h > 0));
    let tips: Vec<_> = hp
        .network()
        .ledgers
        .iter()
        .map(|l| l.borrow().store().tip_hash())
        .collect();
    assert!(tips.iter().all(|t| *t == tips[0]));

    for ledger in &hp.network().ledgers {
        let report = audit(&ledger.borrow(), hp.network().store.as_ref());
        assert!(report.is_clean(), "{:?}", report.findings);
        assert_eq!(report.records_checked, 8);
        assert_eq!(report.payloads_checked, 8);
    }
}

#[test]
fn missing_payload_detected_by_audit() {
    let mut hp = HyperProv::desktop();
    let record = hp
        .store_data("gone", b"data".to_vec(), vec![], vec![])
        .unwrap();
    let object = record.location.rsplit('/').next().unwrap().to_owned();
    use hyperprov_offchain::ObjectStore;
    hp.network().store.delete(&object).unwrap();
    let ledger = hp.network().ledgers[0].clone();
    let report = audit(&ledger.borrow(), hp.network().store.as_ref());
    assert!(report
        .findings
        .iter()
        .any(|f| matches!(f, AuditFinding::MissingPayload { key, .. } if key == "gone")));
}

#[test]
fn rpi_network_works_but_is_slower() {
    // Cut a block per transaction so the 2 s batch timeout does not mask
    // the platform difference.
    let batch = hyperprov_fabric::BatchConfig {
        max_message_count: 1,
        ..hyperprov_fabric::BatchConfig::default()
    };
    let run = |mut hp: HyperProv| {
        let t0 = hp.now();
        hp.store_data("item", vec![7u8; 256 * 1024], vec![], vec![])
            .unwrap();
        hp.now() - t0
    };
    let desktop = run(HyperProv::with_config(
        &NetworkConfig::desktop(1).with_batch(batch),
    ));
    let rpi = run(HyperProv::with_config(
        &NetworkConfig::rpi(1).with_batch(batch),
    ));
    assert!(
        rpi > desktop,
        "rpi {rpi} should be slower than desktop {desktop}"
    );
    // The paper reports roughly an order of magnitude; allow a wide band
    // but require a clear gap.
    let ratio = rpi.as_secs_f64() / desktop.as_secs_f64();
    assert!(ratio > 1.5, "ratio={ratio}");
}

#[test]
fn post_metadata_only_item() {
    let mut hp = HyperProv::desktop();
    let input = RecordInput::new(Digest::of(b"external dataset v1"))
        .with_meta("source", "satellite")
        .with_timestamp(1_600_000_000_000);
    let record = hp.post("external", input).unwrap();
    assert!(!record.has_offchain_data());
    // get_data on a metadata-only item is rejected.
    assert!(matches!(
        hp.get_data("external"),
        Err(HyperProvError::Rejected(_))
    ));
    // but get works.
    assert_eq!(
        hp.get("external").unwrap().meta("source"),
        Some("satellite")
    );
}

#[test]
fn list_enumerates_live_items() {
    let mut hp = HyperProv::desktop();
    assert!(hp.list().unwrap().is_empty());
    hp.store_data("zebra", b"z".to_vec(), vec![], vec![])
        .unwrap();
    hp.store_data("apple", b"a".to_vec(), vec![], vec![])
        .unwrap();
    hp.store_data("mango", b"m".to_vec(), vec![], vec![])
        .unwrap();
    assert_eq!(hp.list().unwrap(), vec!["apple", "mango", "zebra"]);
    hp.delete("mango").unwrap();
    assert_eq!(hp.list().unwrap(), vec!["apple", "zebra"]);
}

#[test]
fn exported_chain_replays_into_identical_ledger() {
    let mut hp = HyperProv::desktop();
    hp.store_data("x", b"one".to_vec(), vec![], vec![]).unwrap();
    hp.store_data("y", b"two".to_vec(), vec!["x".into()], vec![])
        .unwrap();
    let mut buf = Vec::new();
    hp.export_chain(&mut buf).unwrap();

    let loaded = hyperprov_ledger::BlockStore::read_from(buf.as_slice()).unwrap();
    let original = hp.network().ledgers[0].borrow();
    let rebuilt = hyperprov_fabric::Committer::replay(
        original.msp().clone(),
        hyperprov_fabric::ChannelPolicies::new(hyperprov_fabric::EndorsementPolicy::any_of(
            (1..=4).map(|i| hyperprov_fabric::MspId::new(format!("org{i}"))),
        )),
        loaded.iter().cloned(),
    )
    .unwrap();
    assert_eq!(rebuilt.store().tip_hash(), original.store().tip_hash());
    // The rebuilt peer serves the same records.
    let records = hyperprov::current_records(&rebuilt);
    assert_eq!(records.len(), 2);
    assert!(records.iter().all(|(_, r)| r.is_ok()));
}

/// Stores a diamond DAG (`a ← b`, `a ← c`, `{b, c} ← d`) and checks every
/// graph-index query against the legacy hop-by-hop lineage walk.
#[test]
fn graph_queries_end_to_end() {
    let mut hp = HyperProv::desktop();
    hp.post("a", RecordInput::new(Digest::of(b"a"))).unwrap();
    hp.post(
        "b",
        RecordInput::new(Digest::of(b"b")).with_parents(vec!["a".into()]),
    )
    .unwrap();
    hp.post(
        "c",
        RecordInput::new(Digest::of(b"c")).with_parents(vec!["a".into()]),
    )
    .unwrap();
    hp.post(
        "d",
        RecordInput::new(Digest::of(b"d")).with_parents(vec!["b".into(), "c".into()]),
    )
    .unwrap();

    // Ancestry matches the oracle walk's key set (and tags depths).
    let ancestry = hp.get_ancestry("d", 8).unwrap();
    let mut keys: Vec<(u32, &str)> = ancestry
        .entries
        .iter()
        .map(|(d, k)| (*d, k.as_str()))
        .collect();
    keys.sort_unstable();
    assert_eq!(keys, vec![(0, "d"), (1, "b"), (1, "c"), (2, "a")]);
    assert!(!ancestry.truncated);
    assert!(ancestry.boundary.is_empty());
    let oracle: Vec<String> = hp
        .get_lineage("d", 8)
        .unwrap()
        .iter()
        .map(|e| e.record.key.clone())
        .collect();
    let mut index_keys: Vec<String> = ancestry.entries.iter().map(|(_, k)| k.clone()).collect();
    let mut oracle_keys = oracle.clone();
    index_keys.sort();
    oracle_keys.sort();
    assert_eq!(index_keys, oracle_keys);

    // Both sides report the depth clamp cutting the walk short.
    let (shallow, truncated) = hp.get_lineage_truncated("d", 1).unwrap();
    assert_eq!(shallow.len(), 3);
    assert!(truncated, "grandparent beyond the clamp must be flagged");
    let shallow_graph = hp.get_ancestry("d", 1).unwrap();
    assert_eq!(shallow_graph.entries.len(), 3);
    assert!(shallow_graph.truncated);

    // Descendants (impact) and closure come from the same index.
    let impact = hp.get_descendants("a", 8).unwrap();
    let mut impact_keys: Vec<&str> = impact.entries.iter().map(|(_, k)| k.as_str()).collect();
    impact_keys.sort_unstable();
    assert_eq!(impact_keys, vec!["a", "b", "c", "d"]);
    let closure = hp.get_closure("b", 8).unwrap();
    assert_eq!(closure.entries.len(), 4);

    // The subgraph carries every (child, parent) edge of the diamond.
    let sub = hp.get_subgraph("d", 8).unwrap();
    let mut edges = sub.edges.clone();
    edges.sort();
    assert_eq!(
        edges,
        vec![
            ("b".to_owned(), "a".to_owned()),
            ("c".to_owned(), "a".to_owned()),
            ("d".to_owned(), "b".to_owned()),
            ("d".to_owned(), "c".to_owned()),
        ]
    );
}

/// A peer restart (block-store replay) rebuilds the exact same graph
/// index the pre-crash peer maintained incrementally — deletes included.
#[test]
fn graph_index_rebuilt_on_restart_matches() {
    let mut hp = HyperProv::desktop();
    hp.store_data("raw", b"raw".to_vec(), vec![], vec![])
        .unwrap();
    hp.store_data("cooked", b"cooked".to_vec(), vec!["raw".into()], vec![])
        .unwrap();
    hp.store_data(
        "served",
        b"served".to_vec(),
        vec!["cooked".into(), "raw".into()],
        vec![],
    )
    .unwrap();
    hp.store_data("scrap", b"scrap".to_vec(), vec!["raw".into()], vec![])
        .unwrap();
    hp.delete("scrap").unwrap();

    let ledger = hp.network().ledgers[0].clone();
    let original = ledger.borrow();
    assert_eq!(original.graph().len(), 3, "delete must drop the node");
    assert!(
        original.graph_consistent(),
        "incremental index must match a state-scan rebuild"
    );

    let rebuilt = original.recover().unwrap();
    assert_eq!(rebuilt.graph().digest(), original.graph().digest());
    assert_eq!(rebuilt.graph().len(), original.graph().len());
    assert_eq!(rebuilt.graph().edge_count(), original.graph().edge_count());
}

/// A committed record whose parent is absent from the graph index bumps
/// the `dangling_parent` counter (permissive chaincode lets it commit);
/// strict runs keep the counter at zero.
#[test]
fn dangling_parent_counted() {
    let mut config = NetworkConfig::desktop(1);
    config.permissive = true;
    let mut hp = HyperProv::with_config(&config);
    hp.post(
        "orphan",
        RecordInput::new(Digest::of(b"x")).with_parents(vec!["ghost".into()]),
    )
    .unwrap();
    let dangling: u64 = hp
        .network()
        .sim
        .metrics()
        .counters()
        .filter(|(name, _)| name.ends_with(".dangling_parent"))
        .map(|(_, v)| v)
        .sum();
    assert!(dangling > 0, "dangling parent must be counted");
    assert!(hp.network().ledgers[0].borrow().graph().dangling() > 0);

    // The strict deployment rejects the orphan outright, so the counter
    // never moves (and default exports stay clean).
    let mut strict = HyperProv::desktop();
    strict
        .post(
            "orphan",
            RecordInput::new(Digest::of(b"x")).with_parents(vec!["ghost".into()]),
        )
        .unwrap_err();
    let clean: u64 = strict
        .network()
        .sim
        .metrics()
        .counters()
        .filter(|(name, _)| name.ends_with(".dangling_parent"))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(clean, 0);
}

#[test]
fn deterministic_replay_same_seed() {
    let run = |seed: u64| {
        let config = NetworkConfig::desktop(1).with_seed(seed);
        let mut hp = HyperProv::with_config(&config);
        for i in 0..5 {
            hp.store_data(&format!("k{i}"), vec![i as u8; 1000], vec![], vec![])
                .unwrap();
        }
        hp.now()
    };
    assert_eq!(run(11), run(11));
    assert_ne!(run(11), run(12));
}
