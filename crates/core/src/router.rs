//! Key → channel routing for sharded (multi-channel) deployments.
//!
//! A [`HyperProvClient`](crate::HyperProvClient) on a multi-channel
//! network owns one gateway per channel and consults a [`ChannelRouter`]
//! to decide which channel owns an item key. Routing must be
//! deterministic and stable: every client in the deployment must map the
//! same key to the same channel, or reads would miss the shard that holds
//! the record.

use hyperprov_ledger::Digest;

/// Maps an item key to one of `n` channels (shards).
///
/// Implementations must be pure functions of `(key, n)`: the same inputs
/// always produce the same shard index, across clients and across runs.
pub trait ChannelRouter {
    /// The shard index in `0..n` that owns `key`. `n` is at least 1.
    fn route(&self, key: &str, n: usize) -> usize;
}

/// The default router: hash partitioning on the item key.
///
/// Uses the first 8 bytes of the key's content digest interpreted as a
/// big-endian `u64`, modulo the channel count — uniform, stable under
/// channel-preserving redeployments, and independent of insertion order.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashRouter;

impl ChannelRouter for HashRouter {
    fn route(&self, key: &str, n: usize) -> usize {
        debug_assert!(n >= 1, "router needs at least one channel");
        if n <= 1 {
            return 0;
        }
        let digest = Digest::of(key.as_bytes());
        let mut prefix = [0u8; 8];
        prefix.copy_from_slice(&digest.as_bytes()[..8]);
        (u64::from_be_bytes(prefix) % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_across_instances() {
        let a = HashRouter;
        let b = HashRouter;
        for n in [1usize, 2, 4, 8] {
            for i in 0..200 {
                let key = format!("item-{i}");
                assert_eq!(a.route(&key, n), b.route(&key, n));
                assert!(a.route(&key, n) < n);
            }
        }
    }

    #[test]
    fn single_channel_always_routes_to_zero() {
        for i in 0..50 {
            assert_eq!(HashRouter.route(&format!("k{i}"), 1), 0);
        }
    }

    #[test]
    fn hash_partitioning_spreads_keys() {
        // 400 keys over 4 shards: every shard gets a meaningful share.
        let mut counts = [0usize; 4];
        for i in 0..400 {
            counts[HashRouter.route(&format!("sensor-reading-{i}"), 4)] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            assert!(count > 40, "shard {shard} got only {count}/400 keys");
        }
    }
}
