//! The HyperProv client library — the Rust equivalent of the paper's
//! NodeJS client, hiding Fabric and off-chain storage behind a handful of
//! operators: `post`, `get`, `store_data`, `get_data`, `check_data`,
//! `get_history`, `get_keys_by_checksum`, `get_lineage`, `delete`.
//!
//! [`HyperProvClient`] is a simulation actor; it receives
//! [`ClientCommand`]s (injected by the synchronous facade or by a workload
//! driver), drives the blockchain gateway and the storage node, and pushes
//! [`ClientCompletion`]s into a shared queue the caller drains.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::rc::Rc;

use hyperprov_fabric::{CostModel, FabricMsg, Gateway, GatewayError, GatewayEvent};
use hyperprov_ledger::{Decode, Digest, TxId, ValidationCode};
use hyperprov_offchain::{StoreError, StoreMsg};
use hyperprov_sim::{
    Actor, ActorId, Carries, Context, DetRng, Event, ServiceHarness, SimDuration, SimTime,
};
use rand::Rng;

use crate::chaincode::{CHAINCODE_NAME, MAX_GRAPH_NODES, MAX_LINEAGE_DEPTH};
use crate::record::{
    decode_history, decode_lineage, GraphSlice, HistoryRecord, LineageEntry, ProvenanceRecord,
    RecordInput,
};
use crate::router::{ChannelRouter, HashRouter};

/// Identifies one client operation, assigned by the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub u64);

/// An operation submitted to a [`HyperProvClient`].
#[derive(Debug, Clone)]
pub enum ClientCommand {
    /// Record provenance metadata for an item (payload already placed).
    Post {
        /// Item key.
        key: String,
        /// The record content.
        input: RecordInput,
        /// Operation id echoed in the completion.
        op: OpId,
    },
    /// Store a payload off-chain, then post its metadata — the paper's
    /// `StoreData`.
    StoreData {
        /// Item key.
        key: String,
        /// The payload.
        data: Vec<u8>,
        /// Parent item keys.
        parents: Vec<String>,
        /// Custom metadata.
        metadata: Vec<(String, String)>,
        /// Operation id echoed in the completion.
        op: OpId,
    },
    /// Fetch the on-chain record.
    Get {
        /// Item key.
        key: String,
        /// Operation id echoed in the completion.
        op: OpId,
    },
    /// Fetch the record, then the payload, and verify the checksum — the
    /// paper's `GetData`.
    GetData {
        /// Item key.
        key: String,
        /// Operation id echoed in the completion.
        op: OpId,
    },
    /// Like `GetData` but reports integrity as a boolean instead of
    /// failing.
    CheckData {
        /// Item key.
        key: String,
        /// Operation id echoed in the completion.
        op: OpId,
    },
    /// Fetch the full version history of an item.
    GetHistory {
        /// Item key.
        key: String,
        /// Operation id echoed in the completion.
        op: OpId,
    },
    /// Reverse lookup: which items carry this checksum?
    GetKeysByChecksum {
        /// The checksum to look up.
        checksum: Digest,
        /// Operation id echoed in the completion.
        op: OpId,
    },
    /// Ancestor traversal up to `depth`.
    GetLineage {
        /// Item key.
        key: String,
        /// Maximum traversal depth.
        depth: u32,
        /// Operation id echoed in the completion.
        op: OpId,
    },
    /// Ancestor traversal over the materialized DAG index: keys only, one
    /// batched frontier exchange per shard per level instead of one
    /// record fetch per hop.
    GetAncestry {
        /// Item key.
        key: String,
        /// Maximum traversal depth.
        depth: u32,
        /// Operation id echoed in the completion.
        op: OpId,
    },
    /// Descendant (impact) traversal over the materialized DAG index.
    GetDescendants {
        /// Item key.
        key: String,
        /// Maximum traversal depth.
        depth: u32,
        /// Operation id echoed in the completion.
        op: OpId,
    },
    /// Transitive closure (ancestors + descendants) over the DAG index.
    GetClosure {
        /// Item key.
        key: String,
        /// Maximum traversal depth.
        depth: u32,
        /// Operation id echoed in the completion.
        op: OpId,
    },
    /// Like `GetClosure` but also returns the edges between visited nodes.
    GetSubgraph {
        /// Item key.
        key: String,
        /// Maximum traversal depth.
        depth: u32,
        /// Operation id echoed in the completion.
        op: OpId,
    },
    /// Remove an item's current record (history remains on-chain).
    Delete {
        /// Item key.
        key: String,
        /// Operation id echoed in the completion.
        op: OpId,
    },
    /// List every live item key on the ledger.
    List {
        /// Operation id echoed in the completion.
        op: OpId,
    },
}

impl ClientCommand {
    /// The operation id carried by this command.
    pub fn op(&self) -> OpId {
        match self {
            ClientCommand::Post { op, .. }
            | ClientCommand::StoreData { op, .. }
            | ClientCommand::Get { op, .. }
            | ClientCommand::GetData { op, .. }
            | ClientCommand::CheckData { op, .. }
            | ClientCommand::GetHistory { op, .. }
            | ClientCommand::GetKeysByChecksum { op, .. }
            | ClientCommand::GetLineage { op, .. }
            | ClientCommand::GetAncestry { op, .. }
            | ClientCommand::GetDescendants { op, .. }
            | ClientCommand::GetClosure { op, .. }
            | ClientCommand::GetSubgraph { op, .. }
            | ClientCommand::Delete { op, .. }
            | ClientCommand::List { op } => *op,
        }
    }
}

/// Errors surfaced by client operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HyperProvError {
    /// The chaincode or a peer rejected the request before ordering.
    Rejected(String),
    /// The network shed the request at admission (backpressure). Transient:
    /// the operation may succeed on retry.
    Busy,
    /// A per-op deadline expired (endorsement or commit-wait phase).
    /// Transient: the fate of the original transaction is unknown, but a
    /// fresh attempt with a new tx id is safe for HyperProv's idempotent
    /// record operations.
    Timeout,
    /// The retry budget was spent without a success; every attempt failed
    /// with a transient error.
    Exhausted {
        /// How many attempts were made (initial try + retries).
        attempts: u32,
    },
    /// The transaction was ordered but invalidated at commit.
    Invalidated(ValidationCode),
    /// Off-chain storage failed.
    Storage(StoreError),
    /// The fetched payload does not match the on-chain checksum.
    IntegrityViolation {
        /// Checksum recorded on-chain.
        expected: Digest,
        /// Checksum of the fetched bytes.
        actual: Digest,
    },
    /// A response could not be decoded.
    Malformed(String),
}

impl HyperProvError {
    /// True when the error is transient (backpressure or a deadline
    /// expiry) and the operation may succeed if re-submitted.
    pub fn is_transient(&self) -> bool {
        matches!(self, HyperProvError::Busy | HyperProvError::Timeout)
    }
}

impl fmt::Display for HyperProvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HyperProvError::Rejected(why) => write!(f, "rejected: {why}"),
            HyperProvError::Busy => write!(f, "busy: shed at admission"),
            HyperProvError::Timeout => write!(f, "deadline exceeded"),
            HyperProvError::Exhausted { attempts } => {
                write!(f, "retry budget exhausted after {attempts} attempts")
            }
            HyperProvError::Invalidated(code) => write!(f, "invalidated at commit: {code}"),
            HyperProvError::Storage(err) => write!(f, "off-chain storage: {err}"),
            HyperProvError::IntegrityViolation { expected, actual } => write!(
                f,
                "integrity violation: chain records {} but data hashes to {}",
                expected.short(),
                actual.short()
            ),
            HyperProvError::Malformed(why) => write!(f, "malformed response: {why}"),
        }
    }
}

impl std::error::Error for HyperProvError {}

impl From<GatewayError> for HyperProvError {
    /// Preserves the gateway's error structure: transient failures
    /// (backpressure, deadline expiries) keep their own variants so a
    /// retry policy can classify them; genuine rejections keep the
    /// chaincode's message.
    fn from(err: GatewayError) -> Self {
        match err {
            GatewayError::Busy => HyperProvError::Busy,
            GatewayError::EndorseTimeout | GatewayError::CommitTimeout => HyperProvError::Timeout,
            GatewayError::Endorsement { reason } | GatewayError::Query { reason } => {
                HyperProvError::Rejected(reason)
            }
            GatewayError::Mismatch => {
                HyperProvError::Rejected("endorsement mismatch across peers".to_owned())
            }
        }
    }
}

/// Deterministic exponential-backoff-with-jitter retry policy for
/// transient gateway failures ([`GatewayError::Busy`], endorsement
/// timeouts, commit-wait timeouts). Retried transactions are re-submitted
/// with a fresh tx id; all randomness comes from the client actor's
/// seeded stream, so runs are reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempt budget (initial try + retries), at least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: SimDuration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: SimDuration,
    /// Backoff is multiplied by a factor drawn uniformly from
    /// `[1 - jitter_frac, 1 + jitter_frac]`.
    pub jitter_frac: f64,
}

impl RetryPolicy {
    /// A policy with the given attempt budget and the default backoff
    /// shape (50 ms base, 2 s cap, ±20 % jitter).
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero.
    pub fn new(max_attempts: u32) -> Self {
        assert!(max_attempts >= 1, "retry policy needs at least one attempt");
        RetryPolicy {
            max_attempts,
            base_backoff: SimDuration::from_millis(50),
            max_backoff: SimDuration::from_secs(2),
            jitter_frac: 0.2,
        }
    }

    /// The jittered backoff before retry number `retry` (1-based).
    fn backoff(&self, retry: u32, rng: &mut DetRng) -> SimDuration {
        let exp = retry.saturating_sub(1).min(20);
        let raw = self
            .base_backoff
            .mul_f64(f64::from(2u32.saturating_pow(exp)));
        let capped = if raw > self.max_backoff {
            self.max_backoff
        } else {
            raw
        };
        let jitter = self.jitter_frac.clamp(0.0, 1.0);
        let factor = 1.0 + jitter * rng.gen_range(-1.0..=1.0);
        capped.mul_f64(factor)
    }
}

/// Successful operation results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpOutput {
    /// A post/store/delete transaction committed validly.
    Committed {
        /// The stored record as returned by the chaincode (None for
        /// deletes).
        record: Option<ProvenanceRecord>,
        /// The committing transaction.
        tx_id: TxId,
    },
    /// A `get` finished.
    Record(ProvenanceRecord),
    /// A `get_data` finished and verified.
    Data {
        /// The on-chain record.
        record: ProvenanceRecord,
        /// The verified payload.
        data: Vec<u8>,
    },
    /// A `check_data` finished.
    Checked {
        /// Whether the payload matched the on-chain checksum.
        ok: bool,
    },
    /// A `get_history` finished.
    History(Vec<HistoryRecord>),
    /// A `get_keys_by_checksum` finished.
    Keys(Vec<String>),
    /// A `get_lineage` finished.
    Lineage {
        /// The visited records, breadth-first.
        entries: Vec<LineageEntry>,
        /// True when the depth clamp cut the walk short: ancestors beyond
        /// the accepted depth exist but are not in `entries`. Previously
        /// a clamped walk silently returned a partial chain.
        truncated: bool,
    },
    /// A graph query (`get_ancestry` / `get_descendants` / `get_closure`
    /// / `get_subgraph`) finished.
    Graph(GraphSlice),
}

/// A finished client operation.
#[derive(Debug, Clone)]
pub struct ClientCompletion {
    /// The operation.
    pub op: OpId,
    /// When the command entered the client.
    pub started: SimTime,
    /// When the completion was produced.
    pub finished: SimTime,
    /// The outcome.
    pub outcome: Result<OpOutput, HyperProvError>,
}

impl ClientCompletion {
    /// End-to-end latency of the operation.
    pub fn latency(&self) -> hyperprov_sim::SimDuration {
        self.finished - self.started
    }
}

/// Shared queue the embedding code drains for completions.
pub type CompletionQueue = Rc<RefCell<VecDeque<ClientCompletion>>>;

#[derive(Debug)]
enum OpState {
    /// Waiting for a transaction to commit.
    Commit,
    /// Waiting for the chaincode `get` before fetching the payload.
    RecordThenData { check_only: bool },
    /// Waiting for the storage node to return the payload.
    Payload {
        record: Box<ProvenanceRecord>,
        check_only: bool,
    },
    /// Waiting for the storage put before posting metadata.
    StorePut {
        key: String,
        input: Box<RecordInput>,
    },
    /// Waiting for a plain query response.
    Query(QueryKind),
}

#[derive(Debug, Clone, Copy)]
enum QueryKind {
    Get,
    History,
    Keys,
    Lineage {
        /// The accepted (clamped) depth, for truncation detection.
        max_depth: u32,
    },
    Graph,
    List,
}

/// Everything needed to re-submit the current gateway phase of an
/// operation with a fresh tx id (captured only when a retry policy is
/// armed).
#[derive(Debug, Clone)]
struct Redo {
    /// The gateway (channel) the phase was issued on.
    gw: usize,
    /// Full invoke (endorse + order + commit) vs endorse-only query.
    invoke: bool,
    function: &'static str,
    args: Vec<Vec<u8>>,
}

/// A scatter-gather query fanned out to every channel, keyed by an
/// aggregate id; completes when all per-channel responses are in.
#[derive(Debug)]
struct ScatterCtx {
    op: OpId,
    started: SimTime,
    kind: QueryKind,
    /// Responses still outstanding.
    remaining: usize,
    /// Per-gateway result slots, merged (sorted, deduplicated) at the end.
    parts: Vec<Option<Vec<String>>>,
    /// First per-channel failure, reported once the fan-in completes.
    error: Option<HyperProvError>,
}

/// A client-side breadth-first lineage traversal across channels: parent
/// links may cross shards, so each record is fetched from the channel the
/// router assigns to its key, one `get` at a time in BFS order.
#[derive(Debug)]
struct LineageCtx {
    op: OpId,
    started: SimTime,
    max_depth: u32,
    /// Keys already visited (or enqueued) — lineage graphs can be DAGs.
    /// `Rc<str>` so the visited set and the fetch queue share one
    /// allocation per key.
    seen: HashSet<Rc<str>>,
    /// Keys awaiting a fetch, with their depth.
    queue: VecDeque<(u32, Rc<str>)>,
    entries: Vec<LineageEntry>,
    /// The outstanding fetch is the root key (a missing root is an error;
    /// a missing parent is skipped, matching the chaincode's traversal).
    at_root: bool,
    /// Set when the depth clamp stopped the walk with parents left
    /// unvisited, so callers see an explicit truncation marker instead of
    /// a silently partial chain.
    truncated: bool,
}

/// A traversal frontier: `(depth, key)` pairs, keys shared by refcount.
type Frontier = Vec<(u32, Rc<str>)>;

/// Which frontier strategy a cross-shard graph traversal uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GraphMode {
    /// Parent edges live on the shard that owns the child record, so each
    /// frontier key is routed to its owning shard, which expands as deep
    /// as its local graph allows; only keys it does not hold come back
    /// (as the boundary) for the next round.
    Ancestry,
    /// Child edges live on whichever shard committed the child, so every
    /// round scatters the frontier to all shards with a one-level budget
    /// and merges the answers (used for descendants, closure, subgraph).
    Scatter,
}

/// A cross-shard graph traversal: one batched frontier exchange per shard
/// per level, instead of the oracle's one record fetch per hop.
#[derive(Debug)]
struct GraphCtx {
    op: OpId,
    started: SimTime,
    /// The chaincode operation fanned out each round.
    function: &'static str,
    mode: GraphMode,
    max_depth: u32,
    /// Global node budget remaining; exhaustion truncates the traversal.
    budget: usize,
    /// Keys already resolved: recorded as an entry or as terminal
    /// boundary. `Rc<str>` so the bookkeeping sets and the frontier all
    /// share one allocation per key.
    seen: HashSet<Rc<str>>,
    /// Keys ever dispatched as frontier roots (loop guard).
    dispatched: HashSet<Rc<str>>,
    entries: Vec<(u32, String)>,
    /// Terminally unresolved keys (absent from every shard that could
    /// hold them).
    boundary: Vec<(u32, String)>,
    edges: Vec<(String, String)>,
    truncated: bool,
    /// Depth-clamp of the in-flight round (scatter rounds expand one
    /// level at a time; ancestry rounds always pass `max_depth`).
    round_max: u32,
    /// The roots dispatched in the in-flight round.
    round_roots: Vec<(u32, Rc<str>)>,
    /// Responses still outstanding this round.
    remaining: usize,
    /// Responses collected this round, tagged by gateway index.
    round: Vec<(usize, GraphSlice)>,
    /// Frontier for the next round: key -> minimum depth.
    pending: HashMap<Rc<str>, u32>,
    /// First per-shard failure; reported when the round fans in.
    error: Option<HyperProvError>,
}

#[derive(Debug)]
struct OpCtx {
    op: OpId,
    started: SimTime,
    state: OpState,
    /// Gateway attempts made for the current phase (1 = first try).
    attempts: u32,
    /// How to re-issue the current phase, when retries are enabled.
    redo: Option<Redo>,
}

/// The span-trace key of a client operation, e.g. `"op-7"`.
fn op_trace(op: OpId) -> String {
    format!("op-{}", op.0)
}

/// Tag bit identifying the client's retry backoff timers. Disjoint from
/// [`hyperprov_sim::HARNESS_TOKEN_BIT`] (bit 63) and
/// [`hyperprov_fabric::GATEWAY_TOKEN_BIT`] (bit 62).
const CLIENT_RETRY_BIT: u64 = 1 << 61;

/// The client actor.
pub struct HyperProvClient {
    /// One gateway per channel; index = shard index from the router.
    /// Single-element on legacy (unsharded) deployments.
    gateways: Vec<Gateway>,
    router: Box<dyn ChannelRouter>,
    storage: ActorId,
    location_prefix: String,
    costs: CostModel,
    completions: CompletionQueue,
    by_tx: HashMap<TxId, OpCtx>,
    by_store_token: HashMap<u64, OpCtx>,
    next_store_token: u64,
    retry: Option<RetryPolicy>,
    next_retry_token: u64,
    /// Operations sleeping out a backoff, keyed by retry timer token.
    pending_retries: HashMap<u64, OpCtx>,
    /// Scatter-gather queries in flight (multi-channel list /
    /// checksum lookups), keyed by aggregate id.
    scatters: HashMap<u64, ScatterCtx>,
    /// Maps a scatter sub-query's tx id to `(aggregate id, gateway)`.
    scatter_txs: HashMap<TxId, (u64, usize)>,
    next_scatter: u64,
    /// Cross-channel lineage traversals in flight, keyed by traversal id.
    lineages: HashMap<u64, LineageCtx>,
    /// Maps a lineage fetch's tx id to its traversal id.
    lineage_txs: HashMap<TxId, u64>,
    next_lineage: u64,
    /// Cross-channel graph-index traversals in flight, keyed by id.
    graphs: HashMap<u64, GraphCtx>,
    /// Maps a graph sub-query's tx id to `(traversal id, gateway)`.
    graph_txs: HashMap<TxId, (u64, usize)>,
    next_graph: u64,
    harness: ServiceHarness<NodeMsgOf>,
}

impl HyperProvClient {
    /// Creates a client bound to a single-channel gateway and a storage
    /// node.
    ///
    /// `location_prefix` is prepended to content digests to form the
    /// on-chain `location` field (e.g. `"sshfs://store0/"`).
    pub fn new(
        gateway: Gateway,
        storage: ActorId,
        location_prefix: impl Into<String>,
        costs: CostModel,
    ) -> (Self, CompletionQueue) {
        Self::sharded(
            vec![gateway],
            Box::new(HashRouter),
            storage,
            location_prefix,
            costs,
        )
    }

    /// Creates a client spanning several channels: one gateway per shard
    /// (in shard-index order) and a router deciding which shard owns each
    /// item key. Keyed operations go to the owning shard; `list` and
    /// `get_keys_by_checksum` scatter-gather across every shard;
    /// `get_lineage` walks parent links across shards client-side.
    ///
    /// Gateway deadline-token salts are assigned here (`index << 32`), so
    /// several gateways can share this actor's timer space; gateway 0
    /// keeps salt zero and reproduces the single-gateway token stream.
    ///
    /// # Panics
    ///
    /// Panics if `gateways` is empty.
    pub fn sharded(
        gateways: Vec<Gateway>,
        router: Box<dyn ChannelRouter>,
        storage: ActorId,
        location_prefix: impl Into<String>,
        costs: CostModel,
    ) -> (Self, CompletionQueue) {
        assert!(!gateways.is_empty(), "client needs at least one gateway");
        let gateways = gateways
            .into_iter()
            .enumerate()
            .map(|(i, g)| g.with_token_salt((i as u64) << 32))
            .collect();
        let completions: CompletionQueue = Rc::new(RefCell::new(VecDeque::new()));
        (
            HyperProvClient {
                gateways,
                router,
                storage,
                location_prefix: location_prefix.into(),
                costs,
                completions: completions.clone(),
                by_tx: HashMap::new(),
                by_store_token: HashMap::new(),
                next_store_token: 0,
                retry: None,
                next_retry_token: 0,
                pending_retries: HashMap::new(),
                scatters: HashMap::new(),
                scatter_txs: HashMap::new(),
                next_scatter: 0,
                lineages: HashMap::new(),
                lineage_txs: HashMap::new(),
                next_lineage: 0,
                graphs: HashMap::new(),
                graph_txs: HashMap::new(),
                next_graph: 0,
                harness: ServiceHarness::new("client"),
            },
            completions,
        )
    }

    /// The shard (gateway index) owning `key` under the client's router.
    fn route(&self, key: &str) -> usize {
        self.router.route(key, self.gateways.len())
    }

    /// Enables transparent retries of transient gateway failures under
    /// the given policy.
    #[must_use]
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Number of operations currently in flight (including operations
    /// sleeping out a retry backoff).
    pub fn inflight(&self) -> usize {
        self.by_tx.len()
            + self.by_store_token.len()
            + self.pending_retries.len()
            + self.scatters.len()
            + self.lineages.len()
            + self.graphs.len()
    }

    /// Issues (or re-issues) the gateway phase described by
    /// `(gw, invoke, function, args)`, capturing a [`Redo`] when retries
    /// are enabled, and indexes the operation by the fresh tx id.
    fn submit_tx(
        &mut self,
        ctx: &mut Context<'_, NodeMsgOf>,
        mut op_ctx: OpCtx,
        gw: usize,
        invoke: bool,
        function: &'static str,
        args: Vec<Vec<u8>>,
    ) {
        op_ctx.attempts += 1;
        op_ctx.redo = self.retry.map(|_| Redo {
            gw,
            invoke,
            function,
            args: args.clone(),
        });
        let tx_id = if invoke {
            self.gateways[gw].invoke(ctx, &mut self.harness, CHAINCODE_NAME, function, args)
        } else {
            self.gateways[gw].query(ctx, &mut self.harness, CHAINCODE_NAME, function, args)
        };
        self.by_tx.insert(tx_id, op_ctx);
    }

    /// Terminal-vs-retry decision for a failed gateway phase. Transient
    /// errors are retried on a jittered exponential backoff until the
    /// attempt budget is spent; everything else (and every failure when no
    /// policy is armed) completes the operation with the mapped error.
    fn fail_or_retry(
        &mut self,
        ctx: &mut Context<'_, NodeMsgOf>,
        op_ctx: OpCtx,
        error: GatewayError,
    ) {
        if matches!(
            error,
            GatewayError::EndorseTimeout | GatewayError::CommitTimeout
        ) {
            ctx.metrics().incr("client.timeouts", 1);
        }
        if let (true, Some(policy)) = (error.is_retryable(), self.retry) {
            if op_ctx.redo.is_some() && op_ctx.attempts < policy.max_attempts {
                let backoff = policy.backoff(op_ctx.attempts, ctx.rng());
                ctx.metrics().incr("client.retries", 1);
                ctx.metrics().record_duration("client.backoff", backoff);
                ctx.trace_event(
                    &op_trace(op_ctx.op),
                    "op.retry",
                    &format!("attempt={} backoff={backoff}", op_ctx.attempts + 1),
                );
                self.next_retry_token += 1;
                let token = CLIENT_RETRY_BIT | self.next_retry_token;
                self.pending_retries.insert(token, op_ctx);
                ctx.set_timer(backoff, token);
                return;
            }
            let attempts = op_ctx.attempts;
            ctx.metrics().incr("client.exhausted", 1);
            self.complete(ctx, op_ctx, Err(HyperProvError::Exhausted { attempts }));
            return;
        }
        self.complete(ctx, op_ctx, Err(error.into()));
    }

    /// A backoff timer fired: re-issue the parked operation's gateway
    /// phase with a fresh tx id.
    fn on_retry_timer(&mut self, ctx: &mut Context<'_, NodeMsgOf>, token: u64) {
        let Some(mut op_ctx) = self.pending_retries.remove(&token) else {
            return;
        };
        let Some(redo) = op_ctx.redo.take() else {
            return;
        };
        self.submit_tx(ctx, op_ctx, redo.gw, redo.invoke, redo.function, redo.args);
    }

    fn complete(
        &mut self,
        ctx: &mut Context<'_, NodeMsgOf>,
        op_ctx: OpCtx,
        outcome: Result<OpOutput, HyperProvError>,
    ) {
        ctx.span_end(&op_trace(op_ctx.op), "op", "");
        // SLO sources: goodput objectives watch "client.ok", error-rate
        // objectives pair it with "client.err".
        ctx.slo_event(if outcome.is_ok() {
            "client.ok"
        } else {
            "client.err"
        });
        self.completions.borrow_mut().push_back(ClientCompletion {
            op: op_ctx.op,
            started: op_ctx.started,
            finished: ctx.now(),
            outcome,
        });
    }

    fn start(&mut self, ctx: &mut Context<'_, NodeMsgOf>, cmd: ClientCommand) {
        let now = ctx.now();
        let op = cmd.op();
        // End-to-end operator span, closed when the completion is queued.
        ctx.span_start(&op_trace(op), "op", "");
        match cmd {
            ClientCommand::Post { key, input, op } => {
                let gw = self.route(&key);
                let args = vec![key.into_bytes(), hyperprov_ledger::Encode::to_bytes(&input)];
                let op_ctx = OpCtx {
                    op,
                    started: now,
                    state: OpState::Commit,
                    attempts: 0,
                    redo: None,
                };
                self.submit_tx(ctx, op_ctx, gw, true, "post", args);
            }
            ClientCommand::StoreData {
                key,
                data,
                parents,
                metadata,
                op,
            } => {
                // Client-side checksum of the payload: the dominant client
                // CPU cost for large items (per the paper's Fig. 1 and 2).
                let checksum = Digest::of(&data);
                let hash_cost = self.costs.hash_cost(data.len() as u64);
                self.harness.charge(ctx, hash_cost);
                let mut input = RecordInput::new(checksum)
                    .with_location(
                        format!("{}{}", self.location_prefix, checksum.to_hex()),
                        data.len() as u64,
                    )
                    .with_parents(parents)
                    .with_timestamp(now.as_nanos() / 1_000_000);
                for (k, v) in metadata {
                    input = input.with_meta(k, v);
                }
                self.next_store_token += 1;
                let token = self.next_store_token;
                self.by_store_token.insert(
                    token,
                    OpCtx {
                        op,
                        started: now,
                        state: OpState::StorePut {
                            key,
                            input: Box::new(input),
                        },
                        attempts: 0,
                        redo: None,
                    },
                );
                // Off-chain transfer phase of a StoreData, closed on the
                // PutAck.
                ctx.span_start(&op_trace(op), "offchain.put", "");
                let msg = StoreMsg::Put {
                    name: checksum.to_hex(),
                    data,
                    token,
                };
                let bytes = msg.wire_size();
                let storage = self.storage;
                ctx.send(storage, bytes, NodeMsgOf::wrap(msg));
            }
            ClientCommand::Get { key, op } => {
                let gw = self.route(&key);
                self.start_query(
                    ctx,
                    now,
                    op,
                    gw,
                    "get",
                    vec![key.into_bytes()],
                    QueryKind::Get,
                );
            }
            ClientCommand::GetData { key, op } => {
                let gw = self.route(&key);
                let op_ctx = OpCtx {
                    op,
                    started: now,
                    state: OpState::RecordThenData { check_only: false },
                    attempts: 0,
                    redo: None,
                };
                self.submit_tx(ctx, op_ctx, gw, false, "get", vec![key.into_bytes()]);
            }
            ClientCommand::CheckData { key, op } => {
                let gw = self.route(&key);
                let op_ctx = OpCtx {
                    op,
                    started: now,
                    state: OpState::RecordThenData { check_only: true },
                    attempts: 0,
                    redo: None,
                };
                self.submit_tx(ctx, op_ctx, gw, false, "get", vec![key.into_bytes()]);
            }
            ClientCommand::GetHistory { key, op } => {
                let gw = self.route(&key);
                self.start_query(
                    ctx,
                    now,
                    op,
                    gw,
                    "get_history",
                    vec![key.into_bytes()],
                    QueryKind::History,
                );
            }
            ClientCommand::GetKeysByChecksum { checksum, op } => {
                if self.gateways.len() > 1 {
                    self.start_scatter(
                        ctx,
                        now,
                        op,
                        "get_keys_by_checksum",
                        vec![checksum.to_hex().into_bytes()],
                        QueryKind::Keys,
                    );
                } else {
                    self.start_query(
                        ctx,
                        now,
                        op,
                        0,
                        "get_keys_by_checksum",
                        vec![checksum.to_hex().into_bytes()],
                        QueryKind::Keys,
                    );
                }
            }
            ClientCommand::GetLineage { key, depth, op } => {
                if self.gateways.len() > 1 {
                    self.start_lineage(ctx, now, op, key, depth);
                } else {
                    self.start_query(
                        ctx,
                        now,
                        op,
                        0,
                        "get_lineage",
                        vec![key.into_bytes(), depth.to_string().into_bytes()],
                        QueryKind::Lineage {
                            max_depth: depth.min(MAX_LINEAGE_DEPTH),
                        },
                    );
                }
            }
            ClientCommand::GetAncestry { key, depth, op } => {
                self.start_graph(
                    ctx,
                    now,
                    op,
                    "get_ancestry",
                    GraphMode::Ancestry,
                    key,
                    depth,
                );
            }
            ClientCommand::GetDescendants { key, depth, op } => {
                self.start_graph(
                    ctx,
                    now,
                    op,
                    "get_descendants",
                    GraphMode::Scatter,
                    key,
                    depth,
                );
            }
            ClientCommand::GetClosure { key, depth, op } => {
                self.start_graph(ctx, now, op, "get_closure", GraphMode::Scatter, key, depth);
            }
            ClientCommand::GetSubgraph { key, depth, op } => {
                self.start_graph(ctx, now, op, "get_subgraph", GraphMode::Scatter, key, depth);
            }
            ClientCommand::Delete { key, op } => {
                let gw = self.route(&key);
                let op_ctx = OpCtx {
                    op,
                    started: now,
                    state: OpState::Commit,
                    attempts: 0,
                    redo: None,
                };
                self.submit_tx(ctx, op_ctx, gw, true, "delete", vec![key.into_bytes()]);
            }
            ClientCommand::List { op } => {
                if self.gateways.len() > 1 {
                    self.start_scatter(ctx, now, op, "list", vec![], QueryKind::List);
                } else {
                    self.start_query(ctx, now, op, 0, "list", vec![], QueryKind::List);
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn start_query(
        &mut self,
        ctx: &mut Context<'_, NodeMsgOf>,
        now: SimTime,
        op: OpId,
        gw: usize,
        function: &'static str,
        args: Vec<Vec<u8>>,
        kind: QueryKind,
    ) {
        let op_ctx = OpCtx {
            op,
            started: now,
            state: OpState::Query(kind),
            attempts: 0,
            redo: None,
        };
        self.submit_tx(ctx, op_ctx, gw, false, function, args);
    }

    /// Fans one query out to every channel; results fan in via
    /// [`Self::on_scatter_response`].
    fn start_scatter(
        &mut self,
        ctx: &mut Context<'_, NodeMsgOf>,
        now: SimTime,
        op: OpId,
        function: &'static str,
        mut args: Vec<Vec<u8>>,
        kind: QueryKind,
    ) {
        self.next_scatter += 1;
        let id = self.next_scatter;
        let n = self.gateways.len();
        for gw in 0..n {
            // The last shard takes the arguments by move; earlier shards
            // get a copy.
            let shard_args = if gw + 1 == n {
                std::mem::take(&mut args)
            } else {
                args.clone()
            };
            let tx_id = self.gateways[gw].query(
                ctx,
                &mut self.harness,
                CHAINCODE_NAME,
                function,
                shard_args,
            );
            self.scatter_txs.insert(tx_id, (id, gw));
        }
        self.scatters.insert(
            id,
            ScatterCtx {
                op,
                started: now,
                kind,
                remaining: n,
                parts: vec![None; n],
                error: None,
            },
        );
    }

    /// One shard of a scatter-gather query answered (`tx_id` was found in
    /// `scatter_txs`). When the last shard is in, the merged (sorted,
    /// deduplicated) key set — or the first error — completes the op.
    fn on_scatter_response(
        &mut self,
        ctx: &mut Context<'_, NodeMsgOf>,
        id: u64,
        gw: usize,
        result: Result<Vec<u8>, GatewayError>,
    ) {
        let Some(scatter) = self.scatters.get_mut(&id) else {
            return;
        };
        match result {
            Ok(bytes) => match Vec::<String>::from_bytes(&bytes) {
                Ok(keys) => scatter.parts[gw] = Some(keys),
                Err(e) => {
                    scatter
                        .error
                        .get_or_insert(HyperProvError::Malformed(e.to_string()));
                }
            },
            Err(error) => {
                scatter.error.get_or_insert(error.into());
            }
        }
        scatter.remaining -= 1;
        if scatter.remaining > 0 {
            return;
        }
        let scatter = self
            .scatters
            .remove(&id)
            .expect("invariant: entry matched above");
        let outcome = match scatter.error {
            Some(error) => Err(error),
            None => {
                let mut keys: Vec<String> = scatter.parts.into_iter().flatten().flatten().collect();
                keys.sort();
                keys.dedup();
                Ok(OpOutput::Keys(keys))
            }
        };
        self.complete(
            ctx,
            OpCtx {
                op: scatter.op,
                started: scatter.started,
                state: OpState::Query(scatter.kind),
                attempts: 0,
                redo: None,
            },
            outcome,
        );
    }

    /// Starts a cross-channel lineage traversal rooted at `key`: a
    /// breadth-first walk fetching each record from its owning shard.
    fn start_lineage(
        &mut self,
        ctx: &mut Context<'_, NodeMsgOf>,
        now: SimTime,
        op: OpId,
        key: String,
        depth: u32,
    ) {
        self.next_lineage += 1;
        let id = self.next_lineage;
        let key: Rc<str> = Rc::from(key);
        let mut seen = HashSet::new();
        seen.insert(key.clone());
        let mut queue = VecDeque::new();
        queue.push_back((0, key.clone()));
        self.lineages.insert(
            id,
            LineageCtx {
                op,
                started: now,
                max_depth: depth.min(MAX_LINEAGE_DEPTH),
                seen,
                queue,
                entries: Vec::new(),
                at_root: true,
                truncated: false,
            },
        );
        self.fetch_lineage_key(ctx, id, &key);
    }

    /// Issues the `get` for the next lineage key on its owning shard.
    fn fetch_lineage_key(&mut self, ctx: &mut Context<'_, NodeMsgOf>, id: u64, key: &str) {
        let gw = self.route(key);
        let tx_id = self.gateways[gw].query(
            ctx,
            &mut self.harness,
            CHAINCODE_NAME,
            "get",
            vec![key.as_bytes().to_vec()],
        );
        self.lineage_txs.insert(tx_id, id);
    }

    /// One lineage fetch answered. Appends the record (if found), enqueues
    /// unseen parents, and either issues the next fetch or completes.
    fn on_lineage_response(
        &mut self,
        ctx: &mut Context<'_, NodeMsgOf>,
        id: u64,
        result: Result<Vec<u8>, GatewayError>,
    ) {
        let Some(lineage) = self.lineages.get_mut(&id) else {
            return;
        };
        let Some((depth, _key)) = lineage.queue.pop_front() else {
            return;
        };
        let at_root = lineage.at_root;
        lineage.at_root = false;
        match result {
            Ok(bytes) => match ProvenanceRecord::from_bytes(&bytes) {
                Ok(record) => {
                    if depth < lineage.max_depth {
                        for parent in &record.parents {
                            if !lineage.seen.contains(parent.as_str()) {
                                let parent: Rc<str> = Rc::from(parent.as_str());
                                lineage.seen.insert(parent.clone());
                                lineage.queue.push_back((depth + 1, parent));
                            }
                        }
                    } else if record
                        .parents
                        .iter()
                        .any(|p| !lineage.seen.contains(p.as_str()))
                    {
                        // The depth clamp stopped the walk with unvisited
                        // ancestors remaining: report it instead of
                        // silently returning a partial chain.
                        lineage.truncated = true;
                    }
                    lineage.entries.push(LineageEntry { depth, record });
                }
                Err(e) => {
                    let lineage = self
                        .lineages
                        .remove(&id)
                        .expect("invariant: entry matched above");
                    self.complete_lineage(
                        ctx,
                        lineage,
                        Err(HyperProvError::Malformed(e.to_string())),
                    );
                    return;
                }
            },
            Err(error) if at_root => {
                // Missing or failed root: surface the error, matching the
                // chaincode's NotFound on an unknown key.
                let lineage = self
                    .lineages
                    .remove(&id)
                    .expect("invariant: entry matched above");
                self.complete_lineage(ctx, lineage, Err(error.into()));
                return;
            }
            Err(_) => {
                // A parent missing on its shard is skipped, exactly as the
                // chaincode's BFS skips parents absent from state.
            }
        }
        match lineage.queue.front() {
            Some((_, next)) => {
                let next = next.clone();
                self.fetch_lineage_key(ctx, id, &next);
            }
            None => {
                let mut lineage = self
                    .lineages
                    .remove(&id)
                    .expect("invariant: entry matched above");
                let entries = std::mem::take(&mut lineage.entries);
                let truncated = lineage.truncated;
                self.complete_lineage(ctx, lineage, Ok(OpOutput::Lineage { entries, truncated }));
            }
        }
    }

    fn complete_lineage(
        &mut self,
        ctx: &mut Context<'_, NodeMsgOf>,
        lineage: LineageCtx,
        outcome: Result<OpOutput, HyperProvError>,
    ) {
        self.complete(
            ctx,
            OpCtx {
                op: lineage.op,
                started: lineage.started,
                state: OpState::Query(QueryKind::Lineage {
                    max_depth: lineage.max_depth,
                }),
                attempts: 0,
                redo: None,
            },
            outcome,
        );
    }

    /// Starts a graph-index traversal rooted at `key`. On a single
    /// channel this is one query answered entirely from the peer's DAG
    /// index; across shards it runs batched frontier rounds (see
    /// [`GraphMode`]).
    #[allow(clippy::too_many_arguments)]
    fn start_graph(
        &mut self,
        ctx: &mut Context<'_, NodeMsgOf>,
        now: SimTime,
        op: OpId,
        function: &'static str,
        mode: GraphMode,
        key: String,
        depth: u32,
    ) {
        let max_depth = depth.min(MAX_LINEAGE_DEPTH);
        if self.gateways.len() == 1 {
            let args = vec![
                max_depth.to_string().into_bytes(),
                MAX_GRAPH_NODES.to_string().into_bytes(),
                format!("0:{key}").into_bytes(),
            ];
            self.start_query(ctx, now, op, 0, function, args, QueryKind::Graph);
            return;
        }
        self.next_graph += 1;
        let id = self.next_graph;
        let mut pending = HashMap::new();
        pending.insert(Rc::from(key), 0);
        self.graphs.insert(
            id,
            GraphCtx {
                op,
                started: now,
                function,
                mode,
                max_depth,
                budget: MAX_GRAPH_NODES,
                seen: HashSet::new(),
                dispatched: HashSet::new(),
                entries: Vec::new(),
                boundary: Vec::new(),
                edges: Vec::new(),
                truncated: false,
                round_max: 0,
                round_roots: Vec::new(),
                remaining: 0,
                round: Vec::new(),
                pending,
                error: None,
            },
        );
        self.dispatch_graph_round(ctx, id);
    }

    /// Issues the next frontier round of a cross-shard graph traversal,
    /// or completes it when the frontier is empty. One query per shard
    /// per round, each carrying the whole depth-tagged frontier that
    /// shard must expand.
    fn dispatch_graph_round(&mut self, ctx: &mut Context<'_, NodeMsgOf>, id: u64) {
        let n = self.gateways.len();
        let (frontier, mode, max_depth, budget, function) = {
            let Some(gctx) = self.graphs.get_mut(&id) else {
                return;
            };
            // Drain the frontier in deterministic order (the map's
            // iteration order is not deterministic).
            let mut frontier: Vec<(u32, Rc<str>)> =
                gctx.pending.drain().map(|(k, d)| (d, k)).collect();
            frontier.sort();
            if gctx.budget == 0 && !frontier.is_empty() {
                gctx.truncated = true;
            }
            (
                frontier,
                gctx.mode,
                gctx.max_depth,
                gctx.budget,
                gctx.function,
            )
        };
        if frontier.is_empty() || budget == 0 {
            if let Some(gctx) = self.graphs.remove(&id) {
                self.complete_graph(ctx, gctx);
            }
            return;
        }
        let (round_max, per_shard): (u32, BTreeMap<usize, Frontier>) = match mode {
            // Parent edges are recorded on the shard owning the child, so
            // each frontier key goes to its owner, which expands as deep
            // as its local graph reaches (round_max = the global clamp).
            GraphMode::Ancestry => {
                let mut per: BTreeMap<usize, Vec<(u32, Rc<str>)>> = BTreeMap::new();
                for (d, k) in frontier.iter().cloned() {
                    per.entry(self.router.route(&k, n))
                        .or_default()
                        .push((d, k));
                }
                (max_depth, per)
            }
            // Child edges live wherever the child committed, so the whole
            // frontier scatters to every shard with a one-level budget;
            // when the frontier sits at the clamp this is a resolve-only
            // round (live-or-missing, no expansion). Cloning the frontier
            // per shard only bumps refcounts.
            GraphMode::Scatter => {
                let level = frontier.iter().map(|(d, _)| *d).min().unwrap_or(0);
                let round_max = (level + 1).min(max_depth);
                (
                    (round_max),
                    (0..n).map(|gw| (gw, frontier.clone())).collect(),
                )
            }
        };
        let mut queries = 0;
        for (gw, roots) in &per_shard {
            let mut args = vec![
                round_max.to_string().into_bytes(),
                budget.to_string().into_bytes(),
            ];
            args.extend(roots.iter().map(|(d, k)| format!("{d}:{k}").into_bytes()));
            let tx_id =
                self.gateways[*gw].query(ctx, &mut self.harness, CHAINCODE_NAME, function, args);
            self.graph_txs.insert(tx_id, (id, *gw));
            queries += 1;
        }
        let gctx = self.graphs.get_mut(&id).expect("checked above");
        gctx.round_max = round_max;
        for (_, k) in &frontier {
            gctx.dispatched.insert(k.clone());
        }
        gctx.round_roots = frontier;
        gctx.remaining = queries;
        gctx.round.clear();
    }

    /// One shard of a graph round answered. When the round fans in, the
    /// responses are merged and the next frontier dispatched.
    fn on_graph_response(
        &mut self,
        ctx: &mut Context<'_, NodeMsgOf>,
        id: u64,
        gw: usize,
        result: Result<Vec<u8>, GatewayError>,
    ) {
        let Some(gctx) = self.graphs.get_mut(&id) else {
            return;
        };
        match result {
            Ok(bytes) => match GraphSlice::from_bytes(&bytes) {
                Ok(slice) => gctx.round.push((gw, slice)),
                Err(e) => {
                    gctx.error
                        .get_or_insert(HyperProvError::Malformed(e.to_string()));
                }
            },
            Err(error) => {
                gctx.error.get_or_insert(error.into());
            }
        }
        gctx.remaining -= 1;
        if gctx.remaining > 0 {
            return;
        }
        if gctx.error.is_some() {
            let mut gctx = self.graphs.remove(&id).expect("invariant: matched above");
            let error = gctx.error.take().expect("checked above");
            let op_ctx = OpCtx {
                op: gctx.op,
                started: gctx.started,
                state: OpState::Query(QueryKind::Graph),
                attempts: 0,
                redo: None,
            };
            self.complete(ctx, op_ctx, Err(error));
            return;
        }
        self.fold_graph_round(ctx, id);
        self.dispatch_graph_round(ctx, id);
    }

    /// Merges one completed round into the traversal state and builds the
    /// next frontier.
    fn fold_graph_round(&mut self, _ctx: &mut Context<'_, NodeMsgOf>, id: u64) {
        let n = self.gateways.len();
        let Some(gctx) = self.graphs.get_mut(&id) else {
            return;
        };
        let mut round = std::mem::take(&mut gctx.round);
        round.sort_by_key(|(gw, _)| *gw);
        let mode = gctx.mode;
        let max_depth = gctx.max_depth;
        // Entries first: a key counts as live if any shard holds it (it
        // is live on exactly its owning shard, so there are no
        // conflicting reports to reconcile).
        for (_, slice) in &round {
            for (d, k) in &slice.entries {
                if gctx.seen.contains(k.as_str()) {
                    continue;
                }
                if gctx.budget == 0 {
                    gctx.truncated = true;
                    continue;
                }
                let shared: Rc<str> = Rc::from(k.as_str());
                gctx.seen.insert(shared.clone());
                gctx.budget -= 1;
                gctx.entries.push((*d, k.clone()));
                // Scatter rounds expand one level per round, so newly
                // discovered live keys join the next frontier; ancestry
                // rounds already expanded to the clamp on the owner.
                if mode == GraphMode::Scatter
                    && *d < max_depth
                    && !gctx.dispatched.contains(k.as_str())
                {
                    let e = gctx.pending.entry(shared).or_insert(*d);
                    *e = (*e).min(*d);
                }
            }
        }
        // Then the boundaries: keys the answering shard does not hold.
        for (gw, slice) in &round {
            for (d, k) in &slice.boundary {
                if gctx.seen.contains(k.as_str()) {
                    continue;
                }
                match mode {
                    GraphMode::Ancestry => {
                        if self.router.route(k, n) == *gw {
                            // The owner itself lacks the key: terminally
                            // unresolved (deleted or never posted).
                            gctx.seen.insert(Rc::from(k.as_str()));
                            gctx.boundary.push((*d, k.clone()));
                        } else if !gctx.dispatched.contains(k.as_str()) {
                            match gctx.pending.get_mut(k.as_str()) {
                                Some(e) => *e = (*e).min(*d),
                                None => {
                                    gctx.pending.insert(Rc::from(k.as_str()), *d);
                                }
                            }
                        }
                    }
                    GraphMode::Scatter => {
                        // Liveness is settled when the key's own round
                        // fans in; until then it stays on the frontier.
                        if !gctx.dispatched.contains(k.as_str()) {
                            match gctx.pending.get_mut(k.as_str()) {
                                Some(e) => *e = (*e).min(*d),
                                None => {
                                    gctx.pending.insert(Rc::from(k.as_str()), *d);
                                }
                            }
                        }
                    }
                }
            }
        }
        // Scatter roots no shard reported live are terminally unresolved.
        if mode == GraphMode::Scatter {
            let roots = std::mem::take(&mut gctx.round_roots);
            for (d, k) in roots {
                if !gctx.seen.contains(&*k) {
                    gctx.boundary.push((d, k.to_string()));
                    gctx.seen.insert(k);
                }
            }
        }
        for (_, slice) in &mut round {
            gctx.edges.append(&mut slice.edges);
        }
        // A peer's truncation flag is meaningful only when the round ran
        // at the global clamp (intermediate scatter rounds are clamped on
        // purpose — their cut edges are the next frontier).
        if gctx.round_max == max_depth && round.iter().any(|(_, s)| s.truncated) {
            gctx.truncated = true;
        }
    }

    /// Completes a cross-shard graph traversal with its merged slice.
    fn complete_graph(&mut self, ctx: &mut Context<'_, NodeMsgOf>, mut gctx: GraphCtx) {
        gctx.entries.sort();
        gctx.boundary.sort();
        gctx.edges.sort();
        gctx.edges.dedup();
        let slice = GraphSlice {
            entries: std::mem::take(&mut gctx.entries),
            boundary: std::mem::take(&mut gctx.boundary),
            edges: std::mem::take(&mut gctx.edges),
            truncated: gctx.truncated,
        };
        let op_ctx = OpCtx {
            op: gctx.op,
            started: gctx.started,
            state: OpState::Query(QueryKind::Graph),
            attempts: 0,
            redo: None,
        };
        self.complete(ctx, op_ctx, Ok(OpOutput::Graph(slice)));
    }

    fn on_gateway_event(&mut self, ctx: &mut Context<'_, NodeMsgOf>, event: GatewayEvent) {
        match event {
            GatewayEvent::TxCommitted {
                tx_id,
                code,
                payload,
                ..
            } => {
                if let Some(op_ctx) = self.by_tx.remove(&tx_id) {
                    let outcome = if code.is_valid() {
                        let record = ProvenanceRecord::from_bytes(&payload).ok();
                        Ok(OpOutput::Committed { record, tx_id })
                    } else {
                        Err(HyperProvError::Invalidated(code))
                    };
                    self.complete(ctx, op_ctx, outcome);
                }
            }
            GatewayEvent::TxFailed { tx_id, error } => {
                if let Some(op_ctx) = self.by_tx.remove(&tx_id) {
                    self.fail_or_retry(ctx, op_ctx, error);
                }
            }
            GatewayEvent::QueryDone { tx_id, result, .. } => {
                if let Some((id, gw)) = self.scatter_txs.remove(&tx_id) {
                    self.on_scatter_response(ctx, id, gw, result);
                    return;
                }
                if let Some(id) = self.lineage_txs.remove(&tx_id) {
                    self.on_lineage_response(ctx, id, result);
                    return;
                }
                if let Some((id, gw)) = self.graph_txs.remove(&tx_id) {
                    self.on_graph_response(ctx, id, gw, result);
                    return;
                }
                let Some(op_ctx) = self.by_tx.remove(&tx_id) else {
                    return;
                };
                let OpCtx {
                    op,
                    started,
                    state,
                    attempts,
                    redo,
                } = op_ctx;
                let rebuilt = move |state| OpCtx {
                    op,
                    started,
                    state,
                    attempts,
                    redo,
                };
                match (result, state) {
                    (Err(error), state) => {
                        self.fail_or_retry(ctx, rebuilt(state), error);
                    }
                    (Ok(bytes), OpState::Query(kind)) => {
                        let outcome = decode_query(kind, &bytes);
                        self.complete(ctx, rebuilt(OpState::Query(kind)), outcome);
                    }
                    (Ok(bytes), OpState::RecordThenData { check_only }) => {
                        match ProvenanceRecord::from_bytes(&bytes) {
                            Ok(record) if record.has_offchain_data() => {
                                self.next_store_token += 1;
                                let token = self.next_store_token;
                                // The object name is the checksum hex (the
                                // location's last path component).
                                let name = record
                                    .location
                                    .rsplit('/')
                                    .next()
                                    .unwrap_or(&record.location)
                                    .to_owned();
                                self.by_store_token.insert(
                                    token,
                                    rebuilt(OpState::Payload {
                                        record: Box::new(record),
                                        check_only,
                                    }),
                                );
                                // Off-chain fetch phase of a GetData /
                                // CheckData, closed on the GetResult.
                                ctx.span_start(&op_trace(op), "offchain.get", "");
                                let msg = StoreMsg::Get { name, token };
                                let bytes = msg.wire_size();
                                let storage = self.storage;
                                ctx.send(storage, bytes, NodeMsgOf::wrap(msg));
                            }
                            Ok(_) => {
                                self.complete(
                                    ctx,
                                    rebuilt(OpState::RecordThenData { check_only }),
                                    Err(HyperProvError::Rejected(
                                        "item has no off-chain payload".to_owned(),
                                    )),
                                );
                            }
                            Err(err) => {
                                self.complete(
                                    ctx,
                                    rebuilt(OpState::RecordThenData { check_only }),
                                    Err(HyperProvError::Malformed(err.to_string())),
                                );
                            }
                        }
                    }
                    (Ok(_), state) => {
                        self.complete(
                            ctx,
                            rebuilt(state),
                            Err(HyperProvError::Malformed(
                                "unexpected query response".to_owned(),
                            )),
                        );
                    }
                }
            }
        }
    }

    fn on_store_msg(&mut self, ctx: &mut Context<'_, NodeMsgOf>, msg: StoreMsg) {
        match msg {
            StoreMsg::PutAck { token, result, .. } => {
                let Some(op_ctx) = self.by_store_token.remove(&token) else {
                    return;
                };
                let OpCtx {
                    op, started, state, ..
                } = op_ctx;
                ctx.span_end(&op_trace(op), "offchain.put", "");
                match (result, state) {
                    (Ok(()), OpState::StorePut { key, input }) => {
                        // Payload stored: now post the metadata on-chain,
                        // on the shard that owns the key. The gateway
                        // phase starts here, with a fresh retry budget.
                        let gw = self.route(&key);
                        let args = vec![
                            key.into_bytes(),
                            hyperprov_ledger::Encode::to_bytes(input.as_ref()),
                        ];
                        let op_ctx = OpCtx {
                            op,
                            started,
                            state: OpState::Commit,
                            attempts: 0,
                            redo: None,
                        };
                        self.submit_tx(ctx, op_ctx, gw, true, "post", args);
                    }
                    (Err(err), state) => {
                        self.complete(
                            ctx,
                            OpCtx {
                                op,
                                started,
                                state,
                                attempts: 0,
                                redo: None,
                            },
                            Err(HyperProvError::Storage(err)),
                        );
                    }
                    (Ok(()), state) => {
                        self.complete(
                            ctx,
                            OpCtx {
                                op,
                                started,
                                state,
                                attempts: 0,
                                redo: None,
                            },
                            Err(HyperProvError::Malformed("unexpected put ack".to_owned())),
                        );
                    }
                }
            }
            StoreMsg::GetResult { token, result, .. } => {
                let Some(op_ctx) = self.by_store_token.remove(&token) else {
                    return;
                };
                let OpCtx {
                    op, started, state, ..
                } = op_ctx;
                ctx.span_end(&op_trace(op), "offchain.get", "");
                let OpState::Payload { record, check_only } = state else {
                    return;
                };
                let outcome = match result {
                    Ok(data) => {
                        // Client-side verification hash.
                        let hash_cost = self.costs.hash_cost(data.len() as u64);
                        self.harness.charge(ctx, hash_cost);
                        let actual = Digest::of(&data);
                        let ok = actual == record.checksum;
                        if check_only {
                            Ok(OpOutput::Checked { ok })
                        } else if ok {
                            Ok(OpOutput::Data {
                                record: *record,
                                data,
                            })
                        } else {
                            Err(HyperProvError::IntegrityViolation {
                                expected: record.checksum,
                                actual,
                            })
                        }
                    }
                    Err(err) => {
                        if check_only {
                            Ok(OpOutput::Checked { ok: false })
                        } else {
                            Err(HyperProvError::Storage(err))
                        }
                    }
                };
                self.complete(
                    ctx,
                    OpCtx {
                        op,
                        started,
                        state: OpState::Commit,
                        attempts: 0,
                        redo: None,
                    },
                    outcome,
                );
            }
            _ => {}
        }
    }
}

fn decode_query(kind: QueryKind, bytes: &[u8]) -> Result<OpOutput, HyperProvError> {
    let malformed = |e: hyperprov_ledger::CodecError| HyperProvError::Malformed(e.to_string());
    match kind {
        QueryKind::Get => Ok(OpOutput::Record(
            ProvenanceRecord::from_bytes(bytes).map_err(malformed)?,
        )),
        QueryKind::History => Ok(OpOutput::History(decode_history(bytes).map_err(malformed)?)),
        QueryKind::Keys | QueryKind::List => Ok(OpOutput::Keys(
            Vec::<String>::from_bytes(bytes).map_err(malformed)?,
        )),
        QueryKind::Lineage { max_depth } => {
            let entries = decode_lineage(bytes).map_err(malformed)?;
            let truncated = lineage_truncated(&entries, max_depth);
            Ok(OpOutput::Lineage { entries, truncated })
        }
        QueryKind::Graph => Ok(OpOutput::Graph(
            GraphSlice::from_bytes(bytes).map_err(malformed)?,
        )),
    }
}

/// Truncation detection for the single-shard lineage path, where the wire
/// format carries no explicit marker: an entry sitting at the depth clamp
/// whose parent never appears in the returned set means the walk was cut
/// short. (A parent deleted from state reads the same way — the chaincode
/// BFS cannot distinguish the two without extra reads.)
fn lineage_truncated(entries: &[LineageEntry], max_depth: u32) -> bool {
    let keys: HashSet<&str> = entries.iter().map(|e| e.record.key.as_str()).collect();
    entries.iter().any(|e| {
        e.depth == max_depth && e.record.parents.iter().any(|p| !keys.contains(p.as_str()))
    })
}

/// The message type [`HyperProvClient`] is written against.
pub type NodeMsgOf = crate::net::NodeMsg;

impl HyperProvClient {
    /// Which gateway an incoming Fabric message belongs to: the one that
    /// has the message's transaction in flight. Messages no gateway
    /// recognises (stale commit notifications for other clients' txs) go
    /// to gateway 0, which ignores them — exactly the single-gateway
    /// behaviour.
    fn gateway_for(&self, msg: &FabricMsg) -> usize {
        if self.gateways.len() == 1 {
            return 0;
        }
        let tx_id = match msg {
            FabricMsg::ProposalResult(resp) => &resp.tx_id,
            FabricMsg::Commit(event) => &event.tx_id,
            _ => return 0,
        };
        self.gateways
            .iter()
            .position(|g| g.knows(tx_id))
            .unwrap_or(0)
    }
}

impl Actor<NodeMsgOf> for HyperProvClient {
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn on_event(&mut self, ctx: &mut Context<'_, NodeMsgOf>, event: Event<NodeMsgOf>) {
        match event {
            Event::Message { msg, .. } => match msg {
                crate::net::NodeMsg::Client(cmd) => self.start(ctx, cmd),
                crate::net::NodeMsg::Fabric(fmsg) => {
                    let gw = self.gateway_for(&fmsg);
                    let events = self.gateways[gw].handle(ctx, fmsg);
                    for ev in events {
                        self.on_gateway_event(ctx, ev);
                    }
                }
                crate::net::NodeMsg::Store(smsg) => self.on_store_msg(ctx, smsg),
            },
            Event::Timer { token } => {
                if Gateway::owns_timer(token) {
                    // A per-op deadline (endorse or commit-wait) expired;
                    // deadline-token salts make ownership unambiguous.
                    let gw = self
                        .gateways
                        .iter()
                        .position(|g| g.owns_deadline(token))
                        .unwrap_or(0);
                    let events = self.gateways[gw].on_timer(ctx, token);
                    for ev in events {
                        self.on_gateway_event(ctx, ev);
                    }
                } else if token & CLIENT_RETRY_BIT != 0
                    && token & hyperprov_sim::HARNESS_TOKEN_BIT == 0
                {
                    self.on_retry_timer(ctx, token);
                } else {
                    // CPU-accounting charges (hashing, signing) release
                    // here.
                    let _ = self.harness.on_timer(ctx, token);
                }
            }
        }
    }
}

impl fmt::Debug for HyperProvClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HyperProvClient")
            .field("gateways", &self.gateways.len())
            .field("inflight_tx", &self.by_tx.len())
            .field("inflight_store", &self.by_store_token.len())
            .finish()
    }
}
