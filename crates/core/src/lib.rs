//! # hyperprov
//!
//! A Rust reproduction of **HyperProv** (Tunstad, Khan, Ha — Middleware
//! 2019): decentralized, resilient data provenance at the edge with
//! permissioned blockchains.
//!
//! HyperProv stores provenance *metadata* — checksum, data location,
//! creator certificate, parent items, custom fields — in a tamper-proof
//! ledger, while the payload itself lives in pluggable off-chain storage.
//! This crate provides:
//!
//! * [`ProvenanceRecord`]/[`RecordInput`] — the on-chain record model,
//! * [`HyperProvChaincode`] — the smart contract (`post`, `get`,
//!   `get_history`, `get_keys_by_checksum`, `get_lineage`, `list`,
//!   `delete`),
//! * [`HyperProvClient`] — the client library (the NodeJS SDK equivalent),
//! * [`HyperProv`] — a blocking facade over a complete simulated
//!   deployment ([`NetworkConfig::desktop`] and [`NetworkConfig::rpi`]
//!   mirror the paper's two testbeds),
//! * [`OpmGraph`] — Open Provenance Model export, and
//! * [`audit`] — ledger/off-chain integrity auditing.
//!
//! # Quick start
//!
//! ```
//! use hyperprov::HyperProv;
//!
//! let mut hp = HyperProv::desktop();
//! hp.store_data("sensor-frame", b"...jpeg bytes...".to_vec(), vec![], vec![])?;
//! let lineage = hp.get_lineage("sensor-frame", 4)?;
//! assert_eq!(lineage.len(), 1);
//! # Ok::<(), hyperprov::HyperProvError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chaincode;
mod client;
mod deploy;
mod facade;
mod net;
mod opm;
mod record;
mod router;
mod verify;

pub use chaincode::{
    HyperProvChaincode, HyperProvIndexer, CHAINCODE_NAME, MAX_GRAPH_NODES, MAX_LINEAGE_DEPTH,
};
pub use client::{
    ClientCommand, ClientCompletion, CompletionQueue, HyperProvClient, HyperProvError, OpId,
    OpOutput, RetryPolicy,
};
pub use deploy::{ChannelSpec, HyperProvNetwork, NetworkConfig, OrdererMode};
pub use facade::HyperProv;
pub use hyperprov_fabric::{CommitPipeline, SnapshotPolicy};
pub use net::NodeMsg;
pub use opm::{OpmEdge, OpmEdgeKind, OpmGraph, OpmNode, OpmNodeKind};
pub use record::{
    decode_history, decode_lineage, encode_history, encode_lineage, GraphSlice, HistoryRecord,
    LineageEntry, ProvenanceRecord, RecordInput,
};
pub use router::{ChannelRouter, HashRouter};
pub use verify::{audit, current_records, AuditFinding, AuditReport};
