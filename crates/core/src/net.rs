//! The combined message type for a HyperProv deployment: Fabric traffic,
//! off-chain storage traffic and client commands in one simulation.

use hyperprov_fabric::FabricMsg;
use hyperprov_offchain::StoreMsg;
use hyperprov_sim::Carries;

use crate::client::ClientCommand;

/// Every message that can travel through a HyperProv simulation.
#[derive(Debug, Clone)]
pub enum NodeMsg {
    /// Blockchain traffic (proposals, blocks, commit events, raft).
    Fabric(FabricMsg),
    /// Off-chain storage traffic.
    Store(StoreMsg),
    /// A command injected into a client actor (from the facade or a
    /// workload driver).
    Client(ClientCommand),
}

impl NodeMsg {
    /// Approximate wire size for the network model.
    pub fn wire_size(&self) -> u64 {
        match self {
            NodeMsg::Fabric(m) => m.wire_size(),
            NodeMsg::Store(m) => m.wire_size(),
            NodeMsg::Client(_) => 0, // local injection, never crosses a link
        }
    }
}

impl Carries<FabricMsg> for NodeMsg {
    fn wrap(inner: FabricMsg) -> Self {
        NodeMsg::Fabric(inner)
    }
    fn peel(self) -> Result<FabricMsg, Self> {
        match self {
            NodeMsg::Fabric(m) => Ok(m),
            other => Err(other),
        }
    }
}

impl Carries<StoreMsg> for NodeMsg {
    fn wrap(inner: StoreMsg) -> Self {
        NodeMsg::Store(inner)
    }
    fn peel(self) -> Result<StoreMsg, Self> {
        match self {
            NodeMsg::Store(m) => Ok(m),
            other => Err(other),
        }
    }
}

impl Carries<ClientCommand> for NodeMsg {
    fn wrap(inner: ClientCommand) -> Self {
        NodeMsg::Client(inner)
    }
    fn peel(self) -> Result<ClientCommand, Self> {
        match self {
            NodeMsg::Client(m) => Ok(m),
            other => Err(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peel_round_trips_each_variant() {
        let f = NodeMsg::wrap(FabricMsg::Commit(hyperprov_fabric::CommitEvent {
            channel: hyperprov_ledger::ChannelId::default(),
            tx_id: hyperprov_ledger::TxId::default(),
            block_number: 0,
            code: hyperprov_ledger::ValidationCode::Valid,
            chaincode_event: None,
            creator: None,
        }));
        assert!(matches!(f.clone().peel(), Ok(FabricMsg::Commit(_))));
        let as_store: Result<StoreMsg, NodeMsg> = f.peel();
        assert!(as_store.is_err());

        let s = NodeMsg::wrap(StoreMsg::Get {
            name: "x".into(),
            token: 1,
        });
        assert!(matches!(s.peel(), Ok(StoreMsg::Get { .. })));
    }
}
