//! The provenance record: what HyperProv stores on-chain for every data
//! item.
//!
//! Matching the paper's §3: "the core data currently stored in the
//! blockchain is the checksum of every data item, the data location, a
//! certificate pertaining to who stored the data, a list of other data
//! items that were used to create an item, and a custom field for any
//! additional metadata."

use hyperprov_fabric::Certificate;
use hyperprov_ledger::{
    decode_seq, encode_seq, CodecError, Decode, Decoder, Digest, Encode, Encoder,
};

/// The client-supplied part of a record (everything except the creator
/// certificate, which the chaincode takes from the transaction context so
/// it cannot be spoofed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordInput {
    /// SHA-256 checksum of the data item.
    pub checksum: Digest,
    /// Where the payload lives (e.g. `sshfs://store0/<hex>`); empty for
    /// metadata-only items.
    pub location: String,
    /// Payload size in bytes.
    pub size: u64,
    /// Keys of the items this one was derived from.
    pub parents: Vec<String>,
    /// Free-form metadata, kept sorted for canonical encoding.
    pub metadata: Vec<(String, String)>,
    /// Client clock at creation, milliseconds since epoch.
    pub timestamp_ms: u64,
}

impl RecordInput {
    /// Creates a metadata-only input for `checksum`.
    pub fn new(checksum: Digest) -> Self {
        RecordInput {
            checksum,
            location: String::new(),
            size: 0,
            parents: Vec::new(),
            metadata: Vec::new(),
            timestamp_ms: 0,
        }
    }

    /// Sets the off-chain location and size.
    #[must_use]
    pub fn with_location(mut self, location: impl Into<String>, size: u64) -> Self {
        self.location = location.into();
        self.size = size;
        self
    }

    /// Adds parent (derived-from) keys.
    #[must_use]
    pub fn with_parents(mut self, parents: Vec<String>) -> Self {
        self.parents = parents;
        self
    }

    /// Adds one metadata field (kept sorted by key).
    #[must_use]
    pub fn with_meta(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.metadata.push((key.into(), value.into()));
        self.metadata.sort();
        self
    }

    /// Sets the client timestamp.
    #[must_use]
    pub fn with_timestamp(mut self, timestamp_ms: u64) -> Self {
        self.timestamp_ms = timestamp_ms;
        self
    }
}

impl Encode for RecordInput {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_digest(&self.checksum);
        enc.put_str(&self.location);
        enc.put_u64(self.size);
        self.parents.encode(enc);
        enc.put_varint(self.metadata.len() as u64);
        for (k, v) in &self.metadata {
            enc.put_str(k);
            enc.put_str(v);
        }
        enc.put_u64(self.timestamp_ms);
    }
}
impl Decode for RecordInput {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let checksum = dec.get_digest()?;
        let location = dec.get_str()?;
        let size = dec.get_u64()?;
        let parents = Vec::<String>::decode(dec)?;
        let n = dec.get_varint()?;
        if n > dec.remaining() as u64 {
            return Err(CodecError::LengthOverrun {
                declared: n,
                remaining: dec.remaining(),
            });
        }
        let mut metadata = Vec::with_capacity(n as usize);
        for _ in 0..n {
            metadata.push((dec.get_str()?, dec.get_str()?));
        }
        Ok(RecordInput {
            checksum,
            location,
            size,
            parents,
            metadata,
            timestamp_ms: dec.get_u64()?,
        })
    }
}

/// A committed provenance record, as stored in world state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvenanceRecord {
    /// The item's key.
    pub key: String,
    /// SHA-256 checksum of the data item.
    pub checksum: Digest,
    /// Off-chain location of the payload (empty for metadata-only).
    pub location: String,
    /// Payload size in bytes.
    pub size: u64,
    /// Certificate of the identity that stored the item.
    pub creator: Certificate,
    /// Keys of the items this one was derived from.
    pub parents: Vec<String>,
    /// Custom metadata, sorted by key.
    pub metadata: Vec<(String, String)>,
    /// Client clock at creation, milliseconds since epoch.
    pub timestamp_ms: u64,
}

impl ProvenanceRecord {
    /// Builds the stored record from client input plus the transaction
    /// creator.
    pub fn from_input(key: impl Into<String>, input: RecordInput, creator: Certificate) -> Self {
        ProvenanceRecord {
            key: key.into(),
            checksum: input.checksum,
            location: input.location,
            size: input.size,
            creator,
            parents: input.parents,
            metadata: input.metadata,
            timestamp_ms: input.timestamp_ms,
        }
    }

    /// Looks up a metadata value by key.
    pub fn meta(&self, key: &str) -> Option<&str> {
        self.metadata
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// True if the payload lives off-chain.
    pub fn has_offchain_data(&self) -> bool {
        !self.location.is_empty()
    }
}

impl Encode for ProvenanceRecord {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.key);
        enc.put_digest(&self.checksum);
        enc.put_str(&self.location);
        enc.put_u64(self.size);
        self.creator.encode(enc);
        self.parents.encode(enc);
        enc.put_varint(self.metadata.len() as u64);
        for (k, v) in &self.metadata {
            enc.put_str(k);
            enc.put_str(v);
        }
        enc.put_u64(self.timestamp_ms);
    }
}
impl Decode for ProvenanceRecord {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let key = dec.get_str()?;
        let checksum = dec.get_digest()?;
        let location = dec.get_str()?;
        let size = dec.get_u64()?;
        let creator = Certificate::decode(dec)?;
        let parents = Vec::<String>::decode(dec)?;
        let n = dec.get_varint()?;
        if n > dec.remaining() as u64 {
            return Err(CodecError::LengthOverrun {
                declared: n,
                remaining: dec.remaining(),
            });
        }
        let mut metadata = Vec::with_capacity(n as usize);
        for _ in 0..n {
            metadata.push((dec.get_str()?, dec.get_str()?));
        }
        Ok(ProvenanceRecord {
            key,
            checksum,
            location,
            size,
            creator,
            parents,
            metadata,
            timestamp_ms: dec.get_u64()?,
        })
    }
}

/// One entry of an item's on-chain history, as returned by `get_history`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryRecord {
    /// Id of the writing transaction.
    pub tx_id: Digest,
    /// Block number of the write.
    pub block: u64,
    /// The record value at that point; `None` if the write was a delete.
    pub record: Option<ProvenanceRecord>,
}

impl Encode for HistoryRecord {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_digest(&self.tx_id);
        enc.put_u64(self.block);
        self.record.as_ref().map(Encode::to_bytes).encode(enc);
    }
}
impl Decode for HistoryRecord {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let tx_id = dec.get_digest()?;
        let block = dec.get_u64()?;
        let raw: Option<Vec<u8>> = Option::decode(dec)?;
        let record = match raw {
            Some(bytes) => Some(ProvenanceRecord::from_bytes(&bytes)?),
            None => None,
        };
        Ok(HistoryRecord {
            tx_id,
            block,
            record,
        })
    }
}

/// One node of a lineage traversal, as returned by `get_lineage`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineageEntry {
    /// Distance from the queried item (0 = the item itself).
    pub depth: u32,
    /// The record at this node.
    pub record: ProvenanceRecord,
}

impl Encode for LineageEntry {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.depth);
        self.record.encode(enc);
    }
}
impl Decode for LineageEntry {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(LineageEntry {
            depth: dec.get_u32()?,
            record: ProvenanceRecord::decode(dec)?,
        })
    }
}

/// Encodes a list of lineage entries (chaincode response payload).
pub fn encode_lineage(entries: &[LineageEntry]) -> Vec<u8> {
    let mut enc = Encoder::new();
    encode_seq(entries, &mut enc);
    enc.into_bytes()
}

/// Decodes a list of lineage entries.
///
/// # Errors
///
/// Returns a [`CodecError`] on malformed input.
pub fn decode_lineage(bytes: &[u8]) -> Result<Vec<LineageEntry>, CodecError> {
    let mut dec = Decoder::new(bytes);
    let out = decode_seq(&mut dec)?;
    dec.finish()?;
    Ok(out)
}

/// A slice of the materialized provenance DAG, as returned by the graph
/// query operations (`get_ancestry`, `get_descendants`, `get_closure`,
/// `get_subgraph`).
///
/// Unlike [`LineageEntry`] lists this carries *keys only* — depth-tagged
/// node keys plus (for subgraph queries) the edges between them — so a
/// deep traversal ships a few bytes per node instead of a full record.
/// Callers that need record bodies fetch them separately with `get`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphSlice {
    /// Visited node keys with their minimum distance from the query roots
    /// (0 = a root itself), in BFS order.
    pub entries: Vec<(u32, String)>,
    /// Keys referenced by the traversal but absent from the answering
    /// peer's index, with the depth they would occupy. On a sharded
    /// deployment these are the frontier the client re-routes to the
    /// owning shard; on a single shard they mark deleted or never-posted
    /// parents.
    pub boundary: Vec<(u32, String)>,
    /// `(child, parent)` edges between visited nodes (populated by
    /// `get_subgraph` only).
    pub edges: Vec<(String, String)>,
    /// True when a depth or node budget cut the traversal short.
    pub truncated: bool,
}

impl GraphSlice {
    /// True when nothing was visited and nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.boundary.is_empty()
    }
}

impl From<hyperprov_ledger::Traversal> for GraphSlice {
    fn from(t: hyperprov_ledger::Traversal) -> Self {
        GraphSlice {
            entries: t.entries,
            boundary: t.boundary,
            edges: t.edges,
            truncated: t.truncated,
        }
    }
}

impl Encode for GraphSlice {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_varint(self.entries.len() as u64);
        for (depth, key) in &self.entries {
            enc.put_u32(*depth);
            enc.put_str(key);
        }
        enc.put_varint(self.boundary.len() as u64);
        for (depth, key) in &self.boundary {
            enc.put_u32(*depth);
            enc.put_str(key);
        }
        enc.put_varint(self.edges.len() as u64);
        for (child, parent) in &self.edges {
            enc.put_str(child);
            enc.put_str(parent);
        }
        enc.put_bool(self.truncated);
    }
}
impl Decode for GraphSlice {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let pairs = |dec: &mut Decoder<'_>| -> Result<Vec<(u32, String)>, CodecError> {
            let n = dec.get_varint()?;
            if n > dec.remaining() as u64 {
                return Err(CodecError::LengthOverrun {
                    declared: n,
                    remaining: dec.remaining(),
                });
            }
            let mut out = Vec::with_capacity(n as usize);
            for _ in 0..n {
                out.push((dec.get_u32()?, dec.get_str()?));
            }
            Ok(out)
        };
        let entries = pairs(dec)?;
        let boundary = pairs(dec)?;
        let n = dec.get_varint()?;
        if n > dec.remaining() as u64 {
            return Err(CodecError::LengthOverrun {
                declared: n,
                remaining: dec.remaining(),
            });
        }
        let mut edges = Vec::with_capacity(n as usize);
        for _ in 0..n {
            edges.push((dec.get_str()?, dec.get_str()?));
        }
        Ok(GraphSlice {
            entries,
            boundary,
            edges,
            truncated: dec.get_bool()?,
        })
    }
}

/// Encodes a history response.
pub fn encode_history(entries: &[HistoryRecord]) -> Vec<u8> {
    let mut enc = Encoder::new();
    encode_seq(entries, &mut enc);
    enc.into_bytes()
}

/// Decodes a history response.
///
/// # Errors
///
/// Returns a [`CodecError`] on malformed input.
pub fn decode_history(bytes: &[u8]) -> Result<Vec<HistoryRecord>, CodecError> {
    let mut dec = Decoder::new(bytes);
    let out = decode_seq(&mut dec)?;
    dec.finish()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperprov_fabric::{MspBuilder, MspId};

    fn cert() -> Certificate {
        let mut b = MspBuilder::new(1);
        b.enroll("client", &MspId::new("org1"))
            .certificate()
            .clone()
    }

    fn sample() -> ProvenanceRecord {
        let input = RecordInput::new(Digest::of(b"data"))
            .with_location("sshfs://store0/abc", 4)
            .with_parents(vec!["parent1".into(), "parent2".into()])
            .with_meta("sensor", "cam-3")
            .with_meta("format", "jpeg")
            .with_timestamp(1_700_000_000_000);
        ProvenanceRecord::from_input("item1", input, cert())
    }

    #[test]
    fn record_round_trip() {
        let r = sample();
        let back = ProvenanceRecord::from_bytes(&r.to_bytes()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn input_builder_sorts_metadata() {
        let input = RecordInput::new(Digest::of(b"x"))
            .with_meta("z", "1")
            .with_meta("a", "2");
        assert_eq!(input.metadata[0].0, "a");
        let back = RecordInput::from_bytes(&input.to_bytes()).unwrap();
        assert_eq!(back, input);
    }

    #[test]
    fn meta_lookup() {
        let r = sample();
        assert_eq!(r.meta("sensor"), Some("cam-3"));
        assert_eq!(r.meta("nope"), None);
        assert!(r.has_offchain_data());
        let bare = ProvenanceRecord::from_input("k", RecordInput::new(Digest::ZERO), cert());
        assert!(!bare.has_offchain_data());
    }

    #[test]
    fn history_round_trip_including_delete() {
        let entries = vec![
            HistoryRecord {
                tx_id: Digest::of(b"t1"),
                block: 1,
                record: Some(sample()),
            },
            HistoryRecord {
                tx_id: Digest::of(b"t2"),
                block: 2,
                record: None,
            },
        ];
        let bytes = encode_history(&entries);
        assert_eq!(decode_history(&bytes).unwrap(), entries);
        assert!(decode_history(&[1, 2, 3]).is_err());
    }

    #[test]
    fn lineage_round_trip() {
        let entries = vec![
            LineageEntry {
                depth: 0,
                record: sample(),
            },
            LineageEntry {
                depth: 1,
                record: sample(),
            },
        ];
        let bytes = encode_lineage(&entries);
        assert_eq!(decode_lineage(&bytes).unwrap(), entries);
    }

    #[test]
    fn graph_slice_round_trip() {
        let slice = GraphSlice {
            entries: vec![(0, "c".into()), (1, "a".into()), (1, "b".into())],
            boundary: vec![(2, "remote".into())],
            edges: vec![("c".into(), "a".into()), ("c".into(), "b".into())],
            truncated: true,
        };
        let back = GraphSlice::from_bytes(&slice.to_bytes()).unwrap();
        assert_eq!(back, slice);
        assert!(!slice.is_empty());
        assert!(GraphSlice::default().is_empty());
        assert!(GraphSlice::from_bytes(&[9, 9, 9]).is_err());
    }

    #[test]
    fn encoding_is_canonical() {
        assert_eq!(sample().to_bytes(), sample().to_bytes());
        let mut other = sample();
        other.size += 1;
        assert_ne!(other.to_bytes(), sample().to_bytes());
    }
}
