//! The HyperProv smart contract.
//!
//! Implements the on-chain half of the paper's operator set: `post`,
//! `get`, `get_history`, `get_keys_by_checksum`, `get_lineage`, `list`
//! and `delete`. Records live under `item~<key>` composite keys; a second
//! composite index `cs~<checksum>~<key>` supports reverse lookup from a
//! checksum to the items carrying it (the paper's built-in queries for
//! lightweight provenance retrieval).

use std::collections::{HashSet, VecDeque};

use hyperprov_fabric::{Chaincode, ChaincodeError, ChaincodeStub};
use hyperprov_ledger::{
    Decode, Digest, Direction, Encode, GraphIndexer, GraphUpdate, StateKey, TraversalLimits,
};

use crate::record::{
    encode_history, encode_lineage, GraphSlice, HistoryRecord, LineageEntry, ProvenanceRecord,
    RecordInput,
};

/// The chaincode (namespace) name.
pub const CHAINCODE_NAME: &str = "hyperprov";

/// Maximum lineage traversal depth accepted by `get_lineage`.
pub const MAX_LINEAGE_DEPTH: u32 = 64;

/// Maximum nodes a single graph query (`get_ancestry` and friends) visits
/// before truncating, whatever budget the client asked for.
pub const MAX_GRAPH_NODES: usize = 4096;

/// Commit-time feeder for the materialized provenance DAG index.
///
/// Installed on every peer's [`Committer`](hyperprov_fabric::Committer);
/// the committer calls [`GraphIndexer::index`] for each applied write and
/// this implementation translates HyperProv's `item~<key>` record writes
/// into graph updates (parent edges from the decoded
/// [`ProvenanceRecord`], removals for deletes). Checksum-index writes and
/// foreign namespaces are ignored.
#[derive(Debug, Clone, Copy, Default)]
pub struct HyperProvIndexer;

impl GraphIndexer for HyperProvIndexer {
    fn index(&self, key: &StateKey, value: Option<&[u8]>) -> Option<GraphUpdate> {
        if key.namespace != CHAINCODE_NAME {
            return None;
        }
        let parts = ChaincodeStub::split_composite_key(&key.key);
        if parts.len() != 2 || parts[0] != "item" {
            return None;
        }
        let item = parts[1].to_owned();
        match value {
            Some(bytes) => {
                let record = ProvenanceRecord::from_bytes(bytes).ok()?;
                Some(GraphUpdate::Insert {
                    key: item,
                    parents: record.parents,
                })
            }
            None => Some(GraphUpdate::Remove { key: item }),
        }
    }
}

/// The HyperProv chaincode.
///
/// Install it on every peer of the channel:
///
/// ```
/// use hyperprov::HyperProvChaincode;
/// use hyperprov_fabric::{Chaincode, ChaincodeRegistry};
/// use std::sync::Arc;
///
/// let mut registry = ChaincodeRegistry::new();
/// registry.install(Arc::new(HyperProvChaincode::new()));
/// assert!(registry.get("hyperprov").is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct HyperProvChaincode {
    /// Reject posts whose parents are not on the ledger.
    require_parents: bool,
}

impl HyperProvChaincode {
    /// Creates the contract with parent validation enabled.
    pub fn new() -> Self {
        HyperProvChaincode {
            require_parents: true,
        }
    }

    /// Creates a permissive variant that does not check parent existence
    /// (used by the on-chain baseline to isolate storage cost).
    pub fn permissive() -> Self {
        HyperProvChaincode {
            require_parents: false,
        }
    }

    fn item_key(stub: &ChaincodeStub<'_>, key: &str) -> Result<String, ChaincodeError> {
        stub.create_composite_key("item", &[key])
    }

    fn cs_key(
        stub: &ChaincodeStub<'_>,
        checksum: &Digest,
        key: &str,
    ) -> Result<String, ChaincodeError> {
        stub.create_composite_key("cs", &[&checksum.to_hex(), key])
    }

    fn load(
        stub: &mut ChaincodeStub<'_>,
        key: &str,
    ) -> Result<Option<ProvenanceRecord>, ChaincodeError> {
        let ik = Self::item_key(stub, key)?;
        match stub.get_state(&ik) {
            Some(bytes) => ProvenanceRecord::from_bytes(&bytes)
                .map(Some)
                .map_err(|e| ChaincodeError::Rejected(format!("corrupt record: {e}"))),
            None => Ok(None),
        }
    }

    fn post(&self, stub: &mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError> {
        let key = stub.arg_str(0)?.to_owned();
        if key.is_empty() || key.contains(hyperprov_fabric::COMPOSITE_SEP) {
            return Err(ChaincodeError::BadArgs("invalid item key".to_owned()));
        }
        let input = RecordInput::from_bytes(stub.arg_bytes(1)?)
            .map_err(|e| ChaincodeError::BadArgs(format!("malformed record input: {e}")))?;

        if self.require_parents {
            for parent in &input.parents {
                if parent == &key {
                    return Err(ChaincodeError::Rejected(
                        "item cannot be its own parent".to_owned(),
                    ));
                }
                if Self::load(stub, parent)?.is_none() {
                    return Err(ChaincodeError::Rejected(format!(
                        "parent {parent:?} does not exist"
                    )));
                }
            }
        }

        // If the key already exists this is a version update; drop the old
        // checksum index entry.
        if let Some(previous) = Self::load(stub, &key)? {
            if previous.checksum != input.checksum {
                let old_cs = Self::cs_key(stub, &previous.checksum, &key)?;
                stub.del_state(&old_cs);
            }
        }

        let record = ProvenanceRecord::from_input(key.clone(), input, stub.creator().clone());
        let ik = Self::item_key(stub, &key)?;
        let ck = Self::cs_key(stub, &record.checksum, &key)?;
        stub.put_state(&ik, record.to_bytes());
        stub.put_state(&ck, key.clone().into_bytes());
        stub.set_event("post", key.into_bytes());
        Ok(record.to_bytes())
    }

    fn get(&self, stub: &mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError> {
        let key = stub.arg_str(0)?.to_owned();
        match Self::load(stub, &key)? {
            Some(record) => Ok(record.to_bytes()),
            None => Err(ChaincodeError::NotFound(key)),
        }
    }

    fn get_history(&self, stub: &mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError> {
        let key = stub.arg_str(0)?.to_owned();
        let ik = Self::item_key(stub, &key)?;
        let entries: Vec<HistoryRecord> = stub
            .get_history_for_key(&ik)
            .into_iter()
            .map(|e| {
                let record = e
                    .value
                    .as_deref()
                    .and_then(|bytes| ProvenanceRecord::from_bytes(bytes).ok());
                HistoryRecord {
                    tx_id: e.tx_id.0,
                    block: e.version.block_num,
                    record,
                }
            })
            .collect();
        if entries.is_empty() {
            return Err(ChaincodeError::NotFound(key));
        }
        Ok(encode_history(&entries))
    }

    fn get_keys_by_checksum(
        &self,
        stub: &mut ChaincodeStub<'_>,
    ) -> Result<Vec<u8>, ChaincodeError> {
        let hex = stub.arg_str(0)?.to_owned();
        let checksum = Digest::from_hex(&hex)
            .ok_or_else(|| ChaincodeError::BadArgs("checksum must be 64 hex chars".to_owned()))?;
        let hits = stub.get_state_by_partial_composite_key("cs", &[&checksum.to_hex()])?;
        let keys: Vec<String> = hits
            .into_iter()
            .filter_map(|(_, v)| String::from_utf8(v).ok())
            .collect();
        Ok(keys.to_bytes())
    }

    fn get_lineage(&self, stub: &mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError> {
        let key = stub.arg_str(0)?.to_owned();
        let max_depth: u32 = stub
            .arg_str(1)?
            .parse()
            .map_err(|_| ChaincodeError::BadArgs("depth must be an integer".to_owned()))?;
        let max_depth = max_depth.min(MAX_LINEAGE_DEPTH);

        let root = Self::load(stub, &key)?.ok_or(ChaincodeError::NotFound(key.clone()))?;
        let mut seen: HashSet<String> = HashSet::new();
        seen.insert(key);
        let mut queue: VecDeque<(u32, ProvenanceRecord)> = VecDeque::new();
        queue.push_back((0, root));
        let mut out = Vec::new();
        while let Some((depth, record)) = queue.pop_front() {
            if depth < max_depth {
                for parent in &record.parents {
                    if seen.insert(parent.clone()) {
                        if let Some(prec) = Self::load(stub, parent)? {
                            queue.push_back((depth + 1, prec));
                        }
                    }
                }
            }
            out.push(LineageEntry { depth, record });
        }
        Ok(encode_lineage(&out))
    }

    /// Shared implementation of the one-shot graph queries
    /// (`get_ancestry`, `get_descendants`, `get_closure`, `get_subgraph`).
    ///
    /// Arguments: `args[0]` = max depth, `args[1]` = max nodes, `args[2..]`
    /// = depth-tagged roots `"<base_depth>:<key>"`. The base depth lets a
    /// sharded client continue a traversal mid-flight: boundary keys a
    /// previous shard reported at depth *d* re-enter here as roots at *d*,
    /// so the global depth budget stays consistent across shards. Answers
    /// come from the peer's materialized DAG index — no state reads, a few
    /// bytes per node — encoded as a [`GraphSlice`].
    fn graph_query(
        &self,
        stub: &mut ChaincodeStub<'_>,
        direction: Direction,
        collect_edges: bool,
    ) -> Result<Vec<u8>, ChaincodeError> {
        let graph = stub.graph().ok_or_else(|| {
            ChaincodeError::Rejected("peer maintains no provenance graph index".to_owned())
        })?;
        let max_depth: u32 = stub
            .arg_str(0)?
            .parse()
            .map_err(|_| ChaincodeError::BadArgs("depth must be an integer".to_owned()))?;
        let max_nodes: usize = stub
            .arg_str(1)?
            .parse()
            .map_err(|_| ChaincodeError::BadArgs("node budget must be an integer".to_owned()))?;
        let limits = TraversalLimits {
            max_depth: max_depth.min(MAX_LINEAGE_DEPTH),
            max_nodes: max_nodes.clamp(1, MAX_GRAPH_NODES),
        };
        let mut roots = Vec::with_capacity(stub.arg_count().saturating_sub(2));
        for i in 2..stub.arg_count() {
            let arg = stub.arg_str(i)?;
            let (depth, key) = arg.split_once(':').ok_or_else(|| {
                ChaincodeError::BadArgs(format!("root {i} must be \"<depth>:<key>\""))
            })?;
            let depth: u32 = depth
                .parse()
                .map_err(|_| ChaincodeError::BadArgs("root depth must be an integer".to_owned()))?;
            roots.push((depth, key.to_owned()));
        }
        if roots.is_empty() {
            return Err(ChaincodeError::BadArgs(
                "at least one root required".to_owned(),
            ));
        }
        let traversal = graph.traverse(&roots, direction, limits, collect_edges);
        let visited = (traversal.entries.len() + traversal.boundary.len()) as u64;
        let bytes = GraphSlice::from(traversal).to_bytes();
        stub.note_graph_visits(visited, bytes.len() as u64);
        Ok(bytes)
    }

    fn list(&self, stub: &mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError> {
        let hits = stub.get_state_by_partial_composite_key("item", &[])?;
        let mut keys = Vec::with_capacity(hits.len());
        for (composite, _) in hits {
            let parts = ChaincodeStub::split_composite_key(&composite);
            if parts.len() == 2 && parts[0] == "item" {
                keys.push(parts[1].to_owned());
            }
        }
        Ok(keys.to_bytes())
    }

    fn delete(&self, stub: &mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError> {
        let key = stub.arg_str(0)?.to_owned();
        let record = Self::load(stub, &key)?.ok_or(ChaincodeError::NotFound(key.clone()))?;
        let ik = Self::item_key(stub, &key)?;
        let ck = Self::cs_key(stub, &record.checksum, &key)?;
        stub.del_state(&ik);
        stub.del_state(&ck);
        stub.set_event("delete", key.into_bytes());
        Ok(Vec::new())
    }
}

impl Chaincode for HyperProvChaincode {
    fn name(&self) -> &str {
        CHAINCODE_NAME
    }

    fn invoke(&self, stub: &mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError> {
        match stub.function() {
            "post" => self.post(stub),
            "get" => self.get(stub),
            "get_history" => self.get_history(stub),
            "get_keys_by_checksum" => self.get_keys_by_checksum(stub),
            "get_lineage" => self.get_lineage(stub),
            "get_ancestry" => self.graph_query(stub, Direction::Ancestors, false),
            "get_descendants" => self.graph_query(stub, Direction::Descendants, false),
            "get_closure" => self.graph_query(stub, Direction::Both, false),
            "get_subgraph" => self.graph_query(stub, Direction::Both, true),
            "list" => self.list(stub),
            "delete" => self.delete(stub),
            other => Err(ChaincodeError::UnknownFunction(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperprov_fabric::{Certificate, MspBuilder, MspId};
    use hyperprov_ledger::{HistoryDb, KvWrite, ProvGraph, StateDb, StateKey, TxId, Version};

    /// A tiny single-peer harness that executes invocations and applies
    /// their write sets directly (no consensus), for chaincode-level tests.
    /// Maintains the provenance DAG index the way a committer would: every
    /// applied write runs through [`HyperProvIndexer`].
    struct Harness {
        cc: HyperProvChaincode,
        state: StateDb,
        history: HistoryDb,
        graph: ProvGraph,
        cert: Certificate,
        next_height: u64,
    }

    impl Harness {
        fn new() -> Self {
            let mut b = MspBuilder::new(1);
            let cert = b
                .enroll("client", &MspId::new("org1"))
                .certificate()
                .clone();
            Harness {
                cc: HyperProvChaincode::new(),
                state: StateDb::new(),
                history: HistoryDb::new(),
                graph: ProvGraph::new(),
                cert,
                next_height: 1,
            }
        }

        fn invoke(
            &mut self,
            function: &str,
            args: Vec<Vec<u8>>,
        ) -> Result<Vec<u8>, ChaincodeError> {
            let mut stub = ChaincodeStub::new(
                CHAINCODE_NAME,
                function,
                &args,
                &self.cert,
                &self.state,
                &self.history,
            )
            .with_graph(&self.graph);
            let result = self.cc.invoke(&mut stub);
            let (rwset, _, _) = stub.into_results();
            if result.is_ok() {
                let version = Version::new(self.next_height, 0);
                self.next_height += 1;
                self.state.apply_writes(&rwset.writes, version);
                self.history.append(
                    TxId(Digest::of(&self.next_height.to_le_bytes())),
                    version,
                    &rwset.writes,
                );
                for write in &rwset.writes {
                    if let Some(update) = HyperProvIndexer.index(&write.key, write.value.as_deref())
                    {
                        self.graph.apply(&update);
                    }
                }
            }
            result
        }

        /// Runs a depth-tagged graph query against the harness graph.
        fn graph_query(
            &mut self,
            function: &str,
            depth: u32,
            nodes: usize,
            roots: &[&str],
        ) -> Result<GraphSlice, ChaincodeError> {
            let mut args = vec![
                depth.to_string().into_bytes(),
                nodes.to_string().into_bytes(),
            ];
            args.extend(roots.iter().map(|k| format!("0:{k}").into_bytes()));
            let bytes = self.invoke(function, args)?;
            Ok(GraphSlice::from_bytes(&bytes).unwrap())
        }

        fn post(
            &mut self,
            key: &str,
            input: &RecordInput,
        ) -> Result<ProvenanceRecord, ChaincodeError> {
            let bytes = self.invoke("post", vec![key.as_bytes().to_vec(), input.to_bytes()])?;
            Ok(ProvenanceRecord::from_bytes(&bytes).unwrap())
        }
    }

    fn input(data: &[u8]) -> RecordInput {
        RecordInput::new(Digest::of(data)).with_location("sshfs://s/x", data.len() as u64)
    }

    #[test]
    fn post_then_get() {
        let mut h = Harness::new();
        let rec = h.post("item1", &input(b"data")).unwrap();
        assert_eq!(rec.creator.subject, "client");
        let got = h.invoke("get", vec![b"item1".to_vec()]).unwrap();
        assert_eq!(ProvenanceRecord::from_bytes(&got).unwrap(), rec);
    }

    #[test]
    fn get_missing_fails() {
        let mut h = Harness::new();
        assert!(matches!(
            h.invoke("get", vec![b"ghost".to_vec()]),
            Err(ChaincodeError::NotFound(_))
        ));
    }

    #[test]
    fn post_rejects_missing_parent_and_self_parent() {
        let mut h = Harness::new();
        let bad = input(b"d").with_parents(vec!["nonexistent".into()]);
        assert!(matches!(
            h.post("child", &bad),
            Err(ChaincodeError::Rejected(_))
        ));
        let selfp = input(b"d").with_parents(vec!["loop".into()]);
        assert!(matches!(
            h.post("loop", &selfp),
            Err(ChaincodeError::Rejected(_))
        ));
        // Permissive variant allows it.
        let mut hp = Harness::new();
        hp.cc = HyperProvChaincode::permissive();
        assert!(hp.post("child", &bad).is_ok());
    }

    #[test]
    fn post_with_existing_parents_links_lineage() {
        let mut h = Harness::new();
        h.post("a", &input(b"a")).unwrap();
        h.post("b", &input(b"b")).unwrap();
        h.post("c", &input(b"c").with_parents(vec!["a".into(), "b".into()]))
            .unwrap();
        let bytes = h
            .invoke("get_lineage", vec![b"c".to_vec(), b"5".to_vec()])
            .unwrap();
        let lineage = crate::record::decode_lineage(&bytes).unwrap();
        assert_eq!(lineage.len(), 3);
        assert_eq!(lineage[0].depth, 0);
        assert_eq!(lineage[0].record.key, "c");
        let depths: Vec<u32> = lineage.iter().map(|e| e.depth).collect();
        assert_eq!(depths, vec![0, 1, 1]);
    }

    #[test]
    fn lineage_depth_limit_and_diamond_dedup() {
        let mut h = Harness::new();
        // a <- b <- c, and a <- c directly (diamond).
        h.post("a", &input(b"a")).unwrap();
        h.post("b", &input(b"b").with_parents(vec!["a".into()]))
            .unwrap();
        h.post("c", &input(b"c").with_parents(vec!["b".into(), "a".into()]))
            .unwrap();
        let bytes = h
            .invoke("get_lineage", vec![b"c".to_vec(), b"10".to_vec()])
            .unwrap();
        let lineage = crate::record::decode_lineage(&bytes).unwrap();
        // a appears once even though reachable along two paths.
        assert_eq!(lineage.len(), 3);
        // Depth 0 only.
        let bytes = h
            .invoke("get_lineage", vec![b"c".to_vec(), b"0".to_vec()])
            .unwrap();
        assert_eq!(crate::record::decode_lineage(&bytes).unwrap().len(), 1);
    }

    #[test]
    fn history_tracks_versions_and_delete() {
        let mut h = Harness::new();
        h.post("item", &input(b"v1")).unwrap();
        h.post("item", &input(b"v2")).unwrap();
        h.invoke("delete", vec![b"item".to_vec()]).unwrap();
        // After delete, get_history still answers from the history index.
        let bytes = h.invoke("get_history", vec![b"item".to_vec()]).unwrap();
        let history = crate::record::decode_history(&bytes).unwrap();
        assert_eq!(history.len(), 3);
        assert_eq!(
            history[0].record.as_ref().unwrap().checksum,
            Digest::of(b"v1")
        );
        assert_eq!(
            history[1].record.as_ref().unwrap().checksum,
            Digest::of(b"v2")
        );
        assert!(history[2].record.is_none());
        // But get fails.
        assert!(h.invoke("get", vec![b"item".to_vec()]).is_err());
    }

    #[test]
    fn checksum_index_finds_all_items_and_updates() {
        let mut h = Harness::new();
        let cs = Digest::of(b"same-bytes");
        h.post("copy1", &RecordInput::new(cs)).unwrap();
        h.post("copy2", &RecordInput::new(cs)).unwrap();
        let bytes = h
            .invoke("get_keys_by_checksum", vec![cs.to_hex().into_bytes()])
            .unwrap();
        let keys = Vec::<String>::from_bytes(&bytes).unwrap();
        assert_eq!(keys, vec!["copy1", "copy2"]);
        // Re-post copy1 with different contents: index entry moves.
        h.post("copy1", &RecordInput::new(Digest::of(b"changed")))
            .unwrap();
        let bytes = h
            .invoke("get_keys_by_checksum", vec![cs.to_hex().into_bytes()])
            .unwrap();
        let keys = Vec::<String>::from_bytes(&bytes).unwrap();
        assert_eq!(keys, vec!["copy2"]);
    }

    #[test]
    fn list_returns_item_keys_only() {
        let mut h = Harness::new();
        h.post("zeta", &input(b"1")).unwrap();
        h.post("alpha", &input(b"2")).unwrap();
        let bytes = h.invoke("list", vec![]).unwrap();
        let keys = Vec::<String>::from_bytes(&bytes).unwrap();
        assert_eq!(keys, vec!["alpha", "zeta"]); // lexicographic
    }

    #[test]
    fn bad_arguments_rejected() {
        let mut h = Harness::new();
        assert!(matches!(
            h.invoke("post", vec![b"k".to_vec(), b"junk".to_vec()]),
            Err(ChaincodeError::BadArgs(_))
        ));
        assert!(matches!(
            h.invoke("post", vec![Vec::new(), input(b"x").to_bytes()]),
            Err(ChaincodeError::BadArgs(_))
        ));
        assert!(matches!(
            h.invoke("get_keys_by_checksum", vec![b"nothex".to_vec()]),
            Err(ChaincodeError::BadArgs(_))
        ));
        assert!(matches!(
            h.invoke("get_lineage", vec![b"k".to_vec(), b"NaN".to_vec()]),
            Err(ChaincodeError::BadArgs(_))
        ));
        assert!(matches!(
            h.invoke("frobnicate", vec![]),
            Err(ChaincodeError::UnknownFunction(_))
        ));
    }

    /// a <- b, a <- c, {b,c} <- d: the classic diamond.
    fn diamond() -> Harness {
        let mut h = Harness::new();
        h.post("a", &input(b"a")).unwrap();
        h.post("b", &input(b"b").with_parents(vec!["a".into()]))
            .unwrap();
        h.post("c", &input(b"c").with_parents(vec!["a".into()]))
            .unwrap();
        h.post("d", &input(b"d").with_parents(vec!["b".into(), "c".into()]))
            .unwrap();
        h
    }

    #[test]
    fn graph_ancestry_matches_lineage_key_set() {
        let mut h = diamond();
        let slice = h.graph_query("get_ancestry", 10, 100, &["d"]).unwrap();
        let mut keys: Vec<&str> = slice.entries.iter().map(|(_, k)| k.as_str()).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec!["a", "b", "c", "d"]);
        assert!(!slice.truncated);
        assert!(slice.boundary.is_empty());
        // The legacy hop-by-hop walk agrees.
        let bytes = h
            .invoke("get_lineage", vec![b"d".to_vec(), b"10".to_vec()])
            .unwrap();
        let mut legacy: Vec<String> = crate::record::decode_lineage(&bytes)
            .unwrap()
            .into_iter()
            .map(|e| e.record.key)
            .collect();
        legacy.sort_unstable();
        assert_eq!(keys, legacy);
    }

    #[test]
    fn graph_descendants_and_closure() {
        let mut h = diamond();
        let down = h.graph_query("get_descendants", 10, 100, &["a"]).unwrap();
        let keys: HashSet<&str> = down.entries.iter().map(|(_, k)| k.as_str()).collect();
        assert_eq!(keys, HashSet::from(["a", "b", "c", "d"]));
        // Closure from a middle node reaches both directions.
        let both = h.graph_query("get_closure", 10, 100, &["b"]).unwrap();
        let keys: HashSet<&str> = both.entries.iter().map(|(_, k)| k.as_str()).collect();
        assert_eq!(keys, HashSet::from(["a", "b", "c", "d"]));
        // Subgraph also reports the edges between visited nodes.
        let sub = h.graph_query("get_subgraph", 10, 100, &["b"]).unwrap();
        assert!(sub.edges.contains(&("b".to_owned(), "a".to_owned())));
        assert!(sub.edges.contains(&("d".to_owned(), "b".to_owned())));
    }

    #[test]
    fn graph_query_reports_truncation_and_boundary() {
        let mut h = diamond();
        // Depth 1 from d stops before a: truncated, no boundary (b and c
        // are live locally).
        let slice = h.graph_query("get_ancestry", 1, 100, &["d"]).unwrap();
        assert!(slice.truncated);
        let keys: HashSet<&str> = slice.entries.iter().map(|(_, k)| k.as_str()).collect();
        assert_eq!(keys, HashSet::from(["d", "b", "c"]));
        // Deleting a parent leaves a boundary marker instead of an entry.
        h.invoke("delete", vec![b"a".to_vec()]).unwrap();
        let slice = h.graph_query("get_ancestry", 10, 100, &["d"]).unwrap();
        assert_eq!(slice.boundary, vec![(2, "a".to_owned())]);
    }

    #[test]
    fn graph_query_requires_index_and_valid_roots() {
        let mut h = Harness::new();
        h.post("a", &input(b"a")).unwrap();
        // Malformed root tag.
        assert!(matches!(
            h.invoke(
                "get_ancestry",
                vec![b"5".to_vec(), b"10".to_vec(), b"no-depth-tag".to_vec()],
            ),
            Err(ChaincodeError::BadArgs(_))
        ));
        // No roots at all.
        assert!(matches!(
            h.invoke("get_ancestry", vec![b"5".to_vec(), b"10".to_vec()]),
            Err(ChaincodeError::BadArgs(_))
        ));
        // A stub without a graph index rejects the query outright.
        let args = vec![b"5".to_vec(), b"10".to_vec(), b"0:a".to_vec()];
        let mut stub = ChaincodeStub::new(
            CHAINCODE_NAME,
            "get_ancestry",
            &args,
            &h.cert,
            &h.state,
            &h.history,
        );
        assert!(matches!(
            h.cc.invoke(&mut stub),
            Err(ChaincodeError::Rejected(_))
        ));
    }

    #[test]
    fn indexer_tracks_item_writes_only() {
        let mut h = Harness::new();
        h.post("a", &input(b"a")).unwrap();
        h.post("b", &input(b"b").with_parents(vec!["a".into()]))
            .unwrap();
        // Only the two item records are graph nodes; checksum-index
        // writes and the cs~ tombstones never reach the graph.
        assert_eq!(h.graph.len(), 2);
        assert_eq!(h.graph.parents_of("b").unwrap(), vec!["a"]);
        // Foreign namespaces are ignored entirely.
        let foreign = StateKey::new("other-cc", "item\u{1}x\u{1}");
        assert!(HyperProvIndexer.index(&foreign, Some(b"junk")).is_none());
        // Deletes tombstone the node.
        h.invoke("delete", vec![b"b".to_vec()]).unwrap();
        assert!(!h.graph.contains("b"));
        assert_eq!(h.graph.len(), 1);
    }

    #[test]
    fn creator_comes_from_transaction_not_input() {
        // Even though RecordInput has no creator field, double-check the
        // stored creator matches the stub's certificate.
        let mut h = Harness::new();
        let rec = h.post("item", &input(b"x")).unwrap();
        assert_eq!(rec.creator, h.cert);
    }

    #[test]
    fn corrupt_stored_record_reported() {
        let mut h = Harness::new();
        h.post("item", &input(b"x")).unwrap();
        // Corrupt the stored bytes directly.
        let sep = hyperprov_fabric::COMPOSITE_SEP;
        let ik = format!("item{sep}item{sep}");
        h.state.apply_write(
            &KvWrite {
                key: StateKey::new(CHAINCODE_NAME, &ik),
                value: Some(vec![0xFF]),
            },
            Version::new(99, 0),
        );
        assert!(matches!(
            h.invoke("get", vec![b"item".to_vec()]),
            Err(ChaincodeError::Rejected(_))
        ));
    }
}
