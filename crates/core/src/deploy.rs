//! Network deployment: assemble peers, orderer, off-chain storage and
//! clients into one simulation, with device profiles matching the paper's
//! desktop and Raspberry Pi testbeds.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use hyperprov_device::{link_between, DeviceProfile};
use hyperprov_fabric::{
    BatchConfig, ChaincodeRegistry, ChannelPolicies, CommitPipeline, Committer, CostModel,
    EndorsementPolicy, FabricMsg, Gateway, Msp, MspBuilder, MspId, PeerActor, RaftConfig,
    RaftOrdererActor, SigningIdentity, SnapshotPolicy, SoloOrdererActor, RAFT_TICK_TOKEN,
};
use hyperprov_ledger::{ChannelId, DEFAULT_CHANNEL};
use hyperprov_offchain::{MemoryStore, StorageActor, StorageCosts};
use hyperprov_sim::{ActorId, CpuResource, QueueConfig, SimDuration, Simulation, SloSpec};

use crate::chaincode::{HyperProvChaincode, HyperProvIndexer};
use crate::client::{CompletionQueue, HyperProvClient, RetryPolicy};
use crate::net::NodeMsg;
use crate::router::HashRouter;

/// Ordering-service topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrdererMode {
    /// A single ordering node — the paper's setup and the default.
    Solo,
    /// A Raft-replicated ordering service; killing the leader triggers an
    /// election and the cluster keeps ordering.
    Raft {
        /// Cluster size (use an odd number for sensible quorums).
        members: usize,
    },
}

/// One channel (shard) of a deployment.
///
/// A deployment instantiates one complete ordering pipeline per channel;
/// peers host any subset of channels (each with its own block store,
/// state database and history database), and clients route item keys to
/// channels through a [`crate::ChannelRouter`].
#[derive(Debug, Clone)]
pub struct ChannelSpec {
    /// Channel name (unique within the deployment).
    pub name: String,
    /// Ordering topology for this channel (`None` = the deployment-wide
    /// [`NetworkConfig::orderer_mode`]).
    pub orderer_mode: Option<OrdererMode>,
    /// Endorsement policy for this channel (`None` = the deployment-wide
    /// [`NetworkConfig::policy`]).
    pub policy: Option<EndorsementPolicy>,
    /// Peer indices hosting this channel (`None` = every peer).
    pub peers: Option<Vec<usize>>,
}

impl ChannelSpec {
    /// A channel hosted by every peer, with the deployment defaults.
    pub fn new(name: impl Into<String>) -> Self {
        ChannelSpec {
            name: name.into(),
            orderer_mode: None,
            policy: None,
            peers: None,
        }
    }

    /// Overrides the ordering topology for this channel.
    #[must_use]
    pub fn with_orderer_mode(mut self, mode: OrdererMode) -> Self {
        self.orderer_mode = Some(mode);
        self
    }

    /// Overrides the endorsement policy for this channel.
    #[must_use]
    pub fn with_policy(mut self, policy: EndorsementPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Restricts the channel to a subset of peers (by peer index).
    #[must_use]
    pub fn with_peers(mut self, peers: Vec<usize>) -> Self {
        self.peers = Some(peers);
        self
    }
}

/// Configuration of a HyperProv network.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Simulation seed (determinism knob).
    pub seed: u64,
    /// One device per peer node; peer `i` belongs to `org(i+1)`.
    pub peer_devices: Vec<DeviceProfile>,
    /// The machine hosting the ordering service.
    pub orderer_device: DeviceProfile,
    /// The machine hosting the off-chain store (always separate, per the
    /// paper).
    pub storage_device: DeviceProfile,
    /// One device per client process. Client `i` endorses at and
    /// subscribes to peer `i % peers`.
    pub client_devices: Vec<DeviceProfile>,
    /// Orderer batching parameters.
    pub batch: BatchConfig,
    /// Endorsement policy for the HyperProv chaincode.
    pub policy: EndorsementPolicy,
    /// How many endorsements clients collect before submitting.
    pub endorsements_needed: usize,
    /// The reference CPU cost table.
    pub costs: CostModel,
    /// SSHFS service costs.
    pub storage_costs: StorageCosts,
    /// Install the permissive chaincode variant (no parent checks).
    pub permissive: bool,
    /// Admission-queue bound for every peer (`None` = unbounded, the
    /// paper-faithful work-at-arrival default).
    pub peer_queue: Option<QueueConfig>,
    /// Admission-queue bound for the ordering service.
    pub orderer_queue: Option<QueueConfig>,
    /// Admission-queue bound for the off-chain storage node.
    pub storage_queue: Option<QueueConfig>,
    /// Ordering-service topology (`Solo` keeps the paper-faithful layout
    /// and leaves every actor id unchanged).
    pub orderer_mode: OrdererMode,
    /// Client retry policy for transient gateway failures (`None` = fail
    /// fast, the seed default).
    pub retry: Option<RetryPolicy>,
    /// Client per-op endorsement deadline (`None` = wait forever).
    pub endorse_timeout: Option<SimDuration>,
    /// Client per-op commit-wait deadline (`None` = wait forever).
    pub commit_timeout: Option<SimDuration>,
    /// The deployment's channels (shards). The single-entry default keeps
    /// the paper-faithful one-channel layout, byte-identical to the
    /// pre-sharding code paths.
    pub channels: Vec<ChannelSpec>,
    /// Peer commit-path acceleration: VSCC lanes and verification caches.
    /// The default (one lane, no caches) keeps the legacy serial commit
    /// path; requested lanes are clamped to each peer device's core count.
    pub pipeline: CommitPipeline,
    /// Rolling-window SLOs evaluated during the run (empty = monitoring
    /// off, the default — default-config exports stay byte-identical).
    /// Latency objectives watch pipeline span stages (`"op"`,
    /// `"endorse"`, `"commit.apply"`, `"query"`, ...); event objectives
    /// watch the built-in sources `"client.ok"` / `"client.err"`
    /// (operation completions) and `"commit.tx"` (valid transactions
    /// committed at peers).
    pub slos: Vec<SloSpec>,
    /// Peer snapshot policy (`None` = snapshots, pruning and
    /// snapshot-based recovery off, the paper-faithful default). With a
    /// policy set, every peer cuts Merkle-rooted snapshots, prunes its
    /// block store behind them (per the policy) and bootstraps restarts
    /// from the latest snapshot; the other peers hosting each channel
    /// become its snapshot-catch-up providers.
    pub snapshots: Option<SnapshotPolicy>,
    /// Emit per-restart recovery gauges at peers (`peerN.recovery.*`);
    /// off by default so existing metric exports stay unchanged.
    pub recovery_metrics: bool,
    /// Identities pre-enrolled for elastic membership: how many peers can
    /// be added to the running network later via
    /// [`HyperProvNetwork::add_peer`]. Zero (the default) changes
    /// nothing; spares are enrolled after all baseline identities so
    /// existing certificates stay byte-identical.
    pub spare_peers: usize,
    /// Back every peer's world state with the flat-sorted storage backend
    /// instead of the B-tree default — faster point reads when the key
    /// count is large (the T-SCALE regime). Off by default so existing
    /// exports stay byte-identical.
    pub flat_state: bool,
    /// Deliver each commit event only to the client that submitted the
    /// transaction (keyed by creator certificate) instead of
    /// broadcasting every event to every subscriber of the peer — models
    /// gateway-side event filtering. Mandatory at the 10k-client scale,
    /// where the broadcast is quadratic; off by default so existing
    /// exports stay byte-identical.
    pub targeted_events: bool,
}

impl NetworkConfig {
    /// The paper's desktop testbed: two Xeon E5-1603 (one also hosting the
    /// orderer), one i7-4700MQ, one i3-2310M; SSHFS on a separate machine.
    pub fn desktop(clients: usize) -> Self {
        let peer_devices = vec![
            DeviceProfile::xeon_e5_1603(),
            DeviceProfile::xeon_e5_1603(),
            DeviceProfile::core_i7_4700mq(),
            DeviceProfile::core_i3_2310m(),
        ];
        NetworkConfig {
            seed: 1,
            orderer_device: DeviceProfile::xeon_e5_1603(),
            storage_device: DeviceProfile::xeon_e5_1603(),
            client_devices: vec![DeviceProfile::xeon_e5_1603(); clients.max(1)],
            policy: EndorsementPolicy::any_of(
                (1..=peer_devices.len()).map(|i| MspId::new(format!("org{i}"))),
            ),
            peer_devices,
            batch: BatchConfig::default(),
            endorsements_needed: 1,
            costs: CostModel::default(),
            storage_costs: StorageCosts::default(),
            permissive: false,
            peer_queue: None,
            orderer_queue: None,
            storage_queue: None,
            orderer_mode: OrdererMode::Solo,
            retry: None,
            endorse_timeout: None,
            commit_timeout: None,
            channels: vec![ChannelSpec::new(DEFAULT_CHANNEL)],
            pipeline: CommitPipeline::default(),
            slos: Vec::new(),
            snapshots: None,
            recovery_metrics: false,
            spare_peers: 0,
            flat_state: false,
            targeted_events: false,
        }
    }

    /// The paper's edge testbed: four Raspberry Pi 3B+ devices on one
    /// switch (one also hosts the orderer); SSHFS on a separate node.
    pub fn rpi(clients: usize) -> Self {
        let rpi = DeviceProfile::raspberry_pi_3b_plus();
        NetworkConfig {
            seed: 1,
            peer_devices: vec![rpi.clone(); 4],
            orderer_device: rpi.clone(),
            storage_device: rpi.clone(),
            client_devices: vec![rpi; clients.max(1)],
            policy: EndorsementPolicy::any_of((1..=4).map(|i| MspId::new(format!("org{i}")))),
            batch: BatchConfig::default(),
            endorsements_needed: 1,
            costs: CostModel::default(),
            storage_costs: StorageCosts::default(),
            permissive: false,
            peer_queue: None,
            orderer_queue: None,
            storage_queue: None,
            orderer_mode: OrdererMode::Solo,
            retry: None,
            endorse_timeout: None,
            commit_timeout: None,
            channels: vec![ChannelSpec::new(DEFAULT_CHANNEL)],
            pipeline: CommitPipeline::default(),
            slos: Vec::new(),
            snapshots: None,
            recovery_metrics: false,
            spare_peers: 0,
            flat_state: false,
            targeted_events: false,
        }
    }

    /// Sets the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the batch configuration.
    #[must_use]
    pub fn with_batch(mut self, batch: BatchConfig) -> Self {
        self.batch = batch;
        self
    }

    /// Bounds every peer's admission queue.
    #[must_use]
    pub fn with_peer_queue(mut self, queue: QueueConfig) -> Self {
        self.peer_queue = Some(queue);
        self
    }

    /// Bounds the orderer's admission queue.
    #[must_use]
    pub fn with_orderer_queue(mut self, queue: QueueConfig) -> Self {
        self.orderer_queue = Some(queue);
        self
    }

    /// Bounds the storage node's admission queue.
    #[must_use]
    pub fn with_storage_queue(mut self, queue: QueueConfig) -> Self {
        self.storage_queue = Some(queue);
        self
    }

    /// Replaces the solo orderer with a `members`-node Raft cluster.
    ///
    /// # Panics
    ///
    /// Panics if `members` is zero.
    #[must_use]
    pub fn with_raft_orderers(mut self, members: usize) -> Self {
        assert!(members >= 1, "raft cluster needs at least one member");
        self.orderer_mode = OrdererMode::Raft { members };
        self
    }

    /// Arms client-side retries of transient gateway failures.
    #[must_use]
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Arms client per-op deadlines for the endorsement and commit-wait
    /// phases.
    #[must_use]
    pub fn with_deadlines(
        mut self,
        endorse: Option<SimDuration>,
        commit: Option<SimDuration>,
    ) -> Self {
        self.endorse_timeout = endorse;
        self.commit_timeout = commit;
        self
    }

    /// Shards the deployment over `n` channels, every peer hosting every
    /// channel. `n == 1` keeps the legacy channel name (and with it the
    /// byte-identical single-channel layout); larger `n` names the shards
    /// `hyperprov-channel-0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn with_channels(mut self, n: usize) -> Self {
        assert!(n >= 1, "deployment needs at least one channel");
        self.channels = if n == 1 {
            vec![ChannelSpec::new(DEFAULT_CHANNEL)]
        } else {
            (0..n)
                .map(|c| ChannelSpec::new(format!("{DEFAULT_CHANNEL}-{c}")))
                .collect()
        };
        self
    }

    /// Accelerates the peer commit path: spreads VSCC over `lanes` CPU
    /// lanes (clamped to each device's cores) and enables the requested
    /// verification caches.
    #[must_use]
    pub fn with_pipeline(mut self, pipeline: CommitPipeline) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Installs rolling-window SLOs on the deployment (see
    /// [`NetworkConfig::slos`] for the objective sources available).
    #[must_use]
    pub fn with_slos(mut self, slos: Vec<SloSpec>) -> Self {
        self.slos = slos;
        self
    }

    /// Replaces the channel list with explicit per-channel specifications
    /// (names, ordering topologies, policies, hosting peers).
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty.
    #[must_use]
    pub fn with_channel_specs(mut self, specs: Vec<ChannelSpec>) -> Self {
        assert!(!specs.is_empty(), "deployment needs at least one channel");
        self.channels = specs;
        self
    }

    /// Installs a peer snapshot policy: Merkle-rooted snapshots every
    /// `policy.interval` blocks, block-store pruning behind them (per the
    /// policy) and snapshot-based crash recovery, with the other hosting
    /// peers of each channel acting as snapshot catch-up providers.
    #[must_use]
    pub fn with_snapshots(mut self, policy: SnapshotPolicy) -> Self {
        self.snapshots = Some(policy);
        self
    }

    /// Emits per-restart recovery gauges at every peer (`peerN.recovery.*`).
    #[must_use]
    pub fn with_recovery_metrics(mut self) -> Self {
        self.recovery_metrics = true;
        self
    }

    /// Pre-enrolls `n` spare peer identities for elastic membership, so
    /// [`HyperProvNetwork::add_peer`] can grow the running network.
    #[must_use]
    pub fn with_spare_peers(mut self, n: usize) -> Self {
        self.spare_peers = n;
        self
    }

    /// Backs every peer's world state with the flat-sorted storage
    /// backend (large-key-count deployments; see
    /// [`NetworkConfig::flat_state`]).
    #[must_use]
    pub fn with_flat_state(mut self) -> Self {
        self.flat_state = true;
        self
    }

    /// Routes each commit event only to the submitting client (see
    /// [`NetworkConfig::targeted_events`]) — required for deployments
    /// with thousands of clients.
    #[must_use]
    pub fn with_targeted_events(mut self) -> Self {
        self.targeted_events = true;
        self
    }
}

/// Per-channel wiring a spare peer needs to join the running network.
struct JoinChannelInfo {
    id: ChannelId,
    policy: EndorsementPolicy,
    orderers: Vec<ActorId>,
}

/// Everything needed to attach spare peers to the running network
/// (elastic membership; see [`HyperProvNetwork::add_peer`]).
struct JoinKit {
    msp: Arc<Msp>,
    registry: ChaincodeRegistry,
    costs: CostModel,
    pipeline: CommitPipeline,
    peer_queue: Option<QueueConfig>,
    snapshots: Option<SnapshotPolicy>,
    recovery_metrics: bool,
    flat_state: bool,
    /// Pre-enrolled spare identities with their device profiles.
    spares: Vec<(SigningIdentity, DeviceProfile)>,
    next_spare: usize,
    chan_info: Vec<JoinChannelInfo>,
}

/// A built network, ready to run.
pub struct HyperProvNetwork {
    /// The simulation (owns all actors).
    pub sim: Simulation<NodeMsg>,
    /// Peer actor ids, in org order.
    pub peers: Vec<ActorId>,
    /// The orderer actor (the first cluster member under Raft).
    pub orderer: ActorId,
    /// Every ordering-service actor (length 1 under `OrdererMode::Solo`).
    pub orderers: Vec<ActorId>,
    /// The storage node actor.
    pub storage: ActorId,
    /// Client actor ids.
    pub clients: Vec<ActorId>,
    /// Completion queues, one per client.
    pub completions: Vec<CompletionQueue>,
    /// Shared handles to each peer's first-channel ledger (for audits and
    /// tests; on a single-channel deployment this is *the* ledger).
    pub ledgers: Vec<Rc<RefCell<Committer>>>,
    /// The off-chain object store (shared with the storage actor).
    pub store: Arc<MemoryStore>,
    /// Devices, in actor-id order, for energy metering.
    pub devices: Vec<DeviceProfile>,
    /// Channel ids, in shard order.
    pub channels: Vec<ChannelId>,
    /// Ordering-service actors per channel, in shard order.
    pub channel_orderers: Vec<Vec<ActorId>>,
    /// Per channel, the hosting peers' `(peer index, committer)` handles.
    pub channel_ledgers: Vec<Vec<(usize, Rc<RefCell<Committer>>)>>,
    /// Elastic-membership kit (spare identities + channel wiring).
    kit: JoinKit,
}

impl HyperProvNetwork {
    /// Builds a network from a configuration.
    ///
    /// Actor layout: peers `0..P`, orderers `P..P+R` (R = 1 for Solo),
    /// storage `P+R`, clients `P+R+1...`. Under the default Solo mode
    /// this is the historical `peers, orderer, storage, clients` layout.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no peers or no clients.
    pub fn build(config: &NetworkConfig) -> Self {
        assert!(!config.peer_devices.is_empty(), "need at least one peer");
        assert!(
            !config.client_devices.is_empty(),
            "need at least one client"
        );
        assert!(!config.channels.is_empty(), "need at least one channel");
        let n_peers = config.peer_devices.len();

        // Resolve each channel's topology: ordering mode, endorsement
        // policy and hosting peers (defaults fall back to the
        // deployment-wide settings).
        struct Chan {
            id: ChannelId,
            mode: OrdererMode,
            policy: EndorsementPolicy,
            hosts: Vec<usize>,
            orderers: Vec<ActorId>,
        }
        let mut chans: Vec<Chan> = Vec::with_capacity(config.channels.len());
        for spec in &config.channels {
            let hosts = match &spec.peers {
                Some(list) => {
                    assert!(
                        !list.is_empty(),
                        "channel {:?} needs at least one hosting peer",
                        spec.name
                    );
                    assert!(
                        list.iter().all(|&p| p < n_peers),
                        "channel {:?} references an unknown peer",
                        spec.name
                    );
                    list.clone()
                }
                None => (0..n_peers).collect(),
            };
            let id = ChannelId::from(spec.name.as_str());
            assert!(
                chans.iter().all(|c| c.id != id),
                "duplicate channel name {:?}",
                spec.name
            );
            chans.push(Chan {
                id,
                mode: spec.orderer_mode.unwrap_or(config.orderer_mode),
                policy: spec.policy.clone().unwrap_or_else(|| config.policy.clone()),
                hosts,
                orderers: Vec::new(),
            });
        }
        for i in 0..n_peers {
            assert!(
                chans.iter().any(|c| c.hosts.contains(&i)),
                "peer {i} hosts no channel"
            );
        }

        // Enrol identities.
        let mut msp_builder = MspBuilder::new(config.seed);
        let peer_identities: Vec<_> = (0..n_peers)
            .map(|i| msp_builder.enroll(&format!("peer{i}"), &MspId::new(format!("org{}", i + 1))))
            .collect();
        let client_identities: Vec<_> = (0..config.client_devices.len())
            .map(|i| {
                let org = MspId::new(format!("org{}", (i % n_peers) + 1));
                msp_builder.enroll(&format!("client{i}"), &org)
            })
            .collect();
        // Spare identities for elastic membership are enrolled last, so a
        // zero-spare deployment draws exactly the same certificates as
        // before.
        let spare_identities: Vec<SigningIdentity> = (0..config.spare_peers)
            .map(|i| {
                let org = MspId::new(format!("org{}", (i % n_peers) + 1));
                msp_builder.enroll(&format!("spare{i}"), &org)
            })
            .collect();
        let msp = msp_builder.build();

        // Install the chaincode.
        let mut registry = ChaincodeRegistry::new();
        let chaincode = if config.permissive {
            HyperProvChaincode::permissive()
        } else {
            HyperProvChaincode::new()
        };
        registry.install(Arc::new(chaincode));

        // Predictable actor ids: peers first, then each channel's ordering
        // block in shard order, then storage and clients.
        let peer_ids: Vec<ActorId> = (0..n_peers as u32).map(ActorId).collect();
        let mut cursor = n_peers as u32;
        for chan in &mut chans {
            let members = match chan.mode {
                OrdererMode::Solo => 1,
                OrdererMode::Raft { members } => members.max(1),
            };
            chan.orderers = (0..members as u32).map(|i| ActorId(cursor + i)).collect();
            cursor += members as u32;
        }
        let storage_id = ActorId(cursor);
        let client_ids: Vec<ActorId> = (0..config.client_devices.len() as u32)
            .map(|i| ActorId(cursor + 1 + i))
            .collect();

        let mut sim: Simulation<NodeMsg> = Simulation::new(config.seed);
        if !config.slos.is_empty() {
            sim.set_slos(config.slos.clone());
        }
        let mut ledgers = Vec::new();
        let mut channel_ledgers: Vec<Vec<(usize, Rc<RefCell<Committer>>)>> =
            vec![Vec::new(); chans.len()];
        let mut devices = Vec::new();

        for (i, identity) in peer_identities.iter().enumerate() {
            let hosted: Vec<usize> = (0..chans.len())
                .filter(|&ci| chans[ci].hosts.contains(&i))
                .collect();
            let mut committers = Vec::with_capacity(hosted.len());
            for &ci in &hosted {
                let chan = &chans[ci];
                let mut committer = Committer::for_channel(
                    chan.id.clone(),
                    msp.clone(),
                    ChannelPolicies::new(chan.policy.clone()),
                )
                .with_indexer(Arc::new(HyperProvIndexer));
                if config.flat_state {
                    committer = committer.with_flat_state();
                }
                let committer = Rc::new(RefCell::new(committer));
                channel_ledgers[ci].push((i, committer.clone()));
                committers.push((ci, committer));
            }
            let (first_ci, first_committer) = committers[0].clone();
            ledgers.push(first_committer.clone());
            let first_chan = &chans[first_ci];
            // A peer gets at most as many VSCC lanes as its device has
            // cores: an RPi cannot fan out like a Xeon.
            let lanes = config
                .pipeline
                .lanes
                .clamp(1, config.peer_devices[i].cores.max(1));
            let mut actor = PeerActor::<NodeMsg>::new(
                identity.clone(),
                registry.clone(),
                first_committer,
                config.costs,
                format!("peer{i}"),
            )
            .with_pipeline(CommitPipeline {
                lanes,
                ..config.pipeline
            })
            .with_catchup_target(first_chan.orderers[i % first_chan.orderers.len()]);
            for (ci, committer) in committers.into_iter().skip(1) {
                let chan = &chans[ci];
                actor.add_channel(committer, Some(chan.orderers[i % chan.orderers.len()]));
            }
            if let Some(policy) = config.snapshots {
                actor = actor.with_snapshots(policy);
                // The other peers hosting each channel form this peer's
                // snapshot catch-up provider ladder.
                for &ci in &hosted {
                    let chan = &chans[ci];
                    let providers: Vec<ActorId> = chan
                        .hosts
                        .iter()
                        .filter(|&&p| p != i)
                        .map(|&p| peer_ids[p])
                        .collect();
                    actor.set_snapshot_providers(&chan.id, providers);
                }
            }
            if config.recovery_metrics {
                actor = actor.with_recovery_metrics();
            }
            if let Some(queue) = config.peer_queue {
                actor = actor.with_queue(queue);
            }
            // A client subscribes (for commit events) at its home peer on
            // every channel it submits to — either for every event
            // (broadcast) or, under targeted delivery, only for its own
            // transactions.
            for (c, &cid) in client_ids.iter().enumerate() {
                if chans
                    .iter()
                    .any(|chan| chan.hosts[c % chan.hosts.len()] == i)
                {
                    if config.targeted_events {
                        actor.subscribe_targeted(cid, client_identities[c].certificate().id);
                    } else {
                        actor.subscribe(cid);
                    }
                }
            }
            let id = sim.add_actor_with_cpu(
                Box::new(actor),
                CpuResource::with_lanes(config.peer_devices[i].cpu_speed, lanes),
            );
            debug_assert_eq!(id, peer_ids[i]);
            sim.set_actor_label(id, "peer");
            devices.push(config.peer_devices[i].clone());
        }

        for (ci, chan) in chans.iter().enumerate() {
            let deliver_to: Vec<ActorId> = chan.hosts.iter().map(|&p| peer_ids[p]).collect();
            match chan.mode {
                OrdererMode::Solo => {
                    let mut orderer_actor = SoloOrdererActor::<NodeMsg>::for_channel(
                        chan.id.clone(),
                        config.batch,
                        deliver_to,
                        config.costs,
                    );
                    if let Some(queue) = config.orderer_queue {
                        orderer_actor = orderer_actor.with_queue(queue);
                    }
                    let id = sim.add_actor_with_speed(
                        Box::new(orderer_actor),
                        config.orderer_device.cpu_speed,
                    );
                    debug_assert_eq!(id, chan.orderers[0]);
                    sim.set_actor_label(id, "orderer");
                    devices.push(config.orderer_device.clone());
                }
                OrdererMode::Raft { .. } => {
                    // Per-channel election seed so concurrent clusters do
                    // not elect in lock-step (channel 0 keeps the legacy
                    // seed and its exact election timeline).
                    let raft_seed = config.seed.wrapping_add(ci as u64 * 7919);
                    for i in 0..chan.orderers.len() {
                        let mut actor = RaftOrdererActor::<NodeMsg>::new(
                            i,
                            chan.orderers.clone(),
                            deliver_to.clone(),
                            config.batch,
                            RaftConfig::default(),
                            SimDuration::from_millis(50),
                            raft_seed,
                            config.costs,
                        );
                        if !chan.id.is_default() {
                            actor = actor.with_channel(chan.id.clone());
                        }
                        if let Some(queue) = config.orderer_queue {
                            actor = actor.with_queue(queue);
                        }
                        let id = sim
                            .add_actor_with_speed(Box::new(actor), config.orderer_device.cpu_speed);
                        debug_assert_eq!(id, chan.orderers[i]);
                        sim.set_actor_label(id, "orderer");
                        sim.start_timer(id, SimDuration::ZERO, RAFT_TICK_TOKEN);
                        devices.push(config.orderer_device.clone());
                    }
                }
            }
        }

        let store = Arc::new(MemoryStore::new());
        let mut storage_actor = StorageActor::<NodeMsg>::new(store.clone(), config.storage_costs);
        if let Some(queue) = config.storage_queue {
            storage_actor = storage_actor.with_queue(queue);
        }
        let id = sim.add_actor_with_speed(Box::new(storage_actor), config.storage_device.cpu_speed);
        debug_assert_eq!(id, storage_id);
        sim.set_actor_label(id, "storage");
        devices.push(config.storage_device.clone());

        let mut clients = Vec::new();
        let mut completions = Vec::new();
        for (i, identity) in client_identities.iter().enumerate() {
            // One gateway per channel. On each channel, endorse at the
            // client's home peer first, then the other hosting peers, so
            // `endorsements_needed` > 1 spreads across orgs.
            let mut gateways = Vec::with_capacity(chans.len());
            for chan in &chans {
                let home = chan.hosts[i % chan.hosts.len()];
                let mut endorsers = vec![peer_ids[home]];
                endorsers.extend(
                    chan.hosts
                        .iter()
                        .filter(|&&p| p != home)
                        .map(|&p| peer_ids[p]),
                );
                let needed = config.endorsements_needed.min(chan.hosts.len());
                let mut gateway = Gateway::new(
                    identity.clone(),
                    chan.id.clone(),
                    endorsers,
                    chan.orderers[i % chan.orderers.len()],
                    needed,
                    config.costs,
                );
                if config.endorse_timeout.is_some() || config.commit_timeout.is_some() {
                    gateway = gateway.with_deadlines(config.endorse_timeout, config.commit_timeout);
                }
                gateways.push(gateway);
            }
            let (client_actor, queue) = if gateways.len() == 1 {
                HyperProvClient::new(
                    gateways.pop().expect("one gateway"),
                    storage_id,
                    "sshfs://store0/",
                    config.costs,
                )
            } else {
                HyperProvClient::sharded(
                    gateways,
                    Box::new(HashRouter),
                    storage_id,
                    "sshfs://store0/",
                    config.costs,
                )
            };
            let client_actor = match config.retry {
                Some(policy) => client_actor.with_retry(policy),
                None => client_actor,
            };
            let id = sim
                .add_actor_with_speed(Box::new(client_actor), config.client_devices[i].cpu_speed);
            debug_assert_eq!(id, client_ids[i]);
            sim.set_actor_label(id, "client");
            clients.push(id);
            completions.push(queue);
            devices.push(config.client_devices[i].clone());
        }

        // Wire pairwise links from device NICs (one shared switch).
        let all: Vec<(ActorId, &DeviceProfile)> = devices
            .iter()
            .enumerate()
            .map(|(i, d)| (ActorId(i as u32), d))
            .collect();
        for (a, da) in &all {
            for (b, db) in &all {
                if a != b {
                    sim.network_mut().set_link(*a, *b, link_between(da, db));
                }
            }
        }

        let channel_orderers: Vec<Vec<ActorId>> =
            chans.iter().map(|c| c.orderers.clone()).collect();
        let orderers: Vec<ActorId> = channel_orderers.iter().flatten().copied().collect();
        let kit = JoinKit {
            msp,
            registry,
            costs: config.costs,
            pipeline: config.pipeline,
            peer_queue: config.peer_queue,
            snapshots: config.snapshots,
            recovery_metrics: config.recovery_metrics,
            flat_state: config.flat_state,
            spares: spare_identities
                .into_iter()
                .enumerate()
                .map(|(i, id)| (id, config.peer_devices[i % n_peers].clone()))
                .collect(),
            next_spare: 0,
            chan_info: chans
                .iter()
                .map(|c| JoinChannelInfo {
                    id: c.id.clone(),
                    policy: c.policy.clone(),
                    orderers: c.orderers.clone(),
                })
                .collect(),
        };
        HyperProvNetwork {
            sim,
            peers: peer_ids,
            orderer: orderers[0],
            orderers,
            storage: storage_id,
            clients: client_ids,
            completions,
            ledgers,
            store,
            devices,
            channels: chans.iter().map(|c| c.id.clone()).collect(),
            channel_orderers,
            channel_ledgers,
            kit,
        }
    }

    /// Number of spare peer identities still available to
    /// [`HyperProvNetwork::add_peer`].
    pub fn spare_peers_left(&self) -> usize {
        self.kit.spares.len() - self.kit.next_spare
    }

    /// Attaches the next pre-enrolled spare peer to the running network
    /// (elastic membership). The peer starts with empty ledgers on every
    /// channel, subscribes to each channel's ordering service for future
    /// blocks, and immediately begins catching up: through the snapshot
    /// catch-up protocol when the deployment runs snapshots (fetching the
    /// latest snapshot from an existing peer, then the block delta), or
    /// through plain block re-delivery otherwise.
    ///
    /// Call between [`hyperprov_sim::Simulation::run_until`] slices; the
    /// join kicks off at the current virtual time. Returns the new peer's
    /// actor id.
    ///
    /// # Panics
    ///
    /// Panics if no spare identities remain (configure them with
    /// [`NetworkConfig::with_spare_peers`]).
    pub fn add_peer(&mut self) -> ActorId {
        assert!(
            self.kit.next_spare < self.kit.spares.len(),
            "no spare peer identities left (use NetworkConfig::with_spare_peers)"
        );
        let (identity, device) = self.kit.spares[self.kit.next_spare].clone();
        self.kit.next_spare += 1;
        let index = self.peers.len();
        let mut committers = Vec::with_capacity(self.kit.chan_info.len());
        for info in &self.kit.chan_info {
            let mut committer = Committer::for_channel(
                info.id.clone(),
                self.kit.msp.clone(),
                ChannelPolicies::new(info.policy.clone()),
            )
            .with_indexer(Arc::new(HyperProvIndexer));
            if self.kit.flat_state {
                committer = committer.with_flat_state();
            }
            committers.push(Rc::new(RefCell::new(committer)));
        }
        let lanes = self.kit.pipeline.lanes.clamp(1, device.cores.max(1));
        let first = &self.kit.chan_info[0];
        let mut actor = PeerActor::<NodeMsg>::new(
            identity,
            self.kit.registry.clone(),
            committers[0].clone(),
            self.kit.costs,
            format!("peer{index}"),
        )
        .with_pipeline(CommitPipeline {
            lanes,
            ..self.kit.pipeline
        })
        .with_catchup_target(first.orderers[index % first.orderers.len()]);
        for (info, committer) in self.kit.chan_info.iter().zip(&committers).skip(1) {
            actor.add_channel(
                committer.clone(),
                Some(info.orderers[index % info.orderers.len()]),
            );
        }
        if let Some(policy) = self.kit.snapshots {
            actor = actor.with_snapshots(policy);
            // Every peer currently serving a channel can provide its
            // snapshot (and block re-delivery) to the newcomer.
            for (ci, info) in self.kit.chan_info.iter().enumerate() {
                let providers: Vec<ActorId> = self.channel_ledgers[ci]
                    .iter()
                    .map(|(p, _)| self.peers[*p])
                    .collect();
                actor.set_snapshot_providers(&info.id, providers);
            }
        }
        if self.kit.recovery_metrics {
            actor = actor.with_recovery_metrics();
        }
        if let Some(queue) = self.kit.peer_queue {
            actor = actor.with_queue(queue);
        }
        let id = self.sim.add_actor_with_cpu(
            Box::new(actor),
            CpuResource::with_lanes(device.cpu_speed, lanes),
        );
        debug_assert_eq!(id, ActorId(self.devices.len() as u32));
        self.sim.set_actor_label(id, "peer");
        // Full-mesh links to every existing device (one shared switch).
        for (other, dev) in self.devices.iter().enumerate() {
            let other = ActorId(other as u32);
            self.sim
                .network_mut()
                .set_link(id, other, link_between(&device, dev));
            self.sim
                .network_mut()
                .set_link(other, id, link_between(dev, &device));
        }
        self.devices.push(device);
        for (ci, committer) in committers.iter().enumerate() {
            self.channel_ledgers[ci].push((index, committer.clone()));
        }
        self.ledgers.push(committers[0].clone());
        self.peers.push(id);
        // Subscribe to every channel's ordering service, then kick
        // catch-up on each hosted channel.
        for info in &self.kit.chan_info {
            for &orderer in &info.orderers {
                self.sim.inject_message(
                    orderer,
                    NodeMsg::Fabric(FabricMsg::DeliverSubscribe {
                        channel: info.id.clone(),
                        peer: id,
                    }),
                );
            }
            self.sim.inject_message(
                id,
                NodeMsg::Fabric(FabricMsg::JoinChannel {
                    channel: info.id.clone(),
                }),
            );
        }
        id
    }
}

impl std::fmt::Debug for HyperProvNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HyperProvNetwork")
            .field("peers", &self.peers.len())
            .field("clients", &self.clients.len())
            .field("now", &self.sim.now())
            .finish()
    }
}
