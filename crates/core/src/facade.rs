//! A synchronous facade over a simulated HyperProv network.
//!
//! Examples and applications call blocking methods (`store_data`, `get`,
//! `get_lineage`, ...) on [`HyperProv`]; each call injects a command into
//! a client actor and advances virtual time until the completion arrives.
//! This is the experience of using the paper's NodeJS client library, with
//! the whole distributed deployment running inside the process.

use hyperprov_ledger::Digest;
use hyperprov_sim::{SimDuration, SimTime};

use crate::client::{ClientCommand, HyperProvError, OpId, OpOutput};
use crate::deploy::{HyperProvNetwork, NetworkConfig};
use crate::net::NodeMsg;
use crate::record::{GraphSlice, HistoryRecord, LineageEntry, ProvenanceRecord, RecordInput};

/// How long (virtual time) to wait for one operation before giving up.
const OP_TIMEOUT: SimDuration = SimDuration::from_secs(30);

/// A running HyperProv deployment with a blocking client API.
///
/// # Examples
///
/// ```
/// use hyperprov::HyperProv;
///
/// let mut hp = HyperProv::desktop();
/// let record = hp.store_data("readings", b"1,2,3".to_vec(), vec![], vec![])?;
/// let (back, data) = hp.get_data("readings")?;
/// assert_eq!(data, b"1,2,3");
/// assert_eq!(back.checksum, record.checksum);
/// # Ok::<(), hyperprov::HyperProvError>(())
/// ```
#[derive(Debug)]
pub struct HyperProv {
    net: HyperProvNetwork,
    next_op: u64,
}

impl HyperProv {
    /// Builds and starts the desktop-testbed deployment with one client.
    pub fn desktop() -> Self {
        HyperProv::with_config(&NetworkConfig::desktop(1))
    }

    /// Builds and starts the Raspberry Pi edge deployment with one client.
    pub fn rpi() -> Self {
        HyperProv::with_config(&NetworkConfig::rpi(1))
    }

    /// Builds a deployment from an explicit configuration.
    pub fn with_config(config: &NetworkConfig) -> Self {
        HyperProv {
            net: HyperProvNetwork::build(config),
            next_op: 0,
        }
    }

    /// The underlying network (actors, ledgers, store, metrics).
    pub fn network(&self) -> &HyperProvNetwork {
        &self.net
    }

    /// Mutable access to the underlying network.
    pub fn network_mut(&mut self) -> &mut HyperProvNetwork {
        &mut self.net
    }

    /// Current virtual time of the deployment.
    pub fn now(&self) -> SimTime {
        self.net.sim.now()
    }

    fn call(&mut self, cmd: ClientCommand) -> Result<OpOutput, HyperProvError> {
        let op = cmd.op();
        let client = self.net.clients[0];
        self.net.sim.inject_message(client, NodeMsg::Client(cmd));
        let deadline = self.net.sim.now() + OP_TIMEOUT;
        loop {
            // Drain completions looking for ours.
            let hit = {
                let mut queue = self.net.completions[0].borrow_mut();
                let mut found = None;
                while let Some(completion) = queue.pop_front() {
                    if completion.op == op {
                        found = Some(completion);
                        break;
                    }
                    // Drop completions of abandoned ops (shouldn't happen
                    // through this facade).
                }
                found
            };
            if let Some(completion) = hit {
                return completion.outcome;
            }
            if self.net.sim.now() >= deadline {
                return Err(HyperProvError::Rejected(format!(
                    "operation timed out after {OP_TIMEOUT} of virtual time"
                )));
            }
            if self.net.sim.run_events(256) == 0 {
                // No immediately-runnable events: advance the clock so
                // pending timers (e.g. the orderer's batch timeout) fire.
                let now = self.net.sim.now();
                self.net.sim.run_until(now + SimDuration::from_millis(100));
            }
        }
    }

    fn op(&mut self) -> OpId {
        self.next_op += 1;
        OpId(self.next_op)
    }

    /// Stores `data` off-chain and posts its provenance record — the
    /// paper's `StoreData`.
    ///
    /// # Errors
    ///
    /// Returns a [`HyperProvError`] if storage or the transaction fails.
    pub fn store_data(
        &mut self,
        key: &str,
        data: Vec<u8>,
        parents: Vec<String>,
        metadata: Vec<(String, String)>,
    ) -> Result<ProvenanceRecord, HyperProvError> {
        let op = self.op();
        match self.call(ClientCommand::StoreData {
            key: key.to_owned(),
            data,
            parents,
            metadata,
            op,
        })? {
            OpOutput::Committed {
                record: Some(record),
                ..
            } => Ok(record),
            other => Err(unexpected(other)),
        }
    }

    /// Posts a metadata-only provenance record — the paper's `Post`.
    ///
    /// # Errors
    ///
    /// Returns a [`HyperProvError`] if the transaction fails or is
    /// invalidated.
    pub fn post(
        &mut self,
        key: &str,
        input: RecordInput,
    ) -> Result<ProvenanceRecord, HyperProvError> {
        let op = self.op();
        match self.call(ClientCommand::Post {
            key: key.to_owned(),
            input,
            op,
        })? {
            OpOutput::Committed {
                record: Some(record),
                ..
            } => Ok(record),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the current on-chain record of `key` — the paper's `Get`.
    ///
    /// # Errors
    ///
    /// Returns [`HyperProvError::Rejected`] if the key does not exist.
    pub fn get(&mut self, key: &str) -> Result<ProvenanceRecord, HyperProvError> {
        let op = self.op();
        match self.call(ClientCommand::Get {
            key: key.to_owned(),
            op,
        })? {
            OpOutput::Record(record) => Ok(record),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the record and its off-chain payload, verifying the
    /// checksum — the paper's `GetData`.
    ///
    /// # Errors
    ///
    /// Returns [`HyperProvError::IntegrityViolation`] if the payload was
    /// tampered with.
    pub fn get_data(&mut self, key: &str) -> Result<(ProvenanceRecord, Vec<u8>), HyperProvError> {
        let op = self.op();
        match self.call(ClientCommand::GetData {
            key: key.to_owned(),
            op,
        })? {
            OpOutput::Data { record, data } => Ok((record, data)),
            other => Err(unexpected(other)),
        }
    }

    /// Verifies the off-chain payload against the on-chain checksum,
    /// returning `true` when intact — the paper's `CheckData`.
    ///
    /// # Errors
    ///
    /// Returns a [`HyperProvError`] if the record itself cannot be read.
    pub fn check_data(&mut self, key: &str) -> Result<bool, HyperProvError> {
        let op = self.op();
        match self.call(ClientCommand::CheckData {
            key: key.to_owned(),
            op,
        })? {
            OpOutput::Checked { ok } => Ok(ok),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the full version history of `key`.
    ///
    /// # Errors
    ///
    /// Returns [`HyperProvError::Rejected`] if the key was never posted.
    pub fn get_history(&mut self, key: &str) -> Result<Vec<HistoryRecord>, HyperProvError> {
        let op = self.op();
        match self.call(ClientCommand::GetHistory {
            key: key.to_owned(),
            op,
        })? {
            OpOutput::History(entries) => Ok(entries),
            other => Err(unexpected(other)),
        }
    }

    /// Reverse lookup from a checksum to item keys.
    ///
    /// # Errors
    ///
    /// Returns a [`HyperProvError`] if the query fails.
    pub fn get_keys_by_checksum(
        &mut self,
        checksum: Digest,
    ) -> Result<Vec<String>, HyperProvError> {
        let op = self.op();
        match self.call(ClientCommand::GetKeysByChecksum { checksum, op })? {
            OpOutput::Keys(keys) => Ok(keys),
            other => Err(unexpected(other)),
        }
    }

    /// Ancestor lineage of `key`, breadth-first to `depth` (full records,
    /// hop-by-hop oracle walk). A traversal cut short by the depth clamp
    /// is reported via [`Self::get_lineage_truncated`].
    ///
    /// # Errors
    ///
    /// Returns [`HyperProvError::Rejected`] if the key does not exist.
    pub fn get_lineage(
        &mut self,
        key: &str,
        depth: u32,
    ) -> Result<Vec<LineageEntry>, HyperProvError> {
        Ok(self.get_lineage_truncated(key, depth)?.0)
    }

    /// Like [`Self::get_lineage`] but also reports whether the depth
    /// clamp cut the walk short (ancestors beyond the limit exist but are
    /// not in the returned chain).
    ///
    /// # Errors
    ///
    /// Returns [`HyperProvError::Rejected`] if the key does not exist.
    pub fn get_lineage_truncated(
        &mut self,
        key: &str,
        depth: u32,
    ) -> Result<(Vec<LineageEntry>, bool), HyperProvError> {
        let op = self.op();
        match self.call(ClientCommand::GetLineage {
            key: key.to_owned(),
            depth,
            op,
        })? {
            OpOutput::Lineage { entries, truncated } => Ok((entries, truncated)),
            other => Err(unexpected(other)),
        }
    }

    /// Ancestors of `key` to `depth` from the materialized DAG index:
    /// depth-tagged keys only, answered without re-reading records.
    ///
    /// # Errors
    ///
    /// Returns a [`HyperProvError`] if the query fails.
    pub fn get_ancestry(&mut self, key: &str, depth: u32) -> Result<GraphSlice, HyperProvError> {
        let op = self.op();
        match self.call(ClientCommand::GetAncestry {
            key: key.to_owned(),
            depth,
            op,
        })? {
            OpOutput::Graph(slice) => Ok(slice),
            other => Err(unexpected(other)),
        }
    }

    /// Descendants (impact set) of `key` to `depth` from the DAG index.
    ///
    /// # Errors
    ///
    /// Returns a [`HyperProvError`] if the query fails.
    pub fn get_descendants(&mut self, key: &str, depth: u32) -> Result<GraphSlice, HyperProvError> {
        let op = self.op();
        match self.call(ClientCommand::GetDescendants {
            key: key.to_owned(),
            depth,
            op,
        })? {
            OpOutput::Graph(slice) => Ok(slice),
            other => Err(unexpected(other)),
        }
    }

    /// Transitive closure (ancestors and descendants) of `key` to `depth`
    /// from the DAG index.
    ///
    /// # Errors
    ///
    /// Returns a [`HyperProvError`] if the query fails.
    pub fn get_closure(&mut self, key: &str, depth: u32) -> Result<GraphSlice, HyperProvError> {
        let op = self.op();
        match self.call(ClientCommand::GetClosure {
            key: key.to_owned(),
            depth,
            op,
        })? {
            OpOutput::Graph(slice) => Ok(slice),
            other => Err(unexpected(other)),
        }
    }

    /// The closure of `key` plus the edges between its nodes — enough to
    /// render the provenance neighbourhood as a graph.
    ///
    /// # Errors
    ///
    /// Returns a [`HyperProvError`] if the query fails.
    pub fn get_subgraph(&mut self, key: &str, depth: u32) -> Result<GraphSlice, HyperProvError> {
        let op = self.op();
        match self.call(ClientCommand::GetSubgraph {
            key: key.to_owned(),
            depth,
            op,
        })? {
            OpOutput::Graph(slice) => Ok(slice),
            other => Err(unexpected(other)),
        }
    }

    /// Exports peer 0's block chain in the persistent chain format (see
    /// [`hyperprov_ledger::BlockStore::write_to`]); a restarted peer can
    /// rebuild its full state from it via
    /// [`hyperprov_fabric::Committer::replay`].
    ///
    /// # Errors
    ///
    /// Propagates writer I/O errors.
    pub fn export_chain<W: std::io::Write>(&self, writer: W) -> std::io::Result<()> {
        self.net.ledgers[0].borrow().store().write_to(writer)
    }

    /// Lists every live item key on the ledger, lexicographically.
    ///
    /// # Errors
    ///
    /// Returns a [`HyperProvError`] if the query fails.
    pub fn list(&mut self) -> Result<Vec<String>, HyperProvError> {
        let op = self.op();
        match self.call(ClientCommand::List { op })? {
            OpOutput::Keys(keys) => Ok(keys),
            other => Err(unexpected(other)),
        }
    }

    /// Deletes the current record of `key` (history remains on-chain).
    ///
    /// # Errors
    ///
    /// Returns a [`HyperProvError`] if the transaction fails.
    pub fn delete(&mut self, key: &str) -> Result<(), HyperProvError> {
        let op = self.op();
        match self.call(ClientCommand::Delete {
            key: key.to_owned(),
            op,
        })? {
            OpOutput::Committed { .. } => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(output: OpOutput) -> HyperProvError {
    HyperProvError::Malformed(format!("unexpected operation output: {output:?}"))
}
