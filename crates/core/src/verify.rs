//! Integrity auditing: cross-check the blockchain, the world state and
//! the off-chain store.
//!
//! This is the "counteract accidental or malicious data manipulation"
//! promise of the paper made executable: an auditor holding a peer's
//! ledger and access to the off-chain store can detect (a) tampered chain
//! history, (b) corrupted state records and (c) off-chain payloads that no
//! longer match their on-chain checksums.

use std::fmt;

use hyperprov_fabric::Committer;
use hyperprov_ledger::{Decode, Digest, StateKey};
use hyperprov_offchain::ObjectStore;

use crate::chaincode::CHAINCODE_NAME;
use crate::record::ProvenanceRecord;

/// One problem found by an audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditFinding {
    /// The block chain fails hash verification.
    ChainBroken {
        /// Description from the chain verifier.
        detail: String,
    },
    /// A state record cannot be decoded.
    CorruptRecord {
        /// The item key.
        key: String,
    },
    /// An item's payload is missing from the off-chain store.
    MissingPayload {
        /// The item key.
        key: String,
        /// The expected object name.
        object: String,
    },
    /// An item's payload no longer matches its on-chain checksum.
    TamperedPayload {
        /// The item key.
        key: String,
        /// Checksum recorded on-chain.
        expected: Digest,
        /// Checksum of the stored bytes.
        actual: Digest,
    },
}

impl fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditFinding::ChainBroken { detail } => write!(f, "chain broken: {detail}"),
            AuditFinding::CorruptRecord { key } => write!(f, "corrupt record: {key}"),
            AuditFinding::MissingPayload { key, object } => {
                write!(f, "missing payload for {key} (object {object})")
            }
            AuditFinding::TamperedPayload {
                key,
                expected,
                actual,
            } => write!(
                f,
                "tampered payload for {key}: chain says {} but store holds {}",
                expected.short(),
                actual.short()
            ),
        }
    }
}

/// The result of an audit pass.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Problems found (empty = everything verified).
    pub findings: Vec<AuditFinding>,
    /// Items whose records decoded correctly.
    pub records_checked: u64,
    /// Payloads fetched and re-hashed.
    pub payloads_checked: u64,
    /// Blocks whose hashes were re-verified.
    pub blocks_checked: u64,
}

impl AuditReport {
    /// True when no findings were produced.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Extracts every current provenance record from a peer's world state.
pub fn current_records(committer: &Committer) -> Vec<(String, Result<ProvenanceRecord, ()>)> {
    let sep = hyperprov_fabric::COMPOSITE_SEP;
    let prefix = format!("item{sep}");
    let mut out = Vec::new();
    for (state_key, value) in committer.state().scan_prefix(CHAINCODE_NAME, &prefix) {
        let StateKey { key, .. } = state_key;
        let item_key = key
            .trim_start_matches(&prefix)
            .trim_end_matches(sep)
            .to_owned();
        match ProvenanceRecord::from_bytes(&value.value) {
            Ok(record) => out.push((item_key, Ok(record))),
            Err(_) => out.push((item_key, Err(()))),
        }
    }
    out
}

/// Audits one peer's ledger against an off-chain store.
pub fn audit(committer: &Committer, store: &dyn ObjectStore) -> AuditReport {
    let mut report = AuditReport {
        blocks_checked: committer.store().height(),
        ..AuditReport::default()
    };

    // 1. Chain integrity.
    if let Err(err) = committer.store().verify_chain() {
        report.findings.push(AuditFinding::ChainBroken {
            detail: err.to_string(),
        });
    }

    // 2. Record decodability and payload integrity.
    for (key, record) in current_records(committer) {
        match record {
            Err(()) => report.findings.push(AuditFinding::CorruptRecord { key }),
            Ok(record) => {
                report.records_checked += 1;
                if !record.has_offchain_data() {
                    continue;
                }
                let object = record
                    .location
                    .rsplit('/')
                    .next()
                    .unwrap_or(&record.location)
                    .to_owned();
                match store.get(&object) {
                    Err(_) => report
                        .findings
                        .push(AuditFinding::MissingPayload { key, object }),
                    Ok(data) => {
                        report.payloads_checked += 1;
                        let actual = Digest::of(&data);
                        if actual != record.checksum {
                            report.findings.push(AuditFinding::TamperedPayload {
                                key,
                                expected: record.checksum,
                                actual,
                            });
                        }
                    }
                }
            }
        }
    }
    report
}
