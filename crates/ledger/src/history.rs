//! Per-key write history, backing the chaincode `GetHistoryForKey` API.
//!
//! HyperProv's provenance queries ("who edited this item, when, and what
//! did it become") are history queries: every committed valid write is
//! appended here, including deletions, in commit order.

use std::collections::HashMap;

use crate::tx::{KvWrite, StateKey, TxId, Version};

/// One historical modification of a key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryEntry {
    /// Transaction that performed the write.
    pub tx_id: TxId,
    /// Height `(block, tx)` of the write.
    pub version: Version,
    /// Value written; `None` records a deletion.
    pub value: Option<Vec<u8>>,
}

/// The history index: key → chronological list of writes.
///
/// # Examples
///
/// ```
/// use hyperprov_ledger::{Digest, HistoryDb, KvWrite, StateKey, TxId, Version};
///
/// let mut db = HistoryDb::new();
/// let key = StateKey::new("cc", "item");
/// db.append(
///     TxId(Digest::of(b"t1")),
///     Version::new(1, 0),
///     &[KvWrite { key: key.clone(), value: Some(b"v1".to_vec()) }],
/// );
/// assert_eq!(db.history(&key).len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct HistoryDb {
    map: HashMap<StateKey, Vec<HistoryEntry>>,
    total_entries: u64,
}

impl HistoryDb {
    /// Creates an empty history index.
    pub fn new() -> Self {
        HistoryDb::default()
    }

    /// Records all writes of one valid transaction.
    pub fn append(&mut self, tx_id: TxId, version: Version, writes: &[KvWrite]) {
        for w in writes {
            self.map
                .entry(w.key.clone())
                .or_default()
                .push(HistoryEntry {
                    tx_id,
                    version,
                    value: w.value.clone(),
                });
            self.total_entries += 1;
        }
    }

    /// The chronological write history of `key` (empty slice if never
    /// written).
    pub fn history(&self, key: &StateKey) -> &[HistoryEntry] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates every `(key, entries)` pair in arbitrary order; callers
    /// that need determinism (snapshot capture) must sort.
    pub fn iter(&self) -> impl Iterator<Item = (&StateKey, &[HistoryEntry])> {
        self.map.iter().map(|(k, v)| (k, v.as_slice()))
    }

    /// Restores one key's full history, replacing any existing entries —
    /// used when rebuilding the index from a verified snapshot.
    pub fn restore_key(&mut self, key: StateKey, entries: Vec<HistoryEntry>) {
        self.total_entries += entries.len() as u64;
        if let Some(old) = self.map.insert(key, entries) {
            self.total_entries -= old.len() as u64;
        }
    }

    /// Number of keys with at least one history entry.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }

    /// Total number of history entries across all keys.
    pub fn total_entries(&self) -> u64 {
        self.total_entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::Digest;

    fn w(key: &StateKey, value: Option<&[u8]>) -> KvWrite {
        KvWrite {
            key: key.clone(),
            value: value.map(<[u8]>::to_vec),
        }
    }

    #[test]
    fn history_preserves_order_including_deletes() {
        let mut db = HistoryDb::new();
        let key = StateKey::new("cc", "k");
        db.append(
            TxId(Digest::of(b"t1")),
            Version::new(1, 0),
            &[w(&key, Some(b"a"))],
        );
        db.append(
            TxId(Digest::of(b"t2")),
            Version::new(2, 0),
            &[w(&key, None)],
        );
        db.append(
            TxId(Digest::of(b"t3")),
            Version::new(3, 1),
            &[w(&key, Some(b"b"))],
        );
        let h = db.history(&key);
        assert_eq!(h.len(), 3);
        assert_eq!(h[0].value.as_deref(), Some(b"a".as_slice()));
        assert_eq!(h[1].value, None);
        assert_eq!(h[2].version, Version::new(3, 1));
        assert_eq!(db.total_entries(), 3);
    }

    #[test]
    fn unknown_key_has_empty_history() {
        let db = HistoryDb::new();
        assert!(db.history(&StateKey::new("cc", "nope")).is_empty());
        assert_eq!(db.key_count(), 0);
    }

    #[test]
    fn multi_key_transaction_indexes_every_key() {
        let mut db = HistoryDb::new();
        let k1 = StateKey::new("cc", "k1");
        let k2 = StateKey::new("cc", "k2");
        db.append(
            TxId(Digest::of(b"t")),
            Version::new(1, 0),
            &[w(&k1, Some(b"x")), w(&k2, Some(b"y"))],
        );
        assert_eq!(db.history(&k1).len(), 1);
        assert_eq!(db.history(&k2).len(), 1);
        assert_eq!(db.key_count(), 2);
        assert_eq!(db.history(&k1)[0].tx_id, db.history(&k2)[0].tx_id);
    }
}
