//! SHA-256 and HMAC-SHA-256, implemented from scratch (FIPS 180-4 /
//! RFC 2104) so the workspace carries no cryptography dependency.
//!
//! HyperProv stores a SHA-256 checksum of every data item on-chain; the
//! ledger also hashes block headers and transaction envelopes. Hashing is
//! therefore on every hot path in the repo — checksums, transaction ids,
//! HMAC signatures, Merkle nodes, block data hashes — so on x86-64 the
//! compression function dispatches at runtime to the SHA-NI instruction
//! set when the CPU has it (roughly an order of magnitude faster than
//! the portable scalar rounds, which remain the fallback and the
//! reference). Both paths are validated against NIST/RFC test vectors in
//! the unit tests below.

use std::fmt;

/// Initial hash values: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants: first 32 bits of the fractional parts of the cube roots
/// of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// A 256-bit digest.
///
/// # Examples
///
/// ```
/// use hyperprov_ledger::Digest;
///
/// let d = Digest::of(b"abc");
/// assert_eq!(
///     d.to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest, used as the previous-hash of genesis blocks.
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Hashes `data` with SHA-256.
    pub fn of(data: &[u8]) -> Digest {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Hashes the concatenation of two digests (Merkle interior node).
    pub fn combine(left: &Digest, right: &Digest) -> Digest {
        let mut h = Sha256::new();
        h.update(&left.0);
        h.update(&right.0);
        h.finalize()
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Lower-case hexadecimal rendering.
    pub fn to_hex(&self) -> String {
        const HEX: &[u8; 16] = b"0123456789abcdef";
        let mut s = Vec::with_capacity(64);
        for b in self.0 {
            s.push(HEX[usize::from(b >> 4)]);
            s.push(HEX[usize::from(b & 0x0f)]);
        }
        String::from_utf8(s).expect("hex digits are ASCII")
    }

    /// Parses a 64-character hexadecimal string.
    ///
    /// # Errors
    ///
    /// Returns `None` if the input is not exactly 64 hex characters.
    pub fn from_hex(s: &str) -> Option<Digest> {
        if s.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        let bytes = s.as_bytes();
        for (i, item) in out.iter_mut().enumerate() {
            let hi = (bytes[2 * i] as char).to_digit(16)?;
            let lo = (bytes[2 * i + 1] as char).to_digit(16)?;
            *item = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }

    /// A short 8-hex-character prefix, for logs.
    pub fn short(&self) -> String {
        self.to_hex()[..8].to_owned()
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.short())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Digest {
    fn from(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }
}

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use hyperprov_ledger::{Digest, Sha256};
///
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), Digest::of(b"abc"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Finishes the computation and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Append 0x80 then zero padding to 56 mod 64, then 8-byte length.
        self.update_padding_byte();
        while self.buffer_len != 56 {
            self.update_zero_byte();
        }
        let len_bytes = bit_len.to_be_bytes();
        self.buffer[56..64].copy_from_slice(&len_bytes);
        let block = self.buffer;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn update_padding_byte(&mut self) {
        self.buffer[self.buffer_len] = 0x80;
        self.buffer_len += 1;
        if self.buffer_len == 64 {
            let block = self.buffer;
            self.compress(&block);
            self.buffer_len = 0;
        }
    }

    fn update_zero_byte(&mut self) {
        self.buffer[self.buffer_len] = 0;
        self.buffer_len += 1;
        if self.buffer_len == 64 {
            let block = self.buffer;
            self.compress(&block);
            self.buffer_len = 0;
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        #[cfg(target_arch = "x86_64")]
        if shani::compress_checked(&mut self.state, block) {
            return;
        }
        self.compress_soft(block);
    }

    fn compress_soft(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

/// SHA-NI accelerated compression (Intel SHA extensions), following the
/// canonical `sha256rnds2`/`sha256msg1`/`sha256msg2` flow: state packed
/// as ABEF/CDGH working pairs, four rounds per step, the message
/// schedule computed on the fly.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod shani {
    use std::arch::x86_64::{
        __m128i, _mm_add_epi32, _mm_alignr_epi8, _mm_blend_epi16, _mm_loadu_si128, _mm_set_epi64x,
        _mm_sha256msg1_epu32, _mm_sha256msg2_epu32, _mm_sha256rnds2_epu32, _mm_shuffle_epi32,
        _mm_shuffle_epi8, _mm_storeu_si128,
    };
    use std::sync::OnceLock;

    use super::K;

    /// Runs one SHA-NI compression when the CPU supports it; returns
    /// `false` (leaving `state` untouched) when it does not, so the
    /// caller falls back to the scalar rounds. This is the only safe
    /// entry point — the feature check lives on the same side of the
    /// module boundary as the `unsafe` it justifies.
    pub fn compress_checked(state: &mut [u32; 8], block: &[u8; 64]) -> bool {
        if !available() {
            return false;
        }
        // SAFETY: `available` confirmed the sha/ssse3/sse4.1 features at
        // runtime.
        unsafe { compress(state, block) };
        true
    }

    /// True when the CPU supports every instruction [`compress`] uses
    /// (checked once, cached).
    pub fn available() -> bool {
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| {
            std::arch::is_x86_feature_detected!("sha")
                && std::arch::is_x86_feature_detected!("ssse3")
                && std::arch::is_x86_feature_detected!("sse4.1")
        })
    }

    /// Next four schedule words `w[4i..4i+4]` from the previous sixteen.
    #[inline]
    #[target_feature(enable = "sha,ssse3,sse4.1")]
    unsafe fn schedule(w0: __m128i, w1: __m128i, w2: __m128i, w3: __m128i) -> __m128i {
        let t = _mm_sha256msg1_epu32(w0, w1);
        let t = _mm_add_epi32(t, _mm_alignr_epi8(w3, w2, 4));
        _mm_sha256msg2_epu32(t, w3)
    }

    /// One 64-byte block of SHA-256 over `state`.
    ///
    /// # Safety
    ///
    /// The caller must ensure the `sha`, `ssse3` and `sse4.1` CPU
    /// features are present (see [`available`]).
    #[target_feature(enable = "sha,ssse3,sse4.1")]
    pub unsafe fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
        // Map the first 16 big-endian message bytes of each lane-load
        // into host-order schedule words.
        let flip = _mm_set_epi64x(0x0c0d_0e0f_0809_0a0b, 0x0405_0607_0001_0203);

        // Repack [a,b,c,d] / [e,f,g,h] into the ABEF / CDGH pairs the
        // round instruction consumes.
        let t = _mm_loadu_si128(state.as_ptr().cast());
        let s1 = _mm_loadu_si128(state.as_ptr().add(4).cast());
        let t = _mm_shuffle_epi32(t, 0xB1);
        let s1 = _mm_shuffle_epi32(s1, 0x1B);
        let mut abef = _mm_alignr_epi8(t, s1, 8);
        let mut cdgh = _mm_blend_epi16(s1, t, 0xF0);
        let abef_in = abef;
        let cdgh_in = cdgh;

        // Four rounds per step: the low two schedule+K lanes feed the
        // CDGH update, the high two (after the lane swap) feed ABEF.
        macro_rules! rounds4 {
            ($w:expr, $group:expr) => {{
                let k = _mm_loadu_si128(K.as_ptr().add(4 * $group).cast());
                let wk = _mm_add_epi32($w, k);
                cdgh = _mm_sha256rnds2_epu32(cdgh, abef, wk);
                abef = _mm_sha256rnds2_epu32(abef, cdgh, _mm_shuffle_epi32(wk, 0x0E));
            }};
        }

        let mut w0 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().cast()), flip);
        let mut w1 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(16).cast()), flip);
        let mut w2 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(32).cast()), flip);
        let mut w3 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(48).cast()), flip);

        rounds4!(w0, 0);
        rounds4!(w1, 1);
        rounds4!(w2, 2);
        rounds4!(w3, 3);
        for group in [4usize, 8, 12] {
            let w4 = schedule(w0, w1, w2, w3);
            rounds4!(w4, group);
            let w5 = schedule(w1, w2, w3, w4);
            rounds4!(w5, group + 1);
            let w6 = schedule(w2, w3, w4, w5);
            rounds4!(w6, group + 2);
            let w7 = schedule(w3, w4, w5, w6);
            rounds4!(w7, group + 3);
            (w0, w1, w2, w3) = (w4, w5, w6, w7);
        }

        let abef = _mm_add_epi32(abef, abef_in);
        let cdgh = _mm_add_epi32(cdgh, cdgh_in);

        // Unpack ABEF/CDGH back into [a,b,c,d] / [e,f,g,h].
        let t = _mm_shuffle_epi32(abef, 0x1B);
        let s1 = _mm_shuffle_epi32(cdgh, 0xB1);
        _mm_storeu_si128(state.as_mut_ptr().cast(), _mm_blend_epi16(t, s1, 0xF0));
        _mm_storeu_si128(state.as_mut_ptr().add(4).cast(), _mm_alignr_epi8(s1, t, 8));
    }
}

/// Computes HMAC-SHA-256 over `message` with `key` (RFC 2104).
///
/// Used by the simulated MSP as its signature primitive: a certificate's
/// private key is an HMAC key, so "signatures" are deterministic,
/// verifiable tags. See DESIGN.md for why this substitution preserves the
/// paper's behaviour.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    const BLOCK: usize = 64;
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        key_block[..32].copy_from_slice(&Digest::of(key).0);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest.0);
    outer.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // NIST FIPS 180-4 example vectors.
    #[test]
    fn sha256_empty() {
        assert_eq!(
            Digest::of(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn sha256_abc() {
        assert_eq!(
            Digest::of(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn sha256_two_blocks() {
        assert_eq!(
            Digest::of(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            Digest::of(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for chunk_size in [1usize, 3, 7, 63, 64, 65, 128, 999] {
            let mut h = Sha256::new();
            for chunk in data.chunks(chunk_size) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), Digest::of(&data), "chunk={chunk_size}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // 55/56/63/64 bytes hit the padding edge cases.
        for len in [55usize, 56, 63, 64, 119, 120] {
            let data = vec![0xABu8; len];
            let mut h = Sha256::new();
            h.update(&data);
            let d1 = h.finalize();
            let mut h2 = Sha256::new();
            for b in &data {
                h2.update(std::slice::from_ref(b));
            }
            assert_eq!(d1, h2.finalize(), "len={len}");
        }
    }

    // RFC 4231 HMAC-SHA-256 test vectors.
    #[test]
    fn hmac_rfc4231_case1() {
        let key = [0x0bu8; 20];
        let d = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            d.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn hmac_rfc4231_case2() {
        let d = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            d.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn hmac_long_key_is_hashed() {
        let key = [0xaau8; 131];
        let d = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            d.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    /// The SHA-NI and scalar compressions must agree on every block, not
    /// just on the NIST vectors (which exercise whichever path the host
    /// dispatches to).
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn shani_matches_scalar_rounds() {
        if !super::shani::available() {
            return;
        }
        let mut block = [0u8; 64];
        let mut byte = 0u8;
        for round in 0..64u32 {
            for b in &mut block {
                byte = byte.wrapping_mul(167).wrapping_add(13);
                *b = byte;
            }
            let mut soft = Sha256::new();
            soft.state = H0.map(|h| h.wrapping_add(round));
            let mut hard = soft.clone();
            soft.compress_soft(&block);
            assert!(super::shani::compress_checked(&mut hard.state, &block));
            assert_eq!(soft.state, hard.state, "round={round}");
        }
    }

    #[test]
    fn hex_round_trip() {
        let d = Digest::of(b"roundtrip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex("zz"), None);
        assert_eq!(Digest::from_hex(&"g".repeat(64)), None);
    }

    #[test]
    fn combine_is_order_sensitive() {
        let a = Digest::of(b"a");
        let b = Digest::of(b"b");
        assert_ne!(Digest::combine(&a, &b), Digest::combine(&b, &a));
    }

    #[test]
    fn debug_and_short_forms() {
        let d = Digest::of(b"abc");
        assert_eq!(d.short(), "ba7816bf");
        assert_eq!(format!("{d:?}"), "Digest(ba7816bf)");
    }
}
