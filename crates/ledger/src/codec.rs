//! Canonical binary encoding for ledger data structures.
//!
//! Everything that is hashed or signed (transactions, block headers,
//! provenance records) must serialise to a *unique* byte string, so the
//! ledger defines its own deterministic codec rather than relying on a
//! general-purpose format: fixed little-endian integers where size matters,
//! LEB128 varints for lengths, length-prefixed byte strings, and no
//! optional field reordering.

use std::fmt;

use crate::hash::Digest;

/// Error returned when decoding malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value was complete.
    UnexpectedEof,
    /// Input contained bytes after the decoded value.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// A length-prefixed string was not valid UTF-8.
    InvalidUtf8,
    /// A varint exceeded 64 bits.
    VarintOverflow,
    /// A declared length exceeds the remaining input.
    LengthOverrun {
        /// The declared length.
        declared: u64,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A domain-specific invariant failed.
    Invalid(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after value")
            }
            CodecError::InvalidUtf8 => write!(f, "invalid UTF-8 in string"),
            CodecError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            CodecError::LengthOverrun {
                declared,
                remaining,
            } => {
                write!(
                    f,
                    "declared length {declared} exceeds remaining {remaining} bytes"
                )
            }
            CodecError::Invalid(what) => write!(f, "invalid value: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Serialises values into a canonical byte string.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// Creates an encoder with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Encoder {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Consumes the encoder and returns the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes a fixed-width little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a fixed-width little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an unsigned LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                break;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Writes a varint length followed by the raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_varint(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Writes a UTF-8 string (varint length + bytes).
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Writes a digest as 32 raw bytes.
    pub fn put_digest(&mut self, d: &Digest) {
        self.buf.extend_from_slice(&d.0);
    }
}

/// Deserialises values from a byte string.
#[derive(Debug)]
pub struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Decoder { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Fails unless the input was fully consumed.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool; any byte other than 0/1 is an error.
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("bool byte not 0 or 1")),
        }
    }

    /// Reads a fixed-width little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a fixed-width little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an unsigned LEB128 varint.
    pub fn get_varint(&mut self) -> Result<u64, CodecError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift == 63 && byte > 1 {
                return Err(CodecError::VarintOverflow);
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(CodecError::VarintOverflow);
            }
        }
    }

    /// Reads a varint-length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.get_varint()?;
        if len > self.remaining() as u64 {
            return Err(CodecError::LengthOverrun {
                declared: len,
                remaining: self.remaining(),
            });
        }
        Ok(self.take(len as usize)?.to_vec())
    }

    /// Reads a varint-length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes).map_err(|_| CodecError::InvalidUtf8)
    }

    /// Reads a 32-byte digest.
    pub fn get_digest(&mut self) -> Result<Digest, CodecError> {
        let b = self.take(32)?;
        let mut out = [0u8; 32];
        out.copy_from_slice(b);
        Ok(Digest(out))
    }
}

/// Types with a canonical binary encoding.
pub trait Encode {
    /// Appends this value's canonical encoding to `enc`.
    fn encode(&self, enc: &mut Encoder);

    /// Convenience: the canonical encoding as a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.into_bytes()
    }

    /// Convenience: SHA-256 of the canonical encoding.
    fn digest(&self) -> Digest {
        Digest::of(&self.to_bytes())
    }
}

/// Types decodable from their canonical binary encoding.
pub trait Decode: Sized {
    /// Decodes one value from the decoder, advancing it.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on malformed input.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError>;

    /// Decodes a value that must occupy the *entire* input.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on malformed input or trailing bytes.
    fn from_bytes(data: &[u8]) -> Result<Self, CodecError> {
        let mut dec = Decoder::new(data);
        let v = Self::decode(&mut dec)?;
        dec.finish()?;
        Ok(v)
    }
}

impl Encode for u8 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(*self);
    }
}
impl Decode for u8 {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        dec.get_u8()
    }
}

impl Encode for u32 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(*self);
    }
}
impl Decode for u32 {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        dec.get_u32()
    }
}

impl Encode for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(*self);
    }
}
impl Decode for u64 {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        dec.get_u64()
    }
}

impl Encode for bool {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bool(*self);
    }
}
impl Decode for bool {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        dec.get_bool()
    }
}

impl Encode for String {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(self);
    }
}
impl Decode for String {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        dec.get_str()
    }
}

impl Encode for Vec<u8> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bytes(self);
    }
}
impl Decode for Vec<u8> {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        dec.get_bytes()
    }
}

impl Encode for Digest {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_digest(self);
    }
}
impl Decode for Digest {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        dec.get_digest()
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            None => enc.put_u8(0),
            Some(v) => {
                enc.put_u8(1);
                v.encode(enc);
            }
        }
    }
}
impl<T: Decode> Decode for Option<T> {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match dec.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(dec)?)),
            _ => Err(CodecError::Invalid("option tag not 0 or 1")),
        }
    }
}

/// `Vec<T>` encodes as a varint count followed by each element.
/// (`Vec<u8>` has its own more compact impl above.)
macro_rules! impl_vec_codec {
    ($t:ty) => {
        impl Encode for Vec<$t> {
            fn encode(&self, enc: &mut Encoder) {
                enc.put_varint(self.len() as u64);
                for item in self {
                    item.encode(enc);
                }
            }
        }
        impl Decode for Vec<$t> {
            fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
                let n = dec.get_varint()?;
                // Guard: each element needs at least one byte.
                if n > dec.remaining() as u64 {
                    return Err(CodecError::LengthOverrun {
                        declared: n,
                        remaining: dec.remaining(),
                    });
                }
                let mut out = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    out.push(<$t>::decode(dec)?);
                }
                Ok(out)
            }
        }
    };
}

impl_vec_codec!(String);
impl_vec_codec!(Digest);

/// Encodes a homogeneous slice with a varint count prefix; pairs with
/// [`decode_seq`].
pub fn encode_seq<T: Encode>(items: &[T], enc: &mut Encoder) {
    enc.put_varint(items.len() as u64);
    for item in items {
        item.encode(enc);
    }
}

/// Decodes a sequence written by [`encode_seq`].
///
/// # Errors
///
/// Returns a [`CodecError`] on malformed input.
pub fn decode_seq<T: Decode>(dec: &mut Decoder<'_>) -> Result<Vec<T>, CodecError> {
    let n = dec.get_varint()?;
    if n > dec.remaining() as u64 {
        return Err(CodecError::LengthOverrun {
            declared: n,
            remaining: dec.remaining(),
        });
    }
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        out.push(T::decode(dec)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut enc = Encoder::new();
        enc.put_u8(0xAB);
        enc.put_bool(true);
        enc.put_u32(0xDEADBEEF);
        enc.put_u64(u64::MAX - 1);
        enc.put_str("héllo");
        enc.put_bytes(&[1, 2, 3]);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_u8().unwrap(), 0xAB);
        assert!(dec.get_bool().unwrap());
        assert_eq!(dec.get_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(dec.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(dec.get_str().unwrap(), "héllo");
        assert_eq!(dec.get_bytes().unwrap(), vec![1, 2, 3]);
        dec.finish().unwrap();
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut enc = Encoder::new();
            enc.put_varint(v);
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            assert_eq!(dec.get_varint().unwrap(), v);
            dec.finish().unwrap();
        }
    }

    #[test]
    fn varint_compactness() {
        let mut enc = Encoder::new();
        enc.put_varint(127);
        assert_eq!(enc.len(), 1);
        let mut enc = Encoder::new();
        enc.put_varint(128);
        assert_eq!(enc.len(), 2);
    }

    #[test]
    fn varint_overflow_rejected() {
        // 10 bytes of continuation with high bits set overflows u64.
        let bytes = [0xFFu8; 10];
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_varint(), Err(CodecError::VarintOverflow));
    }

    #[test]
    fn eof_detected() {
        let mut dec = Decoder::new(&[1, 2]);
        assert_eq!(dec.get_u32(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn trailing_bytes_rejected_by_from_bytes() {
        let mut enc = Encoder::new();
        enc.put_u8(7);
        enc.put_u8(8);
        let bytes = enc.into_bytes();
        assert_eq!(
            u8::from_bytes(&bytes),
            Err(CodecError::TrailingBytes { remaining: 1 })
        );
    }

    #[test]
    fn bad_bool_and_option_tags() {
        let mut dec = Decoder::new(&[2]);
        assert!(matches!(dec.get_bool(), Err(CodecError::Invalid(_))));
        assert!(matches!(
            Option::<u8>::from_bytes(&[9]),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn length_overrun_rejected() {
        // Declares 100 bytes but provides 2.
        let mut enc = Encoder::new();
        enc.put_varint(100);
        enc.put_u8(0);
        enc.put_u8(0);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(
            dec.get_bytes(),
            Err(CodecError::LengthOverrun { declared: 100, .. })
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut enc = Encoder::new();
        enc.put_bytes(&[0xFF, 0xFE]);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_str(), Err(CodecError::InvalidUtf8));
    }

    #[test]
    fn option_round_trip() {
        let some = Some("x".to_owned());
        let none: Option<String> = None;
        assert_eq!(
            Option::<String>::from_bytes(&some.to_bytes()).unwrap(),
            some
        );
        assert_eq!(
            Option::<String>::from_bytes(&none.to_bytes()).unwrap(),
            none
        );
    }

    #[test]
    fn vec_of_strings_round_trip() {
        let v = vec!["a".to_owned(), "bb".to_owned(), String::new()];
        assert_eq!(Vec::<String>::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn digest_round_trip() {
        let d = Digest::of(b"digest");
        assert_eq!(Digest::from_bytes(&d.to_bytes()).unwrap(), d);
        assert_eq!(d.to_bytes().len(), 32);
    }

    #[test]
    fn encoding_is_deterministic() {
        let v = vec!["k1".to_owned(), "k2".to_owned()];
        assert_eq!(v.to_bytes(), v.clone().to_bytes());
        assert_eq!(v.digest(), v.digest());
    }

    #[test]
    fn seq_helpers_round_trip() {
        let items = vec![1u64, 2, 3];
        let mut enc = Encoder::new();
        encode_seq(&items, &mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back: Vec<u64> = decode_seq(&mut dec).unwrap();
        assert_eq!(back, items);
        dec.finish().unwrap();
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            CodecError::UnexpectedEof,
            CodecError::TrailingBytes { remaining: 3 },
            CodecError::InvalidUtf8,
            CodecError::VarintOverflow,
            CodecError::LengthOverrun {
                declared: 9,
                remaining: 1,
            },
            CodecError::Invalid("x"),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
