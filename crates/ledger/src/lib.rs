//! # hyperprov-ledger
//!
//! Blockchain ledger substrate for the HyperProv reproduction — the pieces
//! Hyperledger Fabric gets from its `common`, `ledger` and `protoutil`
//! packages, built from scratch:
//!
//! * [`Sha256`]/[`Digest`]/[`hmac_sha256`] — hashing (FIPS 180-4, validated
//!   against NIST/RFC vectors),
//! * [`Encode`]/[`Decode`] — a canonical deterministic binary codec,
//! * [`MerkleTree`]/[`MerkleProof`] — block data commitments,
//! * [`Block`]/[`BlockHeader`]/[`BlockStore`] — the hash chain,
//! * [`RwSet`]/[`Version`]/[`ValidationCode`] — transaction simulation
//!   artefacts for execute-order-validate,
//! * [`StateDb`] — the versioned world state with range queries, and
//! * [`HistoryDb`] — per-key write history for provenance queries.
//!
//! This crate is deliberately independent of the simulator: it is pure data
//! structures and can be reused by a wall-clock deployment.

// Unsafe is denied everywhere except the one SHA-NI intrinsics module in
// `hash`, which opts back in locally (runtime-feature-gated SIMD needs
// `unsafe` by construction).
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod blockstore;
mod channel;
mod codec;
mod hash;
mod history;
mod merkle;
mod provgraph;
mod snapshot;
mod statedb;
mod tx;

pub use block::{Block, BlockHeader, BlockMetadata, RawEnvelope};
pub use blockstore::{BlockStore, ChainError};
pub use channel::{ChannelId, ChannelLedger, DEFAULT_CHANNEL};
pub use codec::{decode_seq, encode_seq, CodecError, Decode, Decoder, Encode, Encoder};
pub use hash::{hmac_sha256, Digest, Sha256};
pub use history::{HistoryDb, HistoryEntry};
pub use merkle::{MerkleProof, MerkleTree};
pub use provgraph::{Direction, GraphIndexer, GraphUpdate, ProvGraph, Traversal, TraversalLimits};
pub use snapshot::{
    HistoryRecord, Snapshot, SnapshotChunk, SnapshotEntry, SnapshotError, SnapshotManifest,
    SnapshotPart, SnapshotTail, DEFAULT_CHUNK_ENTRIES,
};
pub use statedb::{StateDb, VersionedValue};
pub use tx::{KvRead, KvWrite, Ns, RwSet, StateKey, TxId, ValidationCode, Version};
