//! Append-only block storage with chain verification and a tx-id index.

use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};

use crate::block::Block;
use crate::codec::{Decode, Decoder, Encode, Encoder};
use crate::hash::Digest;
use crate::tx::TxId;

/// Magic prefix of the persisted chain format (unpruned, base 0).
const CHAIN_MAGIC: &[u8; 8] = b"HPCHAIN1";

/// Magic prefix of the pruned chain format: adds the base height and the
/// header hash of the last pruned block before the block sequence.
const CHAIN_MAGIC_V2: &[u8; 8] = b"HPCHAIN2";

/// Error appending or verifying blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// Block number is not `height()`.
    WrongNumber {
        /// Number carried by the offered block.
        got: u64,
        /// Number the chain expects next.
        expected: u64,
    },
    /// `prev_hash` does not match the current tip.
    BrokenLink {
        /// Height at which the link is broken.
        at: u64,
    },
    /// `data_hash` does not match the block's envelopes.
    BadDataHash {
        /// Height of the offending block.
        at: u64,
    },
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::WrongNumber { got, expected } => {
                write!(f, "block number {got} where {expected} was expected")
            }
            ChainError::BrokenLink { at } => write!(f, "prev_hash mismatch at height {at}"),
            ChainError::BadDataHash { at } => write!(f, "data hash mismatch at height {at}"),
        }
    }
}

impl std::error::Error for ChainError {}

/// An append-only chain of verified blocks, optionally pruned behind a
/// snapshot horizon.
///
/// A pruned store starts at `base_height` instead of genesis: blocks
/// `[0, base_height)` have been compacted away and `base_hash` pins the
/// header hash of block `base_height - 1`, so chain verification still
/// anchors every retained block.
///
/// # Examples
///
/// ```
/// use hyperprov_ledger::{Block, BlockStore, Digest};
///
/// let mut store = BlockStore::new();
/// let genesis = Block::build(0, Digest::ZERO, vec![]);
/// store.append(genesis)?;
/// assert_eq!(store.height(), 1);
/// # Ok::<(), hyperprov_ledger::ChainError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct BlockStore {
    blocks: Vec<Block>,
    tx_index: HashMap<TxId, (u64, u32)>,
    /// Number of the first retained block; 0 for an unpruned store.
    base_height: u64,
    /// Header hash of block `base_height - 1` ([`Digest::ZERO`] at base 0).
    base_hash: Digest,
}

impl BlockStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        BlockStore::default()
    }

    /// Creates an empty store whose chain resumes at `base_height`, with
    /// `base_hash` the header hash of block `base_height - 1` — the shape
    /// a snapshot bootstrap produces before delta blocks are appended.
    pub fn with_base(base_height: u64, base_hash: Digest) -> Self {
        BlockStore {
            base_height,
            base_hash,
            ..BlockStore::default()
        }
    }

    /// Chain height (the next block number). Includes pruned blocks.
    pub fn height(&self) -> u64 {
        self.base_height + self.blocks.len() as u64
    }

    /// Number of the first block still retained (0 when unpruned).
    pub fn base_height(&self) -> u64 {
        self.base_height
    }

    /// Number of blocks physically retained.
    pub fn retained(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Header hash of the last block; for an empty pruned store this is
    /// the pinned base hash, [`Digest::ZERO`] at genesis.
    pub fn tip_hash(&self) -> Digest {
        self.blocks
            .last()
            .map(|b| b.header.hash())
            .unwrap_or(self.base_hash)
    }

    /// Drops every retained block below `horizon`, compacting the store
    /// behind a snapshot that already covers blocks `[0, horizon)`. The
    /// tx index forgets pruned transactions. Returns the number of blocks
    /// pruned; a horizon at or below the current base is a no-op and a
    /// horizon above `height()` is clamped.
    pub fn prune_to(&mut self, horizon: u64) -> u64 {
        let horizon = horizon.min(self.height());
        if horizon <= self.base_height {
            return 0;
        }
        let drop_n = (horizon - self.base_height) as usize;
        self.base_hash = self.blocks[drop_n - 1].header.hash();
        for block in &self.blocks[..drop_n] {
            for env in &block.envelopes {
                self.tx_index.remove(&env.tx_id);
            }
        }
        self.blocks.drain(..drop_n);
        self.base_height = horizon;
        drop_n as u64
    }

    /// Verifies and appends a block.
    ///
    /// # Errors
    ///
    /// Returns a [`ChainError`] if the number, link, or data hash is wrong;
    /// the store is unchanged on error.
    pub fn append(&mut self, block: Block) -> Result<(), ChainError> {
        let expected = self.height();
        if block.header.number != expected {
            return Err(ChainError::WrongNumber {
                got: block.header.number,
                expected,
            });
        }
        if block.header.prev_hash != self.tip_hash() {
            return Err(ChainError::BrokenLink { at: expected });
        }
        if !block.verify_data_hash() {
            return Err(ChainError::BadDataHash { at: expected });
        }
        for (i, env) in block.envelopes.iter().enumerate() {
            self.tx_index
                .insert(env.tx_id, (block.header.number, i as u32));
        }
        self.blocks.push(block);
        Ok(())
    }

    /// The block at `number`, if committed and not pruned.
    pub fn block(&self, number: u64) -> Option<&Block> {
        let idx = number.checked_sub(self.base_height)?;
        self.blocks.get(idx as usize)
    }

    /// Locates a transaction: `(block number, tx index)`. Transactions in
    /// pruned blocks are forgotten — resolve those against a snapshot.
    pub fn find_tx(&self, tx_id: &TxId) -> Option<(u64, u32)> {
        self.tx_index.get(tx_id).copied()
    }

    /// Iterates all *retained* blocks in order.
    pub fn iter(&self) -> std::slice::Iter<'_, Block> {
        self.blocks.iter()
    }

    /// Total transactions in retained blocks.
    pub fn tx_count(&self) -> u64 {
        self.blocks.iter().map(|b| b.len() as u64).sum()
    }

    /// Serialises the whole chain to a writer (a `&mut` reference works
    /// too, since `Write` is implemented for `&mut W`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, mut writer: W) -> io::Result<()> {
        let mut enc = Encoder::new();
        if self.base_height == 0 {
            // Unpruned stores keep the original byte-identical format.
            writer.write_all(CHAIN_MAGIC)?;
        } else {
            writer.write_all(CHAIN_MAGIC_V2)?;
            enc.put_u64(self.base_height);
            enc.put_digest(&self.base_hash);
        }
        enc.put_varint(self.blocks.len() as u64);
        for block in &self.blocks {
            block.encode(&mut enc);
        }
        writer.write_all(&enc.into_bytes())?;
        Ok(())
    }

    /// Reads a chain back, re-verifying every hash link and data hash —
    /// a tampered file is rejected, not loaded.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for a bad magic, malformed encoding or a
    /// chain that fails verification; propagates reader I/O errors.
    pub fn read_from<R: Read>(mut reader: R) -> io::Result<BlockStore> {
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        let pruned = match &magic {
            m if m == CHAIN_MAGIC => false,
            m if m == CHAIN_MAGIC_V2 => true,
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "not a HyperProv chain file",
                ));
            }
        };
        let mut buf = Vec::new();
        reader.read_to_end(&mut buf)?;
        let mut dec = Decoder::new(&buf);
        let invalid = |e: crate::codec::CodecError| {
            io::Error::new(io::ErrorKind::InvalidData, format!("malformed chain: {e}"))
        };
        let mut store = if pruned {
            let base_height = dec.get_u64().map_err(invalid)?;
            let base_hash = dec.get_digest().map_err(invalid)?;
            if base_height == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "pruned chain with base height 0",
                ));
            }
            BlockStore::with_base(base_height, base_hash)
        } else {
            BlockStore::new()
        };
        let n = dec.get_varint().map_err(invalid)?;
        for _ in 0..n {
            let block = Block::decode(&mut dec).map_err(invalid)?;
            store.append(block).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("chain invalid: {e}"))
            })?;
        }
        dec.finish().map_err(invalid)?;
        Ok(store)
    }

    /// Re-verifies the retained chain (hash links and data hashes) from
    /// the pruning base, returning the first inconsistency. Used by
    /// tamper-detection audits.
    pub fn verify_chain(&self) -> Result<(), ChainError> {
        let mut prev = self.base_hash;
        for (i, block) in self.blocks.iter().enumerate() {
            let number = self.base_height + i as u64;
            if block.header.number != number {
                return Err(ChainError::WrongNumber {
                    got: block.header.number,
                    expected: number,
                });
            }
            if block.header.prev_hash != prev {
                return Err(ChainError::BrokenLink { at: number });
            }
            if !block.verify_data_hash() {
                return Err(ChainError::BadDataHash { at: number });
            }
            prev = block.header.hash();
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a BlockStore {
    type Item = &'a Block;
    type IntoIter = std::slice::Iter<'a, Block>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::RawEnvelope;

    fn env(tag: &[u8]) -> RawEnvelope {
        RawEnvelope {
            tx_id: TxId(Digest::of(tag)),
            bytes: tag.to_vec(),
        }
    }

    fn chain_of(n: u64) -> BlockStore {
        let mut store = BlockStore::new();
        for i in 0..n {
            let block = Block::build(i, store.tip_hash(), vec![env(format!("tx{i}").as_bytes())]);
            store.append(block).unwrap();
        }
        store
    }

    #[test]
    fn append_and_lookup() {
        let store = chain_of(3);
        assert_eq!(store.height(), 3);
        assert_eq!(store.tx_count(), 3);
        let (blk, idx) = store.find_tx(&TxId(Digest::of(b"tx1"))).unwrap();
        assert_eq!((blk, idx), (1, 0));
        assert!(store.find_tx(&TxId(Digest::of(b"nope"))).is_none());
        assert_eq!(store.block(2).unwrap().header.number, 2);
        assert!(store.block(3).is_none());
    }

    #[test]
    fn wrong_number_rejected() {
        let mut store = chain_of(1);
        let bad = Block::build(5, store.tip_hash(), vec![]);
        assert_eq!(
            store.append(bad),
            Err(ChainError::WrongNumber {
                got: 5,
                expected: 1
            })
        );
        assert_eq!(store.height(), 1);
    }

    #[test]
    fn broken_link_rejected() {
        let mut store = chain_of(1);
        let bad = Block::build(1, Digest::of(b"wrong"), vec![]);
        assert_eq!(store.append(bad), Err(ChainError::BrokenLink { at: 1 }));
    }

    #[test]
    fn bad_data_hash_rejected() {
        let mut store = chain_of(1);
        let mut bad = Block::build(1, store.tip_hash(), vec![env(b"x")]);
        bad.envelopes[0].bytes = b"tampered".to_vec();
        assert_eq!(store.append(bad), Err(ChainError::BadDataHash { at: 1 }));
    }

    #[test]
    fn verify_chain_detects_retroactive_tamper() {
        let mut store = chain_of(5);
        assert!(store.verify_chain().is_ok());
        // Tamper with an old envelope directly.
        store.blocks[2].envelopes[0].bytes = b"evil".to_vec();
        assert_eq!(store.verify_chain(), Err(ChainError::BadDataHash { at: 2 }));
        // Recompute that block's data hash to hide the tamper: the link
        // from block 3 now breaks instead.
        let envs = store.blocks[2].envelopes.clone();
        let rebuilt = Block::build(2, store.blocks[1].header.hash(), envs);
        store.blocks[2] = rebuilt;
        assert_eq!(store.verify_chain(), Err(ChainError::BrokenLink { at: 3 }));
    }

    #[test]
    fn iterator_walks_in_order() {
        let store = chain_of(4);
        let numbers: Vec<u64> = store.iter().map(|b| b.header.number).collect();
        assert_eq!(numbers, vec![0, 1, 2, 3]);
        let numbers2: Vec<u64> = (&store).into_iter().map(|b| b.header.number).collect();
        assert_eq!(numbers2, numbers);
    }

    #[test]
    fn persistence_round_trips_and_verifies() {
        let store = chain_of(5);
        let mut buf = Vec::new();
        store.write_to(&mut buf).unwrap();
        let loaded = BlockStore::read_from(buf.as_slice()).unwrap();
        assert_eq!(loaded.height(), 5);
        assert_eq!(loaded.tip_hash(), store.tip_hash());
        assert_eq!(loaded.tx_count(), store.tx_count());
        assert!(loaded.find_tx(&TxId(Digest::of(b"tx3"))).is_some());
    }

    #[test]
    fn persistence_rejects_bad_magic_and_tampering() {
        let store = chain_of(3);
        let mut buf = Vec::new();
        store.write_to(&mut buf).unwrap();
        // Wrong magic.
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(BlockStore::read_from(bad.as_slice()).is_err());
        // Flip a byte inside a block body: the data hash check fires.
        let mut tampered = buf.clone();
        let mid = buf.len() - 4;
        tampered[mid] ^= 0xFF;
        assert!(BlockStore::read_from(tampered.as_slice()).is_err());
        // Truncated file.
        assert!(BlockStore::read_from(&buf[..buf.len() - 3]).is_err());
        // Empty chain round-trips.
        let empty = BlockStore::new();
        let mut buf = Vec::new();
        empty.write_to(&mut buf).unwrap();
        assert_eq!(BlockStore::read_from(buf.as_slice()).unwrap().height(), 0);
    }

    #[test]
    fn prune_drops_blocks_and_keeps_chain_verifiable() {
        let mut store = chain_of(8);
        let tip = store.tip_hash();
        assert_eq!(store.prune_to(5), 5);
        assert_eq!(store.base_height(), 5);
        assert_eq!(store.height(), 8);
        assert_eq!(store.retained(), 3);
        assert_eq!(store.tip_hash(), tip);
        // Pruned blocks and their transactions are gone…
        assert!(store.block(4).is_none());
        assert!(store.find_tx(&TxId(Digest::of(b"tx2"))).is_none());
        // …retained ones still resolve with absolute numbers.
        assert_eq!(store.block(6).unwrap().header.number, 6);
        assert_eq!(store.find_tx(&TxId(Digest::of(b"tx7"))), Some((7, 0)));
        assert_eq!(store.tx_count(), 3);
        store.verify_chain().unwrap();
        // Appending continues from the tip as usual.
        let next = Block::build(8, store.tip_hash(), vec![env(b"tx8")]);
        store.append(next).unwrap();
        assert_eq!(store.height(), 9);
        store.verify_chain().unwrap();
    }

    #[test]
    fn prune_is_idempotent_and_clamped() {
        let mut store = chain_of(4);
        assert_eq!(store.prune_to(2), 2);
        assert_eq!(store.prune_to(2), 0);
        assert_eq!(store.prune_to(1), 0);
        // Horizon above the height prunes everything retained.
        assert_eq!(store.prune_to(99), 2);
        assert_eq!(store.base_height(), 4);
        assert_eq!(store.retained(), 0);
        let tip = store.tip_hash();
        assert_ne!(tip, Digest::ZERO);
        store.verify_chain().unwrap();
        let next = Block::build(4, tip, vec![env(b"tx4b")]);
        store.append(next).unwrap();
    }

    #[test]
    fn with_base_resumes_mid_chain() {
        // Simulate a snapshot bootstrap: a full replica hands block 3's
        // header hash to a fresh store that only sees blocks 3..5.
        let full = chain_of(5);
        let mut store = BlockStore::with_base(3, full.block(2).unwrap().header.hash());
        assert_eq!(store.height(), 3);
        assert_eq!(store.tip_hash(), full.block(2).unwrap().header.hash());
        for n in 3..5 {
            store.append(full.block(n).unwrap().clone()).unwrap();
        }
        store.verify_chain().unwrap();
        assert_eq!(store.tip_hash(), full.tip_hash());
        // A delta block with the wrong link is still rejected.
        let bad = Block::build(5, Digest::of(b"wrong"), vec![]);
        assert_eq!(store.append(bad), Err(ChainError::BrokenLink { at: 5 }));
    }

    #[test]
    fn verify_chain_detects_tamper_behind_base() {
        let mut store = chain_of(6);
        store.prune_to(3);
        // Tampering with the pinned base hash breaks the first link.
        store.base_hash = Digest::of(b"forged");
        assert_eq!(store.verify_chain(), Err(ChainError::BrokenLink { at: 3 }));
    }

    #[test]
    fn pruned_persistence_round_trips() {
        let mut store = chain_of(7);
        store.prune_to(4);
        let mut buf = Vec::new();
        store.write_to(&mut buf).unwrap();
        assert_eq!(&buf[..8], b"HPCHAIN2");
        let loaded = BlockStore::read_from(buf.as_slice()).unwrap();
        assert_eq!(loaded.base_height(), 4);
        assert_eq!(loaded.height(), 7);
        assert_eq!(loaded.tip_hash(), store.tip_hash());
        loaded.verify_chain().unwrap();
        // Unpruned stores keep the v1 magic byte-for-byte.
        let mut v1 = Vec::new();
        chain_of(2).write_to(&mut v1).unwrap();
        assert_eq!(&v1[..8], b"HPCHAIN1");
    }

    // Fuzz-style corruption suite: every malformed input must surface a
    // clean io::Error — no panics, no partially-loaded stores.

    #[test]
    fn read_from_truncated_header() {
        for len in 0..8 {
            let buf = vec![b'H'; len];
            let err = BlockStore::read_from(buf.as_slice()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "len {len}");
        }
        // A v2 header cut off inside the base fields.
        let mut store = chain_of(3);
        store.prune_to(2);
        let mut buf = Vec::new();
        store.write_to(&mut buf).unwrap();
        for len in 8..48 {
            let err = BlockStore::read_from(&buf[..len]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "len {len}");
        }
    }

    #[test]
    fn read_from_bad_length_prefix() {
        // A count far larger than the payload must error, not allocate
        // or loop: the first missing block fails to decode.
        let mut buf = CHAIN_MAGIC.to_vec();
        let mut enc = Encoder::new();
        enc.put_varint(u64::MAX >> 1);
        buf.extend_from_slice(&enc.into_bytes());
        let err = BlockStore::read_from(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // An over-long varint (overflow) is also clean.
        let mut buf = CHAIN_MAGIC.to_vec();
        buf.extend_from_slice(&[0xFF; 10]);
        let err = BlockStore::read_from(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn read_from_garbage_tail() {
        let store = chain_of(2);
        let mut buf = Vec::new();
        store.write_to(&mut buf).unwrap();
        buf.extend_from_slice(b"garbage after the chain");
        let err = BlockStore::read_from(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn read_from_truncated_mid_block_every_offset() {
        // Truncate at *every* possible offset: each one must yield a
        // clean error (or, before the magic completes, UnexpectedEof).
        let store = chain_of(3);
        let mut buf = Vec::new();
        store.write_to(&mut buf).unwrap();
        for len in 0..buf.len() {
            let err = BlockStore::read_from(&buf[..len]).unwrap_err();
            assert!(
                matches!(
                    err.kind(),
                    io::ErrorKind::UnexpectedEof | io::ErrorKind::InvalidData
                ),
                "offset {len}: unexpected kind {:?}",
                err.kind()
            );
        }
    }

    #[test]
    fn read_from_random_byte_flips_never_panic() {
        // Deterministic single-byte corruption sweep over the payload:
        // any successful load must still verify as a coherent chain.
        let store = chain_of(4);
        let mut buf = Vec::new();
        store.write_to(&mut buf).unwrap();
        for pos in 0..buf.len() {
            let mut bad = buf.clone();
            bad[pos] ^= 0x5A;
            if let Ok(loaded) = BlockStore::read_from(bad.as_slice()) {
                loaded.verify_chain().unwrap();
            }
        }
    }

    #[test]
    fn error_display() {
        assert!(!ChainError::WrongNumber {
            got: 1,
            expected: 0
        }
        .to_string()
        .is_empty());
        assert!(!ChainError::BrokenLink { at: 2 }.to_string().is_empty());
        assert!(!ChainError::BadDataHash { at: 3 }.to_string().is_empty());
    }
}
