//! Append-only block storage with chain verification and a tx-id index.

use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};

use crate::block::Block;
use crate::codec::{Decode, Decoder, Encode, Encoder};
use crate::hash::Digest;
use crate::tx::TxId;

/// Magic prefix of the persisted chain format.
const CHAIN_MAGIC: &[u8; 8] = b"HPCHAIN1";

/// Error appending or verifying blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// Block number is not `height()`.
    WrongNumber {
        /// Number carried by the offered block.
        got: u64,
        /// Number the chain expects next.
        expected: u64,
    },
    /// `prev_hash` does not match the current tip.
    BrokenLink {
        /// Height at which the link is broken.
        at: u64,
    },
    /// `data_hash` does not match the block's envelopes.
    BadDataHash {
        /// Height of the offending block.
        at: u64,
    },
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::WrongNumber { got, expected } => {
                write!(f, "block number {got} where {expected} was expected")
            }
            ChainError::BrokenLink { at } => write!(f, "prev_hash mismatch at height {at}"),
            ChainError::BadDataHash { at } => write!(f, "data hash mismatch at height {at}"),
        }
    }
}

impl std::error::Error for ChainError {}

/// An append-only chain of verified blocks.
///
/// # Examples
///
/// ```
/// use hyperprov_ledger::{Block, BlockStore, Digest};
///
/// let mut store = BlockStore::new();
/// let genesis = Block::build(0, Digest::ZERO, vec![]);
/// store.append(genesis)?;
/// assert_eq!(store.height(), 1);
/// # Ok::<(), hyperprov_ledger::ChainError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct BlockStore {
    blocks: Vec<Block>,
    tx_index: HashMap<TxId, (u64, u32)>,
}

impl BlockStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        BlockStore::default()
    }

    /// Chain height (number of blocks; the next block number).
    pub fn height(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Header hash of the last block, or [`Digest::ZERO`] if empty.
    pub fn tip_hash(&self) -> Digest {
        self.blocks
            .last()
            .map(|b| b.header.hash())
            .unwrap_or(Digest::ZERO)
    }

    /// Verifies and appends a block.
    ///
    /// # Errors
    ///
    /// Returns a [`ChainError`] if the number, link, or data hash is wrong;
    /// the store is unchanged on error.
    pub fn append(&mut self, block: Block) -> Result<(), ChainError> {
        let expected = self.height();
        if block.header.number != expected {
            return Err(ChainError::WrongNumber {
                got: block.header.number,
                expected,
            });
        }
        if block.header.prev_hash != self.tip_hash() {
            return Err(ChainError::BrokenLink { at: expected });
        }
        if !block.verify_data_hash() {
            return Err(ChainError::BadDataHash { at: expected });
        }
        for (i, env) in block.envelopes.iter().enumerate() {
            self.tx_index
                .insert(env.tx_id, (block.header.number, i as u32));
        }
        self.blocks.push(block);
        Ok(())
    }

    /// The block at `number`, if committed.
    pub fn block(&self, number: u64) -> Option<&Block> {
        self.blocks.get(number as usize)
    }

    /// Locates a transaction: `(block number, tx index)`.
    pub fn find_tx(&self, tx_id: &TxId) -> Option<(u64, u32)> {
        self.tx_index.get(tx_id).copied()
    }

    /// Iterates all blocks in order.
    pub fn iter(&self) -> std::slice::Iter<'_, Block> {
        self.blocks.iter()
    }

    /// Total committed transactions.
    pub fn tx_count(&self) -> u64 {
        self.blocks.iter().map(|b| b.len() as u64).sum()
    }

    /// Serialises the whole chain to a writer (a `&mut` reference works
    /// too, since `Write` is implemented for `&mut W`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, mut writer: W) -> io::Result<()> {
        let mut enc = Encoder::new();
        enc.put_varint(self.blocks.len() as u64);
        for block in &self.blocks {
            block.encode(&mut enc);
        }
        writer.write_all(CHAIN_MAGIC)?;
        writer.write_all(&enc.into_bytes())?;
        Ok(())
    }

    /// Reads a chain back, re-verifying every hash link and data hash —
    /// a tampered file is rejected, not loaded.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for a bad magic, malformed encoding or a
    /// chain that fails verification; propagates reader I/O errors.
    pub fn read_from<R: Read>(mut reader: R) -> io::Result<BlockStore> {
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        if &magic != CHAIN_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a HyperProv chain file",
            ));
        }
        let mut buf = Vec::new();
        reader.read_to_end(&mut buf)?;
        let mut dec = Decoder::new(&buf);
        let invalid = |e: crate::codec::CodecError| {
            io::Error::new(io::ErrorKind::InvalidData, format!("malformed chain: {e}"))
        };
        let n = dec.get_varint().map_err(invalid)?;
        let mut store = BlockStore::new();
        for _ in 0..n {
            let block = Block::decode(&mut dec).map_err(invalid)?;
            store.append(block).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("chain invalid: {e}"))
            })?;
        }
        dec.finish().map_err(invalid)?;
        Ok(store)
    }

    /// Re-verifies the entire chain (hash links and data hashes), returning
    /// the first inconsistency. Used by tamper-detection audits.
    pub fn verify_chain(&self) -> Result<(), ChainError> {
        let mut prev = Digest::ZERO;
        for (i, block) in self.blocks.iter().enumerate() {
            if block.header.number != i as u64 {
                return Err(ChainError::WrongNumber {
                    got: block.header.number,
                    expected: i as u64,
                });
            }
            if block.header.prev_hash != prev {
                return Err(ChainError::BrokenLink { at: i as u64 });
            }
            if !block.verify_data_hash() {
                return Err(ChainError::BadDataHash { at: i as u64 });
            }
            prev = block.header.hash();
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a BlockStore {
    type Item = &'a Block;
    type IntoIter = std::slice::Iter<'a, Block>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::RawEnvelope;

    fn env(tag: &[u8]) -> RawEnvelope {
        RawEnvelope {
            tx_id: TxId(Digest::of(tag)),
            bytes: tag.to_vec(),
        }
    }

    fn chain_of(n: u64) -> BlockStore {
        let mut store = BlockStore::new();
        for i in 0..n {
            let block = Block::build(i, store.tip_hash(), vec![env(format!("tx{i}").as_bytes())]);
            store.append(block).unwrap();
        }
        store
    }

    #[test]
    fn append_and_lookup() {
        let store = chain_of(3);
        assert_eq!(store.height(), 3);
        assert_eq!(store.tx_count(), 3);
        let (blk, idx) = store.find_tx(&TxId(Digest::of(b"tx1"))).unwrap();
        assert_eq!((blk, idx), (1, 0));
        assert!(store.find_tx(&TxId(Digest::of(b"nope"))).is_none());
        assert_eq!(store.block(2).unwrap().header.number, 2);
        assert!(store.block(3).is_none());
    }

    #[test]
    fn wrong_number_rejected() {
        let mut store = chain_of(1);
        let bad = Block::build(5, store.tip_hash(), vec![]);
        assert_eq!(
            store.append(bad),
            Err(ChainError::WrongNumber {
                got: 5,
                expected: 1
            })
        );
        assert_eq!(store.height(), 1);
    }

    #[test]
    fn broken_link_rejected() {
        let mut store = chain_of(1);
        let bad = Block::build(1, Digest::of(b"wrong"), vec![]);
        assert_eq!(store.append(bad), Err(ChainError::BrokenLink { at: 1 }));
    }

    #[test]
    fn bad_data_hash_rejected() {
        let mut store = chain_of(1);
        let mut bad = Block::build(1, store.tip_hash(), vec![env(b"x")]);
        bad.envelopes[0].bytes = b"tampered".to_vec();
        assert_eq!(store.append(bad), Err(ChainError::BadDataHash { at: 1 }));
    }

    #[test]
    fn verify_chain_detects_retroactive_tamper() {
        let mut store = chain_of(5);
        assert!(store.verify_chain().is_ok());
        // Tamper with an old envelope directly.
        store.blocks[2].envelopes[0].bytes = b"evil".to_vec();
        assert_eq!(store.verify_chain(), Err(ChainError::BadDataHash { at: 2 }));
        // Recompute that block's data hash to hide the tamper: the link
        // from block 3 now breaks instead.
        let envs = store.blocks[2].envelopes.clone();
        let rebuilt = Block::build(2, store.blocks[1].header.hash(), envs);
        store.blocks[2] = rebuilt;
        assert_eq!(store.verify_chain(), Err(ChainError::BrokenLink { at: 3 }));
    }

    #[test]
    fn iterator_walks_in_order() {
        let store = chain_of(4);
        let numbers: Vec<u64> = store.iter().map(|b| b.header.number).collect();
        assert_eq!(numbers, vec![0, 1, 2, 3]);
        let numbers2: Vec<u64> = (&store).into_iter().map(|b| b.header.number).collect();
        assert_eq!(numbers2, numbers);
    }

    #[test]
    fn persistence_round_trips_and_verifies() {
        let store = chain_of(5);
        let mut buf = Vec::new();
        store.write_to(&mut buf).unwrap();
        let loaded = BlockStore::read_from(buf.as_slice()).unwrap();
        assert_eq!(loaded.height(), 5);
        assert_eq!(loaded.tip_hash(), store.tip_hash());
        assert_eq!(loaded.tx_count(), store.tx_count());
        assert!(loaded.find_tx(&TxId(Digest::of(b"tx3"))).is_some());
    }

    #[test]
    fn persistence_rejects_bad_magic_and_tampering() {
        let store = chain_of(3);
        let mut buf = Vec::new();
        store.write_to(&mut buf).unwrap();
        // Wrong magic.
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(BlockStore::read_from(bad.as_slice()).is_err());
        // Flip a byte inside a block body: the data hash check fires.
        let mut tampered = buf.clone();
        let mid = buf.len() - 4;
        tampered[mid] ^= 0xFF;
        assert!(BlockStore::read_from(tampered.as_slice()).is_err());
        // Truncated file.
        assert!(BlockStore::read_from(&buf[..buf.len() - 3]).is_err());
        // Empty chain round-trips.
        let empty = BlockStore::new();
        let mut buf = Vec::new();
        empty.write_to(&mut buf).unwrap();
        assert_eq!(BlockStore::read_from(buf.as_slice()).unwrap().height(), 0);
    }

    #[test]
    fn error_display() {
        assert!(!ChainError::WrongNumber {
            got: 1,
            expected: 0
        }
        .to_string()
        .is_empty());
        assert!(!ChainError::BrokenLink { at: 2 }.to_string().is_empty());
        assert!(!ChainError::BadDataHash { at: 3 }.to_string().is_empty());
    }
}
