//! The versioned world state: current value + write version per key.
//!
//! Backed by a pluggable [`StateStore`] so chaincode range queries
//! (`GetStateByRange`, composite-key scans) work exactly as in Fabric's
//! LevelDB state database. Two backends exist:
//!
//! * [`BTreeStore`] — the original ordered map, kept as the equivalence
//!   oracle and the default (exports stay byte-identical).
//! * [`FlatStore`] — an LSM-flavoured store: a flat sorted base run plus
//!   a small delta memtable. Commit-time writes batch into the delta and
//!   are merged into the base in bulk once the delta passes a threshold,
//!   while reads see a copy-on-write merge of both runs. This keeps
//!   per-write overhead flat at millions of keys, where a B-tree starts
//!   paying deep-node traversals and pointer-chasing on every operation.
//!
//! MVCC validation compares the versions recorded in a transaction's read
//! set against this database at commit time.

use std::collections::BTreeMap;
use std::iter::Peekable;
use std::ops::Bound;

use crate::tx::{KvRead, KvWrite, StateKey, Version};

/// A current state value together with the version that wrote it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionedValue {
    /// The stored bytes.
    pub value: Vec<u8>,
    /// Height `(block, tx)` of the writing transaction.
    pub version: Version,
}

/// Minimal ordered key/value store interface the world state runs on.
///
/// Both backends store `(StateKey, VersionedValue)` pairs in lexicographic
/// key order; [`StateDb`] layers Fabric's range/prefix/MVCC semantics on
/// top of this interface.
pub trait StateStore {
    /// Point lookup.
    fn get(&self, key: &StateKey) -> Option<&VersionedValue>;
    /// Number of live keys.
    fn len(&self) -> usize;
    /// Inserts or overwrites one key.
    fn insert(&mut self, key: StateKey, value: VersionedValue);
    /// Removes one key (no-op when absent).
    fn remove(&mut self, key: &StateKey);
    /// Ordered iteration over every live pair.
    fn iter<'a>(&'a self) -> Box<dyn Iterator<Item = (&'a StateKey, &'a VersionedValue)> + 'a>;
    /// Ordered iteration over `[lower, upper)`; `None` means unbounded
    /// above.
    fn range<'a>(
        &'a self,
        lower: &StateKey,
        upper: Option<&StateKey>,
    ) -> Box<dyn Iterator<Item = (&'a StateKey, &'a VersionedValue)> + 'a>;
}

/// The original `BTreeMap` backend — the equivalence oracle.
#[derive(Debug, Clone, Default)]
pub struct BTreeStore {
    map: BTreeMap<StateKey, VersionedValue>,
}

impl StateStore for BTreeStore {
    fn get(&self, key: &StateKey) -> Option<&VersionedValue> {
        self.map.get(key)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn insert(&mut self, key: StateKey, value: VersionedValue) {
        self.map.insert(key, value);
    }

    fn remove(&mut self, key: &StateKey) {
        self.map.remove(key);
    }

    fn iter<'a>(&'a self) -> Box<dyn Iterator<Item = (&'a StateKey, &'a VersionedValue)> + 'a> {
        Box::new(self.map.iter())
    }

    fn range<'a>(
        &'a self,
        lower: &StateKey,
        upper: Option<&StateKey>,
    ) -> Box<dyn Iterator<Item = (&'a StateKey, &'a VersionedValue)> + 'a> {
        let upper = upper.map_or(Bound::Unbounded, Bound::Excluded);
        Box::new(self.map.range((Bound::Included(lower), upper)))
    }
}

/// Delta entries merged into the base run in one bulk pass once the
/// memtable reaches this many entries.
const FLAT_COMPACT_THRESHOLD: usize = 8192;

/// LSM-flavoured backend: sorted base run + delta memtable.
///
/// Writes land in the delta (deletes as tombstones) and are batch-merged
/// into the flat base vector when the delta reaches
/// [`FLAT_COMPACT_THRESHOLD`] entries — one `O(base + delta)` pass that
/// amortises to `O(1)` pointer-free appends per write. Reads consult the
/// delta first and fall back to a binary search of the base, so they
/// observe a copy-on-write merged view without ever cloning values.
#[derive(Debug, Clone)]
pub struct FlatStore {
    /// Immutable-between-compactions sorted run (no duplicate keys, no
    /// tombstones).
    base: Vec<(StateKey, VersionedValue)>,
    /// Recent writes; `None` is a delete tombstone shadowing the base.
    delta: BTreeMap<StateKey, Option<VersionedValue>>,
    /// Live key count across both runs.
    live: usize,
    threshold: usize,
}

impl Default for FlatStore {
    fn default() -> Self {
        FlatStore {
            base: Vec::new(),
            delta: BTreeMap::new(),
            live: 0,
            threshold: FLAT_COMPACT_THRESHOLD,
        }
    }
}

impl FlatStore {
    fn base_idx(&self, key: &StateKey) -> Result<usize, usize> {
        self.base.binary_search_by(|(k, _)| k.cmp(key))
    }

    fn in_base(&self, key: &StateKey) -> bool {
        self.base_idx(key).is_ok()
    }

    /// Merges the delta into the base run and clears it.
    fn compact(&mut self) {
        if self.delta.is_empty() {
            return;
        }
        let mut merged = Vec::with_capacity(self.live);
        let mut base = std::mem::take(&mut self.base).into_iter().peekable();
        for (k, dv) in std::mem::take(&mut self.delta) {
            while base.peek().is_some_and(|(bk, _)| *bk < k) {
                merged.push(base.next().unwrap());
            }
            if base.peek().is_some_and(|(bk, _)| *bk == k) {
                base.next(); // superseded by the delta entry
            }
            if let Some(v) = dv {
                merged.push((k, v));
            }
        }
        merged.extend(base);
        self.base = merged;
    }

    fn maybe_compact(&mut self) {
        if self.delta.len() >= self.threshold {
            self.compact();
        }
    }
}

/// Merged ordered view of a base-run window and a delta range, with delta
/// entries shadowing base entries and tombstones skipped.
struct FlatIter<'a> {
    base: Peekable<std::slice::Iter<'a, (StateKey, VersionedValue)>>,
    delta: Peekable<std::collections::btree_map::Range<'a, StateKey, Option<VersionedValue>>>,
}

impl<'a> Iterator for FlatIter<'a> {
    type Item = (&'a StateKey, &'a VersionedValue);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let take_base = match (self.base.peek(), self.delta.peek()) {
                (None, None) => return None,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some((bk, _)), Some((dk, _))) => match bk.cmp(dk) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Equal => {
                        self.base.next(); // shadowed by the delta
                        false
                    }
                    std::cmp::Ordering::Greater => false,
                },
            };
            if take_base {
                let (k, v) = self.base.next().unwrap();
                return Some((k, v));
            }
            let (k, dv) = self.delta.next().unwrap();
            if let Some(v) = dv {
                return Some((k, v));
            }
            // Tombstone: skip.
        }
    }
}

impl StateStore for FlatStore {
    fn get(&self, key: &StateKey) -> Option<&VersionedValue> {
        match self.delta.get(key) {
            Some(Some(v)) => Some(v),
            Some(None) => None,
            None => self.base_idx(key).ok().map(|i| &self.base[i].1),
        }
    }

    fn len(&self) -> usize {
        self.live
    }

    fn insert(&mut self, key: StateKey, value: VersionedValue) {
        let existed = match self.delta.get(&key) {
            Some(entry) => entry.is_some(),
            None => self.in_base(&key),
        };
        if !existed {
            self.live += 1;
        }
        self.delta.insert(key, Some(value));
        self.maybe_compact();
    }

    fn remove(&mut self, key: &StateKey) {
        match self.delta.get(key) {
            Some(Some(_)) => {
                self.live -= 1;
                if self.in_base(key) {
                    self.delta.insert(key.clone(), None);
                } else {
                    self.delta.remove(key);
                }
            }
            Some(None) => {} // already deleted
            None => {
                if self.in_base(key) {
                    self.live -= 1;
                    self.delta.insert(key.clone(), None);
                }
            }
        }
        self.maybe_compact();
    }

    fn iter<'a>(&'a self) -> Box<dyn Iterator<Item = (&'a StateKey, &'a VersionedValue)> + 'a> {
        Box::new(FlatIter {
            base: self.base.iter().peekable(),
            delta: self.delta.range(..).peekable(),
        })
    }

    fn range<'a>(
        &'a self,
        lower: &StateKey,
        upper: Option<&StateKey>,
    ) -> Box<dyn Iterator<Item = (&'a StateKey, &'a VersionedValue)> + 'a> {
        let from = self.base.partition_point(|(k, _)| k < lower);
        let to = upper.map_or(self.base.len(), |u| {
            self.base.partition_point(|(k, _)| k < u)
        });
        let bound = upper.map_or(Bound::Unbounded, Bound::Excluded);
        Box::new(FlatIter {
            base: self.base[from..to].iter().peekable(),
            delta: self.delta.range((Bound::Included(lower), bound)).peekable(),
        })
    }
}

/// Which [`StateStore`] backend a [`StateDb`] runs on.
#[derive(Debug, Clone)]
enum Backend {
    BTree(BTreeStore),
    Flat(FlatStore),
}

impl Backend {
    fn store(&self) -> &dyn StateStore {
        match self {
            Backend::BTree(s) => s,
            Backend::Flat(s) => s,
        }
    }

    fn store_mut(&mut self) -> &mut dyn StateStore {
        match self {
            Backend::BTree(s) => s,
            Backend::Flat(s) => s,
        }
    }
}

/// The world state database.
///
/// # Examples
///
/// ```
/// use hyperprov_ledger::{KvWrite, StateDb, StateKey, Version};
///
/// let mut db = StateDb::new();
/// db.apply_write(
///     &KvWrite { key: StateKey::new("cc", "k"), value: Some(b"v".to_vec()) },
///     Version::new(1, 0),
/// );
/// assert_eq!(db.get(&StateKey::new("cc", "k")).unwrap().value, b"v");
/// ```
#[derive(Debug, Clone)]
pub struct StateDb {
    backend: Backend,
}

impl Default for StateDb {
    fn default() -> Self {
        StateDb {
            backend: Backend::BTree(BTreeStore::default()),
        }
    }
}

impl StateDb {
    /// Creates an empty state database on the default `BTreeMap` backend.
    pub fn new() -> Self {
        StateDb::default()
    }

    /// Creates an empty state database on the flat-sorted [`FlatStore`]
    /// backend (batched commit-time writes; scales to millions of keys).
    pub fn flat() -> Self {
        StateDb {
            backend: Backend::Flat(FlatStore::default()),
        }
    }

    /// Name of the active backend (`"btree"` or `"flat"`), for reports.
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            Backend::BTree(_) => "btree",
            Backend::Flat(_) => "flat",
        }
    }

    /// Current value and version for `key`, if present.
    pub fn get(&self, key: &StateKey) -> Option<&VersionedValue> {
        match &self.backend {
            Backend::BTree(s) => s.get(key),
            Backend::Flat(s) => s.get(key),
        }
    }

    /// Current version for `key`, if present.
    pub fn version(&self, key: &StateKey) -> Option<Version> {
        self.get(key).map(|v| v.version)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.backend.store().len()
    }

    /// True if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates every live `(key, value)` pair in lexicographic key order.
    pub fn iter(&self) -> impl Iterator<Item = (&StateKey, &VersionedValue)> {
        self.backend.store().iter()
    }

    /// Restores one key directly at its recorded version — used when
    /// rebuilding state from a verified snapshot.
    pub fn restore_entry(&mut self, key: StateKey, value: VersionedValue) {
        self.backend.store_mut().insert(key, value);
    }

    /// Applies one write at the given version (delete when value is None).
    pub fn apply_write(&mut self, write: &KvWrite, version: Version) {
        match &write.value {
            Some(value) => {
                self.backend.store_mut().insert(
                    write.key.clone(),
                    VersionedValue {
                        value: value.clone(),
                        version,
                    },
                );
            }
            None => {
                self.backend.store_mut().remove(&write.key);
            }
        }
    }

    /// Applies a whole write set at the given version.
    pub fn apply_writes(&mut self, writes: &[KvWrite], version: Version) {
        for w in writes {
            self.apply_write(w, version);
        }
    }

    /// MVCC check: true iff every recorded read still observes the same
    /// version in current state.
    pub fn validate_reads(&self, reads: &[KvRead]) -> bool {
        reads.iter().all(|r| self.version(&r.key) == r.version)
    }

    /// Iterates keys in `namespace` whose key is in `[start, end)`,
    /// in lexicographic order. An empty `end` means "to the end of the
    /// namespace" (Fabric's open-ended range query).
    pub fn range<'a>(
        &'a self,
        namespace: &'a str,
        start: &str,
        end: &str,
    ) -> impl Iterator<Item = (&'a StateKey, &'a VersionedValue)> + 'a {
        let lower = StateKey::new(namespace, start);
        let upper = if end.is_empty() {
            // End of namespace: first key of the "next" namespace.
            StateKey::new(format!("{namespace}\u{0}"), "")
        } else {
            StateKey::new(namespace, end)
        };
        self.backend
            .store()
            .range(&lower, Some(&upper))
            .filter(move |(k, _)| k.namespace == namespace)
    }

    /// Iterates keys in `namespace` starting with `prefix` (composite-key
    /// scans).
    pub fn scan_prefix<'a>(
        &'a self,
        namespace: &'a str,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a StateKey, &'a VersionedValue)> + 'a {
        let lower = StateKey::new(namespace, prefix);
        self.backend
            .store()
            .range(&lower, None)
            .take_while(move |(k, _)| k.namespace == namespace && k.key.starts_with(prefix))
    }

    /// Total bytes of stored values, for resource accounting.
    pub fn value_bytes(&self) -> u64 {
        self.iter().map(|(_, v)| v.value.len() as u64).sum()
    }

    /// A digest over the entire world state — every key, value and write
    /// version, in key order. Two replicas hold identical state iff their
    /// hashes match, which is how the fault-recovery tests assert that a
    /// healed partition left no divergence. Backend-independent: both
    /// stores hash to the same digest for the same contents.
    pub fn state_hash(&self) -> crate::hash::Digest {
        let mut hasher = crate::hash::Sha256::new();
        for (key, vv) in self.iter() {
            for part in [key.namespace.as_bytes(), key.key.as_bytes(), &vv.value] {
                hasher.update(&(part.len() as u64).to_be_bytes());
                hasher.update(part);
            }
            hasher.update(&vv.version.block_num.to_be_bytes());
            hasher.update(&vv.version.tx_num.to_be_bytes());
        }
        hasher.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(db: &mut StateDb, ns: &str, k: &str, v: &[u8], ver: Version) {
        db.apply_write(
            &KvWrite {
                key: StateKey::new(ns, k),
                value: Some(v.to_vec()),
            },
            ver,
        );
    }

    fn backends() -> [StateDb; 2] {
        [StateDb::new(), StateDb::flat()]
    }

    #[test]
    fn put_get_delete() {
        for mut db in backends() {
            put(&mut db, "cc", "a", b"1", Version::new(1, 0));
            assert_eq!(db.get(&StateKey::new("cc", "a")).unwrap().value, b"1");
            assert_eq!(
                db.version(&StateKey::new("cc", "a")),
                Some(Version::new(1, 0))
            );
            db.apply_write(
                &KvWrite {
                    key: StateKey::new("cc", "a"),
                    value: None,
                },
                Version::new(2, 0),
            );
            assert!(db.get(&StateKey::new("cc", "a")).is_none());
            assert!(db.is_empty());
        }
    }

    #[test]
    fn overwrite_updates_version() {
        for mut db in backends() {
            put(&mut db, "cc", "a", b"1", Version::new(1, 0));
            put(&mut db, "cc", "a", b"2", Version::new(1, 1));
            let vv = db.get(&StateKey::new("cc", "a")).unwrap();
            assert_eq!(vv.value, b"2");
            assert_eq!(vv.version, Version::new(1, 1));
            assert_eq!(db.len(), 1);
        }
    }

    #[test]
    fn mvcc_validation() {
        for mut db in backends() {
            put(&mut db, "cc", "a", b"1", Version::new(1, 0));
            let good = vec![KvRead {
                key: StateKey::new("cc", "a"),
                version: Some(Version::new(1, 0)),
            }];
            let stale = vec![KvRead {
                key: StateKey::new("cc", "a"),
                version: Some(Version::new(0, 0)),
            }];
            let phantom = vec![KvRead {
                key: StateKey::new("cc", "missing"),
                version: None,
            }];
            let appeared = vec![KvRead {
                key: StateKey::new("cc", "a"),
                version: None,
            }];
            assert!(db.validate_reads(&good));
            assert!(!db.validate_reads(&stale));
            assert!(db.validate_reads(&phantom));
            assert!(!db.validate_reads(&appeared));
            assert!(db.validate_reads(&[]));
        }
    }

    #[test]
    fn range_respects_bounds_and_namespace() {
        for mut db in backends() {
            for (ns, k) in [
                ("a", "k1"),
                ("cc", "k1"),
                ("cc", "k2"),
                ("cc", "k3"),
                ("zz", "k0"),
            ] {
                put(&mut db, ns, k, b"v", Version::new(1, 0));
            }
            let keys: Vec<String> = db
                .range("cc", "k1", "k3")
                .map(|(k, _)| k.key.clone())
                .collect();
            assert_eq!(keys, vec!["k1", "k2"]);
            let all: Vec<String> = db.range("cc", "", "").map(|(k, _)| k.key.clone()).collect();
            assert_eq!(all, vec!["k1", "k2", "k3"]);
        }
    }

    #[test]
    fn range_with_prefix_keys_respects_exclusive_end() {
        // Keys that are prefixes of each other ("k" < "k1" < "k10" < "k2")
        // must honour the half-open [start, end) contract exactly.
        for mut db in backends() {
            for k in ["k", "k1", "k10", "k2"] {
                put(&mut db, "cc", k, b"v", Version::new(1, 0));
            }
            let hits = |start: &str, end: &str| -> Vec<String> {
                db.range("cc", start, end)
                    .map(|(k, _)| k.key.clone())
                    .collect()
            };
            assert_eq!(hits("k", "k1"), vec!["k"]);
            assert_eq!(hits("k1", "k2"), vec!["k1", "k10"]);
            assert_eq!(hits("k", ""), vec!["k", "k1", "k10", "k2"]);
            assert_eq!(hits("k10", "k10"), Vec::<String>::new());
        }
    }

    #[test]
    fn range_in_empty_namespace_sees_only_that_namespace() {
        // The empty namespace is a valid (if degenerate) chaincode name;
        // its open-ended scan must not drift into later namespaces.
        for mut db in backends() {
            put(&mut db, "", "a", b"v", Version::new(1, 0));
            put(&mut db, "", "b", b"v", Version::new(1, 0));
            put(&mut db, "cc", "a", b"v", Version::new(1, 0));
            let keys: Vec<String> = db.range("", "", "").map(|(k, _)| k.key.clone()).collect();
            assert_eq!(keys, vec!["a", "b"]);
            assert_eq!(db.scan_prefix("", "").count(), 2);
        }
    }

    #[test]
    fn open_ended_range_stops_at_adjacent_namespaces() {
        // Namespaces that sort immediately after "cc" — including the NUL
        // sentinel the upper bound is built from — must stay invisible to
        // chaincode "cc".
        for mut db in backends() {
            put(&mut db, "cc", "z", b"v", Version::new(1, 0));
            put(&mut db, "cc\u{0}", "a", b"v", Version::new(1, 0));
            put(&mut db, "cc0", "a", b"v", Version::new(1, 0));
            put(&mut db, "ccx", "a", b"v", Version::new(1, 0));
            put(&mut db, "cd", "a", b"v", Version::new(1, 0));
            let keys: Vec<String> = db.range("cc", "", "").map(|(k, _)| k.key.clone()).collect();
            assert_eq!(keys, vec!["z"], "no adjacent-namespace leakage");
            // And the neighbours still see their own keys.
            assert_eq!(db.range("cc\u{0}", "", "").count(), 1);
            assert_eq!(db.range("ccx", "", "").count(), 1);
        }
    }

    #[test]
    fn scan_prefix_stays_inside_namespace() {
        // A prefix scan near the end of one namespace must not continue
        // into the next namespace even when its keys share the prefix.
        for mut db in backends() {
            put(&mut db, "cc", "item~a", b"v", Version::new(1, 0));
            put(&mut db, "cc", "zz", b"v", Version::new(1, 0));
            put(&mut db, "ccx", "zz1", b"v", Version::new(1, 0));
            put(&mut db, "cd", "item~b", b"v", Version::new(1, 0));
            let hits: Vec<String> = db
                .scan_prefix("cc", "zz")
                .map(|(k, _)| k.key.clone())
                .collect();
            assert_eq!(hits, vec!["zz"]);
            assert_eq!(db.scan_prefix("cc", "item~").count(), 1);
        }
    }

    #[test]
    fn scan_prefix_matches_composite_keys() {
        for mut db in backends() {
            for k in [
                "owner~org1~item1",
                "owner~org1~item2",
                "owner~org2~item3",
                "other",
            ] {
                put(&mut db, "cc", k, b"v", Version::new(1, 0));
            }
            let hits: Vec<String> = db
                .scan_prefix("cc", "owner~org1~")
                .map(|(k, _)| k.key.clone())
                .collect();
            assert_eq!(hits, vec!["owner~org1~item1", "owner~org1~item2"]);
            assert_eq!(db.scan_prefix("cc", "nope").count(), 0);
        }
    }

    #[test]
    fn value_bytes_accounts_sizes() {
        for mut db in backends() {
            put(&mut db, "cc", "a", &[0u8; 10], Version::new(1, 0));
            put(&mut db, "cc", "b", &[0u8; 5], Version::new(1, 1));
            assert_eq!(db.value_bytes(), 15);
        }
    }

    #[test]
    fn state_hash_tracks_content_not_insertion_order() {
        let mut a = StateDb::new();
        put(&mut a, "cc", "x", b"1", Version::new(1, 0));
        put(&mut a, "cc", "y", b"2", Version::new(1, 1));
        let mut b = StateDb::new();
        put(&mut b, "cc", "y", b"2", Version::new(1, 1));
        put(&mut b, "cc", "x", b"1", Version::new(1, 0));
        assert_eq!(a.state_hash(), b.state_hash());
        // A differing value, version, or key changes the hash.
        put(&mut b, "cc", "x", b"1", Version::new(2, 0));
        assert_ne!(a.state_hash(), b.state_hash());
        assert_ne!(StateDb::new().state_hash(), a.state_hash());
    }

    #[test]
    fn state_hash_is_backend_independent() {
        let mut bt = StateDb::new();
        let mut fl = StateDb::flat();
        for db in [&mut bt, &mut fl] {
            put(db, "cc", "x", b"1", Version::new(1, 0));
            put(db, "cc", "y", b"2", Version::new(1, 1));
            put(db, "dd", "z", b"3", Version::new(2, 0));
        }
        assert_eq!(bt.state_hash(), fl.state_hash());
        assert_eq!(bt.backend_name(), "btree");
        assert_eq!(fl.backend_name(), "flat");
    }

    #[test]
    fn flat_store_survives_compaction_cycles() {
        let mut fl = FlatStore {
            threshold: 4, // force frequent merges
            ..FlatStore::default()
        };
        let mut oracle = BTreeStore::default();
        let vv = |n: u8| VersionedValue {
            value: vec![n],
            version: Version::new(n as u64, 0),
        };
        for round in 0..8u8 {
            for i in 0..10u8 {
                let key = StateKey::new("cc", format!("k{i:02}"));
                if (i + round) % 3 == 0 {
                    fl.remove(&key);
                    oracle.remove(&key);
                } else {
                    fl.insert(key.clone(), vv(i ^ round));
                    oracle.insert(key, vv(i ^ round));
                }
            }
            assert_eq!(fl.len(), oracle.len(), "round {round}");
            let f: Vec<_> = fl.iter().collect();
            let o: Vec<_> = oracle.iter().collect();
            assert_eq!(f, o, "round {round}");
        }
    }
}
