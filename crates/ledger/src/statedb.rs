//! The versioned world state: current value + write version per key.
//!
//! Backed by an ordered map so chaincode range queries (`GetStateByRange`,
//! composite-key scans) work exactly as in Fabric's LevelDB state database.
//! MVCC validation compares the versions recorded in a transaction's read
//! set against this database at commit time.

use std::collections::BTreeMap;
use std::ops::Bound;

use crate::tx::{KvRead, KvWrite, StateKey, Version};

/// A current state value together with the version that wrote it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionedValue {
    /// The stored bytes.
    pub value: Vec<u8>,
    /// Height `(block, tx)` of the writing transaction.
    pub version: Version,
}

/// The world state database.
///
/// # Examples
///
/// ```
/// use hyperprov_ledger::{KvWrite, StateDb, StateKey, Version};
///
/// let mut db = StateDb::new();
/// db.apply_write(
///     &KvWrite { key: StateKey::new("cc", "k"), value: Some(b"v".to_vec()) },
///     Version::new(1, 0),
/// );
/// assert_eq!(db.get(&StateKey::new("cc", "k")).unwrap().value, b"v");
/// ```
#[derive(Debug, Clone, Default)]
pub struct StateDb {
    map: BTreeMap<StateKey, VersionedValue>,
}

impl StateDb {
    /// Creates an empty state database.
    pub fn new() -> Self {
        StateDb::default()
    }

    /// Current value and version for `key`, if present.
    pub fn get(&self, key: &StateKey) -> Option<&VersionedValue> {
        self.map.get(key)
    }

    /// Current version for `key`, if present.
    pub fn version(&self, key: &StateKey) -> Option<Version> {
        self.map.get(key).map(|v| v.version)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates every live `(key, value)` pair in lexicographic key order.
    pub fn iter(&self) -> impl Iterator<Item = (&StateKey, &VersionedValue)> {
        self.map.iter()
    }

    /// Restores one key directly at its recorded version — used when
    /// rebuilding state from a verified snapshot.
    pub fn restore_entry(&mut self, key: StateKey, value: VersionedValue) {
        self.map.insert(key, value);
    }

    /// Applies one write at the given version (delete when value is None).
    pub fn apply_write(&mut self, write: &KvWrite, version: Version) {
        match &write.value {
            Some(value) => {
                self.map.insert(
                    write.key.clone(),
                    VersionedValue {
                        value: value.clone(),
                        version,
                    },
                );
            }
            None => {
                self.map.remove(&write.key);
            }
        }
    }

    /// Applies a whole write set at the given version.
    pub fn apply_writes(&mut self, writes: &[KvWrite], version: Version) {
        for w in writes {
            self.apply_write(w, version);
        }
    }

    /// MVCC check: true iff every recorded read still observes the same
    /// version in current state.
    pub fn validate_reads(&self, reads: &[KvRead]) -> bool {
        reads.iter().all(|r| self.version(&r.key) == r.version)
    }

    /// Iterates keys in `namespace` whose key is in `[start, end)`,
    /// in lexicographic order. An empty `end` means "to the end of the
    /// namespace" (Fabric's open-ended range query).
    pub fn range<'a>(
        &'a self,
        namespace: &'a str,
        start: &str,
        end: &str,
    ) -> impl Iterator<Item = (&'a StateKey, &'a VersionedValue)> + 'a {
        let lower = StateKey::new(namespace, start);
        let upper: Bound<StateKey> = if end.is_empty() {
            // End of namespace: first key of the "next" namespace.
            Bound::Excluded(StateKey {
                namespace: format!("{namespace}\u{0}"),
                key: String::new(),
            })
        } else {
            Bound::Excluded(StateKey::new(namespace, end))
        };
        self.map
            .range((Bound::Included(lower), upper))
            .filter(move |(k, _)| k.namespace == namespace)
    }

    /// Iterates keys in `namespace` starting with `prefix` (composite-key
    /// scans).
    pub fn scan_prefix<'a>(
        &'a self,
        namespace: &'a str,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a StateKey, &'a VersionedValue)> + 'a {
        let lower = StateKey::new(namespace, prefix);
        self.map
            .range((Bound::Included(lower), Bound::Unbounded))
            .take_while(move |(k, _)| k.namespace == namespace && k.key.starts_with(prefix))
    }

    /// Total bytes of stored values, for resource accounting.
    pub fn value_bytes(&self) -> u64 {
        self.map.values().map(|v| v.value.len() as u64).sum()
    }

    /// A digest over the entire world state — every key, value and write
    /// version, in key order. Two replicas hold identical state iff their
    /// hashes match, which is how the fault-recovery tests assert that a
    /// healed partition left no divergence.
    pub fn state_hash(&self) -> crate::hash::Digest {
        let mut hasher = crate::hash::Sha256::new();
        for (key, vv) in &self.map {
            for part in [key.namespace.as_bytes(), key.key.as_bytes(), &vv.value] {
                hasher.update(&(part.len() as u64).to_be_bytes());
                hasher.update(part);
            }
            hasher.update(&vv.version.block_num.to_be_bytes());
            hasher.update(&vv.version.tx_num.to_be_bytes());
        }
        hasher.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(db: &mut StateDb, ns: &str, k: &str, v: &[u8], ver: Version) {
        db.apply_write(
            &KvWrite {
                key: StateKey::new(ns, k),
                value: Some(v.to_vec()),
            },
            ver,
        );
    }

    #[test]
    fn put_get_delete() {
        let mut db = StateDb::new();
        put(&mut db, "cc", "a", b"1", Version::new(1, 0));
        assert_eq!(db.get(&StateKey::new("cc", "a")).unwrap().value, b"1");
        assert_eq!(
            db.version(&StateKey::new("cc", "a")),
            Some(Version::new(1, 0))
        );
        db.apply_write(
            &KvWrite {
                key: StateKey::new("cc", "a"),
                value: None,
            },
            Version::new(2, 0),
        );
        assert!(db.get(&StateKey::new("cc", "a")).is_none());
        assert!(db.is_empty());
    }

    #[test]
    fn overwrite_updates_version() {
        let mut db = StateDb::new();
        put(&mut db, "cc", "a", b"1", Version::new(1, 0));
        put(&mut db, "cc", "a", b"2", Version::new(1, 1));
        let vv = db.get(&StateKey::new("cc", "a")).unwrap();
        assert_eq!(vv.value, b"2");
        assert_eq!(vv.version, Version::new(1, 1));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn mvcc_validation() {
        let mut db = StateDb::new();
        put(&mut db, "cc", "a", b"1", Version::new(1, 0));
        let good = vec![KvRead {
            key: StateKey::new("cc", "a"),
            version: Some(Version::new(1, 0)),
        }];
        let stale = vec![KvRead {
            key: StateKey::new("cc", "a"),
            version: Some(Version::new(0, 0)),
        }];
        let phantom = vec![KvRead {
            key: StateKey::new("cc", "missing"),
            version: None,
        }];
        let appeared = vec![KvRead {
            key: StateKey::new("cc", "a"),
            version: None,
        }];
        assert!(db.validate_reads(&good));
        assert!(!db.validate_reads(&stale));
        assert!(db.validate_reads(&phantom));
        assert!(!db.validate_reads(&appeared));
        assert!(db.validate_reads(&[]));
    }

    #[test]
    fn range_respects_bounds_and_namespace() {
        let mut db = StateDb::new();
        for (ns, k) in [
            ("a", "k1"),
            ("cc", "k1"),
            ("cc", "k2"),
            ("cc", "k3"),
            ("zz", "k0"),
        ] {
            put(&mut db, ns, k, b"v", Version::new(1, 0));
        }
        let keys: Vec<String> = db
            .range("cc", "k1", "k3")
            .map(|(k, _)| k.key.clone())
            .collect();
        assert_eq!(keys, vec!["k1", "k2"]);
        let all: Vec<String> = db.range("cc", "", "").map(|(k, _)| k.key.clone()).collect();
        assert_eq!(all, vec!["k1", "k2", "k3"]);
    }

    #[test]
    fn range_with_prefix_keys_respects_exclusive_end() {
        // Keys that are prefixes of each other ("k" < "k1" < "k10" < "k2")
        // must honour the half-open [start, end) contract exactly.
        let mut db = StateDb::new();
        for k in ["k", "k1", "k10", "k2"] {
            put(&mut db, "cc", k, b"v", Version::new(1, 0));
        }
        let hits = |start: &str, end: &str| -> Vec<String> {
            db.range("cc", start, end)
                .map(|(k, _)| k.key.clone())
                .collect()
        };
        assert_eq!(hits("k", "k1"), vec!["k"]);
        assert_eq!(hits("k1", "k2"), vec!["k1", "k10"]);
        assert_eq!(hits("k", ""), vec!["k", "k1", "k10", "k2"]);
        assert_eq!(hits("k10", "k10"), Vec::<String>::new());
    }

    #[test]
    fn range_in_empty_namespace_sees_only_that_namespace() {
        // The empty namespace is a valid (if degenerate) chaincode name;
        // its open-ended scan must not drift into later namespaces.
        let mut db = StateDb::new();
        put(&mut db, "", "a", b"v", Version::new(1, 0));
        put(&mut db, "", "b", b"v", Version::new(1, 0));
        put(&mut db, "cc", "a", b"v", Version::new(1, 0));
        let keys: Vec<String> = db.range("", "", "").map(|(k, _)| k.key.clone()).collect();
        assert_eq!(keys, vec!["a", "b"]);
        assert_eq!(db.scan_prefix("", "").count(), 2);
    }

    #[test]
    fn open_ended_range_stops_at_adjacent_namespaces() {
        // Namespaces that sort immediately after "cc" — including the NUL
        // sentinel the upper bound is built from — must stay invisible to
        // chaincode "cc".
        let mut db = StateDb::new();
        put(&mut db, "cc", "z", b"v", Version::new(1, 0));
        put(&mut db, "cc\u{0}", "a", b"v", Version::new(1, 0));
        put(&mut db, "cc0", "a", b"v", Version::new(1, 0));
        put(&mut db, "ccx", "a", b"v", Version::new(1, 0));
        put(&mut db, "cd", "a", b"v", Version::new(1, 0));
        let keys: Vec<String> = db.range("cc", "", "").map(|(k, _)| k.key.clone()).collect();
        assert_eq!(keys, vec!["z"], "no adjacent-namespace leakage");
        // And the neighbours still see their own keys.
        assert_eq!(db.range("cc\u{0}", "", "").count(), 1);
        assert_eq!(db.range("ccx", "", "").count(), 1);
    }

    #[test]
    fn scan_prefix_stays_inside_namespace() {
        // A prefix scan near the end of one namespace must not continue
        // into the next namespace even when its keys share the prefix.
        let mut db = StateDb::new();
        put(&mut db, "cc", "item~a", b"v", Version::new(1, 0));
        put(&mut db, "cc", "zz", b"v", Version::new(1, 0));
        put(&mut db, "ccx", "zz1", b"v", Version::new(1, 0));
        put(&mut db, "cd", "item~b", b"v", Version::new(1, 0));
        let hits: Vec<String> = db
            .scan_prefix("cc", "zz")
            .map(|(k, _)| k.key.clone())
            .collect();
        assert_eq!(hits, vec!["zz"]);
        assert_eq!(db.scan_prefix("cc", "item~").count(), 1);
    }

    #[test]
    fn scan_prefix_matches_composite_keys() {
        let mut db = StateDb::new();
        for k in [
            "owner~org1~item1",
            "owner~org1~item2",
            "owner~org2~item3",
            "other",
        ] {
            put(&mut db, "cc", k, b"v", Version::new(1, 0));
        }
        let hits: Vec<String> = db
            .scan_prefix("cc", "owner~org1~")
            .map(|(k, _)| k.key.clone())
            .collect();
        assert_eq!(hits, vec!["owner~org1~item1", "owner~org1~item2"]);
        assert_eq!(db.scan_prefix("cc", "nope").count(), 0);
    }

    #[test]
    fn value_bytes_accounts_sizes() {
        let mut db = StateDb::new();
        put(&mut db, "cc", "a", &[0u8; 10], Version::new(1, 0));
        put(&mut db, "cc", "b", &[0u8; 5], Version::new(1, 1));
        assert_eq!(db.value_bytes(), 15);
    }

    #[test]
    fn state_hash_tracks_content_not_insertion_order() {
        let mut a = StateDb::new();
        put(&mut a, "cc", "x", b"1", Version::new(1, 0));
        put(&mut a, "cc", "y", b"2", Version::new(1, 1));
        let mut b = StateDb::new();
        put(&mut b, "cc", "y", b"2", Version::new(1, 1));
        put(&mut b, "cc", "x", b"1", Version::new(1, 0));
        assert_eq!(a.state_hash(), b.state_hash());
        // A differing value, version, or key changes the hash.
        put(&mut b, "cc", "x", b"1", Version::new(2, 0));
        assert_ne!(a.state_hash(), b.state_hash());
        assert_ne!(StateDb::new().state_hash(), a.state_hash());
    }
}
