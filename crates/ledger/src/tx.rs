//! Transaction primitives: identifiers, state versions, read/write sets and
//! validation codes.
//!
//! The execute-order-validate pipeline simulates a transaction against a
//! state snapshot, recording every read (with the version it observed) and
//! every write. At commit time the committer re-checks the read versions
//! against current state — Fabric's MVCC rule — and marks the transaction
//! valid or invalid in the block metadata.

use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use crate::codec::{decode_seq, encode_seq, CodecError, Decode, Decoder, Encode, Encoder};
use crate::hash::Digest;

/// An interned chaincode namespace.
///
/// A handful of namespaces repeat across millions of state keys, so the
/// namespace half of a [`StateKey`] is stored as a reference-counted
/// interned string: cloning a key bumps a refcount instead of copying the
/// namespace bytes, and equality usually short-circuits on pointer
/// identity. `Ns` compares, orders, hashes and encodes exactly like the
/// `String` it replaces.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ns(Arc<str>);

thread_local! {
    static NS_INTERN: RefCell<HashSet<Arc<str>>> = RefCell::new(HashSet::new());
}

/// Safety valve: stop caching once this many distinct namespaces have been
/// interned on a thread (pathological workloads only; real deployments use
/// a handful of chaincode names).
const NS_INTERN_CAP: usize = 4096;

impl Ns {
    /// Interns `s`, returning a shared handle. Repeated calls with the
    /// same contents on the same thread share one allocation.
    pub fn intern(s: &str) -> Ns {
        NS_INTERN.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(hit) = cache.get(s) {
                return Ns(Arc::clone(hit));
            }
            let arc: Arc<str> = Arc::from(s);
            if cache.len() < NS_INTERN_CAP {
                cache.insert(Arc::clone(&arc));
            }
            Ns(arc)
        })
    }

    /// The namespace as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Deref for Ns {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Ns {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Ns {
    fn from(s: &str) -> Ns {
        Ns::intern(s)
    }
}

impl From<&String> for Ns {
    fn from(s: &String) -> Ns {
        Ns::intern(s)
    }
}

impl From<String> for Ns {
    fn from(s: String) -> Ns {
        Ns::intern(&s)
    }
}

impl PartialEq<str> for Ns {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for Ns {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl PartialEq<String> for Ns {
    fn eq(&self, other: &String) -> bool {
        &*self.0 == other.as_str()
    }
}

impl fmt::Display for Ns {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A transaction identifier: the digest of the signed proposal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TxId(pub Digest);

impl TxId {
    /// Short prefix for logs.
    pub fn short(&self) -> String {
        self.0.short()
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx:{}", self.0.short())
    }
}

impl Encode for TxId {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
    }
}
impl Decode for TxId {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(TxId(Digest::decode(dec)?))
    }
}

/// The height at which a state value was last written: `(block, tx index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Version {
    /// Block number of the writing transaction.
    pub block_num: u64,
    /// Index of the writing transaction within its block.
    pub tx_num: u32,
}

impl Version {
    /// Creates a version.
    pub fn new(block_num: u64, tx_num: u32) -> Self {
        Version { block_num, tx_num }
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.block_num, self.tx_num)
    }
}

impl Encode for Version {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.block_num);
        enc.put_u32(self.tx_num);
    }
}
impl Decode for Version {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Version {
            block_num: dec.get_u64()?,
            tx_num: dec.get_u32()?,
        })
    }
}

/// A namespaced state key: `(chaincode namespace, key)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateKey {
    /// Chaincode namespace the key belongs to (interned; see [`Ns`]).
    pub namespace: Ns,
    /// The key within the namespace.
    pub key: String,
}

impl StateKey {
    /// Creates a key in a namespace.
    pub fn new(namespace: impl Into<Ns>, key: impl Into<String>) -> Self {
        StateKey {
            namespace: namespace.into(),
            key: key.into(),
        }
    }
}

impl fmt::Display for StateKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.namespace, self.key)
    }
}

impl Encode for StateKey {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.namespace);
        enc.put_str(&self.key);
    }
}
impl Decode for StateKey {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(StateKey {
            namespace: Ns::intern(&dec.get_str()?),
            key: dec.get_str()?,
        })
    }
}

/// A recorded read: the key and the version observed (None = key absent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvRead {
    /// The key that was read.
    pub key: StateKey,
    /// The version observed at simulation time; `None` if the key did not
    /// exist.
    pub version: Option<Version>,
}

impl Encode for KvRead {
    fn encode(&self, enc: &mut Encoder) {
        self.key.encode(enc);
        self.version.encode(enc);
    }
}
impl Decode for KvRead {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(KvRead {
            key: StateKey::decode(dec)?,
            version: Option::<Version>::decode(dec)?,
        })
    }
}

/// A recorded write: the key and the new value (`None` = delete).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvWrite {
    /// The key being written.
    pub key: StateKey,
    /// New value, or `None` for a deletion.
    pub value: Option<Vec<u8>>,
}

impl Encode for KvWrite {
    fn encode(&self, enc: &mut Encoder) {
        self.key.encode(enc);
        self.value.encode(enc);
    }
}
impl Decode for KvWrite {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(KvWrite {
            key: StateKey::decode(dec)?,
            value: Option::<Vec<u8>>::decode(dec)?,
        })
    }
}

/// The read/write set produced by simulating a transaction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RwSet {
    /// Keys read, with observed versions, in first-read order.
    pub reads: Vec<KvRead>,
    /// Keys written, in last-write-wins order (deduplicated by key).
    pub writes: Vec<KvWrite>,
}

impl RwSet {
    /// Creates an empty read/write set.
    pub fn new() -> Self {
        RwSet::default()
    }

    /// True if the transaction neither read nor wrote state.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }

    /// Total serialized payload size of the writes, used for cost models.
    pub fn write_bytes(&self) -> usize {
        self.writes
            .iter()
            .map(|w| w.value.as_ref().map(Vec::len).unwrap_or(0))
            .sum()
    }
}

impl Encode for RwSet {
    fn encode(&self, enc: &mut Encoder) {
        encode_seq(&self.reads, enc);
        encode_seq(&self.writes, enc);
    }
}
impl Decode for RwSet {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(RwSet {
            reads: decode_seq(dec)?,
            writes: decode_seq(dec)?,
        })
    }
}

/// Why a committed transaction was or wasn't applied to state.
///
/// Mirrors Fabric's `TxValidationCode` values that matter to HyperProv.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValidationCode {
    /// Applied to state.
    Valid,
    /// A read version no longer matches current state (MVCC conflict).
    MvccReadConflict,
    /// The endorsements do not satisfy the chaincode's policy.
    EndorsementPolicyFailure,
    /// An endorsement signature failed verification.
    BadSignature,
    /// The same transaction id was committed before.
    DuplicateTxId,
    /// Endorsing peers returned mismatching read/write sets.
    EndorsementMismatch,
}

impl ValidationCode {
    /// True only for [`ValidationCode::Valid`].
    pub fn is_valid(self) -> bool {
        self == ValidationCode::Valid
    }

    /// Stable numeric code used in block metadata.
    pub fn as_u8(self) -> u8 {
        match self {
            ValidationCode::Valid => 0,
            ValidationCode::MvccReadConflict => 1,
            ValidationCode::EndorsementPolicyFailure => 2,
            ValidationCode::BadSignature => 3,
            ValidationCode::DuplicateTxId => 4,
            ValidationCode::EndorsementMismatch => 5,
        }
    }

    /// Parses a numeric code.
    pub fn from_u8(v: u8) -> Option<ValidationCode> {
        Some(match v {
            0 => ValidationCode::Valid,
            1 => ValidationCode::MvccReadConflict,
            2 => ValidationCode::EndorsementPolicyFailure,
            3 => ValidationCode::BadSignature,
            4 => ValidationCode::DuplicateTxId,
            5 => ValidationCode::EndorsementMismatch,
            _ => return None,
        })
    }
}

impl fmt::Display for ValidationCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValidationCode::Valid => "VALID",
            ValidationCode::MvccReadConflict => "MVCC_READ_CONFLICT",
            ValidationCode::EndorsementPolicyFailure => "ENDORSEMENT_POLICY_FAILURE",
            ValidationCode::BadSignature => "BAD_SIGNATURE",
            ValidationCode::DuplicateTxId => "DUPLICATE_TXID",
            ValidationCode::EndorsementMismatch => "ENDORSEMENT_MISMATCH",
        };
        f.write_str(s)
    }
}

impl Encode for ValidationCode {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(self.as_u8());
    }
}
impl Decode for ValidationCode {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        ValidationCode::from_u8(dec.get_u8()?).ok_or(CodecError::Invalid("unknown validation code"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwset_round_trip() {
        let rw = RwSet {
            reads: vec![
                KvRead {
                    key: StateKey::new("cc", "k1"),
                    version: Some(Version::new(3, 2)),
                },
                KvRead {
                    key: StateKey::new("cc", "missing"),
                    version: None,
                },
            ],
            writes: vec![
                KvWrite {
                    key: StateKey::new("cc", "k1"),
                    value: Some(vec![1, 2, 3]),
                },
                KvWrite {
                    key: StateKey::new("cc", "k2"),
                    value: None,
                },
            ],
        };
        let back = RwSet::from_bytes(&rw.to_bytes()).unwrap();
        assert_eq!(back, rw);
        assert_eq!(back.write_bytes(), 3);
        assert!(!back.is_empty());
        assert!(RwSet::new().is_empty());
    }

    #[test]
    fn validation_codes_round_trip() {
        for code in [
            ValidationCode::Valid,
            ValidationCode::MvccReadConflict,
            ValidationCode::EndorsementPolicyFailure,
            ValidationCode::BadSignature,
            ValidationCode::DuplicateTxId,
            ValidationCode::EndorsementMismatch,
        ] {
            assert_eq!(ValidationCode::from_u8(code.as_u8()), Some(code));
            let bytes = code.to_bytes();
            assert_eq!(ValidationCode::from_bytes(&bytes).unwrap(), code);
            assert!(!code.to_string().is_empty());
        }
        assert_eq!(ValidationCode::from_u8(99), None);
        assert!(ValidationCode::Valid.is_valid());
        assert!(!ValidationCode::MvccReadConflict.is_valid());
    }

    #[test]
    fn version_ordering_is_lexicographic() {
        assert!(Version::new(1, 5) < Version::new(2, 0));
        assert!(Version::new(2, 0) < Version::new(2, 1));
        assert_eq!(Version::new(2, 1).to_string(), "2:1");
    }

    #[test]
    fn state_key_display_and_order() {
        let a = StateKey::new("cc", "a");
        let b = StateKey::new("cc", "b");
        let other_ns = StateKey::new("dd", "a");
        assert!(a < b);
        assert!(b < other_ns);
        assert_eq!(a.to_string(), "cc/a");
    }

    #[test]
    fn interned_namespaces_share_storage_and_compare_by_content() {
        let a = Ns::intern("cc");
        let b = Ns::intern("cc");
        assert!(Arc::ptr_eq(&a.0, &b.0), "same thread interns share one Arc");
        assert_eq!(a, b);
        assert_eq!(a, "cc");
        assert_eq!(a, *"cc");
        assert_eq!(a.to_string(), "cc");
        assert_eq!(a.as_str(), "cc");
        let c = Ns::intern("dd");
        assert!(a < c, "Ns orders by contents");
        // Two keys that only share an interned namespace still hash and
        // encode exactly like the String-based representation did.
        let k = StateKey::new("cc", "k1");
        let back = StateKey::from_bytes(&k.to_bytes()).unwrap();
        assert_eq!(back, k);
        assert!(Arc::ptr_eq(&back.namespace.0, &a.0));
    }

    #[test]
    fn txid_display() {
        let id = TxId(Digest::of(b"p"));
        assert!(id.to_string().starts_with("tx:"));
        assert_eq!(TxId::from_bytes(&id.to_bytes()).unwrap(), id);
    }
}
