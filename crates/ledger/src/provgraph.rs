//! The materialized provenance DAG index ([`ProvGraph`]).
//!
//! HyperProv's product surface is provenance *traversal* — ancestry,
//! descendants, tamper impact. Reassembling the graph from the state DB on
//! every query costs one read per visited record (and, across shards, one
//! round trip per hop). [`ProvGraph`] keeps the DAG materialized instead:
//! record keys are interned to dense ids, backward (parents) and forward
//! (children) adjacency lists are maintained transactionally as the
//! committer applies writes, and traversals become in-memory BFS with
//! depth/node budgets and cycle guards.
//!
//! The index is *derived* state: it can always be rebuilt by replaying the
//! block store (peer restart does exactly that), and [`ProvGraph::digest`]
//! hashes the live structure canonically so a rebuilt index can be checked
//! against the pre-crash one — or against a fresh scan of the state DB.
//!
//! The ledger stores opaque bytes and cannot parse application records, so
//! the committer is configured with a [`GraphIndexer`] (implemented by the
//! application layer) that maps committed writes to [`GraphUpdate`]s.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::hash::{Digest, Sha256};
use crate::tx::StateKey;

/// Which way a traversal walks the DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow parent links: what the roots were derived from.
    Ancestors,
    /// Follow child links: what was derived from the roots (the
    /// tamper-impact set).
    Descendants,
    /// Follow both: the connected closure around the roots.
    Both,
}

/// Budgets bounding a traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraversalLimits {
    /// Maximum hops from a root (a root sits at its given base depth; its
    /// direct neighbours at base + 1, and so on up to this bound).
    pub max_depth: u32,
    /// Maximum number of reported nodes — the fan-out guard.
    pub max_nodes: usize,
}

/// A traversal's outcome.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Traversal {
    /// Visited live records as `(depth, key)`, in BFS order (depths are
    /// non-decreasing; each key appears once, at its minimum depth).
    pub entries: Vec<(u32, String)>,
    /// Keys the walk reached that are absent from this index: cross-shard
    /// parents, deleted records, or references that were never posted. A
    /// sharded client re-routes these to their owning shard and continues.
    pub boundary: Vec<(u32, String)>,
    /// Traversed `(child, parent)` edges, populated only when edge
    /// collection is requested (subgraph extraction).
    pub edges: Vec<(String, String)>,
    /// True when a budget cut the walk short — unexpanded reachable nodes
    /// remain beyond the depth or node limit.
    pub truncated: bool,
}

/// A provenance-graph mutation extracted from one committed state write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphUpdate {
    /// A record was written: (re)link `key` to `parents`.
    Insert {
        /// The record's key.
        key: String,
        /// The record's parent keys, in record order.
        parents: Vec<String>,
    },
    /// A record was deleted: tombstone `key`.
    Remove {
        /// The deleted record's key.
        key: String,
    },
}

/// Extracts graph updates from committed writes.
///
/// The ledger stores opaque values; only the application layer knows which
/// writes carry provenance records and how to read their parent lists, so
/// the committer is handed an indexer at deployment time and feeds every
/// applied write through it.
pub trait GraphIndexer: std::fmt::Debug {
    /// The graph mutation this write implies, if any (`value` is `None`
    /// for deletions).
    fn index(&self, key: &StateKey, value: Option<&[u8]>) -> Option<GraphUpdate>;
}

/// The materialized provenance DAG of one channel.
///
/// Nodes are record keys interned to dense `u32` ids. A node is *live*
/// when a record for it is currently committed; referencing a key that was
/// never (or is no longer) committed creates a *placeholder* node so the
/// edge is retained and the gap is countable (see [`ProvGraph::dangling`]).
#[derive(Debug, Clone, Default)]
pub struct ProvGraph {
    /// key -> interned id.
    ids: HashMap<String, u32>,
    /// id -> key.
    keys: Vec<String>,
    /// id -> parent ids, record order, deduplicated (backward adjacency).
    parents: Vec<Vec<u32>>,
    /// id -> child ids (forward adjacency).
    children: Vec<Vec<u32>>,
    /// id -> whether a record for this key is currently committed.
    live: Vec<bool>,
    /// Number of live nodes.
    live_count: usize,
    /// Monotonic count of parent references that were absent from the
    /// index at insert time.
    dangling: u64,
}

impl ProvGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        ProvGraph::default()
    }

    fn intern(&mut self, key: &str) -> u32 {
        if let Some(&id) = self.ids.get(key) {
            return id;
        }
        let id = self.keys.len() as u32;
        self.ids.insert(key.to_owned(), id);
        self.keys.push(key.to_owned());
        self.parents.push(Vec::new());
        self.children.push(Vec::new());
        self.live.push(false);
        id
    }

    /// Applies one update; returns how many of the inserted record's
    /// parents were absent from the index at apply time (always 0 for
    /// removals).
    pub fn apply(&mut self, update: &GraphUpdate) -> u64 {
        match update {
            GraphUpdate::Insert { key, parents } => self.insert(key, parents),
            GraphUpdate::Remove { key } => {
                self.remove(key);
                0
            }
        }
    }

    /// Inserts (or re-links, on a re-post) `key` with `parents`; returns
    /// the number of parents absent from the index at insert time.
    pub fn insert(&mut self, key: &str, parents: &[String]) -> u64 {
        let id = self.intern(key);
        // A re-post replaces the parent list: unlink the old edges.
        for &old in &std::mem::take(&mut self.parents[id as usize]) {
            self.children[old as usize].retain(|&c| c != id);
        }
        if !self.live[id as usize] {
            self.live[id as usize] = true;
            self.live_count += 1;
        }
        let mut missing = 0u64;
        let mut linked: Vec<u32> = Vec::with_capacity(parents.len());
        for parent in parents {
            let pid = self.intern(parent);
            if pid == id || linked.contains(&pid) {
                continue; // self-loop or duplicate reference
            }
            if !self.live[pid as usize] {
                missing += 1;
            }
            linked.push(pid);
            self.children[pid as usize].push(id);
        }
        self.parents[id as usize] = linked;
        self.dangling += missing;
        missing
    }

    /// Tombstones `key`: the node stops being reported and its outgoing
    /// parent links vanish (the record no longer exists). Incoming links
    /// survive — children's records still name the key. Returns whether a
    /// live node was removed.
    pub fn remove(&mut self, key: &str) -> bool {
        let Some(&id) = self.ids.get(key) else {
            return false;
        };
        if !self.live[id as usize] {
            return false;
        }
        self.live[id as usize] = false;
        self.live_count -= 1;
        for &old in &std::mem::take(&mut self.parents[id as usize]) {
            self.children[old as usize].retain(|&c| c != id);
        }
        true
    }

    /// True when a committed record for `key` is indexed.
    pub fn contains(&self, key: &str) -> bool {
        self.ids.get(key).is_some_and(|&id| self.live[id as usize])
    }

    /// A committed record's parent keys (record order, deduplicated), or
    /// `None` when `key` is not live.
    pub fn parents_of(&self, key: &str) -> Option<Vec<&str>> {
        let &id = self.ids.get(key)?;
        if !self.live[id as usize] {
            return None;
        }
        Some(
            self.parents[id as usize]
                .iter()
                .map(|&p| self.keys[p as usize].as_str())
                .collect(),
        )
    }

    /// Number of live (committed) records in the index.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// True when no live record is indexed.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Number of parent edges currently linked.
    pub fn edge_count(&self) -> usize {
        self.parents.iter().map(Vec::len).sum()
    }

    /// Monotonic count of parent references that were absent from the
    /// index when their record committed — cross-shard links or genuinely
    /// broken references.
    pub fn dangling(&self) -> u64 {
        self.dangling
    }

    /// Canonical digest of the live structure: every committed key with
    /// its parent keys, order-independent of how the index was built.
    /// Placeholder-only nodes do not contribute, so an index rebuilt from
    /// the current state (rather than incrementally across re-posts)
    /// hashes identically.
    pub fn digest(&self) -> Digest {
        let mut live: Vec<u32> = (0..self.keys.len() as u32)
            .filter(|&id| self.live[id as usize])
            .collect();
        live.sort_by(|&a, &b| self.keys[a as usize].cmp(&self.keys[b as usize]));
        let mut h = Sha256::new();
        for id in live {
            let key = &self.keys[id as usize];
            h.update(&(key.len() as u64).to_be_bytes());
            h.update(key.as_bytes());
            let parents = &self.parents[id as usize];
            h.update(&(parents.len() as u64).to_be_bytes());
            for &p in parents {
                let pk = &self.keys[p as usize];
                h.update(&(pk.len() as u64).to_be_bytes());
                h.update(pk.as_bytes());
            }
        }
        h.finalize()
    }

    /// Runs a bounded BFS from `roots` (each at its own base depth) in the
    /// given direction. Cycles (possible via re-posts) are guarded by the
    /// visited set; `collect_edges` additionally records the traversed
    /// `(child, parent)` edges for subgraph extraction.
    pub fn traverse(
        &self,
        roots: &[(u32, String)],
        direction: Direction,
        limits: TraversalLimits,
        collect_edges: bool,
    ) -> Traversal {
        let mut out = Traversal::default();
        let mut queue: VecDeque<(u32, u32)> = VecDeque::new();
        let mut seen: HashSet<u32> = HashSet::new();
        let mut boundary_seen: HashSet<String> = HashSet::new();
        // Sort roots by base depth so the deque pops depths in
        // non-decreasing order and first-visit depth is minimal.
        let mut sorted: Vec<&(u32, String)> = roots.iter().collect();
        sorted.sort_by_key(|(depth, _)| *depth);
        for (depth, key) in sorted {
            match self.ids.get(key) {
                Some(&id) if self.live[id as usize] => {
                    if seen.insert(id) {
                        queue.push_back((*depth, id));
                    }
                }
                Some(&id) => {
                    // Placeholder: the record is absent locally, but in the
                    // forward direction its committed children are not.
                    if boundary_seen.insert(key.clone()) {
                        out.boundary.push((*depth, key.clone()));
                    }
                    if direction != Direction::Ancestors && seen.insert(id) {
                        queue.push_back((*depth, id));
                    }
                }
                None => {
                    if boundary_seen.insert(key.clone()) {
                        out.boundary.push((*depth, key.clone()));
                    }
                }
            }
        }
        while let Some((depth, id)) = queue.pop_front() {
            if self.live[id as usize] {
                if out.entries.len() >= limits.max_nodes {
                    out.truncated = true;
                    break;
                }
                out.entries.push((depth, self.keys[id as usize].clone()));
            }
            if depth >= limits.max_depth {
                // Depth budget exhausted: unexpanded edges remain.
                let backward =
                    direction != Direction::Descendants && !self.parents[id as usize].is_empty();
                let forward = direction != Direction::Ancestors
                    && self.children[id as usize]
                        .iter()
                        .any(|&c| !seen.contains(&c));
                if backward || forward {
                    out.truncated = true;
                }
                continue;
            }
            if direction != Direction::Descendants {
                for &p in &self.parents[id as usize] {
                    if collect_edges {
                        out.edges.push((
                            self.keys[id as usize].clone(),
                            self.keys[p as usize].clone(),
                        ));
                    }
                    if self.live[p as usize] {
                        if seen.insert(p) {
                            queue.push_back((depth + 1, p));
                        }
                    } else {
                        let key = &self.keys[p as usize];
                        if boundary_seen.insert(key.clone()) {
                            out.boundary.push((depth + 1, key.clone()));
                        }
                        // In the closure direction a placeholder still
                        // fans out to its committed children.
                        if direction == Direction::Both && seen.insert(p) {
                            queue.push_back((depth + 1, p));
                        }
                    }
                }
            }
            if direction != Direction::Ancestors {
                for &c in &self.children[id as usize] {
                    if collect_edges {
                        out.edges.push((
                            self.keys[c as usize].clone(),
                            self.keys[id as usize].clone(),
                        ));
                    }
                    if seen.insert(c) {
                        queue.push_back((depth + 1, c));
                    }
                }
            }
        }
        // The closure direction reaches an edge from both endpoints;
        // canonicalize to sorted unique (child, parent) pairs.
        if collect_edges {
            out.edges.sort();
            out.edges.dedup();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WIDE: TraversalLimits = TraversalLimits {
        max_depth: 64,
        max_nodes: 4096,
    };

    fn keys(t: &Traversal) -> Vec<&str> {
        t.entries.iter().map(|(_, k)| k.as_str()).collect()
    }

    fn roots(list: &[(u32, &str)]) -> Vec<(u32, String)> {
        list.iter().map(|(d, k)| (*d, (*k).to_owned())).collect()
    }

    fn diamond() -> ProvGraph {
        // d -> {b, c} -> a
        let mut g = ProvGraph::new();
        g.insert("a", &[]);
        g.insert("b", &["a".into()]);
        g.insert("c", &["a".into()]);
        g.insert("d", &["b".into(), "c".into()]);
        g
    }

    #[test]
    fn diamond_ancestry_visits_shared_ancestor_once() {
        let g = diamond();
        let t = g.traverse(&roots(&[(0, "d")]), Direction::Ancestors, WIDE, false);
        assert_eq!(t.entries.len(), 4);
        assert_eq!(keys(&t), vec!["d", "b", "c", "a"]);
        assert_eq!(t.entries[3], (2, "a".to_owned()));
        assert!(!t.truncated);
        assert!(t.boundary.is_empty());
    }

    #[test]
    fn descendants_mirror_ancestry() {
        let g = diamond();
        let t = g.traverse(&roots(&[(0, "a")]), Direction::Descendants, WIDE, false);
        assert_eq!(keys(&t), vec!["a", "b", "c", "d"]);
        let closure = g.traverse(&roots(&[(0, "b")]), Direction::Both, WIDE, false);
        let mut got = keys(&closure);
        got.sort_unstable();
        assert_eq!(got, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn depth_budget_truncates_and_reports_it() {
        let g = diamond();
        let limits = TraversalLimits {
            max_depth: 1,
            max_nodes: 4096,
        };
        let t = g.traverse(&roots(&[(0, "d")]), Direction::Ancestors, limits, false);
        assert_eq!(keys(&t), vec!["d", "b", "c"]);
        assert!(
            t.truncated,
            "unexpanded parents of b/c must flag truncation"
        );
        let exact = TraversalLimits {
            max_depth: 2,
            max_nodes: 4096,
        };
        let t = g.traverse(&roots(&[(0, "d")]), Direction::Ancestors, exact, false);
        assert!(!t.truncated, "the walk completed within the budget");
    }

    #[test]
    fn node_budget_truncates() {
        let g = diamond();
        let limits = TraversalLimits {
            max_depth: 64,
            max_nodes: 2,
        };
        let t = g.traverse(&roots(&[(0, "d")]), Direction::Ancestors, limits, false);
        assert_eq!(t.entries.len(), 2);
        assert!(t.truncated);
    }

    #[test]
    fn missing_parent_becomes_boundary_and_counts_dangling() {
        let mut g = ProvGraph::new();
        assert_eq!(g.insert("x", &["ghost".into()]), 1);
        assert_eq!(g.dangling(), 1);
        let t = g.traverse(&roots(&[(0, "x")]), Direction::Ancestors, WIDE, false);
        assert_eq!(keys(&t), vec!["x"]);
        assert_eq!(t.boundary, vec![(1, "ghost".to_owned())]);
        // The parent arriving later resolves the link (counter is an
        // event count, not live state).
        g.insert("ghost", &[]);
        let t = g.traverse(&roots(&[(0, "x")]), Direction::Ancestors, WIDE, false);
        assert_eq!(keys(&t), vec!["x", "ghost"]);
        assert!(t.boundary.is_empty());
        assert_eq!(g.dangling(), 1);
    }

    #[test]
    fn placeholder_root_still_fans_out_to_children() {
        let mut g = ProvGraph::new();
        g.insert("child", &["elsewhere".into()]);
        let t = g.traverse(
            &roots(&[(0, "elsewhere")]),
            Direction::Descendants,
            WIDE,
            false,
        );
        assert_eq!(keys(&t), vec!["child"]);
        assert_eq!(t.boundary, vec![(0, "elsewhere".to_owned())]);
        // Ancestry from a placeholder reports only the boundary.
        let t = g.traverse(
            &roots(&[(0, "elsewhere")]),
            Direction::Ancestors,
            WIDE,
            false,
        );
        assert!(t.entries.is_empty());
        assert_eq!(t.boundary, vec![(0, "elsewhere".to_owned())]);
    }

    #[test]
    fn repost_replaces_parent_links() {
        let mut g = diamond();
        g.insert("d", &["a".into()]);
        let t = g.traverse(&roots(&[(0, "d")]), Direction::Ancestors, WIDE, false);
        assert_eq!(keys(&t), vec!["d", "a"]);
        let down = g.traverse(&roots(&[(0, "b")]), Direction::Descendants, WIDE, false);
        assert_eq!(keys(&down), vec!["b"], "b lost its child edge to d");
    }

    #[test]
    fn remove_tombstones_but_keeps_children_reachable() {
        let mut g = diamond();
        assert!(g.remove("b"));
        assert!(!g.remove("b"));
        assert!(!g.contains("b"));
        assert_eq!(g.len(), 3);
        let t = g.traverse(&roots(&[(0, "d")]), Direction::Ancestors, WIDE, false);
        // b's record is gone: its parent links vanish, so `a` is reached
        // only through c.
        assert_eq!(keys(&t), vec!["d", "c", "a"]);
        assert!(t.boundary.iter().any(|(_, k)| k == "b"));
    }

    #[test]
    fn cycle_via_repost_terminates() {
        let mut g = ProvGraph::new();
        g.insert("a", &[]);
        g.insert("b", &["a".into()]);
        g.insert("a", &["b".into()]); // now a <-> b
        let t = g.traverse(&roots(&[(0, "a")]), Direction::Ancestors, WIDE, false);
        assert_eq!(keys(&t), vec!["a", "b"]);
        let t = g.traverse(&roots(&[(0, "a")]), Direction::Both, WIDE, false);
        assert_eq!(t.entries.len(), 2);
    }

    #[test]
    fn self_loops_and_duplicate_parents_are_dropped() {
        let mut g = ProvGraph::new();
        g.insert("a", &[]);
        let missing = g.insert("b", &["a".into(), "a".into(), "b".into()]);
        assert_eq!(missing, 0);
        assert_eq!(g.parents_of("b").unwrap(), vec!["a"]);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn digest_ignores_build_history() {
        let mut incremental = ProvGraph::new();
        incremental.insert("x", &["ghost".into()]);
        incremental.insert("x", &[]); // re-post drops the ghost edge
        incremental.insert("y", &["x".into()]);
        let mut fresh = ProvGraph::new();
        fresh.insert("y", &["x".into()]);
        fresh.insert("x", &[]);
        assert_eq!(incremental.digest(), fresh.digest());
        fresh.insert("z", &["y".into()]);
        assert_ne!(incremental.digest(), fresh.digest());
    }

    #[test]
    fn multi_root_traversal_uses_minimum_depths() {
        let g = diamond();
        let t = g.traverse(
            &roots(&[(3, "d"), (0, "c")]),
            Direction::Ancestors,
            WIDE,
            false,
        );
        // c is visited at depth 0 and a at depth 1, even though the walk
        // from d would reach them deeper.
        assert!(t.entries.contains(&(0, "c".to_owned())));
        assert!(t.entries.contains(&(1, "a".to_owned())));
        assert!(t.entries.contains(&(3, "d".to_owned())));
    }

    #[test]
    fn subgraph_collects_edges() {
        let g = diamond();
        let t = g.traverse(&roots(&[(0, "d")]), Direction::Ancestors, WIDE, true);
        let mut edges = t.edges.clone();
        edges.sort();
        assert_eq!(
            edges,
            vec![
                ("b".to_owned(), "a".to_owned()),
                ("c".to_owned(), "a".to_owned()),
                ("d".to_owned(), "b".to_owned()),
                ("d".to_owned(), "c".to_owned()),
            ]
        );
    }

    #[test]
    fn apply_routes_updates() {
        let mut g = ProvGraph::new();
        assert_eq!(
            g.apply(&GraphUpdate::Insert {
                key: "k".into(),
                parents: vec!["p".into()],
            }),
            1
        );
        assert_eq!(g.apply(&GraphUpdate::Remove { key: "k".into() }), 0);
        assert!(!g.contains("k"));
    }
}
