//! Merkle-rooted state snapshots for O(1)-in-chain-length recovery.
//!
//! A [`Snapshot`] captures one channel's entire derived state — world
//! state, per-key history, the duplicate-detection tx-id set and the
//! provenance-graph structure digest — at a block height. The world
//! state is split into fixed-size [`SnapshotChunk`]s (key order), the
//! history/tx-id remainder forms a [`SnapshotTail`], and a Merkle root
//! over the part digests commits to the whole artefact, so a peer can
//! fetch parts from an untrusted-transport neighbour one at a time,
//! verify each against the [`SnapshotManifest`], and only then replace
//! a genesis replay with `snapshot + delta blocks`. Pruned block stores
//! stay auditable: the manifest pins `tip_hash` (the header hash of the
//! last covered block) and `state_hash`, the same digest replicas
//! compare for convergence.

use std::fmt;

use crate::channel::ChannelId;
use crate::codec::{decode_seq, encode_seq, CodecError, Decode, Decoder, Encode, Encoder};
use crate::hash::Digest;
use crate::history::{HistoryDb, HistoryEntry};
use crate::merkle::MerkleTree;
use crate::statedb::{StateDb, VersionedValue};
use crate::tx::{StateKey, TxId, Version};

/// Default number of state entries per chunk.
pub const DEFAULT_CHUNK_ENTRIES: usize = 256;

/// Integrity-check failure of a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// A snapshot must cover at least one block.
    ZeroHeight,
    /// `part_digests` length disagrees with the actual parts.
    PartCountMismatch {
        /// Parts declared by the manifest.
        declared: usize,
        /// Parts actually present.
        actual: usize,
    },
    /// A part's recomputed digest disagrees with the manifest.
    PartDigestMismatch {
        /// Index of the offending part.
        index: usize,
    },
    /// The Merkle root over part digests disagrees with the manifest.
    RootMismatch,
    /// The recomputed world-state hash disagrees with the manifest.
    StateHashMismatch,
    /// State entries are not in strictly increasing key order.
    EntriesOutOfOrder,
    /// History records are not in strictly increasing key order.
    HistoryOutOfOrder,
    /// The seen-tx-id set is not strictly increasing.
    SeenOutOfOrder,
    /// A transfer completed with a part missing or duplicated.
    MissingPart {
        /// Index of the part that never arrived.
        index: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::ZeroHeight => write!(f, "snapshot covers zero blocks"),
            SnapshotError::PartCountMismatch { declared, actual } => {
                write!(
                    f,
                    "manifest declares {declared} parts, snapshot has {actual}"
                )
            }
            SnapshotError::PartDigestMismatch { index } => {
                write!(f, "part {index} digest mismatch")
            }
            SnapshotError::RootMismatch => write!(f, "merkle root mismatch"),
            SnapshotError::StateHashMismatch => write!(f, "state hash mismatch"),
            SnapshotError::EntriesOutOfOrder => write!(f, "state entries out of key order"),
            SnapshotError::HistoryOutOfOrder => write!(f, "history records out of key order"),
            SnapshotError::SeenOutOfOrder => write!(f, "seen tx ids out of order"),
            SnapshotError::MissingPart { index } => write!(f, "part {index} missing"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// One world-state entry frozen into a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// The state key.
    pub key: StateKey,
    /// The live value at capture time.
    pub value: Vec<u8>,
    /// The version that wrote it.
    pub version: Version,
}

impl Encode for SnapshotEntry {
    fn encode(&self, enc: &mut Encoder) {
        self.key.encode(enc);
        enc.put_bytes(&self.value);
        self.version.encode(enc);
    }
}

impl Decode for SnapshotEntry {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(SnapshotEntry {
            key: StateKey::decode(dec)?,
            value: dec.get_bytes()?,
            version: Version::decode(dec)?,
        })
    }
}

/// A contiguous run of state entries, the unit of snapshot transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotChunk {
    /// Entries in strictly increasing key order.
    pub entries: Vec<SnapshotEntry>,
}

impl Encode for SnapshotChunk {
    fn encode(&self, enc: &mut Encoder) {
        encode_seq(&self.entries, enc);
    }
}

impl Decode for SnapshotChunk {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(SnapshotChunk {
            entries: decode_seq(dec)?,
        })
    }
}

impl Encode for HistoryEntry {
    fn encode(&self, enc: &mut Encoder) {
        self.tx_id.encode(enc);
        self.version.encode(enc);
        self.value.encode(enc);
    }
}

impl Decode for HistoryEntry {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(HistoryEntry {
            tx_id: TxId::decode(dec)?,
            version: Version::decode(dec)?,
            value: Option::<Vec<u8>>::decode(dec)?,
        })
    }
}

/// The full write history of one key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryRecord {
    /// The state key.
    pub key: StateKey,
    /// Chronological writes of the key.
    pub entries: Vec<HistoryEntry>,
}

impl Encode for HistoryRecord {
    fn encode(&self, enc: &mut Encoder) {
        self.key.encode(enc);
        encode_seq(&self.entries, enc);
    }
}

impl Decode for HistoryRecord {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(HistoryRecord {
            key: StateKey::decode(dec)?,
            entries: decode_seq(dec)?,
        })
    }
}

/// The non-state remainder of a snapshot: history index and the
/// committed-tx-id set, transferred as the final part.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SnapshotTail {
    /// Per-key history, records in strictly increasing key order.
    pub history: Vec<HistoryRecord>,
    /// Every committed tx id (valid and invalid), strictly increasing —
    /// restoring this keeps duplicate detection sound after bootstrap.
    pub seen: Vec<TxId>,
}

impl Encode for SnapshotTail {
    fn encode(&self, enc: &mut Encoder) {
        encode_seq(&self.history, enc);
        encode_seq(&self.seen, enc);
    }
}

impl Decode for SnapshotTail {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(SnapshotTail {
            history: decode_seq(dec)?,
            seen: decode_seq(dec)?,
        })
    }
}

/// The commitment a snapshot consumer verifies parts against: channel,
/// covered height, chain tip, state hash, graph digest and the Merkle
/// root over all part digests (state chunks, then the tail).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotManifest {
    /// Channel the snapshot belongs to.
    pub channel: String,
    /// Number of blocks covered: blocks `[0, height)` are folded in.
    pub height: u64,
    /// Header hash of block `height - 1` — the resume point for delta
    /// replay and the `prev_hash` the next block must carry.
    pub tip_hash: Digest,
    /// [`StateDb::state_hash`] of the captured world state.
    pub state_hash: Digest,
    /// Merkle root over `part_digests`.
    pub merkle_root: Digest,
    /// Digest of every part: state chunks in order, tail last.
    pub part_digests: Vec<Digest>,
    /// [`crate::ProvGraph::digest`] of the provenance graph at capture.
    pub graph_digest: Digest,
}

impl SnapshotManifest {
    /// Number of transfer parts (state chunks + the tail).
    pub fn part_count(&self) -> usize {
        self.part_digests.len()
    }
}

impl Encode for SnapshotManifest {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.channel);
        enc.put_u64(self.height);
        enc.put_digest(&self.tip_hash);
        enc.put_digest(&self.state_hash);
        enc.put_digest(&self.merkle_root);
        self.part_digests.encode(enc);
        enc.put_digest(&self.graph_digest);
    }
}

impl Decode for SnapshotManifest {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(SnapshotManifest {
            channel: dec.get_str()?,
            height: dec.get_u64()?,
            tip_hash: dec.get_digest()?,
            state_hash: dec.get_digest()?,
            merkle_root: dec.get_digest()?,
            part_digests: Vec::<Digest>::decode(dec)?,
            graph_digest: dec.get_digest()?,
        })
    }
}

/// One transfer unit of a snapshot: a state chunk or the tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotPart {
    /// A run of world-state entries.
    State(SnapshotChunk),
    /// The history + seen-tx remainder.
    Tail(SnapshotTail),
}

impl SnapshotPart {
    /// The digest the manifest commits this part under.
    pub fn digest(&self) -> Digest {
        match self {
            SnapshotPart::State(c) => c.digest(),
            SnapshotPart::Tail(t) => t.digest(),
        }
    }

    /// Approximate wire size of this part (its canonical encoding).
    pub fn wire_size(&self) -> usize {
        match self {
            SnapshotPart::State(c) => c.to_bytes().len(),
            SnapshotPart::Tail(t) => t.to_bytes().len(),
        }
    }
}

impl Encode for SnapshotPart {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            SnapshotPart::State(c) => {
                enc.put_u8(0);
                c.encode(enc);
            }
            SnapshotPart::Tail(t) => {
                enc.put_u8(1);
                t.encode(enc);
            }
        }
    }
}

impl Decode for SnapshotPart {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match dec.get_u8()? {
            0 => Ok(SnapshotPart::State(SnapshotChunk::decode(dec)?)),
            1 => Ok(SnapshotPart::Tail(SnapshotTail::decode(dec)?)),
            _ => Err(CodecError::Invalid("snapshot part tag")),
        }
    }
}

/// A complete, verifiable snapshot of one channel's derived state.
///
/// # Examples
///
/// ```
/// use hyperprov_ledger::{ChannelId, Digest, HistoryDb, Snapshot, StateDb};
///
/// let state = StateDb::new();
/// let history = HistoryDb::new();
/// let snap = Snapshot::capture(
///     &ChannelId::default(), 3, Digest::of(b"tip"),
///     &state, &history, vec![], Digest::ZERO, 4,
/// );
/// assert!(snap.verify().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// The commitment over all parts.
    pub manifest: SnapshotManifest,
    /// State chunks, key order, manifest order.
    pub chunks: Vec<SnapshotChunk>,
    /// History + seen-tx remainder.
    pub tail: SnapshotTail,
}

impl Snapshot {
    /// Freezes the given databases at `height` into a snapshot with at
    /// most `chunk_entries` state entries per chunk. `seen` must be the
    /// full committed-tx-id set; it is sorted here. Capture is host-side
    /// cheap — simulated cost is charged by the caller.
    #[allow(clippy::too_many_arguments)]
    pub fn capture(
        channel: &ChannelId,
        height: u64,
        tip_hash: Digest,
        state: &StateDb,
        history: &HistoryDb,
        mut seen: Vec<TxId>,
        graph_digest: Digest,
        chunk_entries: usize,
    ) -> Snapshot {
        let per_chunk = chunk_entries.max(1);
        let entries: Vec<SnapshotEntry> = state
            .iter()
            .map(|(k, vv)| SnapshotEntry {
                key: k.clone(),
                value: vv.value.clone(),
                version: vv.version,
            })
            .collect();
        let chunks: Vec<SnapshotChunk> = entries
            .chunks(per_chunk)
            .map(|c| SnapshotChunk {
                entries: c.to_vec(),
            })
            .collect();

        let mut records: Vec<HistoryRecord> = history
            .iter()
            .map(|(key, entries)| HistoryRecord {
                key: key.clone(),
                entries: entries.to_vec(),
            })
            .collect();
        records.sort_by(|a, b| a.key.cmp(&b.key));
        seen.sort_unstable();
        seen.dedup();
        let tail = SnapshotTail {
            history: records,
            seen,
        };

        let mut part_digests: Vec<Digest> = chunks.iter().map(|c| c.digest()).collect();
        part_digests.push(tail.digest());
        let merkle_root = MerkleTree::root_of(&part_digests);

        Snapshot {
            manifest: SnapshotManifest {
                channel: channel.as_str().to_owned(),
                height,
                tip_hash,
                state_hash: state.state_hash(),
                merkle_root,
                part_digests,
                graph_digest,
            },
            chunks,
            tail,
        }
    }

    /// Reassembles a snapshot from transferred parts, verifying each
    /// against the manifest. `parts` holds one entry per manifest index.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] if a part is missing, a digest
    /// mismatches, or the assembled snapshot fails [`Snapshot::verify`].
    pub fn assemble(
        manifest: SnapshotManifest,
        mut parts: Vec<Option<SnapshotPart>>,
    ) -> Result<Snapshot, SnapshotError> {
        if parts.len() != manifest.part_count() {
            return Err(SnapshotError::PartCountMismatch {
                declared: manifest.part_count(),
                actual: parts.len(),
            });
        }
        let mut chunks = Vec::with_capacity(parts.len().saturating_sub(1));
        let mut tail = None;
        for (index, slot) in parts.iter_mut().enumerate() {
            let part = slot.take().ok_or(SnapshotError::MissingPart { index })?;
            if part.digest() != manifest.part_digests[index] {
                return Err(SnapshotError::PartDigestMismatch { index });
            }
            match part {
                SnapshotPart::State(c) => chunks.push(c),
                SnapshotPart::Tail(t) => tail = Some(t),
            }
        }
        let snapshot = Snapshot {
            manifest,
            chunks,
            tail: tail.ok_or(SnapshotError::MissingPart { index: 0 })?,
        };
        snapshot.verify()?;
        Ok(snapshot)
    }

    /// The transfer part at `index` (state chunks first, tail last).
    pub fn part(&self, index: usize) -> Option<SnapshotPart> {
        if index < self.chunks.len() {
            Some(SnapshotPart::State(self.chunks[index].clone()))
        } else if index == self.chunks.len() {
            Some(SnapshotPart::Tail(self.tail.clone()))
        } else {
            None
        }
    }

    /// Number of transfer parts.
    pub fn part_count(&self) -> usize {
        self.chunks.len() + 1
    }

    /// Total state entries across all chunks.
    pub fn entry_count(&self) -> usize {
        self.chunks.iter().map(|c| c.entries.len()).sum()
    }

    /// Total bytes of captured state values.
    pub fn state_bytes(&self) -> u64 {
        self.chunks
            .iter()
            .flat_map(|c| &c.entries)
            .map(|e| e.value.len() as u64)
            .sum()
    }

    /// Approximate wire size of the whole snapshot.
    pub fn wire_size(&self) -> usize {
        self.to_bytes().len()
    }

    /// Full integrity check: part digests, Merkle root, key order of
    /// state/history/seen, and the recomputed state hash against the
    /// manifest. A snapshot that passes is safe to restore from.
    ///
    /// # Errors
    ///
    /// Returns the first [`SnapshotError`] found.
    pub fn verify(&self) -> Result<(), SnapshotError> {
        let m = &self.manifest;
        if m.height == 0 {
            return Err(SnapshotError::ZeroHeight);
        }
        if m.part_digests.len() != self.part_count() {
            return Err(SnapshotError::PartCountMismatch {
                declared: m.part_digests.len(),
                actual: self.part_count(),
            });
        }
        for (index, chunk) in self.chunks.iter().enumerate() {
            if chunk.digest() != m.part_digests[index] {
                return Err(SnapshotError::PartDigestMismatch { index });
            }
        }
        if self.tail.digest() != m.part_digests[self.chunks.len()] {
            return Err(SnapshotError::PartDigestMismatch {
                index: self.chunks.len(),
            });
        }
        if MerkleTree::root_of(&m.part_digests) != m.merkle_root {
            return Err(SnapshotError::RootMismatch);
        }

        // State entries: strictly increasing keys across chunk borders,
        // and the same running digest StateDb::state_hash computes.
        let mut hasher = crate::hash::Sha256::new();
        let mut prev_key: Option<&StateKey> = None;
        for entry in self.chunks.iter().flat_map(|c| &c.entries) {
            if let Some(prev) = prev_key {
                if *prev >= entry.key {
                    return Err(SnapshotError::EntriesOutOfOrder);
                }
            }
            prev_key = Some(&entry.key);
            for part in [
                entry.key.namespace.as_bytes(),
                entry.key.key.as_bytes(),
                &entry.value,
            ] {
                hasher.update(&(part.len() as u64).to_be_bytes());
                hasher.update(part);
            }
            hasher.update(&entry.version.block_num.to_be_bytes());
            hasher.update(&entry.version.tx_num.to_be_bytes());
        }
        if hasher.finalize() != m.state_hash {
            return Err(SnapshotError::StateHashMismatch);
        }

        if self.tail.history.windows(2).any(|w| w[0].key >= w[1].key) {
            return Err(SnapshotError::HistoryOutOfOrder);
        }
        if self.tail.seen.windows(2).any(|w| w[0] >= w[1]) {
            return Err(SnapshotError::SeenOutOfOrder);
        }
        Ok(())
    }

    /// Rebuilds the world state captured by this snapshot.
    pub fn restore_state(&self) -> StateDb {
        let mut db = StateDb::new();
        for entry in self.chunks.iter().flat_map(|c| &c.entries) {
            db.restore_entry(
                entry.key.clone(),
                VersionedValue {
                    value: entry.value.clone(),
                    version: entry.version,
                },
            );
        }
        db
    }

    /// Rebuilds the history index captured by this snapshot.
    pub fn restore_history(&self) -> HistoryDb {
        let mut db = HistoryDb::new();
        for record in &self.tail.history {
            db.restore_key(record.key.clone(), record.entries.clone());
        }
        db
    }
}

impl Encode for Snapshot {
    fn encode(&self, enc: &mut Encoder) {
        self.manifest.encode(enc);
        encode_seq(&self.chunks, enc);
        self.tail.encode(enc);
    }
}

impl Decode for Snapshot {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Snapshot {
            manifest: SnapshotManifest::decode(dec)?,
            chunks: decode_seq(dec)?,
            tail: SnapshotTail::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::KvWrite;

    fn put(db: &mut StateDb, k: &str, v: &[u8], ver: Version) {
        db.apply_write(
            &KvWrite {
                key: StateKey::new("cc", k),
                value: Some(v.to_vec()),
            },
            ver,
        );
    }

    fn sample(n_keys: usize, chunk_entries: usize) -> Snapshot {
        let mut state = StateDb::new();
        let mut history = HistoryDb::new();
        let mut seen = Vec::new();
        for i in 0..n_keys {
            let ver = Version::new(i as u64 + 1, 0);
            put(
                &mut state,
                &format!("k{i:03}"),
                format!("v{i}").as_bytes(),
                ver,
            );
            let tx = TxId(Digest::of(format!("t{i}").as_bytes()));
            history.append(
                tx,
                ver,
                &[KvWrite {
                    key: StateKey::new("cc", format!("k{i:03}")),
                    value: Some(format!("v{i}").into_bytes()),
                }],
            );
            seen.push(tx);
        }
        Snapshot::capture(
            &ChannelId::default(),
            n_keys as u64 + 1,
            Digest::of(b"tip"),
            &state,
            &history,
            seen,
            Digest::of(b"graph"),
            chunk_entries,
        )
    }

    #[test]
    fn capture_verify_round_trip() {
        let snap = sample(10, 3);
        assert_eq!(snap.entry_count(), 10);
        assert_eq!(snap.chunks.len(), 4);
        assert_eq!(snap.part_count(), 5);
        snap.verify().unwrap();
        // Codec round trip preserves everything.
        let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(back, snap);
        back.verify().unwrap();
        assert!(snap.wire_size() > 0);
        assert!(snap.state_bytes() > 0);
    }

    #[test]
    fn capture_is_deterministic() {
        let a = sample(20, 4);
        let b = sample(20, 4);
        assert_eq!(a.to_bytes(), b.to_bytes());
        assert_eq!(a.manifest.merkle_root, b.manifest.merkle_root);
    }

    #[test]
    fn empty_state_still_verifies() {
        let snap = Snapshot::capture(
            &ChannelId::default(),
            1,
            Digest::of(b"genesis"),
            &StateDb::new(),
            &HistoryDb::new(),
            vec![],
            Digest::ZERO,
            8,
        );
        assert_eq!(snap.chunks.len(), 0);
        assert_eq!(snap.part_count(), 1);
        snap.verify().unwrap();
        assert_eq!(snap.manifest.state_hash, StateDb::new().state_hash());
    }

    #[test]
    fn zero_height_rejected() {
        let mut snap = sample(2, 2);
        snap.manifest.height = 0;
        assert_eq!(snap.verify(), Err(SnapshotError::ZeroHeight));
    }

    #[test]
    fn tampered_value_detected() {
        let mut snap = sample(6, 2);
        snap.chunks[1].entries[0].value = b"evil".to_vec();
        assert_eq!(
            snap.verify(),
            Err(SnapshotError::PartDigestMismatch { index: 1 })
        );
        // Hide it by recomputing that part digest: the root breaks.
        snap.manifest.part_digests[1] = snap.chunks[1].digest();
        assert_eq!(snap.verify(), Err(SnapshotError::RootMismatch));
        // Recompute the root too: the state hash still catches it.
        snap.manifest.merkle_root = MerkleTree::root_of(&snap.manifest.part_digests);
        assert_eq!(snap.verify(), Err(SnapshotError::StateHashMismatch));
    }

    #[test]
    fn out_of_order_entries_detected() {
        let mut snap = sample(4, 2);
        snap.chunks[0].entries.swap(0, 1);
        snap.manifest.part_digests[0] = snap.chunks[0].digest();
        snap.manifest.merkle_root = MerkleTree::root_of(&snap.manifest.part_digests);
        assert_eq!(snap.verify(), Err(SnapshotError::EntriesOutOfOrder));
    }

    #[test]
    fn tampered_tail_detected() {
        let mut snap = sample(4, 2);
        snap.tail.seen.reverse();
        let last = snap.manifest.part_digests.len() - 1;
        assert_eq!(
            snap.verify(),
            Err(SnapshotError::PartDigestMismatch { index: last })
        );
        snap.manifest.part_digests[last] = snap.tail.digest();
        snap.manifest.merkle_root = MerkleTree::root_of(&snap.manifest.part_digests);
        assert_eq!(snap.verify(), Err(SnapshotError::SeenOutOfOrder));
        snap.tail.seen.reverse();
        snap.tail.history.reverse();
        snap.manifest.part_digests[last] = snap.tail.digest();
        snap.manifest.merkle_root = MerkleTree::root_of(&snap.manifest.part_digests);
        assert_eq!(snap.verify(), Err(SnapshotError::HistoryOutOfOrder));
    }

    #[test]
    fn assemble_from_parts() {
        let snap = sample(9, 4);
        let parts: Vec<Option<SnapshotPart>> =
            (0..snap.part_count()).map(|i| snap.part(i)).collect();
        assert!(snap.part(snap.part_count()).is_none());
        let back = Snapshot::assemble(snap.manifest.clone(), parts).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn assemble_rejects_missing_and_corrupt_parts() {
        let snap = sample(9, 4);
        let n = snap.part_count();
        // Missing part.
        let mut parts: Vec<Option<SnapshotPart>> = (0..n).map(|i| snap.part(i)).collect();
        parts[1] = None;
        assert_eq!(
            Snapshot::assemble(snap.manifest.clone(), parts),
            Err(SnapshotError::MissingPart { index: 1 })
        );
        // Wrong count.
        assert!(matches!(
            Snapshot::assemble(snap.manifest.clone(), vec![]),
            Err(SnapshotError::PartCountMismatch { .. })
        ));
        // Corrupted part.
        let mut parts: Vec<Option<SnapshotPart>> = (0..n).map(|i| snap.part(i)).collect();
        if let Some(SnapshotPart::State(c)) = parts[0].as_mut() {
            c.entries[0].value = b"junk".to_vec();
        }
        assert_eq!(
            Snapshot::assemble(snap.manifest.clone(), parts),
            Err(SnapshotError::PartDigestMismatch { index: 0 })
        );
    }

    #[test]
    fn restore_matches_original() {
        let mut state = StateDb::new();
        let mut history = HistoryDb::new();
        for i in 0..25 {
            let ver = Version::new(i + 1, 0);
            put(&mut state, &format!("k{i:02}"), &[i as u8; 8], ver);
            history.append(
                TxId(Digest::of(&[i as u8])),
                ver,
                &[KvWrite {
                    key: StateKey::new("cc", format!("k{i:02}")),
                    value: Some(vec![i as u8; 8]),
                }],
            );
        }
        let snap = Snapshot::capture(
            &ChannelId::default(),
            26,
            Digest::of(b"tip"),
            &state,
            &history,
            vec![TxId(Digest::of(b"a")), TxId(Digest::of(b"b"))],
            Digest::ZERO,
            7,
        );
        snap.verify().unwrap();
        let restored = snap.restore_state();
        assert_eq!(restored.state_hash(), state.state_hash());
        assert_eq!(restored.len(), state.len());
        let rh = snap.restore_history();
        assert_eq!(rh.total_entries(), history.total_entries());
        assert_eq!(rh.key_count(), history.key_count());
        let key = StateKey::new("cc", "k07");
        assert_eq!(rh.history(&key), history.history(&key));
    }

    #[test]
    fn seen_is_sorted_and_deduped() {
        let a = TxId(Digest::of(b"a"));
        let b = TxId(Digest::of(b"b"));
        let snap = Snapshot::capture(
            &ChannelId::default(),
            1,
            Digest::ZERO,
            &StateDb::new(),
            &HistoryDb::new(),
            vec![b, a, b, a],
            Digest::ZERO,
            8,
        );
        snap.verify().unwrap();
        assert_eq!(snap.tail.seen.len(), 2);
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            SnapshotError::ZeroHeight,
            SnapshotError::PartCountMismatch {
                declared: 1,
                actual: 2,
            },
            SnapshotError::PartDigestMismatch { index: 0 },
            SnapshotError::RootMismatch,
            SnapshotError::StateHashMismatch,
            SnapshotError::EntriesOutOfOrder,
            SnapshotError::HistoryOutOfOrder,
            SnapshotError::SeenOutOfOrder,
            SnapshotError::MissingPart { index: 3 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
