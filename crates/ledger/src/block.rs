//! Blocks and the hash chain.
//!
//! A block commits to its transactions twice: the header's `data_hash` is
//! the Merkle root of the envelope digests, and `prev_hash` chains to the
//! previous header, making any historical tamper detectable from the tip —
//! the property HyperProv relies on for "tamper-proof" provenance.

use crate::codec::{CodecError, Decode, Decoder, Encode, Encoder};
use crate::hash::Digest;
use crate::merkle::MerkleTree;
use crate::tx::{TxId, ValidationCode};

/// An opaque, canonical-encoded transaction envelope plus its id.
///
/// The ledger layer does not interpret envelope bytes; the Fabric layer
/// encodes/decodes them. Keeping them opaque lets the block store hash and
/// verify blocks without knowing the envelope schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawEnvelope {
    /// Transaction id (digest of the signed proposal).
    pub tx_id: TxId,
    /// Canonical envelope bytes.
    pub bytes: Vec<u8>,
}

impl RawEnvelope {
    /// Digest of the envelope bytes, used as a Merkle leaf.
    pub fn digest(&self) -> Digest {
        Digest::of(&self.bytes)
    }
}

impl Encode for RawEnvelope {
    fn encode(&self, enc: &mut Encoder) {
        self.tx_id.encode(enc);
        enc.put_bytes(&self.bytes);
    }
}
impl Decode for RawEnvelope {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(RawEnvelope {
            tx_id: TxId::decode(dec)?,
            bytes: dec.get_bytes()?,
        })
    }
}

/// The hashed portion of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockHeader {
    /// Height of this block (0 = genesis).
    pub number: u64,
    /// Hash of the previous block header ([`Digest::ZERO`] for genesis).
    pub prev_hash: Digest,
    /// Merkle root over the envelope digests in this block.
    pub data_hash: Digest,
}

impl BlockHeader {
    /// The header hash that the next block chains to.
    pub fn hash(&self) -> Digest {
        self.digest()
    }
}

impl Encode for BlockHeader {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.number);
        enc.put_digest(&self.prev_hash);
        enc.put_digest(&self.data_hash);
    }
}
impl Decode for BlockHeader {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(BlockHeader {
            number: dec.get_u64()?,
            prev_hash: dec.get_digest()?,
            data_hash: dec.get_digest()?,
        })
    }
}

/// Per-transaction validation results, filled in by the committing peer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BlockMetadata {
    /// `codes[i]` is the validation result of transaction `i`.
    pub codes: Vec<ValidationCode>,
}

impl Encode for BlockMetadata {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_varint(self.codes.len() as u64);
        for c in &self.codes {
            c.encode(enc);
        }
    }
}
impl Decode for BlockMetadata {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let n = dec.get_varint()?;
        if n > dec.remaining() as u64 {
            return Err(CodecError::LengthOverrun {
                declared: n,
                remaining: dec.remaining(),
            });
        }
        let mut codes = Vec::with_capacity(n as usize);
        for _ in 0..n {
            codes.push(ValidationCode::decode(dec)?);
        }
        Ok(BlockMetadata { codes })
    }
}

/// A block: header, transaction envelopes, and (post-commit) metadata.
///
/// # Examples
///
/// ```
/// use hyperprov_ledger::{Block, Digest, RawEnvelope, TxId};
///
/// let env = RawEnvelope { tx_id: TxId(Digest::of(b"p")), bytes: b"payload".to_vec() };
/// let genesis = Block::build(0, Digest::ZERO, vec![env]);
/// assert!(genesis.verify_data_hash());
/// let next = Block::build(1, genesis.header.hash(), vec![]);
/// assert_eq!(next.header.prev_hash, genesis.header.hash());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The hashed header.
    pub header: BlockHeader,
    /// The ordered transaction envelopes.
    pub envelopes: Vec<RawEnvelope>,
    /// Validation metadata; empty until the committer fills it in.
    pub metadata: BlockMetadata,
}

impl Block {
    /// Builds a block with the correct `data_hash` over `envelopes`.
    pub fn build(number: u64, prev_hash: Digest, envelopes: Vec<RawEnvelope>) -> Block {
        let leaves: Vec<Digest> = envelopes.iter().map(RawEnvelope::digest).collect();
        Block {
            header: BlockHeader {
                number,
                prev_hash,
                data_hash: MerkleTree::root_of(&leaves),
            },
            envelopes,
            metadata: BlockMetadata::default(),
        }
    }

    /// Recomputes the Merkle root and compares it to the header.
    pub fn verify_data_hash(&self) -> bool {
        let leaves: Vec<Digest> = self.envelopes.iter().map(RawEnvelope::digest).collect();
        MerkleTree::root_of(&leaves) == self.header.data_hash
    }

    /// Number of transactions in the block.
    pub fn len(&self) -> usize {
        self.envelopes.len()
    }

    /// True if the block carries no transactions.
    pub fn is_empty(&self) -> bool {
        self.envelopes.is_empty()
    }

    /// Approximate wire size of the block, for network cost models.
    pub fn wire_size(&self) -> u64 {
        self.to_bytes().len() as u64
    }
}

impl Encode for Block {
    fn encode(&self, enc: &mut Encoder) {
        self.header.encode(enc);
        enc.put_varint(self.envelopes.len() as u64);
        for e in &self.envelopes {
            e.encode(enc);
        }
        self.metadata.encode(enc);
    }
}
impl Decode for Block {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let header = BlockHeader::decode(dec)?;
        let n = dec.get_varint()?;
        if n > dec.remaining() as u64 {
            return Err(CodecError::LengthOverrun {
                declared: n,
                remaining: dec.remaining(),
            });
        }
        let mut envelopes = Vec::with_capacity(n as usize);
        for _ in 0..n {
            envelopes.push(RawEnvelope::decode(dec)?);
        }
        let metadata = BlockMetadata::decode(dec)?;
        Ok(Block {
            header,
            envelopes,
            metadata,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(tag: &[u8]) -> RawEnvelope {
        RawEnvelope {
            tx_id: TxId(Digest::of(tag)),
            bytes: tag.to_vec(),
        }
    }

    #[test]
    fn build_sets_consistent_data_hash() {
        let b = Block::build(0, Digest::ZERO, vec![env(b"a"), env(b"b")]);
        assert!(b.verify_data_hash());
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }

    #[test]
    fn empty_block_data_hash_is_zero() {
        let b = Block::build(5, Digest::of(b"prev"), vec![]);
        assert_eq!(b.header.data_hash, Digest::ZERO);
        assert!(b.verify_data_hash());
        assert!(b.is_empty());
    }

    #[test]
    fn tampered_envelope_detected() {
        let mut b = Block::build(0, Digest::ZERO, vec![env(b"a"), env(b"b")]);
        b.envelopes[1].bytes = b"tampered".to_vec();
        assert!(!b.verify_data_hash());
    }

    #[test]
    fn header_hash_changes_with_any_field() {
        let h = BlockHeader {
            number: 1,
            prev_hash: Digest::of(b"p"),
            data_hash: Digest::of(b"d"),
        };
        let base = h.hash();
        let mut h2 = h;
        h2.number = 2;
        assert_ne!(h2.hash(), base);
        let mut h3 = h;
        h3.prev_hash = Digest::of(b"q");
        assert_ne!(h3.hash(), base);
        let mut h4 = h;
        h4.data_hash = Digest::of(b"e");
        assert_ne!(h4.hash(), base);
    }

    #[test]
    fn block_round_trip_with_metadata() {
        let mut b = Block::build(3, Digest::of(b"prev"), vec![env(b"x"), env(b"y")]);
        b.metadata.codes = vec![ValidationCode::Valid, ValidationCode::MvccReadConflict];
        let back = Block::from_bytes(&b.to_bytes()).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn wire_size_grows_with_payload() {
        let small = Block::build(0, Digest::ZERO, vec![env(b"a")]);
        let big = Block::build(0, Digest::ZERO, vec![env(&[0u8; 1000])]);
        assert!(big.wire_size() > small.wire_size() + 900);
    }
}
