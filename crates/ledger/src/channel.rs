//! Channel identity and the per-channel ledger bundle.
//!
//! A channel is Fabric's sharding unit: an independent chain with its own
//! ordering service, world state and history. [`ChannelId`] is the name a
//! channel goes by everywhere — proposals, envelopes, blocks, commit
//! events, metrics. It is backed by a shared `Arc<str>` so cloning one on
//! the hot submit path costs a refcount bump, not an allocation.

use std::fmt;
use std::sync::Arc;

use crate::blockstore::BlockStore;
use crate::history::HistoryDb;
use crate::provgraph::ProvGraph;
use crate::statedb::StateDb;

/// Name of the channel a single-channel deployment uses. Kept identical to
/// the pre-sharding hard-wired name so degenerate deployments stay
/// byte-compatible (proposal encodings, and hence tx ids, include the
/// channel name).
pub const DEFAULT_CHANNEL: &str = "hyperprov-channel";

/// A channel name, cheap to clone (`Arc<str>`-backed) and usable as a map
/// key everywhere a per-channel resource is indexed.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(Arc<str>);

impl ChannelId {
    /// Creates a channel id from a name.
    pub fn new(name: impl AsRef<str>) -> Self {
        ChannelId(Arc::from(name.as_ref()))
    }

    /// The channel name.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// True for the single-channel default name. Metric and span names
    /// stay un-namespaced for the default channel so single-channel runs
    /// remain byte-identical to the pre-sharding exports.
    pub fn is_default(&self) -> bool {
        self.as_str() == DEFAULT_CHANNEL
    }

    /// Namespaces a trace name by channel: `block-3` on the default
    /// channel, `<channel>/block-3` elsewhere.
    pub fn trace_name(&self, base: &str) -> String {
        if self.is_default() {
            base.to_owned()
        } else {
            format!("{}/{base}", self.as_str())
        }
    }

    /// Namespaces a metric name by channel: `orderer.blocks_cut` on the
    /// default channel, `orderer.<channel>.blocks_cut` elsewhere.
    pub fn metric_name(&self, prefix: &str, suffix: &str) -> String {
        if self.is_default() {
            format!("{prefix}.{suffix}")
        } else {
            format!("{prefix}.{}.{suffix}", self.as_str())
        }
    }
}

impl Default for ChannelId {
    fn default() -> Self {
        ChannelId::new(DEFAULT_CHANNEL)
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ChannelId({:?})", self.as_str())
    }
}

impl From<&str> for ChannelId {
    fn from(name: &str) -> Self {
        ChannelId::new(name)
    }
}

impl From<String> for ChannelId {
    fn from(name: String) -> Self {
        ChannelId(Arc::from(name))
    }
}

impl AsRef<str> for ChannelId {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl PartialEq<str> for ChannelId {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for ChannelId {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

/// The per-channel ledger bundle a peer keeps for every channel it hosts:
/// the block store (hash chain), versioned world state, and per-key write
/// history. Peers own a map `ChannelId -> ChannelLedger` instead of a
/// single set of databases.
#[derive(Debug, Default)]
pub struct ChannelLedger {
    /// The channel's hash chain.
    pub store: BlockStore,
    /// The channel's versioned world state.
    pub state: StateDb,
    /// The channel's per-key write history.
    pub history: HistoryDb,
    /// The channel's materialized provenance DAG index, maintained by the
    /// committer alongside `state`/`history` (derived state: rebuilt from
    /// block replay on restart).
    pub graph: ProvGraph,
}

impl ChannelLedger {
    /// Creates an empty ledger bundle.
    pub fn new() -> Self {
        ChannelLedger::default()
    }

    /// Current chain height.
    pub fn height(&self) -> u64 {
        self.store.height()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_channel_matches_legacy_name() {
        let id = ChannelId::default();
        assert!(id.is_default());
        assert_eq!(id.as_str(), "hyperprov-channel");
        assert_eq!(id, "hyperprov-channel");
        assert!(!ChannelId::new("hyperprov-channel-0").is_default());
    }

    #[test]
    fn clone_shares_the_backing_allocation() {
        let a = ChannelId::new("ch");
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.0, &b.0));
    }

    #[test]
    fn namespacing_is_identity_on_the_default_channel() {
        let d = ChannelId::default();
        assert_eq!(d.trace_name("block-3"), "block-3");
        assert_eq!(d.metric_name("orderer", "blocks_cut"), "orderer.blocks_cut");
        let c = ChannelId::new("shard-1");
        assert_eq!(c.trace_name("block-3"), "shard-1/block-3");
        assert_eq!(
            c.metric_name("orderer", "blocks_cut"),
            "orderer.shard-1.blocks_cut"
        );
    }

    #[test]
    fn ordering_and_equality_follow_the_name() {
        let a = ChannelId::new("a");
        let b = ChannelId::new("b");
        assert!(a < b);
        assert_eq!(a, ChannelId::new("a"));
    }

    #[test]
    fn channel_ledger_starts_empty() {
        let l = ChannelLedger::new();
        assert_eq!(l.height(), 0);
        assert!(l.state.is_empty());
    }
}
