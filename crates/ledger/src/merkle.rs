//! Binary Merkle trees over transaction digests.
//!
//! Block headers commit to their transaction set through a Merkle root, so
//! a light client can verify that one transaction belongs to a block with a
//! logarithmic [`MerkleProof`]. Odd levels duplicate the trailing node
//! (Bitcoin-style), and the empty tree has the all-zero root.

use crate::hash::Digest;

/// A Merkle tree built over a list of leaf digests.
///
/// # Examples
///
/// ```
/// use hyperprov_ledger::{Digest, MerkleTree};
///
/// let leaves: Vec<Digest> = (0..5u8).map(|i| Digest::of(&[i])).collect();
/// let tree = MerkleTree::build(leaves.clone());
/// let proof = tree.prove(3).unwrap();
/// assert!(proof.verify(&tree.root(), &leaves[3]));
/// ```
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// levels[0] = leaves, levels.last() = [root]
    levels: Vec<Vec<Digest>>,
}

/// A proof that a leaf at a given index is included under a Merkle root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf in the original leaf list.
    pub leaf_index: usize,
    /// Sibling digests from leaf level up to (excluding) the root.
    pub siblings: Vec<Digest>,
}

impl MerkleTree {
    /// Builds a tree from leaf digests (possibly empty).
    pub fn build(leaves: Vec<Digest>) -> Self {
        let mut levels = vec![leaves];
        while levels.last().map(Vec::len).unwrap_or(0) > 1 {
            let prev = levels.last().expect("at least one level");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                let left = &pair[0];
                let right = pair.get(1).unwrap_or(left);
                next.push(Digest::combine(left, right));
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// Computes only the root of a leaf list, without keeping the tree.
    pub fn root_of(leaves: &[Digest]) -> Digest {
        if leaves.is_empty() {
            return Digest::ZERO;
        }
        let mut level = leaves.to_vec();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                let left = &pair[0];
                let right = pair.get(1).unwrap_or(left);
                next.push(Digest::combine(left, right));
            }
            level = next;
        }
        level[0]
    }

    /// The root digest; the all-zero digest for an empty tree.
    pub fn root(&self) -> Digest {
        self.levels
            .last()
            .and_then(|l| l.first())
            .copied()
            .unwrap_or(Digest::ZERO)
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels.first().map(Vec::len).unwrap_or(0)
    }

    /// True if the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produces an inclusion proof for the leaf at `index`, or `None` if
    /// the index is out of range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.len() {
            return None;
        }
        let mut siblings = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_idx = idx ^ 1;
            let sibling = level.get(sibling_idx).unwrap_or(&level[idx]);
            siblings.push(*sibling);
            idx /= 2;
        }
        Some(MerkleProof {
            leaf_index: index,
            siblings,
        })
    }
}

impl MerkleProof {
    /// Verifies that `leaf` at `self.leaf_index` hashes up to `root`.
    pub fn verify(&self, root: &Digest, leaf: &Digest) -> bool {
        let mut acc = *leaf;
        let mut idx = self.leaf_index;
        for sibling in &self.siblings {
            acc = if idx.is_multiple_of(2) {
                Digest::combine(&acc, sibling)
            } else {
                Digest::combine(sibling, &acc)
            };
            idx /= 2;
        }
        acc == *root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: u8) -> Vec<Digest> {
        (0..n).map(|i| Digest::of(&[i])).collect()
    }

    #[test]
    fn empty_tree_has_zero_root() {
        let tree = MerkleTree::build(Vec::new());
        assert!(tree.is_empty());
        assert_eq!(tree.root(), Digest::ZERO);
        assert_eq!(MerkleTree::root_of(&[]), Digest::ZERO);
        assert!(tree.prove(0).is_none());
    }

    #[test]
    fn single_leaf_root_is_leaf() {
        let l = leaves(1);
        let tree = MerkleTree::build(l.clone());
        assert_eq!(tree.root(), l[0]);
        let proof = tree.prove(0).unwrap();
        assert!(proof.siblings.is_empty());
        assert!(proof.verify(&tree.root(), &l[0]));
    }

    #[test]
    fn two_leaves_root_is_combined() {
        let l = leaves(2);
        let tree = MerkleTree::build(l.clone());
        assert_eq!(tree.root(), Digest::combine(&l[0], &l[1]));
    }

    #[test]
    fn odd_count_duplicates_last() {
        let l = leaves(3);
        let tree = MerkleTree::build(l.clone());
        let left = Digest::combine(&l[0], &l[1]);
        let right = Digest::combine(&l[2], &l[2]);
        assert_eq!(tree.root(), Digest::combine(&left, &right));
    }

    #[test]
    fn root_of_matches_build() {
        for n in 0..20u8 {
            let l = leaves(n);
            assert_eq!(MerkleTree::root_of(&l), MerkleTree::build(l).root());
        }
    }

    #[test]
    fn all_proofs_verify() {
        for n in 1..=17u8 {
            let l = leaves(n);
            let tree = MerkleTree::build(l.clone());
            let root = tree.root();
            for (i, leaf) in l.iter().enumerate() {
                let proof = tree.prove(i).unwrap();
                assert!(proof.verify(&root, leaf), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn proof_rejects_wrong_leaf_and_root() {
        let l = leaves(8);
        let tree = MerkleTree::build(l.clone());
        let proof = tree.prove(2).unwrap();
        assert!(!proof.verify(&tree.root(), &l[3]));
        assert!(!proof.verify(&Digest::of(b"bogus"), &l[2]));
        // Tampered sibling fails.
        let mut bad = proof.clone();
        bad.siblings[0] = Digest::of(b"evil");
        assert!(!bad.verify(&tree.root(), &l[2]));
        // Wrong index fails.
        let mut shifted = proof;
        shifted.leaf_index = 3;
        assert!(!shifted.verify(&tree.root(), &l[2]));
    }

    #[test]
    fn changing_any_leaf_changes_root() {
        let l = leaves(6);
        let base = MerkleTree::root_of(&l);
        for i in 0..l.len() {
            let mut altered = l.clone();
            altered[i] = Digest::of(b"altered");
            assert_ne!(MerkleTree::root_of(&altered), base, "leaf {i}");
        }
    }
}
