//! Property-based tests of the ledger substrate: canonical codec
//! round-trips, Merkle proofs, MVCC coherence and hash-chain integrity
//! under arbitrary inputs.

use hyperprov_ledger::{
    Block, BlockStore, ChannelId, Decode, Digest, Encode, Encoder, HistoryDb, KvRead, KvWrite,
    MerkleTree, RawEnvelope, RwSet, Snapshot, StateDb, StateKey, TxId, ValidationCode, Version,
};
use proptest::prelude::*;

fn arb_digest() -> impl Strategy<Value = Digest> {
    any::<[u8; 32]>().prop_map(Digest::from)
}

fn arb_state_key() -> impl Strategy<Value = StateKey> {
    ("[a-z]{1,8}", ".{0,24}").prop_map(|(ns, key)| StateKey::new(ns, key))
}

fn arb_version() -> impl Strategy<Value = Version> {
    (0u64..1_000_000, 0u32..10_000).prop_map(|(b, t)| Version::new(b, t))
}

fn arb_write() -> impl Strategy<Value = KvWrite> {
    (
        arb_state_key(),
        proptest::option::of(proptest::collection::vec(any::<u8>(), 0..64)),
    )
        .prop_map(|(key, value)| KvWrite { key, value })
}

fn arb_read() -> impl Strategy<Value = KvRead> {
    (arb_state_key(), proptest::option::of(arb_version()))
        .prop_map(|(key, version)| KvRead { key, version })
}

fn arb_rwset() -> impl Strategy<Value = RwSet> {
    (
        proptest::collection::vec(arb_read(), 0..8),
        proptest::collection::vec(arb_write(), 0..8),
    )
        .prop_map(|(reads, writes)| RwSet { reads, writes })
}

proptest! {
    #[test]
    fn varint_round_trips(v in any::<u64>()) {
        let mut enc = Encoder::new();
        enc.put_varint(v);
        let bytes = enc.into_bytes();
        let mut dec = hyperprov_ledger::Decoder::new(&bytes);
        prop_assert_eq!(dec.get_varint().unwrap(), v);
        dec.finish().unwrap();
    }

    #[test]
    fn string_round_trips(s in ".{0,100}") {
        let owned = s.to_owned();
        let bytes = owned.to_bytes();
        prop_assert_eq!(String::from_bytes(&bytes).unwrap(), owned);
    }

    #[test]
    fn rwset_round_trips(rw in arb_rwset()) {
        let bytes = rw.to_bytes();
        prop_assert_eq!(RwSet::from_bytes(&bytes).unwrap(), rw);
    }

    #[test]
    fn rwset_encoding_is_injective_on_samples(a in arb_rwset(), b in arb_rwset()) {
        // Canonical encoding: equal bytes iff equal values.
        prop_assert_eq!(a.to_bytes() == b.to_bytes(), a == b);
    }

    #[test]
    fn digest_hex_round_trips(d in arb_digest()) {
        prop_assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
    }

    #[test]
    fn decoding_random_junk_never_panics(junk in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = RwSet::from_bytes(&junk);
        let _ = Block::from_bytes(&junk);
        let _ = String::from_bytes(&junk);
        let _ = Vec::<String>::from_bytes(&junk);
    }

    #[test]
    fn merkle_proofs_verify_for_every_leaf(
        seeds in proptest::collection::vec(any::<u64>(), 1..40)
    ) {
        let leaves: Vec<Digest> = seeds.iter().map(|s| Digest::of(&s.to_le_bytes())).collect();
        let tree = MerkleTree::build(leaves.clone());
        let root = tree.root();
        for (i, leaf) in leaves.iter().enumerate() {
            let proof = tree.prove(i).unwrap();
            prop_assert!(proof.verify(&root, leaf));
        }
        prop_assert_eq!(MerkleTree::root_of(&leaves), root);
    }

    #[test]
    fn merkle_proof_rejects_wrong_leaf(
        seeds in proptest::collection::vec(any::<u64>(), 2..20),
        wrong in any::<u64>(),
    ) {
        let leaves: Vec<Digest> = seeds.iter().map(|s| Digest::of(&s.to_le_bytes())).collect();
        let tree = MerkleTree::build(leaves.clone());
        let proof = tree.prove(0).unwrap();
        let fake = Digest::of(&wrong.to_le_bytes());
        prop_assume!(fake != leaves[0]);
        prop_assert!(!proof.verify(&tree.root(), &fake));
    }

    #[test]
    fn statedb_reads_after_writes_validate(writes in proptest::collection::vec(arb_write(), 1..20)) {
        let mut db = StateDb::new();
        db.apply_writes(&writes, Version::new(1, 0));
        // Reads at the observed versions always validate.
        let reads: Vec<KvRead> = writes
            .iter()
            .map(|w| KvRead {
                key: w.key.clone(),
                version: db.version(&w.key),
            })
            .collect();
        prop_assert!(db.validate_reads(&reads));
        // After any key is overwritten at a later version, its read fails.
        if let Some(w) = writes.first() {
            db.apply_write(
                &KvWrite { key: w.key.clone(), value: Some(vec![1]) },
                Version::new(2, 0),
            );
            let stale = KvRead { key: w.key.clone(), version: reads[0].version };
            if reads[0].version != db.version(&w.key) {
                prop_assert!(!db.validate_reads(std::slice::from_ref(&stale)));
            }
        }
    }

    #[test]
    fn flat_backend_matches_btree_oracle(
        batches in proptest::collection::vec(
            proptest::collection::vec(arb_write(), 1..12),
            1..12,
        ),
        probes in proptest::collection::vec(arb_state_key(), 1..8),
    ) {
        // Apply the same write batches (inserts and deletes, arbitrary
        // namespaces and keys) to both backends and check every read-side
        // API agrees after each batch.
        let mut oracle = StateDb::new();
        let mut flat = StateDb::flat();
        for (block, writes) in batches.iter().enumerate() {
            let version = Version::new(block as u64 + 1, 0);
            oracle.apply_writes(writes, version);
            flat.apply_writes(writes, version);

            prop_assert_eq!(oracle.len(), flat.len());
            prop_assert_eq!(oracle.state_hash(), flat.state_hash());
            let o: Vec<_> = oracle.iter().collect();
            let f: Vec<_> = flat.iter().collect();
            prop_assert_eq!(o, f);

            for probe in &probes {
                prop_assert_eq!(oracle.get(probe), flat.get(probe));
                prop_assert_eq!(oracle.version(probe), flat.version(probe));
            }
            for w in writes {
                prop_assert_eq!(oracle.get(&w.key), flat.get(&w.key));
                let ns = w.key.namespace.as_str();
                let o: Vec<_> = oracle.range(ns, "", "").collect();
                let f: Vec<_> = flat.range(ns, "", "").collect();
                prop_assert_eq!(o, f);
                let prefix = &w.key.key[..w.key.key.len().min(2)];
                let o: Vec<_> = oracle.scan_prefix(ns, prefix).collect();
                let f: Vec<_> = flat.scan_prefix(ns, prefix).collect();
                prop_assert_eq!(o, f);
            }

            // MVCC validation agrees for reads taken from either backend.
            let reads: Vec<KvRead> = writes
                .iter()
                .map(|w| KvRead { key: w.key.clone(), version: oracle.version(&w.key) })
                .collect();
            prop_assert!(flat.validate_reads(&reads));
            let stale: Vec<KvRead> = writes
                .iter()
                .map(|w| KvRead { key: w.key.clone(), version: Some(Version::new(u64::MAX, 0)) })
                .collect();
            prop_assert_eq!(oracle.validate_reads(&stale), flat.validate_reads(&stale));
        }
    }

    #[test]
    fn snapshot_round_trips_on_both_backends(
        writes in proptest::collection::vec(arb_write(), 1..20),
        chunk_entries in 1usize..8,
    ) {
        // Snapshots captured from either backend are identical, and a
        // restore reproduces the exact state either way.
        let mut oracle = StateDb::new();
        let mut flat = StateDb::flat();
        let mut history = HistoryDb::new();
        let version = Version::new(1, 0);
        oracle.apply_writes(&writes, version);
        flat.apply_writes(&writes, version);
        history.append(TxId(Digest::of(b"t")), version, &writes);

        let channel = ChannelId::new("ch");
        let snap = |db: &StateDb| Snapshot::capture(
            &channel,
            1,
            Digest::of(b"tip"),
            db,
            &history,
            vec![TxId(Digest::of(b"t"))],
            Digest::of(b"graph"),
            chunk_entries,
        );
        let from_oracle = snap(&oracle);
        let from_flat = snap(&flat);
        prop_assert_eq!(&from_oracle, &from_flat);

        let restored = from_flat.restore_state();
        prop_assert_eq!(restored.state_hash(), oracle.state_hash());
        prop_assert_eq!(restored.len(), flat.len());
        let restored_history = from_oracle.restore_history();
        prop_assert_eq!(restored_history.total_entries(), history.total_entries());
    }

    #[test]
    fn blockstore_chain_always_verifies(
        tx_counts in proptest::collection::vec(0usize..5, 1..10)
    ) {
        let mut store = BlockStore::new();
        let mut n = 0u64;
        for (height, &count) in tx_counts.iter().enumerate() {
            let envelopes: Vec<RawEnvelope> = (0..count)
                .map(|i| {
                    n += 1;
                    RawEnvelope {
                        tx_id: TxId(Digest::of(&n.to_le_bytes())),
                        bytes: vec![i as u8; 10],
                    }
                })
                .collect();
            let block = Block::build(height as u64, store.tip_hash(), envelopes);
            store.append(block).unwrap();
        }
        prop_assert!(store.verify_chain().is_ok());
        prop_assert_eq!(store.tx_count(), n);
        // Every transaction is findable.
        for i in 1..=n {
            prop_assert!(store.find_tx(&TxId(Digest::of(&i.to_le_bytes()))).is_some());
        }
    }

    #[test]
    fn validation_codes_stable(code in 0u8..6) {
        let vc = ValidationCode::from_u8(code).unwrap();
        prop_assert_eq!(vc.as_u8(), code);
    }

    #[test]
    fn block_round_trips(
        n in 0usize..6,
        codes in proptest::collection::vec(0u8..6, 0..6)
    ) {
        let envelopes: Vec<RawEnvelope> = (0..n)
            .map(|i| RawEnvelope {
                tx_id: TxId(Digest::of(&[i as u8])),
                bytes: vec![i as u8; i + 1],
            })
            .collect();
        let mut block = Block::build(3, Digest::of(b"prev"), envelopes);
        block.metadata.codes = codes
            .iter()
            .map(|&c| ValidationCode::from_u8(c).unwrap())
            .collect();
        let bytes = block.to_bytes();
        prop_assert_eq!(Block::from_bytes(&bytes).unwrap(), block);
    }
}
