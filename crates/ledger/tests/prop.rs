//! Property-based tests of the ledger substrate: canonical codec
//! round-trips, Merkle proofs, MVCC coherence and hash-chain integrity
//! under arbitrary inputs.

use hyperprov_ledger::{
    Block, BlockStore, Decode, Digest, Encode, Encoder, KvRead, KvWrite, MerkleTree, RawEnvelope,
    RwSet, StateDb, StateKey, TxId, ValidationCode, Version,
};
use proptest::prelude::*;

fn arb_digest() -> impl Strategy<Value = Digest> {
    any::<[u8; 32]>().prop_map(Digest::from)
}

fn arb_state_key() -> impl Strategy<Value = StateKey> {
    ("[a-z]{1,8}", ".{0,24}").prop_map(|(ns, key)| StateKey::new(ns, key))
}

fn arb_version() -> impl Strategy<Value = Version> {
    (0u64..1_000_000, 0u32..10_000).prop_map(|(b, t)| Version::new(b, t))
}

fn arb_write() -> impl Strategy<Value = KvWrite> {
    (
        arb_state_key(),
        proptest::option::of(proptest::collection::vec(any::<u8>(), 0..64)),
    )
        .prop_map(|(key, value)| KvWrite { key, value })
}

fn arb_read() -> impl Strategy<Value = KvRead> {
    (arb_state_key(), proptest::option::of(arb_version()))
        .prop_map(|(key, version)| KvRead { key, version })
}

fn arb_rwset() -> impl Strategy<Value = RwSet> {
    (
        proptest::collection::vec(arb_read(), 0..8),
        proptest::collection::vec(arb_write(), 0..8),
    )
        .prop_map(|(reads, writes)| RwSet { reads, writes })
}

proptest! {
    #[test]
    fn varint_round_trips(v in any::<u64>()) {
        let mut enc = Encoder::new();
        enc.put_varint(v);
        let bytes = enc.into_bytes();
        let mut dec = hyperprov_ledger::Decoder::new(&bytes);
        prop_assert_eq!(dec.get_varint().unwrap(), v);
        dec.finish().unwrap();
    }

    #[test]
    fn string_round_trips(s in ".{0,100}") {
        let owned = s.to_owned();
        let bytes = owned.to_bytes();
        prop_assert_eq!(String::from_bytes(&bytes).unwrap(), owned);
    }

    #[test]
    fn rwset_round_trips(rw in arb_rwset()) {
        let bytes = rw.to_bytes();
        prop_assert_eq!(RwSet::from_bytes(&bytes).unwrap(), rw);
    }

    #[test]
    fn rwset_encoding_is_injective_on_samples(a in arb_rwset(), b in arb_rwset()) {
        // Canonical encoding: equal bytes iff equal values.
        prop_assert_eq!(a.to_bytes() == b.to_bytes(), a == b);
    }

    #[test]
    fn digest_hex_round_trips(d in arb_digest()) {
        prop_assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
    }

    #[test]
    fn decoding_random_junk_never_panics(junk in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = RwSet::from_bytes(&junk);
        let _ = Block::from_bytes(&junk);
        let _ = String::from_bytes(&junk);
        let _ = Vec::<String>::from_bytes(&junk);
    }

    #[test]
    fn merkle_proofs_verify_for_every_leaf(
        seeds in proptest::collection::vec(any::<u64>(), 1..40)
    ) {
        let leaves: Vec<Digest> = seeds.iter().map(|s| Digest::of(&s.to_le_bytes())).collect();
        let tree = MerkleTree::build(leaves.clone());
        let root = tree.root();
        for (i, leaf) in leaves.iter().enumerate() {
            let proof = tree.prove(i).unwrap();
            prop_assert!(proof.verify(&root, leaf));
        }
        prop_assert_eq!(MerkleTree::root_of(&leaves), root);
    }

    #[test]
    fn merkle_proof_rejects_wrong_leaf(
        seeds in proptest::collection::vec(any::<u64>(), 2..20),
        wrong in any::<u64>(),
    ) {
        let leaves: Vec<Digest> = seeds.iter().map(|s| Digest::of(&s.to_le_bytes())).collect();
        let tree = MerkleTree::build(leaves.clone());
        let proof = tree.prove(0).unwrap();
        let fake = Digest::of(&wrong.to_le_bytes());
        prop_assume!(fake != leaves[0]);
        prop_assert!(!proof.verify(&tree.root(), &fake));
    }

    #[test]
    fn statedb_reads_after_writes_validate(writes in proptest::collection::vec(arb_write(), 1..20)) {
        let mut db = StateDb::new();
        db.apply_writes(&writes, Version::new(1, 0));
        // Reads at the observed versions always validate.
        let reads: Vec<KvRead> = writes
            .iter()
            .map(|w| KvRead {
                key: w.key.clone(),
                version: db.version(&w.key),
            })
            .collect();
        prop_assert!(db.validate_reads(&reads));
        // After any key is overwritten at a later version, its read fails.
        if let Some(w) = writes.first() {
            db.apply_write(
                &KvWrite { key: w.key.clone(), value: Some(vec![1]) },
                Version::new(2, 0),
            );
            let stale = KvRead { key: w.key.clone(), version: reads[0].version };
            if reads[0].version != db.version(&w.key) {
                prop_assert!(!db.validate_reads(std::slice::from_ref(&stale)));
            }
        }
    }

    #[test]
    fn blockstore_chain_always_verifies(
        tx_counts in proptest::collection::vec(0usize..5, 1..10)
    ) {
        let mut store = BlockStore::new();
        let mut n = 0u64;
        for (height, &count) in tx_counts.iter().enumerate() {
            let envelopes: Vec<RawEnvelope> = (0..count)
                .map(|i| {
                    n += 1;
                    RawEnvelope {
                        tx_id: TxId(Digest::of(&n.to_le_bytes())),
                        bytes: vec![i as u8; 10],
                    }
                })
                .collect();
            let block = Block::build(height as u64, store.tip_hash(), envelopes);
            store.append(block).unwrap();
        }
        prop_assert!(store.verify_chain().is_ok());
        prop_assert_eq!(store.tx_count(), n);
        // Every transaction is findable.
        for i in 1..=n {
            prop_assert!(store.find_tx(&TxId(Digest::of(&i.to_le_bytes()))).is_some());
        }
    }

    #[test]
    fn validation_codes_stable(code in 0u8..6) {
        let vc = ValidationCode::from_u8(code).unwrap();
        prop_assert_eq!(vc.as_u8(), code);
    }

    #[test]
    fn block_round_trips(
        n in 0usize..6,
        codes in proptest::collection::vec(0u8..6, 0..6)
    ) {
        let envelopes: Vec<RawEnvelope> = (0..n)
            .map(|i| RawEnvelope {
                tx_id: TxId(Digest::of(&[i as u8])),
                bytes: vec![i as u8; i + 1],
            })
            .collect();
        let mut block = Block::build(3, Digest::of(b"prev"), envelopes);
        block.metadata.codes = codes
            .iter()
            .map(|&c| ValidationCode::from_u8(c).unwrap())
            .collect();
        let bytes = block.to_bytes();
        prop_assert_eq!(Block::from_bytes(&bytes).unwrap(), block);
    }
}
