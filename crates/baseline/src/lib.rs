//! # hyperprov-baseline
//!
//! Comparison systems for the HyperProv reproduction:
//!
//! * [`PowChain`] — a ProvChain-like public proof-of-work anchor chain
//!   (exponential block intervals, bounded blocks, k-confirmation
//!   finality, load-independent mining energy), and
//! * [`OnChainProvChaincode`]/[`OnChainNetwork`] — HyperProv *without*
//!   off-chain storage: the payload rides through endorsement, ordering
//!   and commit and is replicated into every peer's state database.
//!
//! Together they quantify the paper's two design arguments: permissioned
//! beats public on resource cost, and metadata-only beats payload-on-chain
//! on throughput as item sizes grow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod deploy;
mod onchain;
mod pow;

pub use deploy::{OnChainClient, OnChainNetwork};
pub use onchain::{OnChainProvChaincode, ONCHAIN_NAME};
pub use pow::{PowChain, PowCommit, PowConfig, PowMsg, PowNodeActor, PowTx};
