//! A ProvChain-like baseline: provenance records anchored in a public
//! proof-of-work blockchain.
//!
//! The paper's Related Work positions HyperProv against public-chain
//! provenance systems (ProvChain [Liang et al. 2017], SmartProvenance
//! [Ramachandran & Kantarcioglu 2018]), arguing that permissioned chains
//! "have much less resource requirements compared to public blockchains".
//! This module makes that comparison quantitative: a discrete simulation
//! of a PoW chain with exponentially-distributed block intervals, bounded
//! block capacity, FIFO mempool and k-confirmation finality — plus the
//! defining resource property of PoW, miners burning full power
//! continuously regardless of load.

use std::collections::{HashMap, VecDeque};

use hyperprov_sim::{
    Actor, ActorId, Admission, Carries, Context, DetRng, Event, QueueConfig, ServiceHarness,
    SimDuration, SimTime, SpanClose,
};
use rand::Rng;

/// Parameters of the PoW chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowConfig {
    /// Mean time between blocks (Bitcoin: 600 s; a fast anchor chain:
    /// 15 s).
    pub block_interval: SimDuration,
    /// Maximum transactions per block.
    pub txs_per_block: usize,
    /// Confirmations required before a record counts as final (ProvChain
    /// waits for several).
    pub confirmations: u32,
    /// Number of mining nodes replicating every record.
    pub miners: u32,
    /// Power draw of one miner, in watts (always-on, load-independent).
    pub miner_watts: f64,
}

impl Default for PowConfig {
    fn default() -> Self {
        PowConfig {
            block_interval: SimDuration::from_secs(15),
            txs_per_block: 200,
            confirmations: 6,
            miners: 8,
            miner_watts: 120.0,
        }
    }
}

/// One submitted provenance anchor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowTx {
    /// Caller-assigned id.
    pub id: u64,
    /// Submission time.
    pub submitted: SimTime,
    /// Record size in bytes (replicated to every miner).
    pub bytes: u64,
}

/// The fate of a submitted transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowCommit {
    /// The transaction.
    pub tx: PowTx,
    /// When its block was mined.
    pub mined: SimTime,
    /// When it reached the configured confirmation depth.
    pub finalized: SimTime,
}

/// Simulates the chain over a set of submissions.
#[derive(Debug)]
pub struct PowChain {
    config: PowConfig,
    rng: DetRng,
    mempool: VecDeque<PowTx>,
    commits: Vec<PowCommit>,
    pending_blocks: VecDeque<(SimTime, Vec<PowTx>)>,
    next_block_at: SimTime,
    blocks_mined: u64,
    bytes_on_chain: u64,
}

impl PowChain {
    /// Creates a chain; the first block arrives an exponential interval
    /// after time zero.
    pub fn new(config: PowConfig, seed: u64) -> Self {
        let mut rng = DetRng::new(seed).fork("pow");
        let first = exponential(&mut rng, config.block_interval);
        PowChain {
            config,
            rng,
            mempool: VecDeque::new(),
            commits: Vec::new(),
            pending_blocks: VecDeque::new(),
            next_block_at: SimTime::ZERO + first,
            blocks_mined: 0,
            bytes_on_chain: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PowConfig {
        &self.config
    }

    /// Submits a transaction. Submissions must be offered in
    /// non-decreasing time order.
    ///
    /// # Panics
    ///
    /// Panics if `tx.submitted` precedes an already-mined block boundary
    /// that was advanced past it (out-of-order submission).
    pub fn submit(&mut self, tx: PowTx) {
        self.advance_to(tx.submitted);
        self.mempool.push_back(tx);
    }

    /// Mines blocks up to virtual time `t`.
    pub fn advance_to(&mut self, t: SimTime) {
        while self.next_block_at <= t {
            let mined_at = self.next_block_at;
            // Fill the block FIFO from the mempool with transactions that
            // were submitted before the block was found.
            let mut block = Vec::new();
            while block.len() < self.config.txs_per_block {
                match self.mempool.front() {
                    Some(tx) if tx.submitted <= mined_at => {
                        let tx = self.mempool.pop_front().expect("checked front");
                        self.bytes_on_chain += tx.bytes;
                        block.push(tx);
                    }
                    _ => break,
                }
            }
            self.blocks_mined += 1;
            self.pending_blocks.push_back((mined_at, block));
            // Finalize blocks that now have enough confirmations.
            while self.pending_blocks.len() > self.config.confirmations as usize {
                let (mined, txs) = self.pending_blocks.pop_front().expect("non-empty");
                for tx in txs {
                    self.commits.push(PowCommit {
                        tx,
                        mined,
                        finalized: mined_at,
                    });
                }
            }
            let gap = exponential(&mut self.rng, self.config.block_interval);
            self.next_block_at = mined_at + gap;
        }
    }

    /// Transactions finalized so far (k confirmations deep).
    pub fn commits(&self) -> &[PowCommit] {
        &self.commits
    }

    /// Transactions still waiting in the mempool.
    pub fn mempool_len(&self) -> usize {
        self.mempool.len()
    }

    /// Blocks mined so far.
    pub fn blocks_mined(&self) -> u64 {
        self.blocks_mined
    }

    /// Record bytes stored on-chain so far — multiplied by the miner count
    /// this is the replicated storage footprint.
    pub fn bytes_on_chain(&self) -> u64 {
        self.bytes_on_chain
    }

    /// Total replicated bytes across all miners.
    pub fn replicated_bytes(&self) -> u64 {
        self.bytes_on_chain * u64::from(self.config.miners)
    }

    /// Energy burned by the mining network over a span, in joules.
    /// PoW's defining property: this does not depend on load.
    pub fn mining_energy_joules(&self, span: SimDuration) -> f64 {
        f64::from(self.config.miners) * self.config.miner_watts * span.as_secs_f64()
    }

    /// When the next block will be found (virtual time).
    pub fn next_block_at(&self) -> SimTime {
        self.next_block_at
    }
}

/// Messages between clients and the [`PowNodeActor`].
#[derive(Debug, Clone)]
pub enum PowMsg {
    /// Submit a provenance anchor (the `submitted` field is stamped by
    /// the node at arrival).
    Submit {
        /// The transaction.
        tx: PowTx,
    },
    /// The anchor reached confirmation depth.
    Committed {
        /// The finalized transaction.
        commit: PowCommit,
    },
    /// The node's admission queue rejected the submission
    /// ([`hyperprov_sim::OverloadPolicy::Nack`]); the client may retry.
    Busy {
        /// Caller-assigned transaction id.
        id: u64,
    },
}

impl Carries<PowMsg> for PowMsg {
    fn wrap(inner: PowMsg) -> Self {
        inner
    }
    fn peel(self) -> Result<PowMsg, Self> {
        Ok(self)
    }
}

/// Host timer token for the mining clock. Outside the harness token
/// namespace (bit 63 clear), so [`ServiceHarness::on_timer`] passes it
/// back to the actor.
const MINE_TIMER: u64 = 1;

/// The PoW anchor node as a simulation actor: accepts [`PowMsg::Submit`],
/// charges a per-submission verification cost through its
/// [`ServiceHarness`], mines blocks on a virtual-time clock and notifies
/// submitters at k-confirmation finality.
///
/// The mining clock stays armed only while submissions are outstanding,
/// so an idle chain does not keep the simulation alive forever.
pub struct PowNodeActor {
    chain: PowChain,
    submit_cost: SimDuration,
    harness: ServiceHarness<PowMsg>,
    origins: HashMap<u64, ActorId>,
    emitted: usize,
    timer_armed: bool,
}

impl PowNodeActor {
    /// Creates a node over a fresh chain; `submit_cost` models signature
    /// and format checks per submission.
    pub fn new(config: PowConfig, seed: u64, submit_cost: SimDuration) -> Self {
        PowNodeActor {
            chain: PowChain::new(config, seed),
            submit_cost,
            harness: ServiceHarness::new("pow"),
            origins: HashMap::new(),
            emitted: 0,
            timer_armed: false,
        }
    }

    /// Bounds the node's mempool admission queue.
    #[must_use]
    pub fn with_queue(mut self, config: QueueConfig) -> Self {
        self.harness.set_queue(config);
        self
    }

    /// The underlying chain (for audits and energy accounting).
    pub fn chain(&self) -> &PowChain {
        &self.chain
    }

    fn arm_mine_timer(&mut self, ctx: &mut Context<'_, PowMsg>) {
        if self.timer_armed || self.origins.is_empty() {
            return;
        }
        let delay = self
            .chain
            .next_block_at()
            .saturating_duration_since(ctx.now());
        ctx.set_timer(delay, MINE_TIMER);
        self.timer_armed = true;
    }

    fn emit_commits(&mut self, ctx: &mut Context<'_, PowMsg>) {
        while self.emitted < self.chain.commits().len() {
            let commit = self.chain.commits()[self.emitted];
            self.emitted += 1;
            if let Some(origin) = self.origins.remove(&commit.tx.id) {
                ctx.metrics().incr("pow.finalized", 1);
                ctx.send(origin, 64, PowMsg::Committed { commit });
            }
        }
    }

    fn on_submit(&mut self, ctx: &mut Context<'_, PowMsg>, src: ActorId, tx: PowTx) {
        // Stamp arrival time: the chain requires non-decreasing
        // submission times and the wire delay already happened.
        let tx = PowTx {
            submitted: ctx.now(),
            ..tx
        };
        let trace = format!("pow-{}", tx.id);
        self.origins.insert(tx.id, src);
        self.chain.submit(tx);
        ctx.metrics().incr("pow.submits", 1);
        ctx.span_start(&trace, "pow.verify", "");
        let close = SpanClose::new(trace.clone(), "pow.verify", "");
        self.harness
            .defer_request(ctx, self.submit_cost, &trace, Vec::new(), vec![close]);
        self.arm_mine_timer(ctx);
    }
}

impl Actor<PowMsg> for PowNodeActor {
    fn on_event(&mut self, ctx: &mut Context<'_, PowMsg>, event: Event<PowMsg>) {
        match event {
            Event::Message { src, msg } => match msg {
                PowMsg::Submit { .. } => match self.harness.admit(ctx, src, msg) {
                    Admission::Admit(PowMsg::Submit { tx }) => self.on_submit(ctx, src, tx),
                    Admission::Nack(PowMsg::Submit { tx }) => {
                        ctx.send(src, 64, PowMsg::Busy { id: tx.id });
                    }
                    _ => {}
                },
                // Notifications are never addressed to the node.
                PowMsg::Committed { .. } | PowMsg::Busy { .. } => {}
            },
            Event::Timer { token } => {
                if self.harness.on_timer(ctx, token) {
                    return;
                }
                if token == MINE_TIMER {
                    self.timer_armed = false;
                    self.chain.advance_to(ctx.now());
                    self.emit_commits(ctx);
                    self.arm_mine_timer(ctx);
                }
            }
        }
    }
}

fn exponential(rng: &mut DetRng, mean: SimDuration) -> SimDuration {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    mean.mul_f64(-u.ln())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(id: u64, at_secs: u64) -> PowTx {
        PowTx {
            id,
            submitted: SimTime::from_secs(at_secs),
            bytes: 500,
        }
    }

    fn fast_config() -> PowConfig {
        PowConfig {
            block_interval: SimDuration::from_secs(10),
            txs_per_block: 5,
            confirmations: 2,
            miners: 4,
            miner_watts: 100.0,
        }
    }

    #[test]
    fn single_tx_finalizes_after_confirmations() {
        let mut chain = PowChain::new(fast_config(), 1);
        chain.submit(tx(1, 0));
        chain.advance_to(SimTime::from_secs(1_000));
        assert_eq!(chain.commits().len(), 1);
        let commit = chain.commits()[0];
        assert!(commit.mined >= commit.tx.submitted);
        assert!(commit.finalized > commit.mined);
        // At least `confirmations` further blocks were needed.
        assert!(chain.blocks_mined() >= 3);
    }

    #[test]
    fn latency_is_orders_of_magnitude_above_fabric() {
        // Mean finalization latency should be near
        // (0.5 + confirmations) * block_interval >> Fabric's ~2 s.
        let mut chain = PowChain::new(PowConfig::default(), 7);
        for i in 0..100 {
            chain.submit(PowTx {
                id: i,
                submitted: SimTime::from_secs(i * 2),
                bytes: 300,
            });
        }
        chain.advance_to(SimTime::from_secs(100_000));
        assert_eq!(chain.commits().len(), 100);
        let mean_latency: f64 = chain
            .commits()
            .iter()
            .map(|c| (c.finalized - c.tx.submitted).as_secs_f64())
            .sum::<f64>()
            / 100.0;
        assert!(mean_latency > 60.0, "mean pow latency {mean_latency}s");
    }

    #[test]
    fn block_capacity_bounds_throughput() {
        let mut chain = PowChain::new(fast_config(), 3);
        // Burst of 100 txs at t=0; capacity 5/10s → needs ≥ 20 blocks.
        for i in 0..100 {
            chain.submit(tx(i, 0));
        }
        chain.advance_to(SimTime::from_secs(130));
        // ~13 blocks expected by t=130: at most 65 mined, minus
        // confirmation lag for finalization.
        assert!(chain.commits().len() < 100);
        chain.advance_to(SimTime::from_secs(10_000));
        assert_eq!(chain.commits().len(), 100);
        assert_eq!(chain.mempool_len(), 0);
    }

    #[test]
    fn fifo_ordering_preserved() {
        let mut chain = PowChain::new(fast_config(), 5);
        for i in 0..50 {
            chain.submit(tx(i, i / 4));
        }
        chain.advance_to(SimTime::from_secs(5_000));
        let ids: Vec<u64> = chain.commits().iter().map(|c| c.tx.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut chain = PowChain::new(fast_config(), seed);
            for i in 0..20 {
                chain.submit(tx(i, i));
            }
            chain.advance_to(SimTime::from_secs(2_000));
            chain
                .commits()
                .iter()
                .map(|c| c.finalized.as_nanos())
                .sum::<u64>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn energy_is_load_independent_and_large() {
        let chain = PowChain::new(PowConfig::default(), 1);
        let hour = SimDuration::from_secs(3600);
        let joules = chain.mining_energy_joules(hour);
        // 8 miners * 120 W * 3600 s.
        assert!((joules - 3_456_000.0).abs() < 1.0);
    }

    mod actor {
        use super::*;
        use hyperprov_sim::{OverloadPolicy, Simulation};
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Debug, Default)]
        struct Seen {
            commits: Vec<PowCommit>,
            busy: Vec<u64>,
        }

        struct Submitter {
            node: ActorId,
            count: u64,
            seen: Rc<RefCell<Seen>>,
        }

        impl Actor<PowMsg> for Submitter {
            fn on_event(&mut self, ctx: &mut Context<'_, PowMsg>, event: Event<PowMsg>) {
                match event {
                    Event::Timer { .. } => {
                        for id in 0..self.count {
                            let tx = PowTx {
                                id,
                                submitted: SimTime::ZERO,
                                bytes: 400,
                            };
                            ctx.send(self.node, 464, PowMsg::Submit { tx });
                        }
                    }
                    Event::Message { msg, .. } => match msg {
                        PowMsg::Committed { commit } => {
                            self.seen.borrow_mut().commits.push(commit);
                        }
                        PowMsg::Busy { id } => self.seen.borrow_mut().busy.push(id),
                        PowMsg::Submit { .. } => {}
                    },
                }
            }
        }

        fn run(count: u64, queue: Option<QueueConfig>) -> Seen {
            let mut sim = Simulation::new(11);
            let mut node = PowNodeActor::new(fast_config(), 11, SimDuration::from_micros(200));
            if let Some(queue) = queue {
                node = node.with_queue(queue);
            }
            let node = sim.add_actor(Box::new(node));
            let seen = Rc::new(RefCell::new(Seen::default()));
            let client = sim.add_actor(Box::new(Submitter {
                node,
                count,
                seen: seen.clone(),
            }));
            sim.start_timer(client, SimDuration::ZERO, 0);
            sim.run();
            let out = std::mem::take(&mut *seen.borrow_mut());
            out
        }

        #[test]
        fn submissions_finalize_and_sim_terminates() {
            let seen = run(10, None);
            assert_eq!(seen.commits.len(), 10);
            assert!(seen.busy.is_empty());
            for commit in &seen.commits {
                assert!(commit.finalized > commit.mined);
            }
            // FIFO mempool: finalization order follows submission order.
            let ids: Vec<u64> = seen.commits.iter().map(|c| c.tx.id).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            assert_eq!(ids, sorted);
        }

        #[test]
        fn bounded_mempool_nacks_past_capacity() {
            let seen = run(10, Some(QueueConfig::new(3, OverloadPolicy::Nack)));
            assert!(!seen.busy.is_empty(), "expected nacks past capacity 3");
            assert_eq!(seen.commits.len() + seen.busy.len(), 10);
        }

        #[test]
        fn actor_runs_are_deterministic() {
            let fingerprint = |seen: &Seen| -> u64 {
                seen.commits
                    .iter()
                    .map(|c| c.finalized.as_nanos())
                    .sum::<u64>()
            };
            let a = run(10, None);
            let b = run(10, None);
            assert_eq!(fingerprint(&a), fingerprint(&b));
            assert_eq!(a.commits.len(), b.commits.len());
        }
    }

    #[test]
    fn storage_replicated_across_miners() {
        let mut chain = PowChain::new(fast_config(), 2);
        chain.submit(tx(1, 0));
        chain.advance_to(SimTime::from_secs(1_000));
        assert_eq!(chain.bytes_on_chain(), 500);
        assert_eq!(chain.replicated_bytes(), 2_000);
    }
}
