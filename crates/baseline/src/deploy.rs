//! Deployment of the on-chain-data baseline network.
//!
//! Mirrors [`hyperprov::HyperProvNetwork`] but installs
//! [`OnChainProvChaincode`] and uses [`OnChainClient`] actors that push
//! the full payload through the transaction path instead of off-chain
//! storage. Reuses the same [`NodeMsg`] message type and client command /
//! completion plumbing so the benchmark harness can drive both systems
//! identically.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use hyperprov::{
    ClientCommand, ClientCompletion, CompletionQueue, HyperProvError, NetworkConfig, NodeMsg,
    OpOutput,
};
use hyperprov_device::link_between;
use hyperprov_fabric::{
    ChaincodeRegistry, ChannelPolicies, Committer, Gateway, GatewayEvent, MspBuilder, MspId,
    PeerActor, SoloOrdererActor,
};
use hyperprov_ledger::TxId;
use hyperprov_sim::{Actor, ActorId, Context, Event, ServiceHarness, SimTime, Simulation};

use crate::onchain::{OnChainProvChaincode, ONCHAIN_NAME};

/// A client that posts the payload itself on-chain (no storage hop).
///
/// Accepts [`ClientCommand::StoreData`] (the payload goes into the
/// transaction arguments) and [`ClientCommand::Get`]; pushes
/// [`ClientCompletion`]s like the real client so harness code is shared.
pub struct OnChainClient {
    gateway: Gateway,
    completions: CompletionQueue,
    inflight: HashMap<TxId, (hyperprov::OpId, SimTime)>,
    harness: ServiceHarness<NodeMsg>,
}

impl OnChainClient {
    /// Creates the client and its completion queue.
    pub fn new(gateway: Gateway) -> (Self, CompletionQueue) {
        let completions: CompletionQueue = Rc::new(RefCell::new(std::collections::VecDeque::new()));
        (
            OnChainClient {
                gateway,
                completions: completions.clone(),
                inflight: HashMap::new(),
                harness: ServiceHarness::new("onchain-client"),
            },
            completions,
        )
    }
}

impl Actor<NodeMsg> for OnChainClient {
    fn on_event(&mut self, ctx: &mut Context<'_, NodeMsg>, event: Event<NodeMsg>) {
        match event {
            Event::Message { msg, .. } => match msg {
                NodeMsg::Client(ClientCommand::StoreData { key, data, op, .. }) => {
                    let tx_id = self.gateway.invoke(
                        ctx,
                        &mut self.harness,
                        ONCHAIN_NAME,
                        "post",
                        vec![key.into_bytes(), data],
                    );
                    self.inflight.insert(tx_id, (op, ctx.now()));
                }
                NodeMsg::Client(ClientCommand::Get { key, op }) => {
                    let tx_id = self.gateway.query(
                        ctx,
                        &mut self.harness,
                        ONCHAIN_NAME,
                        "get",
                        vec![key.into_bytes()],
                    );
                    self.inflight.insert(tx_id, (op, ctx.now()));
                }
                NodeMsg::Client(_) => {}
                NodeMsg::Fabric(fmsg) => {
                    let events = self.gateway.handle(ctx, fmsg);
                    let now = ctx.now();
                    for ev in events {
                        match ev {
                            GatewayEvent::TxCommitted { tx_id, code, .. } => {
                                if let Some((op, started)) = self.inflight.remove(&tx_id) {
                                    let outcome = if code.is_valid() {
                                        Ok(OpOutput::Committed {
                                            record: None,
                                            tx_id,
                                        })
                                    } else {
                                        Err(HyperProvError::Invalidated(code))
                                    };
                                    self.completions.borrow_mut().push_back(ClientCompletion {
                                        op,
                                        started,
                                        finished: now,
                                        outcome,
                                    });
                                }
                            }
                            GatewayEvent::TxFailed { tx_id, error } => {
                                if let Some((op, started)) = self.inflight.remove(&tx_id) {
                                    self.completions.borrow_mut().push_back(ClientCompletion {
                                        op,
                                        started,
                                        finished: now,
                                        outcome: Err(HyperProvError::Rejected(error.to_string())),
                                    });
                                }
                            }
                            GatewayEvent::QueryDone { tx_id, result, .. } => {
                                if let Some((op, started)) = self.inflight.remove(&tx_id) {
                                    let outcome = match result {
                                        Ok(bytes) => Ok(OpOutput::Keys(vec![format!(
                                            "{} bytes",
                                            bytes.len()
                                        )])),
                                        Err(error) => {
                                            Err(HyperProvError::Rejected(error.to_string()))
                                        }
                                    };
                                    self.completions.borrow_mut().push_back(ClientCompletion {
                                        op,
                                        started,
                                        finished: now,
                                        outcome,
                                    });
                                }
                            }
                        }
                    }
                }
                NodeMsg::Store(_) => {}
            },
            Event::Timer { token } => {
                // Gateway CPU charges (hashing, signing) release here.
                let _ = self.harness.on_timer(ctx, token);
            }
        }
    }
}

/// A built on-chain-baseline network.
pub struct OnChainNetwork {
    /// The simulation.
    pub sim: Simulation<NodeMsg>,
    /// Peer actor ids.
    pub peers: Vec<ActorId>,
    /// Orderer actor id.
    pub orderer: ActorId,
    /// Client actor ids.
    pub clients: Vec<ActorId>,
    /// Per-client completion queues.
    pub completions: Vec<CompletionQueue>,
    /// Shared peer ledgers.
    pub ledgers: Vec<Rc<RefCell<Committer>>>,
}

impl OnChainNetwork {
    /// Builds the baseline network from the same configuration type the
    /// real system uses (storage device is ignored — there is no storage
    /// node; actor layout: peers `0..P`, orderer `P`, clients `P+1...`).
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no peers or no clients.
    pub fn build(config: &NetworkConfig) -> Self {
        assert!(!config.peer_devices.is_empty());
        assert!(!config.client_devices.is_empty());
        let n_peers = config.peer_devices.len();

        let mut msp_builder = MspBuilder::new(config.seed);
        let peer_identities: Vec<_> = (0..n_peers)
            .map(|i| msp_builder.enroll(&format!("peer{i}"), &MspId::new(format!("org{}", i + 1))))
            .collect();
        let client_identities: Vec<_> = (0..config.client_devices.len())
            .map(|i| {
                msp_builder.enroll(
                    &format!("client{i}"),
                    &MspId::new(format!("org{}", (i % n_peers) + 1)),
                )
            })
            .collect();
        let msp = msp_builder.build();

        let mut registry = ChaincodeRegistry::new();
        registry.install(Arc::new(OnChainProvChaincode::new()));

        let peer_ids: Vec<ActorId> = (0..n_peers as u32).map(ActorId).collect();
        let orderer_id = ActorId(n_peers as u32);
        let client_ids: Vec<ActorId> = (0..config.client_devices.len() as u32)
            .map(|i| ActorId(n_peers as u32 + 1 + i))
            .collect();

        let mut sim: Simulation<NodeMsg> = Simulation::new(config.seed);
        let mut ledgers = Vec::new();
        for (i, identity) in peer_identities.iter().enumerate() {
            // The committer's channel must match the gateways' channel:
            // endorsing peers route proposals by proposal channel.
            let committer = Rc::new(RefCell::new(Committer::for_channel(
                "onchain-channel".into(),
                msp.clone(),
                ChannelPolicies::new(config.policy.clone()),
            )));
            ledgers.push(committer.clone());
            let mut actor = PeerActor::<NodeMsg>::new(
                identity.clone(),
                registry.clone(),
                committer,
                config.costs,
                format!("peer{i}"),
            );
            if let Some(queue) = config.peer_queue {
                actor = actor.with_queue(queue);
            }
            for (c, &cid) in client_ids.iter().enumerate() {
                if c % n_peers == i {
                    actor.subscribe(cid);
                }
            }
            let id = sim.add_actor_with_speed(Box::new(actor), config.peer_devices[i].cpu_speed);
            debug_assert_eq!(id, peer_ids[i]);
        }
        let mut orderer_actor = SoloOrdererActor::<NodeMsg>::for_channel(
            "onchain-channel".into(),
            config.batch,
            peer_ids.clone(),
            config.costs,
        );
        if let Some(queue) = config.orderer_queue {
            orderer_actor = orderer_actor.with_queue(queue);
        }
        let id = sim.add_actor_with_speed(Box::new(orderer_actor), config.orderer_device.cpu_speed);
        debug_assert_eq!(id, orderer_id);

        let mut completions = Vec::new();
        for (i, identity) in client_identities.iter().enumerate() {
            let home = i % n_peers;
            let mut endorsers = vec![peer_ids[home]];
            endorsers.extend(peer_ids.iter().copied().filter(|&p| p != peer_ids[home]));
            let gateway = Gateway::new(
                identity.clone(),
                "onchain-channel",
                endorsers,
                orderer_id,
                config.endorsements_needed,
                config.costs,
            );
            let (client, queue) = OnChainClient::new(gateway);
            let id = sim.add_actor_with_speed(Box::new(client), config.client_devices[i].cpu_speed);
            debug_assert_eq!(id, client_ids[i]);
            completions.push(queue);
        }

        // Pairwise links.
        let devices: Vec<_> = config
            .peer_devices
            .iter()
            .chain(std::iter::once(&config.orderer_device))
            .chain(config.client_devices.iter())
            .cloned()
            .collect();
        for (i, da) in devices.iter().enumerate() {
            for (j, db) in devices.iter().enumerate() {
                if i != j {
                    sim.network_mut().set_link(
                        ActorId(i as u32),
                        ActorId(j as u32),
                        link_between(da, db),
                    );
                }
            }
        }

        OnChainNetwork {
            sim,
            peers: peer_ids,
            orderer: orderer_id,
            clients: client_ids,
            completions,
            ledgers,
        }
    }
}

impl std::fmt::Debug for OnChainNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnChainNetwork")
            .field("peers", &self.peers.len())
            .field("clients", &self.clients.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperprov::OpId;
    use hyperprov_sim::SimDuration;

    #[test]
    fn onchain_post_commits_with_full_payload() {
        let config = NetworkConfig::desktop(1);
        let mut net = OnChainNetwork::build(&config);
        net.sim.inject_message(
            net.clients[0],
            NodeMsg::Client(ClientCommand::StoreData {
                key: "item".into(),
                data: vec![9u8; 50_000],
                parents: vec![],
                metadata: vec![],
                op: OpId(1),
            }),
        );
        net.sim
            .run_until(net.sim.now() + SimDuration::from_secs(30));
        let completion = net.completions[0].borrow_mut().pop_front().unwrap();
        assert!(completion.outcome.is_ok(), "{:?}", completion.outcome);
        // The payload is in every peer's state database.
        for ledger in &net.ledgers {
            let ledger = ledger.borrow();
            assert!(ledger.state().value_bytes() > 50_000);
        }
    }

    #[test]
    fn onchain_blocks_grow_with_payload() {
        let run = |size: usize| {
            // Cut one block per transaction so the batch timeout does not
            // mask the payload cost.
            let config = NetworkConfig::desktop(1).with_batch(hyperprov_fabric::BatchConfig {
                max_message_count: 1,
                ..hyperprov_fabric::BatchConfig::default()
            });
            let mut net = OnChainNetwork::build(&config);
            net.sim.inject_message(
                net.clients[0],
                NodeMsg::Client(ClientCommand::StoreData {
                    key: "item".into(),
                    data: vec![1u8; size],
                    parents: vec![],
                    metadata: vec![],
                    op: OpId(1),
                }),
            );
            net.sim
                .run_until(net.sim.now() + SimDuration::from_secs(30));
            let completion = net.completions[0].borrow_mut().pop_front().unwrap();
            completion.latency()
        };
        let small = run(1_000);
        let large = run(4_000_000);
        assert!(large > small, "large={large} small={small}");
    }
}
