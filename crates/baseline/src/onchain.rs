//! The on-chain-data baseline: HyperProv without off-chain storage.
//!
//! HyperProv's design "limits recording only provenance metadata in the
//! blockchain while moving actual data to off-chain storage". This
//! baseline removes that design choice — the full payload travels through
//! endorsement, ordering and commit and is replicated into every peer's
//! state database — so the benches can show why the paper's choice
//! matters: block sizes, commit costs and network traffic all grow with
//! the item size, collapsing throughput for large items.

use hyperprov_fabric::{Chaincode, ChaincodeError, ChaincodeStub};
use hyperprov_ledger::{Digest, Encode, Encoder};

/// Namespace of the on-chain-data contract.
pub const ONCHAIN_NAME: &str = "onchain-prov";

/// A provenance contract that stores the payload itself on-chain.
///
/// Functions: `post <key> <payload>` and `get <key>` (returns checksum
/// header plus payload).
#[derive(Debug, Clone, Default)]
pub struct OnChainProvChaincode;

impl OnChainProvChaincode {
    /// Creates the contract.
    pub fn new() -> Self {
        OnChainProvChaincode
    }
}

impl Chaincode for OnChainProvChaincode {
    fn name(&self) -> &str {
        ONCHAIN_NAME
    }

    fn invoke(&self, stub: &mut ChaincodeStub<'_>) -> Result<Vec<u8>, ChaincodeError> {
        match stub.function() {
            "post" => {
                let key = stub.arg_str(0)?.to_owned();
                let payload = stub.arg_bytes(1)?.to_vec();
                // Store checksum header + full payload in state.
                let checksum = Digest::of(&payload);
                let mut enc = Encoder::new();
                enc.put_digest(&checksum);
                enc.put_bytes(&payload);
                stub.put_state(&key, enc.into_bytes());
                Ok(checksum.to_bytes())
            }
            "get" => {
                let key = stub.arg_str(0)?.to_owned();
                stub.get_state(&key).ok_or(ChaincodeError::NotFound(key))
            }
            other => Err(ChaincodeError::UnknownFunction(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperprov_fabric::{MspBuilder, MspId};
    use hyperprov_ledger::{Decoder, HistoryDb, StateDb};

    fn run(
        function: &str,
        args: Vec<Vec<u8>>,
        state: &StateDb,
    ) -> (Result<Vec<u8>, ChaincodeError>, hyperprov_ledger::RwSet) {
        let mut b = MspBuilder::new(1);
        let cert = b.enroll("c", &MspId::new("org1")).certificate().clone();
        let history = HistoryDb::new();
        let mut stub = ChaincodeStub::new(ONCHAIN_NAME, function, &args, &cert, state, &history);
        let result = OnChainProvChaincode::new().invoke(&mut stub);
        let (rwset, _, _) = stub.into_results();
        (result, rwset)
    }

    #[test]
    fn post_writes_full_payload_to_state() {
        let state = StateDb::new();
        let payload = vec![7u8; 10_000];
        let (result, rwset) = run("post", vec![b"k".to_vec(), payload.clone()], &state);
        let checksum = <Digest as hyperprov_ledger::Decode>::from_bytes(&result.unwrap()).unwrap();
        assert_eq!(checksum, Digest::of(&payload));
        // The write set carries the whole payload — the cost HyperProv's
        // off-chain design avoids.
        assert!(rwset.write_bytes() > 10_000);
    }

    #[test]
    fn get_round_trips_payload() {
        let mut state = StateDb::new();
        let payload = b"the payload".to_vec();
        let (result, rwset) = run("post", vec![b"k".to_vec(), payload.clone()], &state);
        result.unwrap();
        state.apply_writes(&rwset.writes, hyperprov_ledger::Version::new(1, 0));
        let (result, _) = run("get", vec![b"k".to_vec()], &state);
        let bytes = result.unwrap();
        let mut dec = Decoder::new(&bytes);
        let checksum = dec.get_digest().unwrap();
        let back = dec.get_bytes().unwrap();
        assert_eq!(checksum, Digest::of(&payload));
        assert_eq!(back, payload);
    }

    #[test]
    fn missing_key_and_function_rejected() {
        let state = StateDb::new();
        let (result, _) = run("get", vec![b"ghost".to_vec()], &state);
        assert!(matches!(result, Err(ChaincodeError::NotFound(_))));
        let (result, _) = run("nope", vec![], &state);
        assert!(matches!(result, Err(ChaincodeError::UnknownFunction(_))));
    }
}
