//! Network model: point-to-point links with latency, bandwidth, jitter and
//! fault injection (partitions, loss).
//!
//! Every ordered pair of actors communicates over a logical link. A link
//! serialises transfers (a second message queues behind the first), then
//! adds propagation latency plus optional uniform jitter. This reproduces
//! the first-order behaviour of the paper's switched LAN: small messages are
//! latency-bound, large off-chain transfers are bandwidth-bound.

use std::collections::{HashMap, HashSet};

use rand::Rng;

use crate::engine::ActorId;
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// Static parameters of a point-to-point link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Bandwidth in bits per second; `u64::MAX` disables the transfer cost.
    pub bandwidth_bps: u64,
    /// Uniform jitter as a fraction of latency (0.0 = none, 0.5 = up to
    /// +/-50 % of the latency, clamped at zero).
    pub jitter_frac: f64,
}

impl LinkSpec {
    /// A LAN-class link: 100 us latency, 1 Gbit/s, no jitter.
    pub fn lan() -> Self {
        LinkSpec {
            latency: SimDuration::from_micros(100),
            bandwidth_bps: 1_000_000_000,
            jitter_frac: 0.0,
        }
    }

    /// An instantaneous link used for co-located processes.
    pub fn local() -> Self {
        LinkSpec {
            latency: SimDuration::ZERO,
            bandwidth_bps: u64::MAX,
            jitter_frac: 0.0,
        }
    }

    /// Serialisation (transfer) time of `bytes` over this link.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        if self.bandwidth_bps == u64::MAX {
            return SimDuration::ZERO;
        }
        let bits = bytes.saturating_mul(8);
        SimDuration::from_secs_f64(bits as f64 / self.bandwidth_bps as f64)
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec::lan()
    }
}

/// The outcome of offering a message to the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Message arrives at the given instant.
    At(SimTime),
    /// Message is dropped (partition or random loss).
    Dropped,
}

/// Mutable network state shared by all links.
#[derive(Debug, Default)]
pub struct Network {
    default_link: LinkSpec,
    overrides: HashMap<(ActorId, ActorId), LinkSpec>,
    busy_until: HashMap<(ActorId, ActorId), SimTime>,
    blocked: HashSet<(ActorId, ActorId)>,
    loss_prob: f64,
    delivered: u64,
    dropped: u64,
    bytes_sent: u64,
}

impl Network {
    /// Creates a network where every pair uses `default_link`.
    pub fn new(default_link: LinkSpec) -> Self {
        Network {
            default_link,
            ..Network::default()
        }
    }

    /// Overrides the link used from `src` to `dst` (one direction).
    pub fn set_link(&mut self, src: ActorId, dst: ActorId, spec: LinkSpec) {
        self.overrides.insert((src, dst), spec);
    }

    /// Overrides the link in both directions.
    pub fn set_link_symmetric(&mut self, a: ActorId, b: ActorId, spec: LinkSpec) {
        self.set_link(a, b, spec);
        self.set_link(b, a, spec);
    }

    /// Replaces the default link.
    pub fn set_default_link(&mut self, spec: LinkSpec) {
        self.default_link = spec;
    }

    /// The link spec in effect from `src` to `dst`.
    pub fn link(&self, src: ActorId, dst: ActorId) -> LinkSpec {
        self.overrides
            .get(&(src, dst))
            .copied()
            .unwrap_or(self.default_link)
    }

    /// Sets the probability in `[0, 1]` that any message is silently lost.
    pub fn set_loss_probability(&mut self, p: f64) {
        self.loss_prob = p.clamp(0.0, 1.0);
    }

    /// Blocks traffic between `a` and `b` in both directions.
    pub fn partition(&mut self, a: ActorId, b: ActorId) {
        self.blocked.insert((a, b));
        self.blocked.insert((b, a));
    }

    /// Blocks all traffic between the two groups (both directions).
    pub fn partition_groups(&mut self, left: &[ActorId], right: &[ActorId]) {
        for &l in left {
            for &r in right {
                self.partition(l, r);
            }
        }
    }

    /// Restores traffic between `a` and `b`.
    pub fn heal(&mut self, a: ActorId, b: ActorId) {
        self.blocked.remove(&(a, b));
        self.blocked.remove(&(b, a));
    }

    /// Removes every partition.
    pub fn heal_all(&mut self) {
        self.blocked.clear();
    }

    /// True if traffic from `src` to `dst` is currently blocked.
    pub fn is_blocked(&self, src: ActorId, dst: ActorId) -> bool {
        self.blocked.contains(&(src, dst))
    }

    /// Offers a `bytes`-sized message to the link at time `now`, returning
    /// when (or whether) it is delivered. Advances the link's queue state.
    pub fn offer(
        &mut self,
        now: SimTime,
        src: ActorId,
        dst: ActorId,
        bytes: u64,
        rng: &mut DetRng,
    ) -> Delivery {
        if self.is_blocked(src, dst) {
            self.dropped += 1;
            return Delivery::Dropped;
        }
        if self.loss_prob > 0.0 && rng.gen::<f64>() < self.loss_prob {
            self.dropped += 1;
            return Delivery::Dropped;
        }
        let spec = self.link(src, dst);
        let busy = self
            .busy_until
            .get(&(src, dst))
            .copied()
            .unwrap_or(SimTime::ZERO);
        let start = if busy > now { busy } else { now };
        let done_sending = start + spec.transfer_time(bytes);
        self.busy_until.insert((src, dst), done_sending);
        let mut latency = spec.latency;
        if spec.jitter_frac > 0.0 {
            let u: f64 = rng.gen_range(-1.0..=1.0);
            let factor = (1.0 + spec.jitter_frac * u).max(0.0);
            latency = latency.mul_f64(factor);
        }
        self.delivered += 1;
        self.bytes_sent = self.bytes_sent.saturating_add(bytes);
        Delivery::At(done_sending + latency)
    }

    /// Number of messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of messages dropped so far (partitions + loss).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total payload bytes accepted by the network so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids() -> (ActorId, ActorId) {
        (ActorId(0), ActorId(1))
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let spec = LinkSpec {
            latency: SimDuration::ZERO,
            bandwidth_bps: 8_000, // 1000 bytes/s
            jitter_frac: 0.0,
        };
        assert_eq!(spec.transfer_time(1000), SimDuration::from_secs(1));
        assert_eq!(spec.transfer_time(0), SimDuration::ZERO);
        assert_eq!(LinkSpec::local().transfer_time(1 << 30), SimDuration::ZERO);
    }

    #[test]
    fn latency_only_delivery() {
        let (a, b) = ids();
        let mut net = Network::new(LinkSpec {
            latency: SimDuration::from_millis(1),
            bandwidth_bps: u64::MAX,
            jitter_frac: 0.0,
        });
        let mut rng = DetRng::new(1);
        match net.offer(SimTime::ZERO, a, b, 100, &mut rng) {
            Delivery::At(t) => assert_eq!(t, SimTime::from_nanos(1_000_000)),
            Delivery::Dropped => panic!("unexpected drop"),
        }
    }

    #[test]
    fn back_to_back_messages_serialize() {
        let (a, b) = ids();
        let mut net = Network::new(LinkSpec {
            latency: SimDuration::ZERO,
            bandwidth_bps: 8_000, // 1000 bytes/s
            jitter_frac: 0.0,
        });
        let mut rng = DetRng::new(1);
        let d1 = net.offer(SimTime::ZERO, a, b, 1000, &mut rng);
        let d2 = net.offer(SimTime::ZERO, a, b, 1000, &mut rng);
        assert_eq!(d1, Delivery::At(SimTime::from_secs(1)));
        assert_eq!(d2, Delivery::At(SimTime::from_secs(2)));
        // Reverse direction has its own queue.
        let d3 = net.offer(SimTime::ZERO, b, a, 1000, &mut rng);
        assert_eq!(d3, Delivery::At(SimTime::from_secs(1)));
    }

    #[test]
    fn partition_drops_and_heals() {
        let (a, b) = ids();
        let mut net = Network::new(LinkSpec::local());
        let mut rng = DetRng::new(1);
        net.partition(a, b);
        assert!(net.is_blocked(a, b) && net.is_blocked(b, a));
        assert_eq!(
            net.offer(SimTime::ZERO, a, b, 1, &mut rng),
            Delivery::Dropped
        );
        net.heal(a, b);
        assert!(matches!(
            net.offer(SimTime::ZERO, a, b, 1, &mut rng),
            Delivery::At(_)
        ));
        assert_eq!(net.dropped(), 1);
        assert_eq!(net.delivered(), 1);
    }

    #[test]
    fn partition_groups_blocks_cross_traffic_only() {
        let ids: Vec<ActorId> = (0..4).map(ActorId).collect();
        let mut net = Network::new(LinkSpec::local());
        net.partition_groups(&ids[..2], &ids[2..]);
        assert!(net.is_blocked(ids[0], ids[2]));
        assert!(net.is_blocked(ids[3], ids[1]));
        assert!(!net.is_blocked(ids[0], ids[1]));
        assert!(!net.is_blocked(ids[2], ids[3]));
        net.heal_all();
        assert!(!net.is_blocked(ids[0], ids[2]));
    }

    #[test]
    fn loss_probability_one_drops_everything() {
        let (a, b) = ids();
        let mut net = Network::new(LinkSpec::local());
        net.set_loss_probability(1.0);
        let mut rng = DetRng::new(1);
        for _ in 0..10 {
            assert_eq!(
                net.offer(SimTime::ZERO, a, b, 1, &mut rng),
                Delivery::Dropped
            );
        }
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let (a, b) = ids();
        let mut net = Network::new(LinkSpec {
            latency: SimDuration::from_millis(10),
            bandwidth_bps: u64::MAX,
            jitter_frac: 0.5,
        });
        let mut rng = DetRng::new(42);
        for _ in 0..200 {
            match net.offer(SimTime::ZERO, a, b, 1, &mut rng) {
                Delivery::At(t) => {
                    let ns = t.as_nanos();
                    assert!((5_000_000..=15_000_000).contains(&ns), "{ns}");
                }
                Delivery::Dropped => panic!("no loss configured"),
            }
        }
    }

    #[test]
    fn per_pair_override_applies_one_direction() {
        let (a, b) = ids();
        let mut net = Network::new(LinkSpec::local());
        net.set_link(
            a,
            b,
            LinkSpec {
                latency: SimDuration::from_secs(1),
                bandwidth_bps: u64::MAX,
                jitter_frac: 0.0,
            },
        );
        let mut rng = DetRng::new(1);
        assert_eq!(
            net.offer(SimTime::ZERO, a, b, 1, &mut rng),
            Delivery::At(SimTime::from_secs(1))
        );
        assert_eq!(
            net.offer(SimTime::ZERO, b, a, 1, &mut rng),
            Delivery::At(SimTime::ZERO)
        );
    }
}
