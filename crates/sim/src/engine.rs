//! The discrete-event engine: actors, events, and the virtual-time loop.
//!
//! Components (peers, orderers, clients, storage nodes) implement [`Actor`]
//! and exchange messages of a user-chosen type `M` through a
//! [`Simulation`]. The engine owns the event queue, the [`Network`] model,
//! one [`CpuResource`] and one forked [`DetRng`] per actor, and a shared
//! [`Metrics`] registry.
//!
//! Execution is fully deterministic: events are ordered by
//! `(time, sequence-number)` and all randomness flows from the simulation
//! seed.

use crate::cpu::CpuResource;
use crate::equeue::{EventQueue, QueueItem};
use crate::fxhash::FxHashSet;
use crate::metrics::Metrics;
use crate::net::{Delivery, Network};
use crate::profile::{HotCounters, SimProfiler};
use crate::rng::DetRng;
use crate::slo::{SloMonitor, SloSpec};
use crate::time::{SimDuration, SimTime};
use crate::trace::{SpanId, Tracer, TracerConfig};

/// Identifies an actor registered with a [`Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub u32);

impl std::fmt::Display for ActorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "actor#{}", self.0)
    }
}

/// Handle to a pending timer, usable to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

/// An event delivered to an actor.
#[derive(Debug)]
pub enum Event<M> {
    /// A message from another actor (possibly itself) via the network.
    Message {
        /// The sending actor.
        src: ActorId,
        /// The payload.
        msg: M,
    },
    /// A timer set with [`Context::set_timer`] or the completion of CPU work
    /// submitted with [`Context::execute`] fired.
    Timer {
        /// The token the actor associated with the timer.
        token: u64,
    },
}

/// Embeds one component's message type into a larger application message
/// enum, so independently-written actors (blockchain peers, storage nodes,
/// application clients) can share one simulation.
pub trait Carries<T>: Sized {
    /// Wraps an inner message.
    fn wrap(inner: T) -> Self;
    /// Extracts the inner message, or gives the value back.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` when the value carries a different payload kind.
    fn peel(self) -> Result<T, Self>;
}

/// A simulation participant.
///
/// Actors are single-threaded state machines: the engine calls
/// [`Actor::on_event`] once per delivered event, in virtual-time order.
pub trait Actor<M> {
    /// Handles one event. Use `ctx` to read the clock, send messages,
    /// set timers, run CPU work and record metrics.
    fn on_event(&mut self, ctx: &mut Context<'_, M>, event: Event<M>);

    /// Called once when this actor is restarted after a crash (see
    /// [`Context::crash`] / [`Context::restart`]). The actor should
    /// rebuild volatile state from whatever it models as durable and
    /// re-arm any periodic timers; all events queued before or during
    /// the crash window have already been dropped.
    fn on_restart(&mut self, _ctx: &mut Context<'_, M>) {}

    /// Optional [`std::any::Any`] access for host-side inspection
    /// (experiment drivers and tests peeking at actor state via
    /// [`Simulation::actor_ref`]). Actors that opt in override this with
    /// `Some(self)`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// Queue length below which a crash skips the lazy stale-event sweep:
/// tiny queues drain stale entries cheaply at pop time anyway.
const COMPACT_MIN_QUEUE: usize = 1024;

/// Engine state shared with actors during event handling.
pub struct Kernel<M> {
    now: SimTime,
    seq: u64,
    queue: EventQueue<M>,
    network: Network,
    cpus: Vec<CpuResource>,
    rngs: Vec<DetRng>,
    metrics: Metrics,
    tracer: Tracer,
    slo: SloMonitor,
    hot: HotCounters,
    cancelled: FxHashSet<u64>,
    next_timer: u64,
    stopped: bool,
    events_processed: u64,
    /// Per-actor crash flag; events for a crashed actor are dropped.
    crashed: Vec<bool>,
    /// Per-actor crash epoch, bumped on every crash *and* restart so that
    /// anything enqueued before the restart is recognisably stale.
    epochs: Vec<u64>,
}

impl<M> Kernel<M> {
    fn push(&mut self, time: SimTime, target: ActorId, event: Event<M>, timer_id: u64) {
        self.hot.events_enqueued += 1;
        self.seq += 1;
        let epoch = self.epochs[target.0 as usize];
        self.queue.push(QueueItem {
            time,
            seq: self.seq,
            target,
            event,
            timer_id,
            epoch,
            restart: false,
        });
    }

    /// Marks `target` crashed: every event already queued for it (and any
    /// sent while it is down) will be dropped — lazily at pop time, or
    /// eagerly by a compaction sweep when the queue is large enough that
    /// carrying the dead weight would hurt.
    fn crash(&mut self, target: ActorId) {
        let slot = target.0 as usize;
        if self.crashed[slot] {
            return;
        }
        self.crashed[slot] = true;
        self.epochs[slot] += 1;
        self.metrics.incr("fault.crashes", 1);
        self.maybe_compact_stale();
    }

    /// Sweeps epoch-guard-stale events out of the queue in one pass,
    /// applying exactly the checks (and metric counts) that pop-time
    /// dropping would have applied, so observable totals are unchanged.
    fn maybe_compact_stale(&mut self) {
        if self.queue.len() < COMPACT_MIN_QUEUE {
            return;
        }
        let crashed = &self.crashed;
        let epochs = &self.epochs;
        let cancelled = &mut self.cancelled;
        let mut dropped = 0u64;
        self.queue.compact(|item| {
            if item.restart {
                return true;
            }
            if item.timer_id != 0 && cancelled.remove(&item.timer_id) {
                return false; // cancelled timer: silently discarded
            }
            let slot = item.target.0 as usize;
            if crashed[slot] || item.epoch != epochs[slot] {
                dropped += 1;
                return false;
            }
            true
        });
        if dropped > 0 {
            self.metrics.incr("fault.dropped_events", dropped);
        }
    }

    /// Schedules a restart marker for `target` at the current instant.
    fn restart(&mut self, target: ActorId) {
        let slot = target.0 as usize;
        if !self.crashed[slot] {
            return;
        }
        self.seq += 1;
        self.queue.push(QueueItem {
            time: self.now,
            seq: self.seq,
            target,
            event: Event::Timer { token: 0 },
            timer_id: 0,
            epoch: 0,
            restart: true,
        });
    }
}

/// Capabilities available to an actor while it handles an event.
pub struct Context<'a, M> {
    id: ActorId,
    kernel: &'a mut Kernel<M>,
}

impl<M> Context<'_, M> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.now
    }

    /// This actor's id.
    pub fn id(&self) -> ActorId {
        self.id
    }

    /// Sends `msg` to `dst` through the network, accounting `bytes` of
    /// payload against the link. Dropped messages (partition/loss) are
    /// counted under the `net.dropped` metric.
    pub fn send(&mut self, dst: ActorId, bytes: u64, msg: M) {
        let src = self.id;
        self.kernel.hot.messages_sent += 1;
        let rng = &mut self.kernel.rngs[src.0 as usize];
        match self
            .kernel
            .network
            .offer(self.kernel.now, src, dst, bytes, rng)
        {
            Delivery::At(t) => self.kernel.push(t, dst, Event::Message { src, msg }, 0),
            Delivery::Dropped => self.kernel.metrics.incr("net.dropped", 1),
        }
    }

    /// Delivers `msg` to `dst` at the current instant, bypassing the
    /// network. Intended for co-located processes (e.g. a client embedded
    /// in a peer's node).
    pub fn send_local(&mut self, dst: ActorId, msg: M) {
        let src = self.id;
        self.kernel
            .push(self.kernel.now, dst, Event::Message { src, msg }, 0);
    }

    /// Re-enqueues a message to this actor at the current instant,
    /// preserving the original sender. Used by admission queues releasing
    /// parked (blocked) work: the message re-enters [`Actor::on_event`]
    /// after every event already queued at this instant.
    pub fn requeue(&mut self, src: ActorId, msg: M) {
        let target = self.id;
        self.kernel
            .push(self.kernel.now, target, Event::Message { src, msg }, 0);
    }

    /// Fires [`Event::Timer`] with `token` on this actor after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) -> TimerId {
        self.kernel.hot.timers_set += 1;
        self.kernel.next_timer += 1;
        let id = self.kernel.next_timer;
        let at = self.kernel.now + delay;
        let target = self.id;
        self.kernel.push(at, target, Event::Timer { token }, id);
        TimerId(id)
    }

    /// Cancels a pending timer. Cancelling an already-fired timer is a
    /// no-op.
    pub fn cancel_timer(&mut self, timer: TimerId) {
        self.kernel.cancelled.insert(timer.0);
    }

    /// Submits CPU work of the given reference cost to this actor's CPU;
    /// [`Event::Timer`] with `token` fires when the work completes (after
    /// queueing behind earlier work).
    pub fn execute(&mut self, reference_cost: SimDuration, token: u64) -> TimerId {
        self.kernel.hot.cpu_jobs += 1;
        let (_, end) =
            self.kernel.cpus[self.id.0 as usize].execute(self.kernel.now, reference_cost);
        self.kernel.next_timer += 1;
        let id = self.kernel.next_timer;
        let target = self.id;
        self.kernel.push(end, target, Event::Timer { token }, id);
        TimerId(id)
    }

    /// Submits a batch of independent CPU work items to this actor's CPU
    /// lanes (see [`CpuResource::execute_parallel`]); [`Event::Timer`]
    /// with `token` fires at the batch makespan. Returns the timer and
    /// the makespan instant.
    pub fn execute_parallel(&mut self, costs: &[SimDuration], token: u64) -> (TimerId, SimTime) {
        self.kernel.hot.cpu_jobs += 1;
        let end = self.kernel.cpus[self.id.0 as usize].execute_parallel(self.kernel.now, costs);
        self.kernel.next_timer += 1;
        let id = self.kernel.next_timer;
        let target = self.id;
        self.kernel.push(end, target, Event::Timer { token }, id);
        (TimerId(id), end)
    }

    /// This actor's deterministic random stream.
    pub fn rng(&mut self) -> &mut DetRng {
        &mut self.kernel.rngs[self.id.0 as usize]
    }

    /// The shared metrics registry.
    pub fn metrics(&mut self) -> &mut Metrics {
        &mut self.kernel.metrics
    }

    /// The shared span tracer.
    pub fn tracer(&mut self) -> &mut Tracer {
        &mut self.kernel.tracer
    }

    /// Opens a tracing span for `(trace, stage, detail)` at the current
    /// virtual time. See [`Tracer::span_start`].
    pub fn span_start(&mut self, trace: &str, stage: &'static str, detail: &str) -> SpanId {
        let now = self.kernel.now;
        self.kernel.tracer.span_start(now, trace, stage, detail)
    }

    /// Closes the matching open span at the current virtual time,
    /// returning its duration. See [`Tracer::span_end`]. Closed spans
    /// also feed any latency-quantile SLOs watching this stage (see
    /// [`Simulation::set_slos`]).
    pub fn span_end(
        &mut self,
        trace: &str,
        stage: &'static str,
        detail: &str,
    ) -> Option<SimDuration> {
        let now = self.kernel.now;
        let duration = self.kernel.tracer.span_end(now, trace, stage, detail);
        if let Some(d) = duration {
            if self.kernel.slo.is_active() {
                self.kernel.slo.observe_latency(now, stage, d);
            }
        }
        duration
    }

    /// Feeds one event tagged `source` to the SLO monitor (goodput and
    /// error-rate objectives). A no-op when no SLOs are installed.
    pub fn slo_event(&mut self, source: &str) {
        self.slo_event_n(source, 1);
    }

    /// Feeds `n` events tagged `source` to the SLO monitor.
    pub fn slo_event_n(&mut self, source: &str, n: u64) {
        if self.kernel.slo.is_active() {
            let now = self.kernel.now;
            self.kernel.slo.observe_event_n(now, source, n);
        }
    }

    /// Records a point trace event at the current virtual time. See
    /// [`Tracer::event`].
    pub fn trace_event(&mut self, trace: &str, name: &'static str, detail: &str) {
        let now = self.kernel.now;
        self.kernel.tracer.event(now, trace, name, detail);
    }

    /// Read access to this actor's CPU (e.g. to check backlog).
    pub fn cpu(&self) -> &CpuResource {
        &self.kernel.cpus[self.id.0 as usize]
    }

    /// Mutable access to the network, for fault-injection actors.
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.kernel.network
    }

    /// Crashes `target`: its queued messages and pending timers are
    /// dropped, as is anything sent to it while down. A no-op if the
    /// actor is already crashed. Counted under `fault.crashes`.
    pub fn crash(&mut self, target: ActorId) {
        self.kernel.crash(target);
    }

    /// Restarts a crashed `target` at the current instant: the engine
    /// calls [`Actor::on_restart`] so it can rebuild from durable state.
    /// A no-op if the actor is not crashed. Counted under
    /// `fault.restarts`.
    pub fn restart(&mut self, target: ActorId) {
        self.kernel.restart(target);
    }

    /// True if `target` is currently crashed.
    pub fn is_crashed(&self, target: ActorId) -> bool {
        self.kernel.crashed[target.0 as usize]
    }

    /// Requests that the simulation stop after the current event.
    pub fn stop(&mut self) {
        self.kernel.stopped = true;
    }
}

/// A deterministic discrete-event simulation over message type `M`.
///
/// # Examples
///
/// ```
/// use hyperprov_sim::{Actor, Context, Event, SimDuration, Simulation};
///
/// struct Echo;
/// impl Actor<String> for Echo {
///     fn on_event(&mut self, ctx: &mut Context<'_, String>, event: Event<String>) {
///         if let Event::Message { src, msg } = event {
///             ctx.metrics().incr("echoed", 1);
///             ctx.send(src, msg.len() as u64, msg);
///         }
///     }
/// }
///
/// struct Starter { peer: hyperprov_sim::ActorId }
/// impl Actor<String> for Starter {
///     fn on_event(&mut self, ctx: &mut Context<'_, String>, event: Event<String>) {
///         match event {
///             Event::Timer { .. } => ctx.send(self.peer, 5, "hello".into()),
///             Event::Message { .. } => ctx.stop(),
///         }
///     }
/// }
///
/// let mut sim = Simulation::new(1);
/// let echo = sim.add_actor(Box::new(Echo));
/// let starter = sim.add_actor(Box::new(Starter { peer: echo }));
/// sim.start_timer(starter, SimDuration::ZERO, 0);
/// sim.run();
/// assert_eq!(sim.metrics().counter("echoed"), 1);
/// ```
pub struct Simulation<M> {
    kernel: Kernel<M>,
    actors: Vec<Option<Box<dyn Actor<M>>>>,
    /// Per-actor profiling label (e.g. `"peer"`); parallel to `actors`.
    labels: Vec<String>,
    profiler: SimProfiler,
    root_rng: DetRng,
}

impl<M> Simulation<M> {
    /// Creates an empty simulation with the given random seed.
    pub fn new(seed: u64) -> Self {
        Simulation {
            kernel: Kernel {
                now: SimTime::ZERO,
                seq: 0,
                queue: EventQueue::new(),
                network: Network::new(crate::net::LinkSpec::lan()),
                cpus: Vec::new(),
                rngs: Vec::new(),
                metrics: Metrics::new(),
                tracer: Tracer::new(TracerConfig::default()),
                slo: SloMonitor::disabled(),
                hot: HotCounters::default(),
                cancelled: FxHashSet::default(),
                next_timer: 0,
                stopped: false,
                events_processed: 0,
                crashed: Vec::new(),
                epochs: Vec::new(),
            },
            actors: Vec::new(),
            labels: Vec::new(),
            profiler: SimProfiler::new(),
            root_rng: DetRng::new(seed),
        }
    }

    /// Registers an actor with a reference-speed CPU; returns its id.
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M>>) -> ActorId {
        self.add_actor_with_speed(actor, 1.0)
    }

    /// Registers an actor with the given relative CPU speed.
    pub fn add_actor_with_speed(&mut self, actor: Box<dyn Actor<M>>, cpu_speed: f64) -> ActorId {
        self.add_actor_with_cpu(actor, CpuResource::new(cpu_speed))
    }

    /// Registers an actor with a fully specified CPU (speed and lane
    /// count), for multi-core node models.
    pub fn add_actor_with_cpu(&mut self, actor: Box<dyn Actor<M>>, cpu: CpuResource) -> ActorId {
        let id = ActorId(self.actors.len() as u32);
        self.actors.push(Some(actor));
        self.labels.push("actor".to_owned());
        self.kernel.cpus.push(cpu);
        self.kernel.rngs.push(self.root_rng.fork_index(id.0 as u64));
        self.kernel.crashed.push(false);
        self.kernel.epochs.push(0);
        id
    }

    /// Crashes `target` from outside the event loop. See [`Context::crash`].
    pub fn crash_actor(&mut self, target: ActorId) {
        self.kernel.crash(target);
    }

    /// Restarts `target` from outside the event loop. See
    /// [`Context::restart`].
    pub fn restart_actor(&mut self, target: ActorId) {
        self.kernel.restart(target);
    }

    /// True if `target` is currently crashed.
    pub fn is_crashed(&self, target: ActorId) -> bool {
        self.kernel.crashed[target.0 as usize]
    }

    /// Read access to a registered actor (for [`Actor::as_any`]
    /// inspection). `None` for unknown ids or while the actor is being
    /// stepped.
    pub fn actor_ref(&self, id: ActorId) -> Option<&dyn Actor<M>> {
        self.actors
            .get(id.0 as usize)
            .and_then(|slot| slot.as_deref())
    }

    /// Schedules an initial [`Event::Timer`] for `target`.
    pub fn start_timer(&mut self, target: ActorId, delay: SimDuration, token: u64) {
        let at = self.kernel.now + delay;
        self.kernel.push(at, target, Event::Timer { token }, 0);
    }

    /// Injects a message event from outside the simulation (src == dst).
    pub fn inject_message(&mut self, target: ActorId, msg: M) {
        let now = self.kernel.now;
        self.kernel
            .push(now, target, Event::Message { src: target, msg }, 0);
    }

    /// Mutable access to the network, for topology setup and partitions.
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.kernel.network
    }

    /// Read access to the network.
    pub fn network(&self) -> &Network {
        &self.kernel.network
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.kernel.metrics
    }

    /// Mutable access to the metrics registry.
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.kernel.metrics
    }

    /// The span tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.kernel.tracer
    }

    /// Mutable access to the span tracer.
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.kernel.tracer
    }

    /// Replaces the tracer (e.g. to change capacity/sampling, or to
    /// disable tracing entirely with [`Tracer::disabled`]).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.kernel.tracer = tracer;
    }

    /// Installs rolling-window SLOs (see [`SloMonitor`]). Latency
    /// objectives are fed automatically from [`Context::span_end`];
    /// goodput/error objectives from [`Context::slo_event`]. Replaces
    /// any previously installed monitor.
    pub fn set_slos(&mut self, specs: Vec<SloSpec>) {
        self.kernel.slo = SloMonitor::new(specs);
    }

    /// The SLO monitor (empty and inert unless [`Simulation::set_slos`]
    /// was called).
    pub fn slo(&self) -> &SloMonitor {
        &self.kernel.slo
    }

    /// Mutable access to the SLO monitor (e.g. to feed host-driven
    /// observations or advance windows before a mid-run snapshot).
    pub fn slo_mut(&mut self) -> &mut SloMonitor {
        &mut self.kernel.slo
    }

    /// Sets the profiling label for `target` (e.g. `"peer"`,
    /// `"client"`); handler wall time aggregates by this label when the
    /// profiler is enabled. Defaults to `"actor"`.
    pub fn set_actor_label(&mut self, target: ActorId, label: &str) {
        self.labels[target.0 as usize] = label.to_owned();
    }

    /// The profiling label of `target`.
    pub fn actor_label(&self, target: ActorId) -> &str {
        &self.labels[target.0 as usize]
    }

    /// Enables host-side wall-clock profiling of the event loop; the
    /// profiler's run clock starts now. See [`SimProfiler`].
    pub fn enable_profiler(&mut self) {
        self.profiler.enable();
    }

    /// The host-side profiler (disabled and empty by default).
    pub fn profiler(&self) -> &SimProfiler {
        &self.profiler
    }

    /// The kernel's allocation-free hot-path counters.
    pub fn hot_counters(&self) -> HotCounters {
        self.kernel.hot
    }

    /// Read access to an actor's CPU resource (for energy accounting).
    pub fn cpu(&self, id: ActorId) -> &CpuResource {
        &self.kernel.cpus[id.0 as usize]
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.kernel.events_processed
    }

    /// True if an actor called [`Context::stop`].
    pub fn is_stopped(&self) -> bool {
        self.kernel.stopped
    }

    /// Processes a single event. Returns `false` when the queue is empty or
    /// the simulation was stopped.
    pub fn step(&mut self) -> bool {
        if self.kernel.stopped {
            return false;
        }
        loop {
            let item = match self.kernel.queue.pop() {
                Some(item) => item,
                None => return false,
            };
            if item.timer_id != 0 && self.kernel.cancelled.remove(&item.timer_id) {
                continue; // skip cancelled timer
            }
            let slot = item.target.0 as usize;
            if item.restart {
                if !self.kernel.crashed[slot] {
                    continue; // duplicate restart marker
                }
                debug_assert!(item.time >= self.kernel.now, "time went backwards");
                self.kernel.now = item.time;
                self.kernel.events_processed += 1;
                // Bump the epoch so everything enqueued during the down
                // window is also recognisably stale, then revive.
                self.kernel.crashed[slot] = false;
                self.kernel.epochs[slot] += 1;
                self.kernel.metrics.incr("fault.restarts", 1);
                let mut actor = self.actors[slot]
                    .take()
                    .unwrap_or_else(|| panic!("restart for unknown or re-entered {}", item.target));
                {
                    let started = self.profiler.start_handler();
                    let mut ctx = Context {
                        id: item.target,
                        kernel: &mut self.kernel,
                    };
                    actor.on_restart(&mut ctx);
                    self.profiler.end_handler(started, &self.labels[slot]);
                }
                self.actors[slot] = Some(actor);
                return true;
            }
            if self.kernel.crashed[slot] || item.epoch != self.kernel.epochs[slot] {
                // Event for a crashed actor, or scheduled before its
                // latest crash/restart: drop it.
                self.kernel.metrics.incr("fault.dropped_events", 1);
                continue;
            }
            debug_assert!(item.time >= self.kernel.now, "time went backwards");
            self.kernel.now = item.time;
            self.kernel.events_processed += 1;
            let mut actor = self.actors[slot]
                .take()
                .unwrap_or_else(|| panic!("event for unknown or re-entered {}", item.target));
            {
                let started = self.profiler.start_handler();
                let mut ctx = Context {
                    id: item.target,
                    kernel: &mut self.kernel,
                };
                actor.on_event(&mut ctx, item.event);
                self.profiler.end_handler(started, &self.labels[slot]);
            }
            self.actors[slot] = Some(actor);
            return true;
        }
    }

    /// Runs until the queue is empty or an actor stops the simulation.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs events with `time <= limit`; afterwards the clock reads `limit`
    /// (even if the queue still holds later events).
    pub fn run_until(&mut self, limit: SimTime) {
        loop {
            if self.kernel.stopped {
                break;
            }
            match self.kernel.queue.peek_time() {
                Some(time) if time <= limit => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.kernel.now < limit {
            self.kernel.now = limit;
        }
    }

    /// Runs at most `max_events` events; returns how many were processed.
    pub fn run_events(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }
}

impl<M> std::fmt::Debug for Simulation<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.kernel.now)
            .field("actors", &self.actors.len())
            .field("queued", &self.kernel.queue.len())
            .field("events_processed", &self.kernel.events_processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    struct Ponger;
    impl Actor<Msg> for Ponger {
        fn on_event(&mut self, ctx: &mut Context<'_, Msg>, event: Event<Msg>) {
            if let Event::Message {
                src,
                msg: Msg::Ping(n),
            } = event
            {
                ctx.send(src, 8, Msg::Pong(n));
            }
        }
    }

    struct Pinger {
        peer: ActorId,
        remaining: u32,
        received: Vec<u32>,
    }
    impl Actor<Msg> for Pinger {
        fn on_event(&mut self, ctx: &mut Context<'_, Msg>, event: Event<Msg>) {
            match event {
                Event::Timer { .. } if self.remaining > 0 => {
                    self.remaining -= 1;
                    ctx.send(self.peer, 8, Msg::Ping(self.remaining));
                    ctx.set_timer(SimDuration::from_millis(10), 0);
                }
                Event::Message {
                    msg: Msg::Pong(n), ..
                } => {
                    self.received.push(n);
                    let now = ctx.now();
                    ctx.metrics().incr("pongs", 1);
                    ctx.metrics().record("pong.arrival", now.as_nanos());
                }
                _ => {}
            }
        }
    }

    #[test]
    fn ping_pong_round_trips() {
        let mut sim = Simulation::new(7);
        let ponger = sim.add_actor(Box::new(Ponger));
        let pinger = sim.add_actor(Box::new(Pinger {
            peer: ponger,
            remaining: 3,
            received: Vec::new(),
        }));
        sim.start_timer(pinger, SimDuration::ZERO, 0);
        sim.run();
        assert_eq!(sim.metrics().counter("pongs"), 3);
        assert!(sim.now() >= SimTime::from_nanos(200_000)); // 2x latency
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let mut sim = Simulation::new(seed);
            let ponger = sim.add_actor(Box::new(Ponger));
            let pinger = sim.add_actor(Box::new(Pinger {
                peer: ponger,
                remaining: 10,
                received: Vec::new(),
            }));
            sim.network_mut().set_default_link(crate::net::LinkSpec {
                latency: SimDuration::from_micros(500),
                bandwidth_bps: 10_000_000,
                jitter_frac: 0.3,
            });
            sim.start_timer(pinger, SimDuration::ZERO, 0);
            sim.run();
            let arrivals = sim.metrics().histogram("pong.arrival").unwrap().sum();
            (arrivals, sim.events_processed())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0);
    }

    struct TimerCanceller {
        fired: u64,
    }
    impl Actor<()> for TimerCanceller {
        fn on_event(&mut self, ctx: &mut Context<'_, ()>, event: Event<()>) {
            match event {
                Event::Timer { token: 0 } => {
                    let keep = ctx.set_timer(SimDuration::from_millis(1), 1);
                    let drop_ = ctx.set_timer(SimDuration::from_millis(2), 2);
                    let _ = keep;
                    ctx.cancel_timer(drop_);
                }
                Event::Timer { token } => {
                    self.fired += token;
                    ctx.metrics().incr("fired", token);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn cancelled_timers_do_not_fire() {
        let mut sim = Simulation::new(1);
        let a = sim.add_actor(Box::new(TimerCanceller { fired: 0 }));
        sim.start_timer(a, SimDuration::ZERO, 0);
        sim.run();
        assert_eq!(sim.metrics().counter("fired"), 1);
    }

    struct Worker;
    impl Actor<()> for Worker {
        fn on_event(&mut self, ctx: &mut Context<'_, ()>, event: Event<()>) {
            if let Event::Timer { token: 0 } = event {
                ctx.execute(SimDuration::from_millis(50), 1);
                ctx.execute(SimDuration::from_millis(50), 2);
            } else if let Event::Timer { token } = event {
                let now = ctx.now();
                ctx.metrics().push_series("done", now, token as f64);
            }
        }
    }

    #[test]
    fn cpu_work_serialises() {
        let mut sim = Simulation::new(1);
        let w = sim.add_actor_with_speed(Box::new(Worker), 0.5); // half speed
        sim.start_timer(w, SimDuration::ZERO, 0);
        sim.run();
        let s = sim.metrics().series("done").unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].0, SimTime::from_nanos(100_000_000)); // 50ms/0.5
        assert_eq!(s[1].0, SimTime::from_nanos(200_000_000));
        assert_eq!(sim.cpu(w).total_busy(), SimDuration::from_millis(200));
    }

    #[test]
    fn run_until_advances_clock_to_limit() {
        let mut sim: Simulation<()> = Simulation::new(1);
        let a = sim.add_actor(Box::new(TimerCanceller { fired: 0 }));
        sim.start_timer(a, SimDuration::from_secs(10), 0);
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
        assert_eq!(sim.events_processed(), 0);
        sim.run_until(SimTime::from_secs(20));
        assert!(sim.events_processed() > 0);
        assert_eq!(sim.now(), SimTime::from_secs(20));
    }

    #[test]
    fn partition_drops_messages_and_counts() {
        let mut sim = Simulation::new(1);
        let ponger = sim.add_actor(Box::new(Ponger));
        let pinger = sim.add_actor(Box::new(Pinger {
            peer: ponger,
            remaining: 2,
            received: Vec::new(),
        }));
        sim.network_mut().partition(pinger, ponger);
        sim.start_timer(pinger, SimDuration::ZERO, 0);
        sim.run();
        assert_eq!(sim.metrics().counter("pongs"), 0);
        assert_eq!(sim.metrics().counter("net.dropped"), 2);
    }

    struct Crashable {
        restarts: u64,
    }
    impl Actor<Msg> for Crashable {
        fn on_event(&mut self, ctx: &mut Context<'_, Msg>, event: Event<Msg>) {
            match event {
                Event::Message {
                    src,
                    msg: Msg::Ping(n),
                } => {
                    ctx.metrics().incr("handled", 1);
                    ctx.send(src, 8, Msg::Pong(n));
                }
                Event::Timer { .. } => {
                    ctx.metrics().incr("timer_fired", 1);
                }
                _ => {}
            }
        }
        fn on_restart(&mut self, ctx: &mut Context<'_, Msg>) {
            self.restarts += 1;
            ctx.metrics().incr("rebuilt", 1);
        }
    }

    #[test]
    fn crash_drops_queued_events_and_timers() {
        let mut sim = Simulation::new(1);
        let a = sim.add_actor(Box::new(Crashable { restarts: 0 }));
        sim.inject_message(a, Msg::Ping(1));
        sim.start_timer(a, SimDuration::from_millis(5), 7);
        sim.crash_actor(a);
        assert!(sim.is_crashed(a));
        sim.run();
        assert_eq!(sim.metrics().counter("handled"), 0);
        assert_eq!(sim.metrics().counter("timer_fired"), 0);
        assert_eq!(sim.metrics().counter("fault.crashes"), 1);
        assert_eq!(sim.metrics().counter("fault.dropped_events"), 2);
    }

    #[test]
    fn restart_invokes_hook_and_resumes_delivery() {
        let mut sim = Simulation::new(1);
        let a = sim.add_actor(Box::new(Crashable { restarts: 0 }));
        sim.crash_actor(a);
        // Sent while down: dropped even though the restart comes first in
        // wall-clock order below (the send is enqueued under the crash
        // epoch).
        sim.inject_message(a, Msg::Ping(1));
        sim.restart_actor(a);
        sim.run();
        assert!(!sim.is_crashed(a));
        assert_eq!(sim.metrics().counter("rebuilt"), 1);
        assert_eq!(sim.metrics().counter("fault.restarts"), 1);
        assert_eq!(sim.metrics().counter("handled"), 0);
        // Delivery works again after the restart.
        sim.inject_message(a, Msg::Ping(2));
        sim.run();
        assert_eq!(sim.metrics().counter("handled"), 1);
    }

    #[test]
    fn crash_and_restart_are_idempotent() {
        let mut sim = Simulation::new(1);
        let a = sim.add_actor(Box::new(Crashable { restarts: 0 }));
        sim.restart_actor(a); // not crashed: no-op
        sim.crash_actor(a);
        sim.crash_actor(a); // already down: no-op
        sim.restart_actor(a);
        sim.restart_actor(a); // marker deduplicated at pop time
        sim.run();
        assert_eq!(sim.metrics().counter("fault.crashes"), 1);
        assert_eq!(sim.metrics().counter("fault.restarts"), 1);
        assert_eq!(sim.metrics().counter("rebuilt"), 1);
    }

    #[test]
    fn crash_on_large_queue_compacts_stale_events_eagerly() {
        let mut sim = Simulation::new(1);
        let victim = sim.add_actor(Box::new(Crashable { restarts: 0 }));
        let bystander = sim.add_actor(Box::new(Crashable { restarts: 0 }));
        let n = (COMPACT_MIN_QUEUE + 200) as u64;
        for i in 0..n {
            sim.start_timer(victim, SimDuration::from_millis(i + 1), 1);
        }
        sim.start_timer(bystander, SimDuration::from_millis(1), 1);
        sim.crash_actor(victim);
        // The sweep ran at crash time: every stale event is already
        // counted, not left to trickle out at pop time.
        assert_eq!(sim.metrics().counter("fault.dropped_events"), n);
        sim.run();
        // Totals match what pure pop-time dropping would have produced.
        assert_eq!(sim.metrics().counter("fault.dropped_events"), n);
        assert_eq!(sim.metrics().counter("timer_fired"), 1, "bystander ran");
    }

    #[test]
    fn run_events_limits_work() {
        let mut sim = Simulation::new(1);
        let ponger = sim.add_actor(Box::new(Ponger));
        let pinger = sim.add_actor(Box::new(Pinger {
            peer: ponger,
            remaining: 100,
            received: Vec::new(),
        }));
        sim.start_timer(pinger, SimDuration::ZERO, 0);
        let n = sim.run_events(5);
        assert_eq!(n, 5);
    }
}
