//! Rolling-window SLO monitoring on virtual time.
//!
//! An [`SloMonitor`] evaluates named service-level objectives over the
//! course of a run. Three objective shapes cover the campaigns' needs:
//!
//! * **Latency quantile** — "the `q`-quantile of stage `S` must stay at
//!   or below `budget`". Evaluated error-budget style: each observation
//!   either fits the budget or burns it, and the window may spend at most
//!   a `1 - q` fraction of its observations over budget.
//! * **Goodput floor** — "events named `E` must arrive at ≥ `floor`
//!   per second of virtual time".
//! * **Error-rate ceiling** — "of the `ok` and `err` events observed,
//!   the error fraction must stay at or below `ceiling`".
//!
//! Observations land in a ring of fixed-width virtual-time buckets; every
//! time the clock crosses a bucket boundary the window (the most recent
//! `buckets` buckets) is evaluated and one **burn-rate** point is
//! emitted: the fraction of the error budget the window consumed, where
//! `burn > 1.0` means the objective is out of budget. Contiguous
//! out-of-budget evaluations coalesce into **breach windows** with a
//! start and (once the burn drops back) an end instant. At export time a
//! per-objective **verdict** summarises attainment, breach count and
//! total breach time.
//!
//! Everything is driven by virtual time, so two same-seed runs produce
//! byte-identical SLO reports. A monitor with no objectives never
//! allocates and never appears in exports — default-config runs stay
//! byte-identical to pre-SLO releases.

use std::collections::VecDeque;

use crate::histogram::Histogram;
use crate::json::{array, fmt_f64, Obj};
use crate::time::{SimDuration, SimTime};

/// Burn rates are capped here so an empty goodput window (rate zero
/// against a positive floor) stays representable in JSON and plots.
pub const MAX_BURN: f64 = 1e3;

/// What a named objective constrains.
#[derive(Debug, Clone, PartialEq)]
pub enum SloObjective {
    /// The `q`-quantile of latency observations tagged `source` (a span
    /// stage name; see [`SloMonitor::observe_latency`]) must be ≤
    /// `budget`.
    LatencyQuantile {
        /// Latency source: the span stage whose closes feed this SLO.
        source: String,
        /// Target quantile in `(0, 1)`, e.g. `0.95`.
        q: f64,
        /// Latency budget at the quantile.
        budget: SimDuration,
    },
    /// Events tagged `source` must arrive at ≥ `floor_per_sec` events
    /// per second of virtual time, on average over the window.
    GoodputFloor {
        /// Event source fed via [`SloMonitor::observe_event`].
        source: String,
        /// Minimum acceptable event rate (events/second).
        floor_per_sec: f64,
    },
    /// Of the events tagged `ok_source` and `err_source`, the error
    /// fraction must stay ≤ `ceiling`.
    ErrorRateCeiling {
        /// Success-event source.
        ok_source: String,
        /// Failure-event source.
        err_source: String,
        /// Maximum acceptable error fraction in `(0, 1)`.
        ceiling: f64,
    },
}

impl SloObjective {
    /// A one-line human-readable description, used in verdict tables.
    pub fn describe(&self) -> String {
        match self {
            SloObjective::LatencyQuantile { source, q, budget } => {
                format!("{source} p{:.0} <= {budget}", q * 100.0)
            }
            SloObjective::GoodputFloor {
                source,
                floor_per_sec,
            } => format!("{source} >= {floor_per_sec:.1}/s"),
            SloObjective::ErrorRateCeiling {
                err_source,
                ceiling,
                ..
            } => format!("{err_source} rate <= {:.1}%", ceiling * 100.0),
        }
    }

    /// The machine-readable objective kind for JSON exports.
    fn kind(&self) -> &'static str {
        match self {
            SloObjective::LatencyQuantile { .. } => "latency_quantile",
            SloObjective::GoodputFloor { .. } => "goodput_floor",
            SloObjective::ErrorRateCeiling { .. } => "error_rate_ceiling",
        }
    }
}

/// A named objective plus its rolling-window shape.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Objective name (unique within a monitor), e.g. `"op-p95"`.
    pub name: String,
    /// What the objective constrains.
    pub objective: SloObjective,
    /// Rolling window length (virtual time).
    pub window: SimDuration,
    /// Sub-buckets per window; the window is evaluated once per bucket
    /// rotation, so this is also the burn-series resolution.
    pub buckets: usize,
}

impl SloSpec {
    /// A spec with the default window shape (4 buckets per window).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(name: impl Into<String>, objective: SloObjective, window: SimDuration) -> Self {
        assert!(!window.is_zero(), "SLO window must be positive");
        SloSpec {
            name: name.into(),
            objective,
            window,
            buckets: 4,
        }
    }

    /// Overrides the number of sub-buckets (burn-series resolution).
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    #[must_use]
    pub fn with_buckets(mut self, buckets: usize) -> Self {
        assert!(buckets > 0, "SLO needs at least one bucket");
        self.buckets = buckets;
        self
    }
}

/// One bucket of windowed observations.
#[derive(Debug, Clone, Copy, Default)]
struct Bucket {
    /// Latency observations within budget (latency objectives).
    within: u64,
    /// Latency observations over budget (latency objectives).
    over: u64,
    /// `ok`/goodput events.
    ok: u64,
    /// `err` events.
    err: u64,
}

impl Bucket {
    fn is_empty(&self) -> bool {
        self.within == 0 && self.over == 0 && self.ok == 0 && self.err == 0
    }
}

/// A contiguous out-of-budget interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloBreach {
    /// Evaluation instant at which the burn rate first exceeded 1.
    pub start: SimTime,
    /// Evaluation instant at which it dropped back to ≤ 1 (`None` while
    /// still breaching at export time).
    pub end: Option<SimTime>,
}

/// The per-run summary of one objective.
#[derive(Debug, Clone)]
pub struct SloVerdict {
    /// Objective name.
    pub name: String,
    /// Human-readable objective description.
    pub objective: String,
    /// Window evaluations performed.
    pub evaluations: u64,
    /// Number of distinct breach windows.
    pub breaches: u64,
    /// Total virtual time spent in breach.
    pub breach_time: SimDuration,
    /// Highest burn rate any evaluation reported.
    pub worst_burn: f64,
    /// Whole-run attainment: the measured quantile (latency, in
    /// nanoseconds), mean rate (goodput, events/s) or error fraction.
    pub attained: f64,
    /// True when no evaluation ever breached.
    pub pass: bool,
}

/// The rolling-window state of one objective.
#[derive(Debug, Clone)]
struct SloState {
    spec: SloSpec,
    width: SimDuration,
    /// Index (time / width) of the bucket currently being filled.
    cur_index: u64,
    cur: Bucket,
    /// The most recent completed buckets, oldest first (≤ `buckets - 1`
    /// entries; the current bucket completes the window).
    ring: VecDeque<Bucket>,
    /// Burn-rate series: one `(evaluation instant, burn)` point per
    /// bucket rotation.
    burn: Vec<(SimTime, f64)>,
    breaches: Vec<SloBreach>,
    evaluations: u64,
    worst_burn: f64,
    /// Whole-run latency histogram (latency objectives only).
    run_hist: Histogram,
    /// Whole-run event totals.
    run_ok: u64,
    run_err: u64,
    first_obs: Option<SimTime>,
    last_obs: SimTime,
}

impl SloState {
    fn new(spec: SloSpec) -> Self {
        let width = (spec.window / spec.buckets as u64).max(SimDuration::from_nanos(1));
        SloState {
            spec,
            width,
            cur_index: 0,
            cur: Bucket::default(),
            ring: VecDeque::new(),
            burn: Vec::new(),
            breaches: Vec::new(),
            evaluations: 0,
            worst_burn: 0.0,
            run_hist: Histogram::new(),
            run_ok: 0,
            run_err: 0,
            first_obs: None,
            last_obs: SimTime::ZERO,
        }
    }

    /// Rotates buckets up to the one containing `now`, evaluating the
    /// window at each boundary crossed. The SLO clock starts at the first
    /// observation — boundaries before it are skipped without evaluating,
    /// so a goodput floor cannot open a spurious breach during warm-up.
    /// Long idle gaps evaluate once per elapsed bucket but only while the
    /// window still holds data; once every bucket is empty the index
    /// jumps straight to `now`.
    fn advance(&mut self, now: SimTime) {
        let target = now.as_nanos() / self.width.as_nanos();
        if self.first_obs.is_none() {
            self.cur_index = target;
            return;
        }
        while self.cur_index < target {
            let boundary = SimTime::from_nanos((self.cur_index + 1) * self.width.as_nanos());
            let finished = std::mem::take(&mut self.cur);
            self.ring.push_back(finished);
            while self.ring.len() >= self.spec.buckets.max(1) {
                self.ring.pop_front();
            }
            self.evaluate(boundary);
            self.cur_index += 1;
            if self.ring.iter().all(Bucket::is_empty) && self.cur.is_empty() {
                // Nothing left in the window: skip the idle stretch.
                self.ring.clear();
                self.cur_index = target;
                break;
            }
        }
        self.cur_index = target;
    }

    /// The window's burn rate: completed ring buckets plus the current
    /// partial bucket.
    fn window_burn(&self) -> f64 {
        let mut acc = Bucket::default();
        for b in self.ring.iter().chain(std::iter::once(&self.cur)) {
            acc.within += b.within;
            acc.over += b.over;
            acc.ok += b.ok;
            acc.err += b.err;
        }
        match &self.spec.objective {
            SloObjective::LatencyQuantile { q, .. } => {
                let total = acc.within + acc.over;
                if total == 0 {
                    return 0.0;
                }
                let allowed = (1.0 - q).max(1.0 / MAX_BURN);
                let over_frac = acc.over as f64 / total as f64;
                (over_frac / allowed).min(MAX_BURN)
            }
            SloObjective::GoodputFloor { floor_per_sec, .. } => {
                if *floor_per_sec <= 0.0 {
                    return 0.0;
                }
                // The window the accumulator actually covers: completed
                // ring buckets plus the in-progress one.
                let secs = (self.width * (self.ring.len() as u64 + 1)).as_secs_f64();
                if secs <= 0.0 {
                    return 0.0;
                }
                let rate = acc.ok as f64 / secs;
                if rate <= 0.0 {
                    MAX_BURN
                } else {
                    (floor_per_sec / rate).min(MAX_BURN)
                }
            }
            SloObjective::ErrorRateCeiling { ceiling, .. } => {
                let total = acc.ok + acc.err;
                if total == 0 || *ceiling <= 0.0 {
                    return 0.0;
                }
                let frac = acc.err as f64 / total as f64;
                (frac / ceiling).min(MAX_BURN)
            }
        }
    }

    fn evaluate(&mut self, at: SimTime) {
        let burn = self.window_burn();
        self.evaluations += 1;
        self.worst_burn = self.worst_burn.max(burn);
        self.burn.push((at, burn));
        let breaching = burn > 1.0;
        let open = self.breaches.last().is_some_and(|b| b.end.is_none());
        if breaching && !open {
            self.breaches.push(SloBreach {
                start: at,
                end: None,
            });
        } else if !breaching && open {
            if let Some(last) = self.breaches.last_mut() {
                last.end = Some(at);
            }
        }
    }

    fn note_observation(&mut self, now: SimTime) {
        if self.first_obs.is_none() {
            self.first_obs = Some(now);
        }
        self.last_obs = self.last_obs.max(now);
    }

    /// Total breach time, extending any still-open breach to `now`.
    fn breach_time(&self, now: SimTime) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for b in &self.breaches {
            let end = b.end.unwrap_or_else(|| now.max(b.start));
            total += end.saturating_duration_since(b.start);
        }
        total
    }

    fn attained(&self, now: SimTime) -> f64 {
        match &self.spec.objective {
            SloObjective::LatencyQuantile { q, .. } => self.run_hist.quantile(*q) as f64,
            SloObjective::GoodputFloor { .. } => {
                let span = now
                    .saturating_duration_since(self.first_obs.unwrap_or(SimTime::ZERO))
                    .as_secs_f64();
                if span > 0.0 {
                    self.run_ok as f64 / span
                } else {
                    0.0
                }
            }
            SloObjective::ErrorRateCeiling { .. } => {
                let total = self.run_ok + self.run_err;
                if total == 0 {
                    0.0
                } else {
                    self.run_err as f64 / total as f64
                }
            }
        }
    }

    fn verdict(&self, now: SimTime) -> SloVerdict {
        // The current partial bucket may be breaching without a boundary
        // evaluation having seen it yet; fold it into the worst burn so
        // verdicts cannot miss a tail breach.
        let tail_burn = self.window_burn();
        let worst = self.worst_burn.max(tail_burn);
        let breached = self.breaches.len() as u64
            + u64::from(tail_burn > 1.0 && self.breaches.last().is_none_or(|b| b.end.is_some()));
        SloVerdict {
            name: self.spec.name.clone(),
            objective: self.spec.objective.describe(),
            evaluations: self.evaluations,
            breaches: breached,
            breach_time: self.breach_time(now),
            worst_burn: worst,
            attained: self.attained(now),
            pass: worst <= 1.0,
        }
    }

    fn snapshot_json(&self, now: SimTime) -> String {
        let v = self.verdict(now);
        let mut obj = Obj::new()
            .str("kind", self.spec.objective.kind())
            .str("objective", &v.objective)
            .u64("window_ns", self.spec.window.as_nanos())
            .u64("bucket_ns", self.width.as_nanos())
            .u64("evaluations", v.evaluations)
            .u64("breaches", v.breaches)
            .u64("breach_ns", v.breach_time.as_nanos())
            .f64("worst_burn", v.worst_burn)
            .f64("attained", v.attained)
            .u64("pass", u64::from(v.pass));
        let burn = self
            .burn
            .iter()
            .map(|(t, b)| format!("[{},{}]", t.as_nanos(), fmt_f64(*b)));
        obj = obj.raw("burn", &array(burn));
        let breaches = self.breaches.iter().map(|b| {
            let end = match b.end {
                Some(t) => t.as_nanos().to_string(),
                None => "null".to_owned(),
            };
            format!("[{},{end}]", b.start.as_nanos())
        });
        obj.raw("breach_windows", &array(breaches)).build()
    }
}

/// Evaluates a set of named SLOs over rolling virtual-time windows.
///
/// # Examples
///
/// ```
/// use hyperprov_sim::{SimDuration, SimTime, SloMonitor, SloObjective, SloSpec};
///
/// let mut slo = SloMonitor::new(vec![SloSpec::new(
///     "commit-p95",
///     SloObjective::LatencyQuantile {
///         source: "commit".into(),
///         q: 0.95,
///         budget: SimDuration::from_millis(10),
///     },
///     SimDuration::from_secs(1),
/// )]);
/// for i in 0..100u64 {
///     let now = SimTime::from_nanos(i * 10_000_000);
///     slo.observe_latency(now, "commit", SimDuration::from_millis(50));
/// }
/// let verdicts = slo.verdicts(SimTime::from_secs(1));
/// assert_eq!(verdicts.len(), 1);
/// assert!(!verdicts[0].pass);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SloMonitor {
    slos: Vec<SloState>,
}

impl SloMonitor {
    /// Creates a monitor over the given objectives.
    ///
    /// # Panics
    ///
    /// Panics if two specs share a name.
    pub fn new(specs: Vec<SloSpec>) -> Self {
        let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), specs.len(), "duplicate SLO names");
        SloMonitor {
            slos: specs.into_iter().map(SloState::new).collect(),
        }
    }

    /// A monitor with no objectives; every observation is a no-op.
    pub fn disabled() -> Self {
        SloMonitor::default()
    }

    /// True when at least one objective is installed.
    pub fn is_active(&self) -> bool {
        !self.slos.is_empty()
    }

    /// Feeds one latency observation tagged `source` (stage-span closes
    /// are routed here by the engine).
    pub fn observe_latency(&mut self, now: SimTime, source: &str, latency: SimDuration) {
        for slo in &mut self.slos {
            let SloObjective::LatencyQuantile {
                source: want,
                budget,
                ..
            } = &slo.spec.objective
            else {
                continue;
            };
            if want != source {
                continue;
            }
            let budget = *budget;
            slo.advance(now);
            slo.note_observation(now);
            if latency <= budget {
                slo.cur.within += 1;
            } else {
                slo.cur.over += 1;
            }
            slo.run_hist.record(latency.as_nanos());
        }
    }

    /// Feeds `n` events tagged `source` (goodput and error-rate
    /// objectives).
    pub fn observe_event_n(&mut self, now: SimTime, source: &str, n: u64) {
        if n == 0 {
            return;
        }
        for slo in &mut self.slos {
            let (is_ok, is_err) = match &slo.spec.objective {
                SloObjective::GoodputFloor { source: want, .. } => (want == source, false),
                SloObjective::ErrorRateCeiling {
                    ok_source,
                    err_source,
                    ..
                } => (ok_source == source, err_source == source),
                SloObjective::LatencyQuantile { .. } => (false, false),
            };
            if !is_ok && !is_err {
                continue;
            }
            slo.advance(now);
            slo.note_observation(now);
            if is_ok {
                slo.cur.ok += n;
                slo.run_ok += n;
            } else {
                slo.cur.err += n;
                slo.run_err += n;
            }
        }
    }

    /// Feeds one event tagged `source`.
    pub fn observe_event(&mut self, now: SimTime, source: &str) {
        self.observe_event_n(now, source, 1);
    }

    /// Advances every objective's window to `now` without recording an
    /// observation (e.g. before reading verdicts mid-run).
    pub fn advance_to(&mut self, now: SimTime) {
        for slo in &mut self.slos {
            slo.advance(now);
        }
    }

    /// The burn-rate series of the named objective, oldest first.
    pub fn burn_series(&self, name: &str) -> Option<&[(SimTime, f64)]> {
        self.slos
            .iter()
            .find(|s| s.spec.name == name)
            .map(|s| s.burn.as_slice())
    }

    /// The breach windows of the named objective, oldest first.
    pub fn breach_windows(&self, name: &str) -> Option<&[SloBreach]> {
        self.slos
            .iter()
            .find(|s| s.spec.name == name)
            .map(|s| s.breaches.as_slice())
    }

    /// Per-objective verdicts as of `now`, in installation order.
    pub fn verdicts(&self, now: SimTime) -> Vec<SloVerdict> {
        self.slos.iter().map(|s| s.verdict(now)).collect()
    }

    /// Serializes every objective's verdict, burn series and breach
    /// windows to a compact JSON object keyed by objective name, in
    /// installation order. Deterministic for same-seed runs.
    pub fn snapshot_json(&self, now: SimTime) -> String {
        let mut obj = Obj::new();
        for slo in &self.slos {
            obj = obj.raw(&slo.spec.name, &slo.snapshot_json(now));
        }
        obj.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    fn latency_spec(q: f64, budget_ms: u64) -> SloSpec {
        SloSpec::new(
            "lat",
            SloObjective::LatencyQuantile {
                source: "op".into(),
                q,
                budget: SimDuration::from_millis(budget_ms),
            },
            SimDuration::from_secs(1),
        )
    }

    #[test]
    fn latency_within_budget_passes() {
        let mut m = SloMonitor::new(vec![latency_spec(0.95, 100)]);
        for i in 0..200u64 {
            m.observe_latency(t(i * 20), "op", SimDuration::from_millis(10));
        }
        let v = &m.verdicts(t(4_000))[0];
        assert!(v.pass, "worst burn {}", v.worst_burn);
        assert_eq!(v.breaches, 0);
        assert!(v.evaluations > 0);
        assert_eq!(v.attained, 10_000_000.0);
    }

    #[test]
    fn latency_over_budget_breaches_and_recovers() {
        let mut m = SloMonitor::new(vec![latency_spec(0.5, 100)]);
        // 1s good, 2s bad, 2s good again (window 1s, 4 buckets).
        for i in 0..200u64 {
            let lat = if (50..120).contains(&i) { 500 } else { 10 };
            m.observe_latency(t(i * 25), "op", SimDuration::from_millis(lat));
        }
        let v = &m.verdicts(t(5_000))[0];
        assert!(!v.pass);
        assert!(v.breaches >= 1);
        assert!(v.breach_time > SimDuration::ZERO);
        let breaches = m.breach_windows("lat").unwrap();
        assert!(breaches[0].end.is_some(), "burn must recover");
        // The burn series bounds the breach window.
        let burn = m.burn_series("lat").unwrap();
        assert!(burn.iter().any(|&(_, b)| b > 1.0));
        assert!(burn.last().unwrap().1 <= 1.0);
    }

    #[test]
    fn goodput_floor_breaches_when_rate_drops() {
        let spec = SloSpec::new(
            "tput",
            SloObjective::GoodputFloor {
                source: "ok".into(),
                floor_per_sec: 50.0,
            },
            SimDuration::from_secs(1),
        );
        let mut m = SloMonitor::new(vec![spec]);
        // 100/s for 2s, silence for 2s, 100/s for 2s.
        for i in 0..200u64 {
            m.observe_event(t(i * 10), "ok");
        }
        for i in 400..600u64 {
            m.observe_event(t(i * 10), "ok");
        }
        m.advance_to(t(6_000));
        let v = &m.verdicts(t(6_000))[0];
        assert!(!v.pass);
        assert!(v.breaches >= 1);
        let burn = m.burn_series("tput").unwrap();
        assert!(burn.iter().any(|&(_, b)| b >= MAX_BURN), "empty window");
        assert!(burn.last().unwrap().1 <= 1.0, "recovered by the end");
    }

    #[test]
    fn error_ceiling_tracks_fraction() {
        let spec = SloSpec::new(
            "err",
            SloObjective::ErrorRateCeiling {
                ok_source: "ok".into(),
                err_source: "bad".into(),
                ceiling: 0.1,
            },
            SimDuration::from_secs(1),
        );
        let mut m = SloMonitor::new(vec![spec]);
        for i in 0..100u64 {
            m.observe_event(t(i * 10), "ok");
            if i % 2 == 0 {
                m.observe_event(t(i * 10), "bad");
            }
        }
        let v = &m.verdicts(t(1_000))[0];
        assert!(!v.pass);
        assert!((v.attained - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn disabled_monitor_is_inert_and_empty() {
        let mut m = SloMonitor::disabled();
        assert!(!m.is_active());
        m.observe_latency(t(1), "op", SimDuration::from_millis(1));
        m.observe_event(t(1), "ok");
        assert_eq!(m.snapshot_json(t(10)), "{}");
        assert!(m.verdicts(t(10)).is_empty());
    }

    #[test]
    fn snapshot_json_is_deterministic_and_complete() {
        let build = || {
            let mut m = SloMonitor::new(vec![latency_spec(0.95, 100)]);
            for i in 0..100u64 {
                m.observe_latency(t(i * 30), "op", SimDuration::from_millis(200));
            }
            m.snapshot_json(t(3_000))
        };
        let a = build();
        assert_eq!(a, build());
        assert!(a.contains("\"lat\""));
        assert!(a.contains("\"kind\":\"latency_quantile\""));
        assert!(a.contains("\"burn\":[["));
        assert!(a.contains("\"pass\":0"));
        assert!(a.contains("\"breach_windows\""));
    }

    #[test]
    fn unrelated_sources_are_ignored() {
        let mut m = SloMonitor::new(vec![latency_spec(0.95, 100)]);
        m.observe_latency(t(1), "other", SimDuration::from_secs(10));
        m.observe_event(t(1), "op");
        let v = &m.verdicts(t(100))[0];
        assert_eq!(v.attained, 0.0);
        assert!(v.pass);
    }

    #[test]
    fn long_idle_gap_does_not_emit_unbounded_evaluations() {
        let mut m = SloMonitor::new(vec![latency_spec(0.95, 100)]);
        m.observe_latency(t(0), "op", SimDuration::from_millis(1));
        // Hours of idle virtual time later, another observation.
        m.observe_latency(
            SimTime::from_secs(10_000),
            "op",
            SimDuration::from_millis(1),
        );
        let burn = m.burn_series("lat").unwrap();
        assert!(
            burn.len() < 16,
            "idle gap produced {} evaluations",
            burn.len()
        );
    }

    #[test]
    fn no_evaluations_before_the_first_observation() {
        let spec = SloSpec::new(
            "tput",
            SloObjective::GoodputFloor {
                source: "ok".into(),
                floor_per_sec: 50.0,
            },
            SimDuration::from_secs(1),
        );
        let mut m = SloMonitor::new(vec![spec]);
        // A long warm-up before the first event must not open a breach:
        // the SLO clock starts at the first observation.
        m.advance_to(t(10_000));
        for i in 40_000..41_000u64 {
            m.observe_event(t(i), "ok");
        }
        let burn = m.burn_series("tput").unwrap();
        assert!(!burn.is_empty());
        assert!(burn.iter().all(|&(at, _)| at >= t(40_000)));
        let v = &m.verdicts(t(41_000))[0];
        assert_eq!(v.breaches, 0, "warm-up must not count as a breach");
    }

    #[test]
    #[should_panic(expected = "duplicate SLO names")]
    fn duplicate_names_panic() {
        let _ = SloMonitor::new(vec![latency_spec(0.9, 1), latency_spec(0.9, 2)]);
    }
}
