//! A streaming log-linear histogram for latency-style measurements.
//!
//! Values are bucketed HDR-histogram style: each power-of-two range is split
//! into [`SUB_BUCKETS`] linear sub-buckets, giving a bounded relative error
//! (< 1/SUB_BUCKETS) at any magnitude while using O(log(max) * SUB_BUCKETS)
//! memory regardless of sample count.

/// Linear sub-buckets per power-of-two range (relative error < 1/32).
const SUB_BUCKETS: usize = 32;
const SUB_BITS: u32 = 5; // log2(SUB_BUCKETS)

/// A streaming histogram over `u64` samples (typically nanoseconds).
///
/// # Examples
///
/// ```
/// use hyperprov_sim::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// let median = h.quantile(0.5);
/// assert!((450..=550).contains(&median));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros(); // floor(log2(value)), >= SUB_BITS
    let top = exp - SUB_BITS + 1;
    let sub = (value >> (top - 1)) as usize & (SUB_BUCKETS - 1);
    (top as usize) * SUB_BUCKETS + sub
}

/// Upper bound (inclusive representative) of a bucket, used for quantiles.
fn bucket_value(index: usize) -> u64 {
    let top = index / SUB_BUCKETS;
    let sub = index % SUB_BUCKETS;
    if top == 0 {
        sub as u64
    } else {
        ((SUB_BUCKETS + sub) as u64) << (top - 1)
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = bucket_index(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = bucket_index(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the recorded samples, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`), clamped to the observed
    /// min/max so small histograms report exact extremes.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_value(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Standard deviation estimated from bucket representatives.
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let mut var = 0.0;
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                let d = bucket_value(idx) as f64 - mean;
                var += d * d * n as f64;
            }
        }
        (var / self.count as f64).sqrt()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// One-line summary suitable for reports: count, mean, p50/p95/p99, max.
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={:.1} p50={} p95={} p99={} max={}",
            self.count,
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.95),
            self.quantile(0.99),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_round_trip_small_values_exact() {
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_value(bucket_index(v)), v);
        }
    }

    #[test]
    fn bucket_relative_error_bounded() {
        for &v in &[100u64, 999, 4096, 123_456, 9_999_999, u64::MAX / 2] {
            let rep = bucket_value(bucket_index(v));
            let err = (v as f64 - rep as f64).abs() / v as f64;
            assert!(err < 1.0 / SUB_BUCKETS as f64 + 1e-12, "v={v} rep={rep}");
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn exact_stats_for_exact_samples() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 5] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 5);
        assert_eq!(h.mean(), 3.0);
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(1.0), 5);
        assert_eq!(h.quantile(0.0), 1);
    }

    #[test]
    fn record_n_equivalent_to_loop() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(77, 10);
        for _ in 0..10 {
            b.record(77);
        }
        assert_eq!(a, b);
        a.record_n(5, 0);
        assert_eq!(a.count(), 10);
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = Histogram::new();
        a.record(10);
        let mut b = Histogram::new();
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000_000);
        let empty = Histogram::new();
        a.merge(&empty);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn quantile_empty_and_single_sample_edges() {
        let empty = Histogram::new();
        assert_eq!(empty.quantile(0.0), 0);
        assert_eq!(empty.quantile(1.0), 0);
        let mut h = Histogram::new();
        h.record(12_345);
        // A single sample is every quantile, including out-of-range q
        // (clamped into [0, 1]).
        for q in [-3.0, 0.0, 0.25, 0.5, 0.99, 1.0, 7.0] {
            assert_eq!(h.quantile(q), 12_345);
        }
    }

    #[test]
    fn quantile_bucket_boundary_behaviour() {
        // 995 and 1005 share one log-linear bucket (rep 992); the
        // representative is clamped to the observed min, so every
        // quantile of this two-sample histogram reads 995.
        let mut h = Histogram::new();
        h.record(995);
        h.record(1005);
        assert_eq!(bucket_index(995), bucket_index(1005));
        assert_eq!(h.quantile(0.0), 995);
        assert_eq!(h.quantile(0.5), 995);
        assert_eq!(h.quantile(1.0), 995);

        // Samples in distinct buckets: the quantile steps from the low
        // bucket to the high one as the rank crosses the boundary, with
        // bounded relative error on the high representative.
        let mut h2 = Histogram::new();
        h2.record(1_000);
        h2.record(100_000);
        assert_eq!(h2.quantile(0.5), 1_000);
        let hi = h2.quantile(0.51);
        assert!(hi <= 100_000);
        assert!((100_000 - hi) as f64 / 100_000.0 < 1.0 / SUB_BUCKETS as f64 + 1e-12);

        // Power-of-two boundary values are their own representatives.
        for v in [32u64, 64, 1 << 20] {
            assert_eq!(bucket_value(bucket_index(v)), v);
        }
    }

    #[test]
    fn quantiles_monotone() {
        let mut h = Histogram::new();
        let mut x = 1u64;
        for _ in 0..1000 {
            h.record(x % 100_000);
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        let mut prev = 0;
        for i in 0..=20 {
            let q = h.quantile(i as f64 / 20.0);
            assert!(q >= prev);
            prev = q;
        }
    }

    #[test]
    fn stddev_zero_for_constant() {
        let mut h = Histogram::new();
        h.record_n(500, 100);
        assert!(h.stddev() < 500.0 / SUB_BUCKETS as f64 + 1.0);
    }
}
