//! A tiny deterministic multiply-rotate hasher for hot-path maps.
//!
//! The kernel and metrics registries key small maps by short strings and
//! integers millions of times per run. The std `RandomState` SipHash is
//! both slower than needed and randomly seeded; this fixed-seed
//! Firefox-style hasher keeps lookups cheap and runs reproducible.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` with the deterministic [`FxHasher`].
pub(crate) type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the deterministic [`FxHasher`].
pub(crate) type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher (the rustc/Firefox "Fx" construction).
#[derive(Debug, Default, Clone)]
pub(crate) struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_deterministic_and_spread() {
        let hash = |s: &str| {
            let mut h = FxHasher::default();
            h.write(s.as_bytes());
            h.finish()
        };
        assert_eq!(hash("queue.depth.peer0"), hash("queue.depth.peer0"));
        assert_ne!(hash("queue.depth.peer0"), hash("queue.depth.peer1"));
        assert_ne!(hash("a"), hash("b"));

        let mut set: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000u64 {
            set.insert(i);
        }
        assert_eq!(set.len(), 1000);
        let map: FxHashMap<&str, u32> = [("x", 1), ("y", 2)].into_iter().collect();
        assert_eq!(map.get("x"), Some(&1));
    }
}
