//! Virtual-time span tracing.
//!
//! A [`Tracer`] records *spans* — named intervals of virtual time keyed by
//! a trace id (transaction id, client operation id) — and point *events*.
//! Pipeline actors open a span when a unit of work enters a stage and
//! close it when the work leaves; because messages in the simulation do
//! not carry tracing context, spans are addressed by their
//! `(trace, stage, detail)` key so any actor (or a deferred completion)
//! can close a span another event handler opened.
//!
//! Memory is bounded: finished spans and events live in ring buffers of
//! configurable capacity, and traces can be sampled (`sample_every = N`
//! keeps full span records for one trace in N). Aggregate per-stage
//! latency histograms are updated on every span close *before* any
//! eviction or sampling, so stage breakdowns remain exact even when
//! individual span records are dropped.
//!
//! Everything is deterministic: ids and sequence numbers come from a
//! monotonic counter, sampling uses a seed-free FNV hash of the trace
//! key, and all iteration orders are defined.

use std::collections::{BTreeMap, VecDeque};

use crate::fxhash::FxHashMap;
use crate::histogram::Histogram;
use crate::time::{SimDuration, SimTime};

/// Identifies a span within one [`Tracer`]. Ids are assigned from a
/// monotonic counter and never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

/// Configuration for a [`Tracer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracerConfig {
    /// Maximum finished span records retained (ring buffer).
    pub span_capacity: usize,
    /// Maximum point events retained (ring buffer).
    pub event_capacity: usize,
    /// Keep full span/event records for one trace in `sample_every`
    /// (1 = record every trace). Aggregate stage histograms always see
    /// every span regardless of sampling.
    pub sample_every: u64,
}

impl Default for TracerConfig {
    fn default() -> Self {
        TracerConfig {
            span_capacity: 4096,
            event_capacity: 4096,
            sample_every: 1,
        }
    }
}

/// A finished span: one stage's interval of virtual time for one trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Unique id within the tracer.
    pub id: SpanId,
    /// The enclosing span at open time, if any (same trace).
    pub parent: Option<SpanId>,
    /// Trace key, e.g. a transaction id in hex or `"op-7"`.
    pub trace: String,
    /// Pipeline stage name, e.g. `"endorse"` (see DESIGN.md taxonomy).
    pub stage: &'static str,
    /// Disambiguator within the stage, e.g. `"peer0"`; empty if unused.
    pub detail: String,
    /// Virtual time the span opened.
    pub start: SimTime,
    /// Virtual time the span closed.
    pub end: SimTime,
    /// Global open-order sequence number (total order across the run).
    pub seq: u64,
}

impl Span {
    /// The span's duration.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// A point event attached to a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Trace key the event belongs to.
    pub trace: String,
    /// Event name, e.g. `"block.cut"`.
    pub name: &'static str,
    /// Free-form detail, e.g. `"txs=12"`; empty if unused.
    pub detail: String,
    /// Virtual time of the event.
    pub at: SimTime,
    /// Global sequence number shared with span opens.
    pub seq: u64,
}

#[derive(Debug, Clone)]
struct OpenSpan {
    id: SpanId,
    parent: Option<SpanId>,
    stage: &'static str,
    detail: String,
    start: SimTime,
    seq: u64,
    sampled: bool,
}

/// Records spans and events on virtual time with bounded memory.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    config: TracerConfig,
    enabled: bool,
    next_seq: u64,
    /// Open spans, grouped per trace. Each trace's spans stay in open
    /// (= seq) order, so the parent of a new span is simply the last
    /// entry — no global scan. Stacks are tiny (nesting depth), so the
    /// by-key close below is a short linear probe.
    open: FxHashMap<Box<str>, Vec<OpenSpan>>,
    open_count: usize,
    finished: VecDeque<Span>,
    events: VecDeque<TraceEvent>,
    stage_hist: BTreeMap<&'static str, Histogram>,
    spans_started: u64,
    spans_finished: u64,
    spans_evicted: u64,
    events_recorded: u64,
    events_evicted: u64,
    unmatched_ends: u64,
    duplicate_starts: u64,
}

impl Tracer {
    /// Creates an enabled tracer with the given configuration.
    pub fn new(config: TracerConfig) -> Self {
        Tracer {
            config,
            enabled: true,
            ..Tracer::default()
        }
    }

    /// Creates a disabled tracer; every call is a no-op.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// Whether the tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The active configuration.
    pub fn config(&self) -> TracerConfig {
        self.config
    }

    /// Opens a span for `(trace, stage, detail)` at virtual time `now`.
    /// If another span of the same trace is open, the most recently
    /// opened one becomes this span's parent. Re-opening a key that is
    /// already open replaces the older open span (counted under
    /// `duplicate_starts`).
    pub fn span_start(
        &mut self,
        now: SimTime,
        trace: &str,
        stage: &'static str,
        detail: &str,
    ) -> SpanId {
        if !self.enabled {
            return SpanId(0);
        }
        self.next_seq += 1;
        let seq = self.next_seq;
        let id = SpanId(seq);
        let sampled = self.is_sampled(trace);
        if !self.open.contains_key(trace) {
            self.open.insert(Box::from(trace), Vec::new());
        }
        let stack = self.open.get_mut(trace).expect("just inserted");
        // Parent is the most recently opened span of this trace — even a
        // same-key duplicate about to be replaced, matching the old
        // whole-map max-seq scan.
        let parent = stack.last().map(|o| o.id);
        if let Some(pos) = stack
            .iter()
            .position(|o| o.stage == stage && o.detail == detail)
        {
            stack.remove(pos);
            self.open_count -= 1;
            self.duplicate_starts += 1;
        }
        stack.push(OpenSpan {
            id,
            parent,
            stage,
            detail: detail.to_owned(),
            start: now,
            seq,
            sampled,
        });
        self.open_count += 1;
        self.spans_started += 1;
        id
    }

    /// Closes the open span for `(trace, stage, detail)` at `now`,
    /// recording its duration into the stage histogram. Returns the
    /// duration, or `None` if no matching span is open (counted under
    /// `unmatched_ends`).
    pub fn span_end(
        &mut self,
        now: SimTime,
        trace: &str,
        stage: &'static str,
        detail: &str,
    ) -> Option<SimDuration> {
        if !self.enabled {
            return None;
        }
        let pos = self.open.get_mut(trace).and_then(|stack| {
            stack
                .iter()
                .position(|o| o.stage == stage && o.detail == detail)
        });
        let Some(pos) = pos else {
            self.unmatched_ends += 1;
            return None;
        };
        let stack = self.open.get_mut(trace).expect("stack exists");
        let open = stack.remove(pos);
        if stack.is_empty() {
            self.open.remove(trace);
        }
        self.open_count -= 1;
        let duration = now - open.start;
        self.stage_hist
            .entry(stage)
            .or_default()
            .record(duration.as_nanos());
        self.spans_finished += 1;
        if open.sampled {
            if self.finished.len() == self.config.span_capacity {
                self.finished.pop_front();
                self.spans_evicted += 1;
            }
            if self.config.span_capacity > 0 {
                self.finished.push_back(Span {
                    id: open.id,
                    parent: open.parent,
                    trace: trace.to_owned(),
                    stage,
                    detail: open.detail,
                    start: open.start,
                    end: now,
                    seq: open.seq,
                });
            }
        }
        Some(duration)
    }

    /// Records a point event on `trace` at `now`.
    pub fn event(&mut self, now: SimTime, trace: &str, name: &'static str, detail: &str) {
        if !self.enabled {
            return;
        }
        self.next_seq += 1;
        self.events_recorded += 1;
        if !self.is_sampled(trace) {
            return;
        }
        if self.events.len() == self.config.event_capacity {
            self.events.pop_front();
            self.events_evicted += 1;
        }
        if self.config.event_capacity > 0 {
            self.events.push_back(TraceEvent {
                trace: trace.to_owned(),
                name,
                detail: detail.to_owned(),
                at: now,
                seq: self.next_seq,
            });
        }
    }

    fn is_sampled(&self, trace: &str) -> bool {
        if self.config.sample_every <= 1 {
            return true;
        }
        fnv1a(trace.as_bytes()).is_multiple_of(self.config.sample_every)
    }

    /// Finished span records, oldest first (sampled traces only; bounded
    /// by `span_capacity`).
    pub fn finished_spans(&self) -> impl Iterator<Item = &Span> {
        self.finished.iter()
    }

    /// Recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Per-stage latency histograms (nanoseconds), in stage-name order.
    /// These aggregate **every** finished span, independent of sampling
    /// and ring-buffer eviction.
    pub fn stage_histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> {
        self.stage_hist.iter().map(|(k, v)| (*k, v))
    }

    /// The stage histogram for `stage`, if any span of it finished.
    pub fn stage_histogram(&self, stage: &str) -> Option<&Histogram> {
        self.stage_hist.get(stage)
    }

    /// Number of spans currently open (work in flight).
    pub fn open_spans(&self) -> usize {
        self.open_count
    }

    /// Spans still open, counted per stage (in stage-name order). At
    /// export time a non-empty result is a leak report: every span a
    /// run opens should be closed (or the work it models is stuck).
    pub fn unclosed_by_stage(&self) -> BTreeMap<&'static str, u64> {
        let mut by_stage: BTreeMap<&'static str, u64> = BTreeMap::new();
        for stack in self.open.values() {
            for open in stack {
                *by_stage.entry(open.stage).or_insert(0) += 1;
            }
        }
        by_stage
    }

    /// Total spans opened.
    pub fn spans_started(&self) -> u64 {
        self.spans_started
    }

    /// Total spans closed.
    pub fn spans_finished(&self) -> u64 {
        self.spans_finished
    }

    /// Finished span records evicted from the ring buffer.
    pub fn spans_evicted(&self) -> u64 {
        self.spans_evicted
    }

    /// Total events recorded (including ones sampled out or evicted).
    pub fn events_recorded(&self) -> u64 {
        self.events_recorded
    }

    /// `span_end` calls that found no matching open span.
    pub fn unmatched_ends(&self) -> u64 {
        self.unmatched_ends
    }

    /// `span_start` calls that replaced a still-open span with the same
    /// key.
    pub fn duplicate_starts(&self) -> u64 {
        self.duplicate_starts
    }

    /// Serializes a deterministic summary of the tracer to compact JSON:
    /// lifecycle counters plus per-stage latency statistics (nanosecond
    /// units). Individual span/event records are omitted — the ring
    /// buffers depend on sampling, while the aggregates here are exact.
    pub fn snapshot_json(&self) -> String {
        use crate::json::Obj;
        let mut stages = Obj::new();
        for (stage, hist) in &self.stage_hist {
            stages = stages.raw(stage, &crate::metrics::histogram_json(hist));
        }
        let mut out = Obj::new()
            .u64("spans_started", self.spans_started)
            .u64("spans_finished", self.spans_finished)
            .u64("spans_open", self.open_count as u64)
            .u64("spans_evicted", self.spans_evicted)
            .u64("events_recorded", self.events_recorded)
            .u64("unmatched_ends", self.unmatched_ends)
            .u64("duplicate_starts", self.duplicate_starts);
        if self.open_count > 0 {
            // Leak report: spans opened but never closed. Emitted only
            // when leaks exist so clean runs' exports stay byte-stable
            // across releases.
            let mut unclosed = Obj::new().u64("count", self.open_count as u64);
            let mut per_stage = Obj::new();
            for (stage, n) in self.unclosed_by_stage() {
                per_stage = per_stage.u64(stage, n);
            }
            unclosed = unclosed.raw("stages", &per_stage.build());
            out = out.raw("unclosed", &unclosed.build());
        }
        out.raw("stages", &stages.build()).build()
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn span_lifecycle_records_duration() {
        let mut tr = Tracer::new(TracerConfig::default());
        tr.span_start(t(100), "tx1", "endorse", "peer0");
        let d = tr.span_end(t(350), "tx1", "endorse", "peer0").unwrap();
        assert_eq!(d, SimDuration::from_nanos(250));
        assert_eq!(tr.open_spans(), 0);
        assert_eq!(tr.spans_finished(), 1);
        let span = tr.finished_spans().next().unwrap();
        assert_eq!(span.trace, "tx1");
        assert_eq!(span.stage, "endorse");
        assert_eq!(span.duration(), SimDuration::from_nanos(250));
        assert_eq!(tr.stage_histogram("endorse").unwrap().count(), 1);
    }

    #[test]
    fn children_nest_under_latest_open_span() {
        let mut tr = Tracer::new(TracerConfig::default());
        let root = tr.span_start(t(0), "tx1", "e2e", "");
        let child = tr.span_start(t(10), "tx1", "endorse", "");
        let grandchild = tr.span_start(t(20), "tx1", "endorse.exec", "peer0");
        let other = tr.span_start(t(20), "tx2", "e2e", "");
        tr.span_end(t(30), "tx1", "endorse.exec", "peer0");
        tr.span_end(t(40), "tx1", "endorse", "");
        tr.span_end(t(50), "tx1", "e2e", "");
        tr.span_end(t(50), "tx2", "e2e", "");
        let spans: Vec<&Span> = tr.finished_spans().collect();
        let find = |id: SpanId| spans.iter().find(|s| s.id == id).unwrap();
        assert_eq!(find(root).parent, None);
        assert_eq!(find(child).parent, Some(root));
        assert_eq!(find(grandchild).parent, Some(child));
        assert_eq!(find(other).parent, None);
    }

    #[test]
    fn ring_buffer_evicts_oldest_and_counts() {
        let mut tr = Tracer::new(TracerConfig {
            span_capacity: 3,
            ..TracerConfig::default()
        });
        for i in 0..5u64 {
            let trace = format!("tx{i}");
            tr.span_start(t(i * 10), &trace, "commit", "");
            tr.span_end(t(i * 10 + 5), &trace, "commit", "");
        }
        assert_eq!(tr.finished_spans().count(), 3);
        assert_eq!(tr.spans_evicted(), 2);
        let oldest = tr.finished_spans().next().unwrap();
        assert_eq!(oldest.trace, "tx2");
        // Aggregates saw all five spans despite eviction.
        assert_eq!(tr.stage_histogram("commit").unwrap().count(), 5);
    }

    #[test]
    fn sampling_thins_records_but_not_aggregates() {
        let mut tr = Tracer::new(TracerConfig {
            sample_every: 4,
            ..TracerConfig::default()
        });
        for i in 0..100u64 {
            let trace = format!("tx{i}");
            tr.span_start(t(i), &trace, "order", "");
            tr.span_end(t(i + 1), &trace, "order", "");
            tr.event(t(i), &trace, "enqueue", "");
        }
        let kept = tr.finished_spans().count();
        assert!(kept < 100, "sampling kept everything");
        assert!(kept > 0, "sampling kept nothing");
        assert_eq!(tr.stage_histogram("order").unwrap().count(), 100);
        assert_eq!(tr.events_recorded(), 100);
        assert_eq!(tr.events().count(), kept);
    }

    #[test]
    fn unmatched_and_duplicate_spans_are_counted() {
        let mut tr = Tracer::new(TracerConfig::default());
        assert!(tr.span_end(t(5), "tx1", "endorse", "").is_none());
        assert_eq!(tr.unmatched_ends(), 1);
        tr.span_start(t(0), "tx1", "endorse", "");
        tr.span_start(t(1), "tx1", "endorse", "");
        assert_eq!(tr.duplicate_starts(), 1);
        // The replacement span is the one that closes.
        let d = tr.span_end(t(3), "tx1", "endorse", "").unwrap();
        assert_eq!(d, SimDuration::from_nanos(2));
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let mut tr = Tracer::disabled();
        tr.span_start(t(0), "tx1", "endorse", "");
        assert!(tr.span_end(t(1), "tx1", "endorse", "").is_none());
        tr.event(t(0), "tx1", "x", "");
        assert_eq!(tr.spans_started(), 0);
        assert_eq!(tr.unmatched_ends(), 0);
        assert_eq!(tr.events_recorded(), 0);
        assert_eq!(tr.finished_spans().count(), 0);
    }

    #[test]
    fn snapshot_json_is_deterministic() {
        let build = || {
            let mut tr = Tracer::new(TracerConfig::default());
            tr.span_start(t(0), "tx1", "endorse", "");
            tr.span_end(t(7), "tx1", "endorse", "");
            tr.event(t(8), "tx1", "done", "");
            tr.snapshot_json()
        };
        let a = build();
        assert_eq!(a, build());
        assert!(a.contains("\"spans_finished\":1"));
        assert!(a.contains("\"endorse\""));
        assert!(a.contains("\"p99\":7"));
    }

    #[test]
    fn unclosed_spans_surface_in_snapshot() {
        let mut tr = Tracer::new(TracerConfig::default());
        tr.span_start(t(0), "tx1", "endorse", "peer0");
        tr.span_start(t(1), "tx2", "endorse", "peer1");
        tr.span_start(t(2), "tx3", "commit.apply", "");
        tr.span_start(t(3), "tx4", "order", "");
        tr.span_end(t(9), "tx4", "order", "");
        let by_stage = tr.unclosed_by_stage();
        assert_eq!(by_stage.get("endorse"), Some(&2));
        assert_eq!(by_stage.get("commit.apply"), Some(&1));
        assert_eq!(by_stage.get("order"), None);
        let json = tr.snapshot_json();
        assert!(json.contains("\"spans_open\":3"));
        assert!(json
            .contains("\"unclosed\":{\"count\":3,\"stages\":{\"commit.apply\":1,\"endorse\":2}}"));
    }

    #[test]
    fn clean_snapshot_omits_unclosed_report() {
        let mut tr = Tracer::new(TracerConfig::default());
        tr.span_start(t(0), "tx1", "endorse", "");
        tr.span_end(t(5), "tx1", "endorse", "");
        let json = tr.snapshot_json();
        assert!(json.contains("\"spans_open\":0"));
        assert!(!json.contains("\"unclosed\""));
    }

    #[test]
    fn eviction_and_sampling_compose() {
        // With sample_every = 4 only ~1/4 of traces produce records; the
        // tiny ring then evicts most of those. Aggregates and lifecycle
        // counters must still see every span exactly once.
        let mut tr = Tracer::new(TracerConfig {
            span_capacity: 2,
            sample_every: 4,
            ..TracerConfig::default()
        });
        let mut sampled = 0u64;
        for i in 0..200u64 {
            let trace = format!("tx{i}");
            if super::fnv1a(trace.as_bytes()).is_multiple_of(4) {
                sampled += 1;
            }
            tr.span_start(t(i * 10), &trace, "commit", "");
            tr.span_end(t(i * 10 + 3), &trace, "commit", "");
        }
        assert!(sampled > 2, "need more sampled traces than capacity");
        assert_eq!(tr.finished_spans().count(), 2);
        // Only sampled records count as evicted: eviction happens after
        // sampling, never double-drops.
        assert_eq!(tr.spans_evicted(), sampled - 2);
        assert_eq!(tr.spans_finished(), 200);
        assert_eq!(tr.stage_histogram("commit").unwrap().count(), 200);
        // The survivors are the most recently closed sampled traces.
        let kept: Vec<&str> = tr.finished_spans().map(|s| s.trace.as_str()).collect();
        let all_sampled: Vec<String> = (0..200u64)
            .map(|i| format!("tx{i}"))
            .filter(|tx| super::fnv1a(tx.as_bytes()).is_multiple_of(4))
            .collect();
        let expect: Vec<&str> = all_sampled[all_sampled.len() - 2..]
            .iter()
            .map(String::as_str)
            .collect();
        assert_eq!(kept, expect);
    }

    #[test]
    fn events_ring_respects_capacity() {
        let mut tr = Tracer::new(TracerConfig {
            event_capacity: 2,
            ..TracerConfig::default()
        });
        tr.event(t(0), "a", "e", "");
        tr.event(t(1), "b", "e", "");
        tr.event(t(2), "c", "e", "");
        let traces: Vec<&str> = tr.events().map(|e| e.trace.as_str()).collect();
        assert_eq!(traces, ["b", "c"]);
        assert_eq!(tr.events_recorded(), 3);
    }
}
