//! Virtual time for the discrete-event simulator.
//!
//! The simulator measures time in whole nanoseconds since simulation start.
//! Two newtypes keep instants and durations from being mixed up
//! (C-NEWTYPE): [`SimTime`] is a point on the virtual timeline and
//! [`SimDuration`] is a span between two points.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in virtual time, in nanoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use hyperprov_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(250);
/// assert_eq!(t.as_nanos(), 250_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use hyperprov_sim::SimDuration;
///
/// let d = SimDuration::from_micros(3) + SimDuration::from_nanos(500);
/// assert_eq!(d.as_nanos(), 3_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the virtual timeline.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `secs` seconds after simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier is after self"),
        )
    }

    /// The span from `earlier` to `self`, or zero if `earlier` is later.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from a float number of seconds, saturating at the
    /// representable range and treating non-finite or negative input as zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let nanos = secs * 1e9;
        if nanos >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(nanos as u64)
        }
    }

    /// The span in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The span in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The span in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by a float factor, saturating; non-finite or
    /// negative factors yield zero.
    pub fn mul_f64(self, factor: f64) -> Self {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Addition that saturates at [`SimDuration::MAX`].
    pub const fn saturating_add(self, rhs: SimDuration) -> Self {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

impl From<SimDuration> for std::time::Duration {
    fn from(d: SimDuration) -> Self {
        std::time::Duration::from_nanos(d.as_nanos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_micros(2).as_nanos(), 2_000);
        assert_eq!(SimTime::from_secs(3), SimTime::from_nanos(3_000_000_000));
    }

    #[test]
    fn arithmetic_round_trip() {
        let t0 = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(50);
        let t1 = t0 + d;
        assert_eq!(t1 - t0, d);
        assert_eq!(t1.duration_since(t0), d);
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(20);
        assert_eq!(early.saturating_duration_since(late), SimDuration::ZERO);
        assert_eq!(
            late.saturating_duration_since(early),
            SimDuration::from_nanos(10)
        );
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_when_reversed() {
        let _ = SimTime::from_nanos(1).duration_since(SimTime::from_nanos(2));
    }

    #[test]
    fn from_secs_f64_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.00us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.00ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(1).mul_f64(0.5);
        assert_eq!(d, SimDuration::from_millis(500));
        assert_eq!(SimDuration::from_secs(1).mul_f64(-2.0), SimDuration::ZERO);
    }

    #[test]
    fn saturating_add_caps() {
        assert_eq!(
            SimDuration::MAX.saturating_add(SimDuration::from_nanos(1)),
            SimDuration::MAX
        );
    }
}
