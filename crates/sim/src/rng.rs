//! Deterministic random number generation for reproducible simulations.
//!
//! The kernel needs randomness (network jitter, workload inter-arrival
//! times) that is *bit-for-bit reproducible* across runs and independent of
//! the `rand` crate's default generators. [`DetRng`] implements
//! xoshiro256** seeded through SplitMix64, the construction recommended by
//! the xoshiro authors, and plugs into the `rand` ecosystem through
//! [`rand::RngCore`].
//!
//! Streams can be *forked* by label ([`DetRng::fork`]) so that independent
//! components (each peer's jitter, the workload generator, ...) consume
//! independent streams: adding a consumer never perturbs the draws seen by
//! another.

use rand::{Error, RngCore, SeedableRng};

/// SplitMix64 step, used for seeding and label mixing.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** generator.
///
/// # Examples
///
/// ```
/// use hyperprov_sim::DetRng;
/// use rand::Rng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Derives an independent generator for a labelled sub-component.
    ///
    /// Forking with the same label always yields the same stream; different
    /// labels yield decorrelated streams.
    pub fn fork(&self, label: &str) -> DetRng {
        // Mix the label into a fresh seed via SplitMix64 over the bytes,
        // combined with this generator's current state (not advancing it).
        let mut h = self.s[0] ^ self.s[2].rotate_left(17);
        for chunk in label.as_bytes().chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            h ^= u64::from_le_bytes(word);
            h = splitmix64(&mut h);
        }
        DetRng::new(h)
    }

    /// Derives an independent generator for a numbered sub-component.
    pub fn fork_index(&self, index: u64) -> DetRng {
        let mut h = self.s[1] ^ index.wrapping_mul(0xA076_1D64_78BD_642F);
        h = splitmix64(&mut h);
        DetRng::new(h)
    }

    fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for DetRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        DetRng::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        DetRng::new(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn xoshiro_reference_vector() {
        // Reference: xoshiro256** initialised with state [1, 2, 3, 4]
        // produces 11520 as its first output (result = rotl(2*5,7)*9).
        let mut rng = DetRng { s: [1, 2, 3, 4] };
        assert_eq!(rng.next_u64(), 11520);
        assert_eq!(rng.next_u64(), 0);
        assert_eq!(rng.next_u64(), 1_509_978_240);
    }

    #[test]
    fn fork_is_stable_and_decorrelated() {
        let root = DetRng::new(99);
        let mut a1 = root.fork("peer-0");
        let mut a2 = root.fork("peer-0");
        let mut b = root.fork("peer-1");
        assert_eq!(a1.next_u64(), a2.next_u64());
        assert_ne!(a1.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_does_not_advance_parent() {
        let root = DetRng::new(5);
        let before = root.clone();
        let _ = root.fork("x");
        let _ = root.fork_index(3);
        assert_eq!(root, before);
    }

    #[test]
    fn fill_bytes_handles_partial_chunks() {
        let mut rng = DetRng::new(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // Same draw through next_u64 path.
        let mut rng2 = DetRng::new(3);
        let w0 = rng2.next_u64().to_le_bytes();
        let w1 = rng2.next_u64().to_le_bytes();
        assert_eq!(&buf[..8], &w0);
        assert_eq!(&buf[8..13], &w1[..5]);
    }

    #[test]
    fn usable_with_rand_distributions() {
        let mut rng = DetRng::new(11);
        let x: f64 = rng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
        let n: u32 = rng.gen_range(1..=6);
        assert!((1..=6).contains(&n));
    }
}
