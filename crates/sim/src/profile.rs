//! Host-side profiling of the simulator itself.
//!
//! Everything else in this crate measures *virtual* time; this module
//! measures the *host* — how fast the event loop chews through events,
//! where wall-clock time goes by actor type, and how much memory the
//! process peaks at. The numbers feed `BENCH_sim.json` and the CI
//! regression gate, and they are inherently non-deterministic: never
//! mix them into the fixture-pinned exports.
//!
//! Two pieces:
//!
//! * [`HotCounters`] — plain `u64` fields bumped inside the kernel's
//!   hot paths (enqueue, send, timer, CPU submit). Incrementing them
//!   never allocates and costs one add, so they stay on even when the
//!   profiler is off.
//! * [`SimProfiler`] — opt-in wall-clock instrumentation around actor
//!   event handlers, aggregated per actor label. Off by default; when
//!   off, the event loop takes no `Instant` samples at all.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use crate::json::Obj;

/// Allocation-free counters bumped in the kernel's hot paths.
///
/// These run unconditionally (one integer add each), so they are
/// available even in runs that never enabled the [`SimProfiler`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HotCounters {
    /// Queue entries pushed (messages, timers, CPU completions).
    pub events_enqueued: u64,
    /// Messages offered to the network via `Context::send`.
    pub messages_sent: u64,
    /// Timers armed via `Context::set_timer`.
    pub timers_set: u64,
    /// CPU work items submitted (`execute` / `execute_parallel`).
    pub cpu_jobs: u64,
}

impl HotCounters {
    /// Compact JSON object with one field per counter.
    pub fn snapshot_json(&self) -> String {
        Obj::new()
            .u64("events_enqueued", self.events_enqueued)
            .u64("messages_sent", self.messages_sent)
            .u64("timers_set", self.timers_set)
            .u64("cpu_jobs", self.cpu_jobs)
            .build()
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct LabelStat {
    events: u64,
    wall: Duration,
}

/// Opt-in wall-clock profiler for the simulation event loop.
///
/// Enable with [`SimProfiler::enable`] (or
/// `Simulation::enable_profiler`) before running; afterwards
/// [`SimProfiler::snapshot_json`] reports run wall time, events/sec,
/// handler wall time broken down by actor label, and the process's peak
/// RSS.
#[derive(Debug, Default)]
pub struct SimProfiler {
    enabled: bool,
    started: Option<Instant>,
    handler_wall: Duration,
    handler_events: u64,
    by_label: BTreeMap<String, LabelStat>,
}

impl SimProfiler {
    /// A disabled profiler (the default): every hook is a no-op and the
    /// event loop takes no clock samples.
    pub fn new() -> Self {
        SimProfiler::default()
    }

    /// Starts profiling; the run clock starts now.
    pub fn enable(&mut self) {
        self.enabled = true;
        self.started = Some(Instant::now());
    }

    /// Whether handler timing is being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Samples the clock before an event handler runs; `None` when
    /// disabled (and then [`SimProfiler::end_handler`] is free).
    pub fn start_handler(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Accounts one handler invocation against `label`.
    pub fn end_handler(&mut self, started: Option<Instant>, label: &str) {
        let Some(started) = started else { return };
        let wall = started.elapsed();
        self.handler_wall += wall;
        self.handler_events += 1;
        if let Some(stat) = self.by_label.get_mut(label) {
            stat.events += 1;
            stat.wall += wall;
        } else {
            self.by_label
                .insert(label.to_owned(), LabelStat { events: 1, wall });
        }
    }

    /// Wall time since [`SimProfiler::enable`], or zero if never enabled.
    pub fn wall_elapsed(&self) -> Duration {
        self.started.map(|t| t.elapsed()).unwrap_or(Duration::ZERO)
    }

    /// Handler invocations recorded.
    pub fn handler_events(&self) -> u64 {
        self.handler_events
    }

    /// Total wall time spent inside event handlers.
    pub fn handler_wall(&self) -> Duration {
        self.handler_wall
    }

    /// Serializes the profile: run wall seconds, host events/sec (over
    /// `events_processed`, the engine's own event count), per-label
    /// handler breakdown, peak RSS, and the hot-path counters.
    ///
    /// Host-side numbers are wall-clock measurements — they differ run
    /// to run and machine to machine. Compare them with loose, ratio
    /// tolerances only.
    pub fn snapshot_json(&self, events_processed: u64, hot: HotCounters) -> String {
        let wall = self.wall_elapsed().as_secs_f64();
        let events_per_sec = if wall > 0.0 {
            events_processed as f64 / wall
        } else {
            0.0
        };
        let mut handlers = Obj::new();
        for (label, stat) in &self.by_label {
            let share = if self.handler_wall.as_secs_f64() > 0.0 {
                stat.wall.as_secs_f64() / self.handler_wall.as_secs_f64()
            } else {
                0.0
            };
            handlers = handlers.raw(
                label,
                &Obj::new()
                    .u64("events", stat.events)
                    .f64("wall_s", stat.wall.as_secs_f64())
                    .f64("share", share)
                    .build(),
            );
        }
        Obj::new()
            .f64("wall_s", wall)
            .u64("events", events_processed)
            .f64("events_per_sec", events_per_sec)
            .f64("handler_wall_s", self.handler_wall.as_secs_f64())
            .u64("handler_events", self.handler_events)
            .raw("handlers", &handlers.build())
            .u64("peak_rss_bytes", peak_rss_bytes().unwrap_or(0))
            .raw("hot", &hot.snapshot_json())
            .build()
    }
}

/// The process's peak resident set size in bytes, read from
/// `/proc/self/status` (`VmHWM`). `None` on platforms without procfs.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = SimProfiler::new();
        assert!(!p.is_enabled());
        let t = p.start_handler();
        assert!(t.is_none());
        p.end_handler(t, "peer");
        assert_eq!(p.handler_events(), 0);
        assert_eq!(p.wall_elapsed(), Duration::ZERO);
    }

    #[test]
    fn enabled_profiler_accumulates_by_label() {
        let mut p = SimProfiler::new();
        p.enable();
        for label in ["peer", "client", "peer"] {
            let t = p.start_handler();
            assert!(t.is_some());
            p.end_handler(t, label);
        }
        assert_eq!(p.handler_events(), 3);
        let json = p.snapshot_json(3, HotCounters::default());
        assert!(json.contains("\"peer\":{\"events\":2"));
        assert!(json.contains("\"client\":{\"events\":1"));
        assert!(json.contains("\"events_per_sec\""));
        assert!(json.contains("\"peak_rss_bytes\""));
    }

    #[test]
    fn hot_counters_serialize() {
        let hot = HotCounters {
            events_enqueued: 4,
            messages_sent: 3,
            timers_set: 2,
            cpu_jobs: 1,
        };
        assert_eq!(
            hot.snapshot_json(),
            "{\"events_enqueued\":4,\"messages_sent\":3,\"timers_set\":2,\"cpu_jobs\":1}"
        );
    }

    #[test]
    fn peak_rss_reads_on_linux() {
        // The container runs Linux with procfs; a positive RSS is a
        // sanity check that the parse stays aligned with the format.
        if let Some(rss) = peak_rss_bytes() {
            assert!(rss > 0);
        }
    }
}
