//! The shared service runtime: deferred-send outbox, span-close-on-release
//! bookkeeping, CPU charging, timer-token allocation, and per-node
//! admission queues with backpressure.
//!
//! Every node actor (peer, orderer, storage, client net layer, baseline
//! nodes) owns one [`ServiceHarness`] and routes three things through it:
//!
//! 1. **Deferred work** ([`ServiceHarness::defer`]): the actor performs
//!    state mutations at message arrival, but the *results* — outbound
//!    messages and span closes — become visible only when the modelled CPU
//!    finishes the job. The harness allocates the completion token, parks
//!    the sends/closes, and releases them in [`ServiceHarness::on_timer`]
//!    (closes first, then sends).
//! 2. **Pure CPU charges** ([`ServiceHarness::charge`]): work that keeps
//!    the CPU busy but defers nothing (e.g. client-side hashing).
//! 3. **Admission** ([`ServiceHarness::admit`]): client-facing requests
//!    pass through a per-node admission queue. The default queue is
//!    unbounded and side-effect free — identical to the historical
//!    work-at-arrival model. An opt-in bound ([`QueueConfig`]) sheds load
//!    past capacity according to an [`OverloadPolicy`] and emits
//!    queue-depth/utilization gauges plus `queue.wait` spans.
//!
//! # Token namespacing
//!
//! Harness completion tokens always carry [`HARNESS_TOKEN_BIT`] (the top
//! bit), so they can never collide with actor-internal timer tokens (which
//! are small constants by convention). [`ServiceHarness::on_timer`] returns
//! `false` for tokens outside the harness namespace, letting the actor
//! dispatch its own timers — this replaces the old scheme where each actor
//! hand-rolled a token range and clients used a `u64::MAX` sentinel.

use std::collections::{HashMap, VecDeque};

use crate::engine::{ActorId, Context};
use crate::metrics::{GaugeId, HistogramId, Metrics};
use crate::time::SimDuration;

/// Tag bit identifying timer tokens allocated by a [`ServiceHarness`].
///
/// Actor-internal timers must not set this bit (keeping tokens below
/// `1 << 63` — in practice they are small constants).
pub const HARNESS_TOKEN_BIT: u64 = 1 << 63;

/// A span to close when a deferred job's CPU time finishes. Spans are keyed
/// by `(trace, stage, detail)` (see [`crate::Tracer`]), so the closing
/// instruction can travel with the outbox entry instead of the message.
#[derive(Debug, Clone)]
pub struct SpanClose {
    /// Trace the span belongs to.
    pub trace: String,
    /// Pipeline stage name.
    pub stage: &'static str,
    /// Disambiguating detail (e.g. the node's metric prefix).
    pub detail: String,
}

impl SpanClose {
    /// Convenience constructor.
    pub fn new(trace: impl Into<String>, stage: &'static str, detail: impl Into<String>) -> Self {
        SpanClose {
            trace: trace.into(),
            stage,
            detail: detail.into(),
        }
    }
}

/// A deferred outbound message: `(destination, wire bytes, payload)`.
pub type Outbound<M> = (ActorId, u64, M);

/// What an admission queue does with a request arriving past capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Discard the request silently (counted under `queue.dropped.*`).
    Drop,
    /// Return the request to the actor so it can send a protocol-level
    /// rejection to the caller.
    Nack,
    /// Park the request and re-admit it when an in-flight request
    /// completes (head-of-line blocking; arrival order is preserved among
    /// parked requests, but a request admitted between a completion and
    /// the re-delivery may overtake).
    Block,
}

impl std::fmt::Display for OverloadPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OverloadPolicy::Drop => write!(f, "drop"),
            OverloadPolicy::Nack => write!(f, "nack"),
            OverloadPolicy::Block => write!(f, "block"),
        }
    }
}

/// Bound and policy for a node's admission queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// Maximum requests in flight (admitted but not completed).
    pub capacity: usize,
    /// What to do with arrivals past capacity.
    pub policy: OverloadPolicy,
}

impl QueueConfig {
    /// Creates a bound with the given capacity and policy.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a zero-capacity queue could never
    /// admit anything).
    pub fn new(capacity: usize, policy: OverloadPolicy) -> Self {
        assert!(capacity > 0, "admission queue capacity must be > 0");
        QueueConfig { capacity, policy }
    }
}

/// Outcome of [`ServiceHarness::admit`].
#[derive(Debug)]
pub enum Admission<M> {
    /// The request was admitted; service it now.
    Admit(M),
    /// The queue is full under [`OverloadPolicy::Nack`]; the actor should
    /// send a protocol-level rejection to the caller.
    Nack(M),
    /// The harness consumed the request (dropped, or parked for later
    /// re-delivery); the actor does nothing.
    Done,
}

/// One deferred job: messages to ship and spans to close on release.
#[derive(Debug)]
struct Deferred<M> {
    sends: Vec<Outbound<M>>,
    closes: Vec<SpanClose>,
    /// True when releasing this job completes an admitted request.
    request: bool,
}

/// Queue metric names, formatted once per queue instead of per event,
/// with lazily resolved handles for the per-request hot ones. Handles are
/// resolved against the simulation's [`Metrics`] at first use — lazily,
/// so a metric appears in exports only once it is actually recorded.
#[derive(Debug)]
struct QueueMetricNames {
    depth: String,
    dropped: String,
    nacked: String,
    parked: String,
    blocked: String,
    wait: String,
    util: String,
    depth_id: Option<GaugeId>,
    parked_id: Option<GaugeId>,
    util_id: Option<GaugeId>,
    wait_id: Option<HistogramId>,
}

impl QueueMetricNames {
    fn new(name: &str) -> Self {
        QueueMetricNames {
            depth: format!("queue.depth.{name}"),
            dropped: format!("queue.dropped.{name}"),
            nacked: format!("queue.nacked.{name}"),
            parked: format!("queue.parked.{name}"),
            blocked: format!("queue.blocked.{name}"),
            wait: format!("queue.wait.{name}"),
            util: format!("queue.util.{name}"),
            depth_id: None,
            parked_id: None,
            util_id: None,
            wait_id: None,
        }
    }
}

fn set_gauge_cached(m: &mut Metrics, slot: &mut Option<GaugeId>, name: &str, value: f64) {
    let id = *slot.get_or_insert_with(|| m.gauge_id(name));
    m.set_gauge_id(id, value);
}

fn record_cached(m: &mut Metrics, slot: &mut Option<HistogramId>, name: &str, value: u64) {
    let id = *slot.get_or_insert_with(|| m.histogram_id(name));
    m.record_id(id, value);
}

#[derive(Debug)]
struct QueueState<M> {
    config: QueueConfig,
    /// Requests admitted but not yet completed.
    in_flight: usize,
    /// Requests parked under [`OverloadPolicy::Block`].
    parked: VecDeque<(ActorId, M)>,
    metric: QueueMetricNames,
}

/// The per-actor service runtime. See the [module docs](self).
#[derive(Debug)]
pub struct ServiceHarness<M> {
    name: String,
    next_token: u64,
    next_job: u64,
    pending: HashMap<u64, Deferred<M>>,
    queue: Option<QueueState<M>>,
}

impl<M> ServiceHarness<M> {
    /// Creates a harness with an unbounded, uninstrumented admission queue
    /// — behaviourally identical to the historical work-at-arrival model.
    pub fn new(name: impl Into<String>) -> Self {
        ServiceHarness {
            name: name.into(),
            next_token: 0,
            next_job: 0,
            pending: HashMap::new(),
            queue: None,
        }
    }

    /// Creates a harness with a bounded admission queue.
    pub fn with_queue(name: impl Into<String>, config: QueueConfig) -> Self {
        let mut harness = ServiceHarness::new(name);
        harness.set_queue(config);
        harness
    }

    /// Bounds (or re-bounds) the admission queue. Also enables queue
    /// instrumentation: depth/utilization gauges and `queue.wait` spans.
    pub fn set_queue(&mut self, config: QueueConfig) {
        self.queue = Some(QueueState {
            config,
            in_flight: 0,
            parked: VecDeque::new(),
            metric: QueueMetricNames::new(&self.name),
        });
    }

    /// The node name used in queue metric keys.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// True when the admission queue has an explicit bound.
    pub fn is_bounded(&self) -> bool {
        self.queue.is_some()
    }

    /// Admitted-but-not-completed request count (0 when unbounded — the
    /// unbounded queue tracks nothing).
    pub fn in_flight(&self) -> usize {
        self.queue.as_ref().map_or(0, |q| q.in_flight)
    }

    /// Deferred jobs currently waiting for CPU completion.
    pub fn pending_jobs(&self) -> usize {
        self.pending.len()
    }

    /// Requests parked under [`OverloadPolicy::Block`].
    pub fn parked(&self) -> usize {
        self.queue.as_ref().map_or(0, |q| q.parked.len())
    }

    /// Discards all volatile harness state after a crash: pending deferred
    /// jobs (their completion timers were dropped with the crash), admitted
    /// request counts, and parked requests. The queue bound itself — like
    /// the node's configuration — survives. Token/job counters keep
    /// counting so post-restart tokens can never collide with stale ones.
    pub fn reset(&mut self) {
        self.pending.clear();
        if let Some(q) = &mut self.queue {
            q.in_flight = 0;
            q.parked.clear();
        }
    }

    /// Monotonic per-node job sequence (1, 2, 3…), for labelling deferred
    /// jobs in span details independently of completion tokens.
    pub fn next_job(&mut self) -> u64 {
        self.next_job += 1;
        self.next_job
    }

    fn alloc_token(&mut self) -> u64 {
        self.next_token += 1;
        HARNESS_TOKEN_BIT | self.next_token
    }

    /// Passes a client-facing request through the admission queue.
    ///
    /// Unbounded queues admit unconditionally with no side effects. Bounded
    /// queues admit while fewer than `capacity` requests are in flight and
    /// otherwise apply the configured [`OverloadPolicy`].
    pub fn admit(&mut self, ctx: &mut Context<'_, M>, src: ActorId, msg: M) -> Admission<M> {
        let Some(q) = &mut self.queue else {
            return Admission::Admit(msg);
        };
        if q.in_flight < q.config.capacity {
            q.in_flight += 1;
            let depth = q.in_flight as f64;
            set_gauge_cached(
                ctx.metrics(),
                &mut q.metric.depth_id,
                &q.metric.depth,
                depth,
            );
            return Admission::Admit(msg);
        }
        match q.config.policy {
            OverloadPolicy::Drop => {
                ctx.metrics().incr(&q.metric.dropped, 1);
                Admission::Done
            }
            OverloadPolicy::Nack => {
                ctx.metrics().incr(&q.metric.nacked, 1);
                Admission::Nack(msg)
            }
            OverloadPolicy::Block => {
                q.parked.push_back((src, msg));
                let parked = q.parked.len() as f64;
                set_gauge_cached(
                    ctx.metrics(),
                    &mut q.metric.parked_id,
                    &q.metric.parked,
                    parked,
                );
                ctx.metrics().incr(&q.metric.blocked, 1);
                Admission::Done
            }
        }
    }

    /// Defers internal work: charges `cost` to the actor's CPU and parks
    /// `sends`/`closes` until the CPU finishes. Returns the completion
    /// token (always in the harness namespace).
    pub fn defer(
        &mut self,
        ctx: &mut Context<'_, M>,
        cost: SimDuration,
        sends: Vec<Outbound<M>>,
        closes: Vec<SpanClose>,
    ) -> u64 {
        self.defer_inner(ctx, cost, sends, closes, false)
    }

    /// Like [`ServiceHarness::defer`], but releasing the job also
    /// completes one admitted request (decrementing the queue and waking a
    /// parked request, if any). When the queue is bounded, a `queue.wait`
    /// span for `trace` records the time the job waits behind earlier CPU
    /// work before service starts.
    pub fn defer_request(
        &mut self,
        ctx: &mut Context<'_, M>,
        cost: SimDuration,
        trace: &str,
        sends: Vec<Outbound<M>>,
        closes: Vec<SpanClose>,
    ) -> u64 {
        if let Some(q) = &mut self.queue {
            let arrival = ctx.now();
            let start = arrival.max(ctx.cpu().busy_until());
            let tracer = ctx.tracer();
            tracer.span_start(arrival, trace, "queue.wait", &self.name);
            tracer.span_end(start, trace, "queue.wait", &self.name);
            let wait = start.saturating_duration_since(arrival);
            record_cached(
                ctx.metrics(),
                &mut q.metric.wait_id,
                &q.metric.wait,
                wait.as_nanos(),
            );
        }
        self.defer_inner(ctx, cost, sends, closes, true)
    }

    fn defer_inner(
        &mut self,
        ctx: &mut Context<'_, M>,
        cost: SimDuration,
        sends: Vec<Outbound<M>>,
        closes: Vec<SpanClose>,
        request: bool,
    ) -> u64 {
        let token = self.alloc_token();
        self.pending.insert(
            token,
            Deferred {
                sends,
                closes,
                request,
            },
        );
        ctx.execute(cost, token);
        token
    }

    /// Defers internal work charged as a *parallel batch*: the cost items
    /// are spread across the actor's CPU lanes (see
    /// [`crate::CpuResource::execute_parallel`]) and `sends`/`closes` are
    /// parked until the batch makespan. Returns the completion token and
    /// the makespan instant.
    pub fn defer_parallel(
        &mut self,
        ctx: &mut Context<'_, M>,
        costs: &[SimDuration],
        sends: Vec<Outbound<M>>,
        closes: Vec<SpanClose>,
    ) -> (u64, crate::time::SimTime) {
        let token = self.alloc_token();
        self.pending.insert(
            token,
            Deferred {
                sends,
                closes,
                request: false,
            },
        );
        let (_, end) = ctx.execute_parallel(costs, token);
        (token, end)
    }

    /// Charges pure CPU time with nothing to release — the completion
    /// timer is swallowed by [`ServiceHarness::on_timer`]. Replaces the
    /// old `u64::MAX` noop-token pattern.
    pub fn charge(&mut self, ctx: &mut Context<'_, M>, cost: SimDuration) -> u64 {
        self.defer_inner(ctx, cost, Vec::new(), Vec::new(), false)
    }

    /// Charges CPU time whose completion also completes one admitted
    /// request (used where admission cost is the only modelled service,
    /// e.g. the ordering node's broadcast path).
    pub fn charge_request(
        &mut self,
        ctx: &mut Context<'_, M>,
        cost: SimDuration,
        trace: &str,
    ) -> u64 {
        self.defer_request(ctx, cost, trace, Vec::new(), Vec::new())
    }

    /// Completes one admitted request that finished without deferred work
    /// (e.g. a request rejected synchronously). No-op when unbounded.
    pub fn request_done(&mut self, ctx: &mut Context<'_, M>) {
        let Some(q) = &mut self.queue else {
            return;
        };
        q.in_flight = q.in_flight.saturating_sub(1);
        let depth = q.in_flight as f64;
        let woken = q.parked.pop_front();
        let parked = q.parked.len() as f64;
        set_gauge_cached(
            ctx.metrics(),
            &mut q.metric.depth_id,
            &q.metric.depth,
            depth,
        );
        if woken.is_some() {
            set_gauge_cached(
                ctx.metrics(),
                &mut q.metric.parked_id,
                &q.metric.parked,
                parked,
            );
        }
        let now = ctx.now();
        let util = ctx.cpu().utilization(crate::time::SimTime::ZERO, now);
        set_gauge_cached(ctx.metrics(), &mut q.metric.util_id, &q.metric.util, util);
        if let Some((src, msg)) = woken {
            // Re-enter the actor's handler; the request passes admission
            // again against the freed slot.
            ctx.requeue(src, msg);
        }
    }

    /// Handles a timer event. Returns `true` when `token` belongs to the
    /// harness namespace (the event is fully handled); `false` when it is
    /// an actor-internal timer the caller must dispatch itself.
    ///
    /// Releasing a deferred job closes its spans at the current virtual
    /// time *first*, then ships its messages.
    pub fn on_timer(&mut self, ctx: &mut Context<'_, M>, token: u64) -> bool {
        if token & HARNESS_TOKEN_BIT == 0 {
            return false;
        }
        if let Some(job) = self.pending.remove(&token) {
            for close in &job.closes {
                ctx.span_end(&close.trace, close.stage, &close.detail);
            }
            for (dst, bytes, msg) in job.sends {
                ctx.send(dst, bytes, msg);
            }
            if job.request {
                self.request_done(ctx);
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Actor, Event, Simulation};
    use crate::time::SimTime;
    use std::cell::RefCell;
    use std::rc::Rc;

    const MS: u64 = 1_000_000;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    /// Records `(token, time)` of messages it receives.
    struct Sink {
        log: Rc<RefCell<Vec<(u64, SimTime)>>>,
    }
    impl Actor<u64> for Sink {
        fn on_event(&mut self, ctx: &mut Context<'_, u64>, event: Event<u64>) {
            if let Event::Message { msg, .. } = event {
                self.log.borrow_mut().push((msg, ctx.now()));
            }
        }
    }

    /// A service node driven by scripted timers; used to exercise the
    /// harness deterministically.
    struct Scripted {
        harness: ServiceHarness<u64>,
        sink: ActorId,
        host_timer_fired: Rc<RefCell<Vec<u64>>>,
        script: Vec<(u64, SimDuration, u64)>, // (kick token, cost, payload)
    }
    impl Actor<u64> for Scripted {
        fn on_event(&mut self, ctx: &mut Context<'_, u64>, event: Event<u64>) {
            match event {
                Event::Timer { token } => {
                    if self.harness.on_timer(ctx, token) {
                        return;
                    }
                    if let Some(&(_, cost, payload)) =
                        self.script.iter().find(|(kick, ..)| *kick == token)
                    {
                        let trace = format!("job-{payload}");
                        ctx.span_start(&trace, "svc.exec", "");
                        self.harness.defer(
                            ctx,
                            cost,
                            vec![(self.sink, 8, payload)],
                            vec![SpanClose::new(trace, "svc.exec", "")],
                        );
                    } else {
                        self.host_timer_fired.borrow_mut().push(token);
                    }
                }
                Event::Message { .. } => {}
            }
        }
    }

    #[test]
    fn release_order_under_interleaved_defers() {
        // Two jobs deferred from timers at t=0ms and t=1ms with costs 10ms
        // and 2ms: the CPU serialises them, so job 1 releases at 10ms and
        // job 2 at 12ms — completion order follows CPU order, and each
        // release ships its own payload.
        let log = Rc::new(RefCell::new(Vec::new()));
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(1);
        let sink = sim.add_actor(Box::new(Sink { log: log.clone() }));
        let svc = sim.add_actor(Box::new(Scripted {
            harness: ServiceHarness::new("svc"),
            sink,
            host_timer_fired: fired.clone(),
            script: vec![(1, ms(10), 100), (2, ms(2), 200)],
        }));
        sim.network_mut().set_default_link(crate::net::LinkSpec {
            latency: SimDuration::ZERO,
            bandwidth_bps: u64::MAX,
            jitter_frac: 0.0,
        });
        sim.start_timer(svc, SimDuration::ZERO, 1);
        sim.start_timer(svc, ms(1), 2);
        sim.run();
        let log = log.borrow();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0], (100, SimTime::from_nanos(10 * MS)));
        assert_eq!(log[1], (200, SimTime::from_nanos(12 * MS)));
        assert!(fired.borrow().is_empty());
    }

    #[test]
    fn spans_close_on_release_with_no_unmatched_ends() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(1);
        let sink = sim.add_actor(Box::new(Sink { log }));
        let script: Vec<_> = (0..8u64).map(|i| (10 + i, ms(3), i)).collect();
        let svc = sim.add_actor(Box::new(Scripted {
            harness: ServiceHarness::new("svc"),
            sink,
            host_timer_fired: fired,
            script,
        }));
        for i in 0..8u64 {
            sim.start_timer(svc, SimDuration::from_micros(i * 100), 10 + i);
        }
        sim.run();
        let tracer = sim.tracer();
        assert_eq!(tracer.spans_started(), 8);
        assert_eq!(tracer.spans_finished(), 8);
        assert_eq!(tracer.open_spans(), 0);
        assert_eq!(tracer.unmatched_ends(), 0);
        assert_eq!(tracer.duplicate_starts(), 0);
    }

    #[test]
    fn harness_tokens_never_collide_with_host_timers() {
        // Host timers use small tokens (here: 3 and 7, mimicking
        // BATCH_TIMER-style constants). Even after many harness defers the
        // namespaces stay disjoint: on_timer claims exactly the harness
        // tokens and rejects the host's.
        let log = Rc::new(RefCell::new(Vec::new()));
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(1);
        let sink = sim.add_actor(Box::new(Sink { log: log.clone() }));
        let script: Vec<_> = (0..100u64).map(|i| (1000 + i, ms(1), i)).collect();
        let svc = sim.add_actor(Box::new(Scripted {
            harness: ServiceHarness::new("svc"),
            sink,
            host_timer_fired: fired.clone(),
            script,
        }));
        for i in 0..100u64 {
            sim.start_timer(svc, SimDuration::from_micros(i), 1000 + i);
        }
        sim.start_timer(svc, ms(5), 3);
        sim.start_timer(svc, ms(150), 7);
        sim.run();
        assert_eq!(log.borrow().len(), 100);
        assert_eq!(&*fired.borrow(), &[3, 7]);
    }

    #[test]
    fn charge_keeps_cpu_busy_but_ships_nothing() {
        struct Charger {
            harness: ServiceHarness<u64>,
        }
        impl Actor<u64> for Charger {
            fn on_event(&mut self, ctx: &mut Context<'_, u64>, event: Event<u64>) {
                if let Event::Timer { token } = event {
                    if self.harness.on_timer(ctx, token) {
                        return;
                    }
                    self.harness.charge(ctx, ms(25));
                }
            }
        }
        let mut sim = Simulation::new(1);
        let a = sim.add_actor(Box::new(Charger {
            harness: ServiceHarness::new("c"),
        }));
        sim.start_timer(a, SimDuration::ZERO, 1);
        sim.run();
        assert_eq!(sim.cpu(a).total_busy(), ms(25));
        assert_eq!(sim.now(), SimTime::from_nanos(25 * MS));
    }

    // --- bounded-queue behaviour -------------------------------------

    /// A bounded service: every incoming message is a request costing
    /// `cost`; nacks are echoed back as `payload + NACK_OFFSET`.
    struct Bounded {
        harness: ServiceHarness<u64>,
        sink: ActorId,
        cost: SimDuration,
    }
    const NACK_OFFSET: u64 = 1_000_000;
    impl Actor<u64> for Bounded {
        fn on_event(&mut self, ctx: &mut Context<'_, u64>, event: Event<u64>) {
            match event {
                Event::Message { src, msg } => match self.harness.admit(ctx, src, msg) {
                    Admission::Admit(payload) => {
                        let trace = format!("req-{payload}");
                        ctx.span_start(&trace, "svc.exec", "");
                        let closes = vec![SpanClose::new(trace.clone(), "svc.exec", "")];
                        self.harness.defer_request(
                            ctx,
                            self.cost,
                            &trace,
                            vec![(self.sink, 8, payload)],
                            closes,
                        );
                    }
                    Admission::Nack(payload) => {
                        ctx.send(self.sink, 8, payload + NACK_OFFSET);
                    }
                    Admission::Done => {}
                },
                Event::Timer { token } => {
                    let _ = self.harness.on_timer(ctx, token);
                }
            }
        }
    }

    fn run_bounded(
        config: QueueConfig,
        n_requests: u64,
        cost: SimDuration,
    ) -> (Vec<u64>, crate::metrics::Metrics, u64, u64) {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(1);
        let sink = sim.add_actor(Box::new(Sink { log: log.clone() }));
        let svc = sim.add_actor(Box::new(Bounded {
            harness: ServiceHarness::with_queue("svc", config),
            sink,
            cost,
        }));
        for i in 0..n_requests {
            sim.inject_message(svc, i);
        }
        sim.run();
        let payloads: Vec<u64> = log.borrow().iter().map(|&(p, _)| p).collect();
        let tracer = sim.tracer();
        let (started, finished) = (tracer.spans_started(), tracer.spans_finished());
        assert_eq!(tracer.unmatched_ends(), 0);
        (payloads, sim.metrics().clone(), started, finished)
    }

    #[test]
    fn drop_policy_sheds_past_capacity() {
        let (served, metrics, ..) =
            run_bounded(QueueConfig::new(2, OverloadPolicy::Drop), 10, ms(5));
        // All 10 arrive in the same instant; 2 admitted, 8 dropped.
        assert_eq!(served, vec![0, 1]);
        assert_eq!(metrics.counter("queue.dropped.svc"), 8);
        assert_eq!(metrics.gauge("queue.depth.svc"), Some(0.0));
    }

    #[test]
    fn nack_policy_returns_request_to_actor() {
        let (served, metrics, ..) =
            run_bounded(QueueConfig::new(3, OverloadPolicy::Nack), 6, ms(5));
        let mut nacks: Vec<u64> = served
            .iter()
            .copied()
            .filter(|&p| p >= NACK_OFFSET)
            .collect();
        // Nacks all ship in the same instant; link jitter may reorder them.
        nacks.sort_unstable();
        let oks: Vec<u64> = served
            .iter()
            .copied()
            .filter(|&p| p < NACK_OFFSET)
            .collect();
        assert_eq!(oks, vec![0, 1, 2]);
        assert_eq!(
            nacks,
            vec![NACK_OFFSET + 3, NACK_OFFSET + 4, NACK_OFFSET + 5]
        );
        assert_eq!(metrics.counter("queue.nacked.svc"), 3);
    }

    #[test]
    fn block_policy_parks_and_eventually_serves_all() {
        let (served, metrics, ..) =
            run_bounded(QueueConfig::new(1, OverloadPolicy::Block), 5, ms(2));
        // Capacity 1: requests are served one at a time, in order, with
        // parked requests re-admitted as slots free.
        assert_eq!(served, vec![0, 1, 2, 3, 4]);
        assert_eq!(metrics.counter("queue.blocked.svc"), 4);
        assert_eq!(metrics.gauge("queue.parked.svc"), Some(0.0));
    }

    #[test]
    fn unbounded_admit_has_no_side_effects() {
        let mut sim = Simulation::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        let sink = sim.add_actor(Box::new(Sink { log }));
        let svc = sim.add_actor(Box::new(Bounded {
            harness: ServiceHarness::new("svc"),
            sink,
            cost: ms(1),
        }));
        for i in 0..4 {
            sim.inject_message(svc, i);
        }
        sim.run();
        assert_eq!(sim.metrics().gauge("queue.depth.svc"), None);
        assert!(sim.metrics().histogram("queue.wait.svc").is_none());
    }

    proptest::proptest! {
        /// Property (ISSUE 2 satellite): under a bounded queue with the
        /// Drop policy, every span the service opens is closed exactly
        /// once — dropped requests must never leave a dangling open span,
        /// and no close may fire without a matching open.
        #[test]
        fn drop_never_loses_span_pairing(
            capacity in 1usize..5,
            n_requests in 1u64..40,
            cost_ms in 1u64..8,
        ) {
            let (_, _, started, finished) = run_bounded(
                QueueConfig::new(capacity, OverloadPolicy::Drop),
                n_requests,
                ms(cost_ms),
            );
            proptest::prop_assert_eq!(started, finished);
            // Each admitted request opens at most two spans (queue.wait +
            // svc.exec); drops open none.
            proptest::prop_assert!(started <= 2 * n_requests);
        }
    }
}
