//! Hybrid event queue: a near-horizon binary heap fronting a
//! hierarchical timer wheel.
//!
//! A single `BinaryHeap` pays `O(log n)` sift work on every push and pop,
//! with `n` the *whole* future — at 10k clients the queue holds hundreds
//! of thousands of pending timers and deliveries and the heap becomes the
//! kernel's cache-miss machine. This queue keeps only the imminent events
//! (those below a moving time horizon) in a small heap; everything later
//! is binned by coarse time slot into a fixed-size wheel of unsorted
//! buckets, with far-future slots spilling into an overflow tier. Pushes
//! into the wheel are `O(1)` appends; slots are sorted lazily by draining
//! them into the heap only when the horizon reaches them. Bucket vectors
//! are pooled and reused so steady-state operation allocates nothing.
//!
//! Pop order is identical to the plain heap by construction: every item
//! below the horizon is in the heap, every item at or above it is not,
//! and the horizon only advances when the heap is empty — so the heap
//! minimum is always the global `(time, seq)` minimum.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

use crate::engine::{ActorId, Event};
use crate::time::SimTime;

/// Log2 of a wheel slot's time span: 2^20 ns ≈ 1.05 ms per slot.
const SLOT_SHIFT: u32 = 20;
/// Number of wheel slots: covers ≈ 268 ms beyond the horizon.
const SLOTS: u64 = 256;
/// Retain at most this many spare bucket vectors for reuse.
const POOL_CAP: usize = 64;

/// One scheduled event (or timer, or restart marker).
pub(crate) struct QueueItem<M> {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) target: ActorId,
    pub(crate) event: Event<M>,
    /// Non-zero when this entry is a cancellable timer.
    pub(crate) timer_id: u64,
    /// The target's crash epoch when this entry was enqueued; stale
    /// entries (scheduled before a crash or during the down window) are
    /// dropped at pop time or swept by lazy compaction.
    pub(crate) epoch: u64,
    /// True for the internal marker that revives a crashed actor.
    pub(crate) restart: bool,
}

impl<M> PartialEq for QueueItem<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for QueueItem<M> {}
impl<M> PartialOrd for QueueItem<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for QueueItem<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// The hybrid event queue. See the module docs for the design.
pub(crate) struct EventQueue<M> {
    /// Imminent events, every one strictly below `horizon`.
    near: BinaryHeap<QueueItem<M>>,
    /// First slot index not yet drained into `near`.
    wheel_base: u64,
    /// Time bound of `near`: `wheel_base << SLOT_SHIFT` (saturating).
    horizon: u64,
    /// Ring of unsorted buckets for slots `wheel_base .. wheel_base+SLOTS`;
    /// slot `s` lives at index `s % SLOTS`.
    wheel: Vec<Vec<QueueItem<M>>>,
    /// Items currently binned in the wheel.
    wheel_len: usize,
    /// Buckets for slots at or beyond `wheel_base + SLOTS`.
    overflow: BTreeMap<u64, Vec<QueueItem<M>>>,
    /// Spare bucket vectors, reused to keep steady state allocation-free.
    pool: Vec<Vec<QueueItem<M>>>,
    len: usize,
}

impl<M> EventQueue<M> {
    pub(crate) fn new() -> Self {
        EventQueue {
            near: BinaryHeap::new(),
            wheel_base: 0,
            horizon: 0,
            wheel: (0..SLOTS).map(|_| Vec::new()).collect(),
            wheel_len: 0,
            overflow: BTreeMap::new(),
            pool: Vec::new(),
            len: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Enqueues one item, binning by time tier.
    pub(crate) fn push(&mut self, item: QueueItem<M>) {
        let t = item.time.as_nanos();
        self.len += 1;
        if t < self.horizon {
            self.near.push(item);
            return;
        }
        let slot = t >> SLOT_SHIFT;
        if slot < self.wheel_base + SLOTS {
            self.wheel[(slot % SLOTS) as usize].push(item);
            self.wheel_len += 1;
        } else {
            self.overflow
                .entry(slot)
                .or_insert_with(|| self.pool.pop().unwrap_or_default())
                .push(item);
        }
    }

    /// Removes and returns the earliest `(time, seq)` item.
    pub(crate) fn pop(&mut self) -> Option<QueueItem<M>> {
        if self.near.is_empty() {
            if self.len == 0 {
                return None;
            }
            self.advance();
        }
        let item = self.near.pop();
        debug_assert!(item.is_some(), "len out of sync with tiers");
        if item.is_some() {
            self.len -= 1;
        }
        item
    }

    /// The timestamp of the earliest queued item, if any. Takes `&mut
    /// self` because peeking may need to advance the horizon (which never
    /// changes pop order).
    pub(crate) fn peek_time(&mut self) -> Option<SimTime> {
        if self.near.is_empty() {
            if self.len == 0 {
                return None;
            }
            self.advance();
        }
        self.near.peek().map(|item| item.time)
    }

    /// Advances the horizon to the next non-empty slot and drains that
    /// slot into the near heap. Caller guarantees `len > 0` and `near`
    /// empty.
    fn advance(&mut self) {
        loop {
            if self.wheel_len == 0 {
                // Nothing binned in the wheel window: jump straight to the
                // first overflow bucket's slot.
                let (&slot, _) = self
                    .overflow
                    .first_key_value()
                    .expect("len > 0 but all tiers empty");
                self.wheel_base = slot;
                self.set_horizon();
                self.refill();
                continue;
            }
            let window_end = self.wheel_base + SLOTS;
            let mut found = None;
            for s in self.wheel_base..window_end {
                if !self.wheel[(s % SLOTS) as usize].is_empty() {
                    found = Some(s);
                    break;
                }
            }
            let s = found.expect("wheel_len > 0 but all slots empty");
            self.wheel_base = s + 1;
            self.set_horizon();
            let bucket = &mut self.wheel[(s % SLOTS) as usize];
            self.wheel_len -= bucket.len();
            for item in bucket.drain(..) {
                self.near.push(item);
            }
            self.refill();
            return;
        }
    }

    fn set_horizon(&mut self) {
        self.horizon = self.wheel_base.saturating_mul(1 << SLOT_SHIFT);
    }

    /// Moves overflow buckets that fell inside the wheel window into the
    /// wheel, recycling drained vectors through the pool.
    fn refill(&mut self) {
        let window_end = self.wheel_base + SLOTS;
        while let Some((&slot, _)) = self.overflow.first_key_value() {
            if slot >= window_end {
                break;
            }
            let mut bucket = self.overflow.remove(&slot).unwrap();
            self.wheel_len += bucket.len();
            let dst = &mut self.wheel[(slot % SLOTS) as usize];
            if dst.is_empty() {
                let spare = std::mem::replace(dst, bucket);
                self.recycle(spare);
            } else {
                dst.append(&mut bucket);
                self.recycle(bucket);
            }
        }
    }

    fn recycle(&mut self, bucket: Vec<QueueItem<M>>) {
        if self.pool.len() < POOL_CAP && bucket.capacity() > 0 {
            debug_assert!(bucket.is_empty());
            self.pool.push(bucket);
        }
    }

    /// Retains only items for which `keep` returns true, preserving pop
    /// order of the survivors. Used for lazy compaction of stale events
    /// after a crash; `keep` may count what it rejects.
    pub(crate) fn compact(&mut self, mut keep: impl FnMut(&QueueItem<M>) -> bool) {
        let mut heap = std::mem::take(&mut self.near).into_vec();
        heap.retain(&mut keep);
        self.near = BinaryHeap::from(heap);
        self.wheel_len = 0;
        for bucket in &mut self.wheel {
            bucket.retain(&mut keep);
            self.wheel_len += bucket.len();
        }
        for bucket in self.overflow.values_mut() {
            bucket.retain(&mut keep);
        }
        self.len = self.near.len() + self.wheel_len;
        self.len += self.overflow.values().map(Vec::len).sum::<usize>();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn item(time: u64, seq: u64) -> QueueItem<()> {
        QueueItem {
            time: SimTime::from_nanos(time),
            seq,
            target: ActorId(0),
            event: Event::Timer { token: 0 },
            timer_id: 0,
            epoch: 0,
            restart: false,
        }
    }

    /// Reference model: the original single binary heap.
    fn heap_order(mut items: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
        items.sort_by_key(|&(t, s)| (t, s));
        items
    }

    #[test]
    fn pops_in_time_then_seq_order_across_tiers() {
        let mut q: EventQueue<()> = EventQueue::new();
        // Near (sub-ms), wheel (tens of ms) and overflow (minutes) tiers.
        let times = [
            5u64,
            1 << 21,
            (1 << 21) + 1,
            90_000_000,
            60_000_000_000,
            3,
            60_000_000_001,
        ];
        for (seq, &t) in times.iter().enumerate() {
            q.push(item(t, seq as u64 + 1));
        }
        assert_eq!(q.len(), times.len());
        let mut got = Vec::new();
        while let Some(i) = q.pop() {
            got.push((i.time.as_nanos(), i.seq));
        }
        let want = heap_order(
            times
                .iter()
                .enumerate()
                .map(|(s, &t)| (t, s as u64 + 1))
                .collect(),
        );
        assert_eq!(got, want);
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop().map(|i| i.seq), None);
    }

    #[test]
    fn peek_matches_next_pop() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.push(item(500_000_000, 1));
        q.push(item(10, 2));
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(10)));
        assert_eq!(q.pop().unwrap().seq, 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(500_000_000)));
        assert_eq!(q.pop().unwrap().seq, 1);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn compact_drops_only_rejected_items_and_keeps_order() {
        let mut q: EventQueue<()> = EventQueue::new();
        for seq in 1..=200u64 {
            q.push(item(seq * 3_000_000, seq)); // spans many slots
        }
        q.pop(); // pull a slot into the near heap so all tiers are populated
        q.compact(|i| i.seq % 3 != 0);
        let mut got = Vec::new();
        while let Some(i) = q.pop() {
            got.push(i.seq);
        }
        let want: Vec<u64> = (2..=200).filter(|s| s % 3 != 0).collect();
        assert_eq!(got, want);
    }

    proptest! {
        /// Timer-wheel vs heap equivalence: any interleaving of pushes
        /// and pops yields exactly the `(time, seq)` order the plain
        /// `BinaryHeap` produced.
        #[test]
        fn wheel_matches_heap_reference(
            batches in proptest::collection::vec(
                proptest::collection::vec((0u64..200_000_000_000, 0usize..3), 1..40),
                1..8,
            ),
        ) {
            use std::cmp::Reverse;
            let mut q: EventQueue<()> = EventQueue::new();
            let mut reference: std::collections::BinaryHeap<Reverse<(u64, u64)>> =
                std::collections::BinaryHeap::new();
            let mut seq = 0u64;
            let mut floor = 0u64; // sim time never goes backwards
            for batch in batches {
                for (t, pops) in batch {
                    seq += 1;
                    let t = floor.saturating_add(t % 1_000_000_000);
                    q.push(item(t, seq));
                    reference.push(Reverse((t, seq)));
                    for _ in 0..pops {
                        let got = q.pop().map(|i| (i.time.as_nanos(), i.seq));
                        let want = reference.pop().map(|Reverse(pair)| pair);
                        prop_assert_eq!(got, want);
                        if let Some((t, _)) = got {
                            floor = floor.max(t);
                        }
                    }
                }
            }
            loop {
                let got = q.pop().map(|i| (i.time.as_nanos(), i.seq));
                let want = reference.pop().map(|Reverse(pair)| pair);
                prop_assert_eq!(got, want);
                if got.is_none() {
                    break;
                }
            }
        }
    }
}
