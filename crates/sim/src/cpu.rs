//! Per-node CPU model: a multi-lane execution resource with a relative
//! speed factor and busy-interval logs for utilisation and energy queries.
//!
//! Each actor owns one [`CpuResource`]. Work is expressed as a *reference
//! cost* (the virtual time the work would take on a 1.0-speed reference
//! core); a node's actual service time is `cost / speed`, computed in
//! exact integer arithmetic so determinism never depends on float
//! rounding. A CPU has one or more *lanes* (cores). [`CpuResource::execute`]
//! keeps the classic serial semantics — work queues FIFO behind everything
//! previously scheduled — modelling the single-threaded chaincode/commit
//! path that dominates the paper's measurements.
//! [`CpuResource::execute_parallel`] schedules a batch of independent work
//! items across the lanes (earliest-free-lane assignment, deterministic
//! tie-break by lane index) and returns the batch makespan, modelling
//! FastFabric-style parallel validation.

use crate::time::{SimDuration, SimTime};

/// One execution lane (core): when it frees up and its busy-interval log.
#[derive(Debug, Clone, Default)]
struct Lane {
    free_at: SimTime,
    /// Non-overlapping busy intervals in increasing order.
    segments: Vec<(SimTime, SimTime)>,
}

impl Lane {
    fn push_segment(&mut self, start: SimTime, end: SimTime) {
        // Coalesce with the previous segment when contiguous.
        if let Some(last) = self.segments.last_mut() {
            if last.1 == start {
                last.1 = end;
                return;
            }
        }
        self.segments.push((start, end));
    }

    fn busy_between(&self, from: SimTime, to: SimTime) -> SimDuration {
        // First segment that may overlap: last with start < to, walking from
        // a binary-search lower bound on segments ending after `from`.
        let idx = self.segments.partition_point(|&(_, end)| end <= from);
        let mut acc = SimDuration::ZERO;
        for &(s, e) in &self.segments[idx..] {
            if s >= to {
                break;
            }
            let lo = if s > from { s } else { from };
            let hi = if e < to { e } else { to };
            if hi > lo {
                acc += hi - lo;
            }
        }
        acc
    }
}

/// A multi-lane CPU with a relative speed factor.
#[derive(Debug, Clone)]
pub struct CpuResource {
    speed: f64,
    lanes: Vec<Lane>,
    total_busy: SimDuration,
}

impl CpuResource {
    /// Creates a single-lane CPU with the given relative speed
    /// (1.0 = reference core).
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not finite and positive.
    pub fn new(speed: f64) -> Self {
        CpuResource::with_lanes(speed, 1)
    }

    /// Creates a CPU with `lanes` parallel execution lanes (cores).
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not finite and positive, or if `lanes` is zero.
    pub fn with_lanes(speed: f64, lanes: usize) -> Self {
        assert!(
            speed.is_finite() && speed > 0.0,
            "CPU speed must be positive, got {speed}"
        );
        assert!(lanes > 0, "CPU must have at least one lane");
        CpuResource {
            speed,
            lanes: vec![Lane::default(); lanes],
            total_busy: SimDuration::ZERO,
        }
    }

    /// The relative speed factor.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Number of execution lanes (cores).
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Service time for `reference_cost` on this CPU: `cost / speed`,
    /// rounded half-up, computed in integer arithmetic (the f64 speed is
    /// decomposed exactly as `m * 2^e`, so no precision is lost even for
    /// very large costs).
    fn service_time(&self, reference_cost: SimDuration) -> SimDuration {
        if self.speed == 1.0 {
            return reference_cost;
        }
        let cost = u128::from(reference_cost.as_nanos());
        let nanos = divide_by_speed(cost, self.speed).unwrap_or_else(|| {
            // Degenerate speeds (subnormals, astronomically large values)
            // that the exact path cannot represent fall back to floats.
            (reference_cost.as_nanos() as f64 / self.speed).round() as u128
        });
        SimDuration::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX))
    }

    /// Schedules `reference_cost` worth of work submitted at `now`,
    /// serialising behind *all* previously scheduled work (every lane).
    ///
    /// Returns `(start, completion)`: the work starts when the whole CPU
    /// frees up and runs for `reference_cost / speed` on one lane. With a
    /// single lane this is exactly the classic FIFO queue.
    pub fn execute(&mut self, now: SimTime, reference_cost: SimDuration) -> (SimTime, SimTime) {
        let service = self.service_time(reference_cost);
        let barrier = self.busy_until();
        let start = if barrier > now { barrier } else { now };
        let end = start + service;
        // All lanes are free at `start`; occupy the one that was busiest
        // so earlier-free lanes keep their head start for parallel work.
        let lane = self.last_busy_lane();
        self.lanes[lane].free_at = end;
        if !service.is_zero() {
            self.lanes[lane].push_segment(start, end);
            self.total_busy += service;
        }
        (start, end)
    }

    /// Schedules a batch of independent work items submitted at `now`
    /// across the lanes: each item (in slice order) is assigned to the
    /// earliest-free lane, ties broken by the lowest lane index, and runs
    /// for `cost / speed`. Returns the batch makespan — the instant the
    /// last item completes (`now` for an empty batch).
    ///
    /// Unlike [`execute`](Self::execute), items only wait for their own
    /// lane, so a batch overlaps serial work still running on other lanes.
    pub fn execute_parallel(&mut self, now: SimTime, costs: &[SimDuration]) -> SimTime {
        let mut makespan = now;
        for &cost in costs {
            let service = self.service_time(cost);
            let lane = self.earliest_free_lane();
            let free = self.lanes[lane].free_at;
            let start = if free > now { free } else { now };
            let end = start + service;
            self.lanes[lane].free_at = end;
            if !service.is_zero() {
                self.lanes[lane].push_segment(start, end);
                self.total_busy += service;
            }
            if end > makespan {
                makespan = end;
            }
        }
        makespan
    }

    fn earliest_free_lane(&self) -> usize {
        let mut best = 0;
        for (i, lane) in self.lanes.iter().enumerate().skip(1) {
            if lane.free_at < self.lanes[best].free_at {
                best = i;
            }
        }
        best
    }

    fn last_busy_lane(&self) -> usize {
        let mut best = 0;
        for (i, lane) in self.lanes.iter().enumerate().skip(1) {
            if lane.free_at > self.lanes[best].free_at {
                best = i;
            }
        }
        best
    }

    /// The instant after which every lane is idle.
    pub fn busy_until(&self) -> SimTime {
        self.lanes
            .iter()
            .map(|l| l.free_at)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Number of lanes still busy at `at` (free strictly after it).
    pub fn lanes_busy_at(&self, at: SimTime) -> usize {
        self.lanes.iter().filter(|l| l.free_at > at).count()
    }

    /// Total busy time accumulated so far, summed over lanes.
    pub fn total_busy(&self) -> SimDuration {
        self.total_busy
    }

    /// Busy time that falls within the window `[from, to)`, summed over
    /// lanes (a window where two lanes run the whole time counts double).
    pub fn busy_between(&self, from: SimTime, to: SimTime) -> SimDuration {
        if to <= from {
            return SimDuration::ZERO;
        }
        let mut acc = SimDuration::ZERO;
        for lane in &self.lanes {
            acc += lane.busy_between(from, to);
        }
        acc
    }

    /// Fraction of the window `[from, to)` the CPU was busy, averaged
    /// over lanes, in `[0, 1]` (all lanes saturated = 1.0).
    pub fn utilization(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        let window = to - from;
        self.busy_between(from, to).as_secs_f64() / (window.as_secs_f64() * self.lanes.len() as f64)
    }
}

impl Default for CpuResource {
    fn default() -> Self {
        CpuResource::new(1.0)
    }
}

/// `round(cost / speed)` (half-up) in exact integer arithmetic, or `None`
/// when the decomposition would overflow `u128` (degenerate speeds).
///
/// The finite positive `speed` is decomposed exactly as `m * 2^e` with an
/// integer mantissa `m`, so the quotient is the integer division
/// `cost * 2^-e / m` — no float rounding anywhere.
fn divide_by_speed(cost: u128, speed: f64) -> Option<u128> {
    if cost == 0 {
        return Some(0);
    }
    let bits = speed.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i64;
    let frac = u128::from(bits & ((1u64 << 52) - 1));
    let (m, e) = if exp == 0 {
        (frac, -1074i64) // subnormal
    } else {
        (frac + (1u128 << 52), exp - 1075)
    };
    if m == 0 {
        return None;
    }
    // round(n / d) half-up = (2n + d) / (2d); shift whichever side 2^|e|
    // scales, keeping two headroom bits for the doubling and the addition.
    if e <= 0 {
        let shift = u32::try_from(-e).ok()?;
        if shift + 2 > cost.leading_zeros() {
            return None;
        }
        let n = cost << shift;
        Some((2 * n + m) / (2 * m))
    } else {
        let shift = u32::try_from(e).ok()?;
        if shift + 2 > m.leading_zeros() {
            return None;
        }
        let d = m << shift;
        Some((2 * cost + d) / (2 * d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn d(secs: u64) -> SimDuration {
        SimDuration::from_secs(secs)
    }

    #[test]
    fn idle_cpu_starts_immediately() {
        let mut cpu = CpuResource::new(1.0);
        let (start, end) = cpu.execute(t(5), d(2));
        assert_eq!(start, t(5));
        assert_eq!(end, t(7));
    }

    #[test]
    fn tasks_queue_fifo() {
        let mut cpu = CpuResource::new(1.0);
        cpu.execute(t(0), d(3));
        let (start, end) = cpu.execute(t(1), d(1));
        assert_eq!(start, t(3));
        assert_eq!(end, t(4));
    }

    #[test]
    fn speed_scales_service_time() {
        let mut fast = CpuResource::new(2.0);
        let (_, end) = fast.execute(t(0), d(4));
        assert_eq!(end, t(2));
        let mut slow = CpuResource::new(0.5);
        let (_, end) = slow.execute(t(0), d(4));
        assert_eq!(end, t(8));
    }

    #[test]
    fn integer_division_is_exact_for_large_costs() {
        // 0.13 is not a dyadic rational; a float division of a large cost
        // would drift. The exact path must agree with u128 arithmetic on
        // round(cost / speed) computed from the speed's own decomposition.
        let mut cpu = CpuResource::new(0.13);
        let cost = SimDuration::from_nanos(3_600_000_000_007);
        let (_, end) = cpu.execute(SimTime::ZERO, cost);
        let float = (cost.as_nanos() as f64 / 0.13).round() as u64;
        let exact = end.as_nanos();
        // The two agree to within one nanosecond even at hour scale; the
        // exact path is authoritative.
        assert!(exact.abs_diff(float) <= 1, "exact={exact} float={float}");
        // Determinism: same inputs, same result, bit-for-bit.
        let mut cpu2 = CpuResource::new(0.13);
        let (_, end2) = cpu2.execute(SimTime::ZERO, cost);
        assert_eq!(end, end2);
    }

    #[test]
    fn integer_division_rounds_half_up() {
        // speed 2.0 is exact: 3 ns / 2.0 = 1.5 → rounds up to 2.
        let mut cpu = CpuResource::new(2.0);
        let (_, end) = cpu.execute(SimTime::ZERO, SimDuration::from_nanos(3));
        assert_eq!(end.as_nanos(), 2);
    }

    #[test]
    fn busy_between_partial_overlaps() {
        let mut cpu = CpuResource::new(1.0);
        cpu.execute(t(1), d(2)); // busy [1, 3)
        cpu.execute(t(5), d(2)); // busy [5, 7)
        assert_eq!(cpu.busy_between(t(0), t(10)), d(4));
        assert_eq!(cpu.busy_between(t(2), t(6)), d(2)); // [2,3) + [5,6)
        assert_eq!(cpu.busy_between(t(3), t(5)), SimDuration::ZERO);
        assert_eq!(cpu.busy_between(t(6), t(6)), SimDuration::ZERO);
        assert_eq!(cpu.busy_between(t(9), t(2)), SimDuration::ZERO);
    }

    #[test]
    fn contiguous_segments_coalesce() {
        let mut cpu = CpuResource::new(1.0);
        cpu.execute(t(0), d(1));
        cpu.execute(t(0), d(1)); // queues, contiguous
        assert_eq!(cpu.lanes[0].segments.len(), 1);
        assert_eq!(cpu.lanes[0].segments[0], (t(0), t(2)));
        assert_eq!(cpu.total_busy(), d(2));
    }

    #[test]
    fn utilization_fraction() {
        let mut cpu = CpuResource::new(1.0);
        cpu.execute(t(0), d(5));
        assert!((cpu.utilization(t(0), t(10)) - 0.5).abs() < 1e-9);
        assert!((cpu.utilization(t(0), t(5)) - 1.0).abs() < 1e-9);
        assert_eq!(cpu.utilization(t(5), t(5)), 0.0);
    }

    #[test]
    fn zero_cost_work_is_free() {
        let mut cpu = CpuResource::new(1.0);
        let (s, e) = cpu.execute(t(3), SimDuration::ZERO);
        assert_eq!(s, e);
        assert_eq!(cpu.total_busy(), SimDuration::ZERO);
        assert!(cpu.lanes[0].segments.is_empty());
    }

    #[test]
    #[should_panic(expected = "CPU speed")]
    fn invalid_speed_panics() {
        let _ = CpuResource::new(0.0);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_panics() {
        let _ = CpuResource::with_lanes(1.0, 0);
    }

    #[test]
    fn parallel_batch_spreads_across_lanes() {
        let mut cpu = CpuResource::with_lanes(1.0, 2);
        // Three 2s items on 2 lanes: lanes finish at 2 and 2, third item
        // queues on lane 0 → makespan 4.
        let makespan = cpu.execute_parallel(t(0), &[d(2), d(2), d(2)]);
        assert_eq!(makespan, t(4));
        assert_eq!(cpu.total_busy(), d(6));
        // Lane 0 ran items 1 and 3 back-to-back; lane 1 ran item 2.
        assert_eq!(cpu.lanes[0].segments, vec![(t(0), t(4))]);
        assert_eq!(cpu.lanes[1].segments, vec![(t(0), t(2))]);
    }

    #[test]
    fn parallel_lane_assignment_is_deterministic() {
        // Equal free times tie-break to the lowest lane index, so unequal
        // costs land on predictable lanes.
        let mut cpu = CpuResource::with_lanes(1.0, 3);
        cpu.execute_parallel(t(0), &[d(3), d(1), d(2)]);
        assert_eq!(cpu.lanes[0].free_at, t(3));
        assert_eq!(cpu.lanes[1].free_at, t(1));
        assert_eq!(cpu.lanes[2].free_at, t(2));
        // Next batch: earliest-free is lane 1 (free at 1); after the first
        // item it ties with lane 2 at t=2 and the tie-break picks the
        // lower index — lane 1 again.
        let makespan = cpu.execute_parallel(t(0), &[d(1), d(1)]);
        assert_eq!(cpu.lanes[1].free_at, t(3));
        assert_eq!(cpu.lanes[2].free_at, t(2));
        assert_eq!(makespan, t(3));
    }

    #[test]
    fn parallel_with_one_lane_matches_serial() {
        let costs = [d(2), d(1), d(3)];
        let mut serial = CpuResource::new(1.0);
        let mut last = SimTime::ZERO;
        for &c in &costs {
            let (_, end) = serial.execute(t(1), c);
            last = end;
        }
        let mut par = CpuResource::with_lanes(1.0, 1);
        let makespan = par.execute_parallel(t(1), &costs);
        assert_eq!(makespan, last);
        assert_eq!(par.total_busy(), serial.total_busy());
        assert_eq!(
            par.busy_between(t(0), t(10)),
            serial.busy_between(t(0), t(10))
        );
    }

    #[test]
    fn empty_parallel_batch_is_free() {
        let mut cpu = CpuResource::with_lanes(1.0, 2);
        assert_eq!(cpu.execute_parallel(t(7), &[]), t(7));
        assert_eq!(cpu.total_busy(), SimDuration::ZERO);
    }

    #[test]
    fn busy_between_sums_across_lanes() {
        let mut cpu = CpuResource::with_lanes(1.0, 2);
        cpu.execute_parallel(t(0), &[d(4), d(2)]);
        // Lane 0 busy [0,4), lane 1 busy [0,2): window [0,4) holds 6s.
        assert_eq!(cpu.busy_between(t(0), t(4)), d(6));
        assert_eq!(cpu.busy_between(t(2), t(4)), d(2));
        // Utilisation averages over lanes: 6s of 8 lane-seconds.
        assert!((cpu.utilization(t(0), t(4)) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn serial_execute_waits_for_all_lanes() {
        let mut cpu = CpuResource::with_lanes(1.0, 2);
        cpu.execute_parallel(t(0), &[d(1), d(5)]);
        // Serial work queues behind the busiest lane (5s), not the idle one.
        let (start, end) = cpu.execute(t(0), d(1));
        assert_eq!(start, t(5));
        assert_eq!(end, t(6));
        // But a later parallel batch may still use the idle lane early.
        let mut cpu2 = CpuResource::with_lanes(1.0, 2);
        cpu2.execute_parallel(t(0), &[d(1), d(5)]);
        cpu2.execute(t(0), d(1)); // occupies lane 1 [5,6)
        let makespan = cpu2.execute_parallel(t(2), &[d(1)]);
        assert_eq!(makespan, t(3)); // lane 0 was free at 1
    }

    #[test]
    fn lanes_busy_at_counts_running_lanes() {
        let mut cpu = CpuResource::with_lanes(1.0, 3);
        cpu.execute_parallel(t(0), &[d(4), d(2)]);
        assert_eq!(cpu.lanes_busy_at(t(0)), 2);
        assert_eq!(cpu.lanes_busy_at(t(3)), 1);
        assert_eq!(cpu.lanes_busy_at(t(4)), 0);
    }
}
