//! Per-node CPU model: a serialising execution resource with a relative
//! speed factor and a busy-interval log for utilisation and energy queries.
//!
//! Each actor owns one [`CpuResource`]. Work is expressed as a *reference
//! cost* (the virtual time the work would take on a 1.0-speed reference
//! core); a node's actual service time is `cost / speed`. Tasks queue FIFO,
//! modelling the single-threaded chaincode/commit path that dominates the
//! paper's measurements.

use crate::time::{SimDuration, SimTime};

/// A serialising CPU with a relative speed factor.
#[derive(Debug, Clone)]
pub struct CpuResource {
    speed: f64,
    busy_until: SimTime,
    /// Non-overlapping busy intervals in increasing order.
    segments: Vec<(SimTime, SimTime)>,
    total_busy: SimDuration,
}

impl CpuResource {
    /// Creates a CPU with the given relative speed (1.0 = reference core).
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not finite and positive.
    pub fn new(speed: f64) -> Self {
        assert!(
            speed.is_finite() && speed > 0.0,
            "CPU speed must be positive, got {speed}"
        );
        CpuResource {
            speed,
            busy_until: SimTime::ZERO,
            segments: Vec::new(),
            total_busy: SimDuration::ZERO,
        }
    }

    /// The relative speed factor.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Schedules `reference_cost` worth of work submitted at `now`.
    ///
    /// Returns `(start, completion)`: the work starts when the CPU frees up
    /// and runs for `reference_cost / speed`.
    pub fn execute(&mut self, now: SimTime, reference_cost: SimDuration) -> (SimTime, SimTime) {
        // Rounded integer scaling: at speed 1.0 the service time is exact
        // (a float multiply would truncate a nanosecond).
        let service = if self.speed == 1.0 {
            reference_cost
        } else {
            SimDuration::from_nanos((reference_cost.as_nanos() as f64 / self.speed).round() as u64)
        };
        let start = if self.busy_until > now {
            self.busy_until
        } else {
            now
        };
        let end = start + service;
        self.busy_until = end;
        if !service.is_zero() {
            // Coalesce with the previous segment when contiguous.
            if let Some(last) = self.segments.last_mut() {
                if last.1 == start {
                    last.1 = end;
                } else {
                    self.segments.push((start, end));
                }
            } else {
                self.segments.push((start, end));
            }
            self.total_busy += service;
        }
        (start, end)
    }

    /// The instant after which the CPU is idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total busy time accumulated so far.
    pub fn total_busy(&self) -> SimDuration {
        self.total_busy
    }

    /// Busy time that falls within the window `[from, to)`.
    pub fn busy_between(&self, from: SimTime, to: SimTime) -> SimDuration {
        if to <= from {
            return SimDuration::ZERO;
        }
        // First segment that may overlap: last with start < to, walking from
        // a binary-search lower bound on segments ending after `from`.
        let idx = self.segments.partition_point(|&(_, end)| end <= from);
        let mut acc = SimDuration::ZERO;
        for &(s, e) in &self.segments[idx..] {
            if s >= to {
                break;
            }
            let lo = if s > from { s } else { from };
            let hi = if e < to { e } else { to };
            if hi > lo {
                acc += hi - lo;
            }
        }
        acc
    }

    /// Fraction of the window `[from, to)` the CPU was busy, in `[0, 1]`.
    pub fn utilization(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        let window = to - from;
        self.busy_between(from, to).as_secs_f64() / window.as_secs_f64()
    }
}

impl Default for CpuResource {
    fn default() -> Self {
        CpuResource::new(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn d(secs: u64) -> SimDuration {
        SimDuration::from_secs(secs)
    }

    #[test]
    fn idle_cpu_starts_immediately() {
        let mut cpu = CpuResource::new(1.0);
        let (start, end) = cpu.execute(t(5), d(2));
        assert_eq!(start, t(5));
        assert_eq!(end, t(7));
    }

    #[test]
    fn tasks_queue_fifo() {
        let mut cpu = CpuResource::new(1.0);
        cpu.execute(t(0), d(3));
        let (start, end) = cpu.execute(t(1), d(1));
        assert_eq!(start, t(3));
        assert_eq!(end, t(4));
    }

    #[test]
    fn speed_scales_service_time() {
        let mut fast = CpuResource::new(2.0);
        let (_, end) = fast.execute(t(0), d(4));
        assert_eq!(end, t(2));
        let mut slow = CpuResource::new(0.5);
        let (_, end) = slow.execute(t(0), d(4));
        assert_eq!(end, t(8));
    }

    #[test]
    fn busy_between_partial_overlaps() {
        let mut cpu = CpuResource::new(1.0);
        cpu.execute(t(1), d(2)); // busy [1, 3)
        cpu.execute(t(5), d(2)); // busy [5, 7)
        assert_eq!(cpu.busy_between(t(0), t(10)), d(4));
        assert_eq!(cpu.busy_between(t(2), t(6)), d(2)); // [2,3) + [5,6)
        assert_eq!(cpu.busy_between(t(3), t(5)), SimDuration::ZERO);
        assert_eq!(cpu.busy_between(t(6), t(6)), SimDuration::ZERO);
        assert_eq!(cpu.busy_between(t(9), t(2)), SimDuration::ZERO);
    }

    #[test]
    fn contiguous_segments_coalesce() {
        let mut cpu = CpuResource::new(1.0);
        cpu.execute(t(0), d(1));
        cpu.execute(t(0), d(1)); // queues, contiguous
        assert_eq!(cpu.segments.len(), 1);
        assert_eq!(cpu.segments[0], (t(0), t(2)));
        assert_eq!(cpu.total_busy(), d(2));
    }

    #[test]
    fn utilization_fraction() {
        let mut cpu = CpuResource::new(1.0);
        cpu.execute(t(0), d(5));
        assert!((cpu.utilization(t(0), t(10)) - 0.5).abs() < 1e-9);
        assert!((cpu.utilization(t(0), t(5)) - 1.0).abs() < 1e-9);
        assert_eq!(cpu.utilization(t(5), t(5)), 0.0);
    }

    #[test]
    fn zero_cost_work_is_free() {
        let mut cpu = CpuResource::new(1.0);
        let (s, e) = cpu.execute(t(3), SimDuration::ZERO);
        assert_eq!(s, e);
        assert_eq!(cpu.total_busy(), SimDuration::ZERO);
        assert!(cpu.segments.is_empty());
    }

    #[test]
    #[should_panic(expected = "CPU speed")]
    fn invalid_speed_panics() {
        let _ = CpuResource::new(0.0);
    }
}
