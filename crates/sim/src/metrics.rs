//! Metrics collected during a simulation run.
//!
//! A [`Metrics`] registry holds named counters, gauges, latency histograms
//! and time series. Components record into it through [`crate::Context`];
//! the benchmark harness reads it back after the run.

use std::collections::BTreeMap;

use crate::histogram::Histogram;
use crate::time::{SimDuration, SimTime};

/// A named registry of counters, gauges, histograms and time series.
///
/// Names are free-form dotted strings such as `"peer0.commit.latency"`.
/// All maps are ordered so report output is deterministic.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    series: BTreeMap<String, Vec<(SimTime, f64)>>,
    /// Once a series holds this many points, further pushes are
    /// downsampled; `0` (the default) keeps every point.
    series_cap: usize,
    /// Past the cap, keep one push in `series_keep_every`.
    series_keep_every: u64,
    /// Per-series push counters, maintained only while a cap is set.
    series_pushes: BTreeMap<String, u64>,
    /// Points discarded by downsampling.
    series_dropped: u64,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `delta` to the named counter, creating it at zero if absent.
    pub fn incr(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Reads a counter; absent counters read as zero.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Reads a gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records a raw sample into the named histogram.
    pub fn record(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    /// Records a duration (as nanoseconds) into the named histogram.
    pub fn record_duration(&mut self, name: &str, d: SimDuration) {
        self.record(name, d.as_nanos());
    }

    /// Reads a histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Bounds time-series growth: once a series holds `cap` points,
    /// only every `keep_every`-th subsequent push is kept (the rest are
    /// dropped and counted under
    /// [`Metrics::series_points_dropped`]). `cap = 0` (the default)
    /// disables downsampling entirely, leaving exports byte-identical
    /// to unbounded recording.
    pub fn set_series_downsample(&mut self, cap: usize, keep_every: u64) {
        self.series_cap = cap;
        self.series_keep_every = keep_every.max(1);
        if cap == 0 {
            self.series_pushes.clear();
        }
    }

    /// Points dropped by series downsampling so far.
    pub fn series_points_dropped(&self) -> u64 {
        self.series_dropped
    }

    /// Appends a `(time, value)` point to the named time series,
    /// subject to the downsampling policy set with
    /// [`Metrics::set_series_downsample`] (off by default).
    pub fn push_series(&mut self, name: &str, t: SimTime, value: f64) {
        if self.series_cap > 0 {
            let pushes = self.series_pushes.entry(name.to_owned()).or_insert(0);
            *pushes += 1;
            let nth = *pushes;
            let s = self.series.entry(name.to_owned()).or_default();
            if s.len() >= self.series_cap && !nth.is_multiple_of(self.series_keep_every) {
                self.series_dropped += 1;
                return;
            }
            s.push((t, value));
        } else {
            self.series
                .entry(name.to_owned())
                .or_default()
                .push((t, value));
        }
    }

    /// Reads a time series, if present.
    pub fn series(&self, name: &str) -> Option<&[(SimTime, f64)]> {
        self.series.get(name).map(Vec::as_slice)
    }

    /// Iterates over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates over all histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges another registry into this one (counters add, gauges take the
    /// other's value, histograms merge, series concatenate).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        for (k, s) in &other.series {
            self.series
                .entry(k.clone())
                .or_default()
                .extend_from_slice(s);
        }
    }

    /// Serializes the whole registry to a compact JSON string with
    /// deterministic ordering (names sorted, histograms reduced to
    /// summary statistics). Two registries with identical contents
    /// produce byte-identical output.
    pub fn snapshot_json(&self) -> String {
        use crate::json::{array, fmt_f64, Obj};
        let mut counters = Obj::new();
        for (k, v) in &self.counters {
            counters = counters.u64(k, *v);
        }
        let mut gauges = Obj::new();
        for (k, v) in &self.gauges {
            gauges = gauges.f64(k, *v);
        }
        let mut histograms = Obj::new();
        for (k, h) in &self.histograms {
            histograms = histograms.raw(k, &histogram_json(h));
        }
        let mut series = Obj::new();
        for (k, s) in &self.series {
            let points = s
                .iter()
                .map(|(t, v)| format!("[{},{}]", t.as_nanos(), fmt_f64(*v)));
            series = series.raw(k, &array(points));
        }
        Obj::new()
            .raw("counters", &counters.build())
            .raw("gauges", &gauges.build())
            .raw("histograms", &histograms.build())
            .raw("series", &series.build())
            .build()
    }

    /// Renders a human-readable dump of all metrics, for debugging.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("counter {k} = {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("gauge   {k} = {v}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!("hist    {k}: {}\n", h.summary()));
        }
        for (k, s) in &self.series {
            out.push_str(&format!("series  {k}: {} points\n", s.len()));
        }
        out
    }
}

/// Summary-statistics JSON object for one histogram (nanosecond units).
pub(crate) fn histogram_json(h: &Histogram) -> String {
    let sum = u64::try_from(h.sum()).unwrap_or(u64::MAX);
    crate::json::Obj::new()
        .u64("count", h.count())
        .u64("min", if h.is_empty() { 0 } else { h.min() })
        .u64("max", if h.is_empty() { 0 } else { h.max() })
        .f64("mean", h.mean())
        .f64("stddev", h.stddev())
        .u64("sum", sum)
        .u64("p50", h.quantile(0.50))
        .u64("p95", h.quantile(0.95))
        .u64("p99", h.quantile(0.99))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        assert_eq!(m.counter("tx"), 0);
        m.incr("tx", 2);
        m.incr("tx", 3);
        assert_eq!(m.counter("tx"), 5);
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = Metrics::new();
        assert_eq!(m.gauge("w"), None);
        m.set_gauge("w", 1.5);
        m.set_gauge("w", 2.5);
        assert_eq!(m.gauge("w"), Some(2.5));
    }

    #[test]
    fn histograms_record_durations() {
        let mut m = Metrics::new();
        m.record_duration("lat", SimDuration::from_micros(5));
        m.record_duration("lat", SimDuration::from_micros(15));
        let h = m.histogram("lat").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 5_000);
    }

    #[test]
    fn series_preserve_order() {
        let mut m = Metrics::new();
        m.push_series("p", SimTime::from_secs(1), 1.0);
        m.push_series("p", SimTime::from_secs(2), 2.0);
        let s = m.series("p").unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s[1], (SimTime::from_secs(2), 2.0));
    }

    #[test]
    fn downsampling_bounds_series_growth() {
        let mut m = Metrics::new();
        m.set_series_downsample(10, 4);
        for i in 0..50u64 {
            m.push_series("s", SimTime::from_nanos(i), i as f64);
        }
        let s = m.series("s").unwrap();
        // First 10 kept verbatim, then every 4th push (12, 16, ... 48).
        assert_eq!(s.len(), 20);
        assert_eq!(s[9], (SimTime::from_nanos(9), 9.0));
        assert_eq!(s[10], (SimTime::from_nanos(11), 11.0)); // push #12
        assert_eq!(s.last().unwrap().1, 47.0); // push #48
        assert_eq!(m.series_points_dropped(), 30);
        // Other series have their own counters.
        m.push_series("t", SimTime::ZERO, 0.0);
        assert_eq!(m.series("t").unwrap().len(), 1);
    }

    #[test]
    fn downsampling_off_by_default_keeps_everything() {
        let with_default = |n: u64| {
            let mut m = Metrics::new();
            for i in 0..n {
                m.push_series("s", SimTime::from_nanos(i), i as f64);
            }
            m.snapshot_json()
        };
        let explicit_off = |n: u64| {
            let mut m = Metrics::new();
            m.set_series_downsample(0, 7);
            for i in 0..n {
                m.push_series("s", SimTime::from_nanos(i), i as f64);
            }
            m.snapshot_json()
        };
        assert_eq!(with_default(100), explicit_off(100));
        let mut m = Metrics::new();
        for i in 0..100u64 {
            m.push_series("s", SimTime::from_nanos(i), 0.0);
        }
        assert_eq!(m.series("s").unwrap().len(), 100);
        assert_eq!(m.series_points_dropped(), 0);
    }

    #[test]
    fn merge_combines_all_kinds() {
        let mut a = Metrics::new();
        a.incr("c", 1);
        a.record("h", 10);
        let mut b = Metrics::new();
        b.incr("c", 2);
        b.record("h", 20);
        b.set_gauge("g", 9.0);
        b.push_series("s", SimTime::ZERO, 0.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.gauge("g"), Some(9.0));
        assert_eq!(a.series("s").unwrap().len(), 1);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_complete() {
        let build = || {
            let mut m = Metrics::new();
            m.incr("tx.committed", 3);
            m.set_gauge("load", 0.75);
            m.record_duration("lat", SimDuration::from_micros(10));
            m.record_duration("lat", SimDuration::from_micros(30));
            m.push_series("tput", SimTime::from_secs(1), 12.5);
            m.snapshot_json()
        };
        let a = build();
        assert_eq!(a, build());
        assert!(a.contains("\"tx.committed\":3"));
        assert!(a.contains("\"load\":0.75"));
        assert!(a.contains("\"count\":2"));
        assert!(a.contains("[1000000000,12.5]"));
        // Counters come before gauges, gauges before histograms.
        let c = a.find("\"counters\"").unwrap();
        let g = a.find("\"gauges\"").unwrap();
        let h = a.find("\"histograms\"").unwrap();
        assert!(c < g && g < h);
    }

    #[test]
    fn render_is_deterministic_and_nonempty() {
        let mut m = Metrics::new();
        m.incr("b", 1);
        m.incr("a", 1);
        let r = m.render();
        let pos_a = r.find("counter a").unwrap();
        let pos_b = r.find("counter b").unwrap();
        assert!(pos_a < pos_b);
    }
}
