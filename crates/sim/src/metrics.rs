//! Metrics collected during a simulation run.
//!
//! A [`Metrics`] registry holds named counters, gauges, latency histograms
//! and time series. Components record into it through [`crate::Context`];
//! the benchmark harness reads it back after the run.
//!
//! Hot-path design: each kind of metric lives in a flat `Vec` indexed by a
//! dense `u32` handle, with a deterministic hash index mapping names to
//! handles. A by-name operation costs one hash lookup (no allocation, no
//! ordered-map traversal); call sites on the kernel's fast path resolve a
//! handle once ([`Metrics::counter_id`] and friends) and then update by
//! index. Exports sort names lazily, so output stays byte-identical to the
//! previous ordered-map representation.

use std::fmt::Write as _;

use crate::fxhash::FxHashMap;
use crate::histogram::Histogram;
use crate::time::{SimDuration, SimTime};

/// A dense name→slot registry: the storage scheme behind every metric
/// kind.
#[derive(Debug, Clone, Default)]
struct Registry<T> {
    index: FxHashMap<Box<str>, u32>,
    names: Vec<Box<str>>,
    values: Vec<T>,
}

impl<T: Default> Registry<T> {
    /// Existing slot for `name`, if any (never allocates).
    fn lookup(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// Slot for `name`, created zeroed on first use. Allocates only on
    /// creation.
    fn id(&mut self, name: &str) -> u32 {
        if let Some(id) = self.lookup(name) {
            return id;
        }
        let id = self.names.len() as u32;
        let boxed: Box<str> = name.into();
        self.index.insert(boxed.clone(), id);
        self.names.push(boxed);
        self.values.push(T::default());
        id
    }

    fn get(&self, name: &str) -> Option<&T> {
        self.lookup(name).map(|id| &self.values[id as usize])
    }

    fn slot(&mut self, id: u32) -> &mut T {
        &mut self.values[id as usize]
    }

    /// Slot ids sorted by name — export order, computed only when needed.
    fn sorted_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = (0..self.names.len() as u32).collect();
        ids.sort_by(|&a, &b| self.names[a as usize].cmp(&self.names[b as usize]));
        ids
    }

    fn iter_sorted(&self) -> impl Iterator<Item = (&str, &T)> {
        self.sorted_ids()
            .into_iter()
            .map(|id| (&*self.names[id as usize], &self.values[id as usize]))
    }
}

/// One time series: points plus the push counter downsampling uses.
#[derive(Debug, Clone, Default)]
struct Series {
    points: Vec<(SimTime, f64)>,
    pushes: u64,
}

/// Handle to a counter slot, resolved once with [`Metrics::counter_id`].
/// Valid only for the registry (or clones of it) that created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// Handle to a gauge slot (see [`Metrics::gauge_id`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(u32);

/// Handle to a histogram slot (see [`Metrics::histogram_id`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(u32);

/// A named registry of counters, gauges, histograms and time series.
///
/// Names are free-form dotted strings such as `"peer0.commit.latency"`.
/// Exports are sorted by name so report output is deterministic.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: Registry<u64>,
    gauges: Registry<f64>,
    histograms: Registry<Histogram>,
    series: Registry<Series>,
    /// Once a series holds this many points, further pushes are
    /// downsampled; `0` (the default) keeps every point.
    series_cap: usize,
    /// Past the cap, keep one push in `series_keep_every`.
    series_keep_every: u64,
    /// Points discarded by downsampling.
    series_dropped: u64,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `delta` to the named counter, creating it at zero if absent.
    pub fn incr(&mut self, name: &str, delta: u64) {
        let id = self.counters.id(name);
        *self.counters.slot(id) += delta;
    }

    /// Resolves a reusable handle for the named counter (creating it at
    /// zero), so hot call sites can skip the name lookup.
    pub fn counter_id(&mut self, name: &str) -> CounterId {
        CounterId(self.counters.id(name))
    }

    /// Adds `delta` through a pre-resolved handle.
    pub fn incr_id(&mut self, id: CounterId, delta: u64) {
        *self.counters.slot(id.0) += delta;
    }

    /// Reads a counter; absent counters read as zero.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        let id = self.gauges.id(name);
        *self.gauges.slot(id) = value;
    }

    /// Resolves a reusable handle for the named gauge (creating it at
    /// zero).
    pub fn gauge_id(&mut self, name: &str) -> GaugeId {
        GaugeId(self.gauges.id(name))
    }

    /// Sets a gauge through a pre-resolved handle.
    pub fn set_gauge_id(&mut self, id: GaugeId, value: f64) {
        *self.gauges.slot(id.0) = value;
    }

    /// Reads a gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records a raw sample into the named histogram.
    pub fn record(&mut self, name: &str, value: u64) {
        let id = self.histograms.id(name);
        self.histograms.slot(id).record(value);
    }

    /// Resolves a reusable handle for the named histogram (creating it
    /// empty).
    pub fn histogram_id(&mut self, name: &str) -> HistogramId {
        HistogramId(self.histograms.id(name))
    }

    /// Records a sample through a pre-resolved handle.
    pub fn record_id(&mut self, id: HistogramId, value: u64) {
        self.histograms.slot(id.0).record(value);
    }

    /// Records a duration (as nanoseconds) into the named histogram.
    pub fn record_duration(&mut self, name: &str, d: SimDuration) {
        self.record(name, d.as_nanos());
    }

    /// Reads a histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Bounds time-series growth: once a series holds `cap` points,
    /// only every `keep_every`-th subsequent push is kept (the rest are
    /// dropped and counted under
    /// [`Metrics::series_points_dropped`]). `cap = 0` (the default)
    /// disables downsampling entirely, leaving exports byte-identical
    /// to unbounded recording.
    pub fn set_series_downsample(&mut self, cap: usize, keep_every: u64) {
        self.series_cap = cap;
        self.series_keep_every = keep_every.max(1);
        if cap == 0 {
            for s in &mut self.series.values {
                s.pushes = 0;
            }
        }
    }

    /// Points dropped by series downsampling so far.
    pub fn series_points_dropped(&self) -> u64 {
        self.series_dropped
    }

    /// Appends a `(time, value)` point to the named time series,
    /// subject to the downsampling policy set with
    /// [`Metrics::set_series_downsample`] (off by default).
    pub fn push_series(&mut self, name: &str, t: SimTime, value: f64) {
        let id = self.series.id(name);
        let cap = self.series_cap;
        let keep_every = self.series_keep_every;
        let s = self.series.slot(id);
        if cap > 0 {
            s.pushes += 1;
            if s.points.len() >= cap && !s.pushes.is_multiple_of(keep_every) {
                self.series_dropped += 1;
                return;
            }
        }
        s.points.push((t, value));
    }

    /// Reads a time series, if present.
    pub fn series(&self, name: &str) -> Option<&[(SimTime, f64)]> {
        self.series.get(name).map(|s| s.points.as_slice())
    }

    /// Iterates over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter_sorted().map(|(k, v)| (k, *v))
    }

    /// Iterates over all histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter_sorted()
    }

    /// Merges another registry into this one (counters add, gauges take the
    /// other's value, histograms merge, series concatenate).
    pub fn merge(&mut self, other: &Metrics) {
        for (i, name) in other.counters.names.iter().enumerate() {
            let id = self.counters.id(name);
            *self.counters.slot(id) += other.counters.values[i];
        }
        for (i, name) in other.gauges.names.iter().enumerate() {
            let id = self.gauges.id(name);
            *self.gauges.slot(id) = other.gauges.values[i];
        }
        for (i, name) in other.histograms.names.iter().enumerate() {
            let id = self.histograms.id(name);
            self.histograms.slot(id).merge(&other.histograms.values[i]);
        }
        for (i, name) in other.series.names.iter().enumerate() {
            let id = self.series.id(name);
            self.series
                .slot(id)
                .points
                .extend_from_slice(&other.series.values[i].points);
        }
    }

    /// Serializes the whole registry to a compact JSON string with
    /// deterministic ordering (names sorted, histograms reduced to
    /// summary statistics). Two registries with identical contents
    /// produce byte-identical output.
    pub fn snapshot_json(&self) -> String {
        use crate::json::{fmt_f64, Obj};
        let mut counters = Obj::new();
        for (k, v) in self.counters.iter_sorted() {
            counters = counters.u64(k, *v);
        }
        let mut gauges = Obj::new();
        for (k, v) in self.gauges.iter_sorted() {
            gauges = gauges.f64(k, *v);
        }
        let mut histograms = Obj::new();
        for (k, h) in self.histograms.iter_sorted() {
            histograms = histograms.raw(k, &histogram_json(h));
        }
        let mut series = Obj::new();
        for (k, s) in self.series.iter_sorted() {
            let mut points = String::with_capacity(s.points.len() * 16 + 2);
            points.push('[');
            for (i, (t, v)) in s.points.iter().enumerate() {
                if i > 0 {
                    points.push(',');
                }
                let _ = write!(points, "[{},{}]", t.as_nanos(), fmt_f64(*v));
            }
            points.push(']');
            series = series.raw(k, &points);
        }
        Obj::new()
            .raw("counters", &counters.build())
            .raw("gauges", &gauges.build())
            .raw("histograms", &histograms.build())
            .raw("series", &series.build())
            .build()
    }

    /// Renders a human-readable dump of all metrics, for debugging.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in self.counters.iter_sorted() {
            let _ = writeln!(out, "counter {k} = {v}");
        }
        for (k, v) in self.gauges.iter_sorted() {
            let _ = writeln!(out, "gauge   {k} = {v}");
        }
        for (k, h) in self.histograms.iter_sorted() {
            let _ = writeln!(out, "hist    {k}: {}", h.summary());
        }
        for (k, s) in self.series.iter_sorted() {
            let _ = writeln!(out, "series  {k}: {} points", s.points.len());
        }
        out
    }
}

/// Summary-statistics JSON object for one histogram (nanosecond units).
pub(crate) fn histogram_json(h: &Histogram) -> String {
    let sum = u64::try_from(h.sum()).unwrap_or(u64::MAX);
    crate::json::Obj::new()
        .u64("count", h.count())
        .u64("min", if h.is_empty() { 0 } else { h.min() })
        .u64("max", if h.is_empty() { 0 } else { h.max() })
        .f64("mean", h.mean())
        .f64("stddev", h.stddev())
        .u64("sum", sum)
        .u64("p50", h.quantile(0.50))
        .u64("p95", h.quantile(0.95))
        .u64("p99", h.quantile(0.99))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        assert_eq!(m.counter("tx"), 0);
        m.incr("tx", 2);
        m.incr("tx", 3);
        assert_eq!(m.counter("tx"), 5);
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = Metrics::new();
        assert_eq!(m.gauge("w"), None);
        m.set_gauge("w", 1.5);
        m.set_gauge("w", 2.5);
        assert_eq!(m.gauge("w"), Some(2.5));
    }

    #[test]
    fn handles_alias_their_names() {
        let mut m = Metrics::new();
        m.incr("tx", 1);
        let c = m.counter_id("tx");
        m.incr_id(c, 4);
        assert_eq!(m.counter("tx"), 5);
        let g = m.gauge_id("load");
        m.set_gauge_id(g, 0.5);
        assert_eq!(m.gauge("load"), Some(0.5));
        let h = m.histogram_id("lat");
        m.record_id(h, 10);
        m.record("lat", 30);
        assert_eq!(m.histogram("lat").unwrap().count(), 2);
        // Handles survive cloning (same dense slots).
        let mut copy = m.clone();
        copy.incr_id(c, 1);
        assert_eq!(copy.counter("tx"), 6);
    }

    #[test]
    fn histograms_record_durations() {
        let mut m = Metrics::new();
        m.record_duration("lat", SimDuration::from_micros(5));
        m.record_duration("lat", SimDuration::from_micros(15));
        let h = m.histogram("lat").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 5_000);
    }

    #[test]
    fn series_preserve_order() {
        let mut m = Metrics::new();
        m.push_series("p", SimTime::from_secs(1), 1.0);
        m.push_series("p", SimTime::from_secs(2), 2.0);
        let s = m.series("p").unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s[1], (SimTime::from_secs(2), 2.0));
    }

    #[test]
    fn downsampling_bounds_series_growth() {
        let mut m = Metrics::new();
        m.set_series_downsample(10, 4);
        for i in 0..50u64 {
            m.push_series("s", SimTime::from_nanos(i), i as f64);
        }
        let s = m.series("s").unwrap();
        // First 10 kept verbatim, then every 4th push (12, 16, ... 48).
        assert_eq!(s.len(), 20);
        assert_eq!(s[9], (SimTime::from_nanos(9), 9.0));
        assert_eq!(s[10], (SimTime::from_nanos(11), 11.0)); // push #12
        assert_eq!(s.last().unwrap().1, 47.0); // push #48
        assert_eq!(m.series_points_dropped(), 30);
        // Other series have their own counters.
        m.push_series("t", SimTime::ZERO, 0.0);
        assert_eq!(m.series("t").unwrap().len(), 1);
    }

    #[test]
    fn downsampling_off_by_default_keeps_everything() {
        let with_default = |n: u64| {
            let mut m = Metrics::new();
            for i in 0..n {
                m.push_series("s", SimTime::from_nanos(i), i as f64);
            }
            m.snapshot_json()
        };
        let explicit_off = |n: u64| {
            let mut m = Metrics::new();
            m.set_series_downsample(0, 7);
            for i in 0..n {
                m.push_series("s", SimTime::from_nanos(i), i as f64);
            }
            m.snapshot_json()
        };
        assert_eq!(with_default(100), explicit_off(100));
        let mut m = Metrics::new();
        for i in 0..100u64 {
            m.push_series("s", SimTime::from_nanos(i), 0.0);
        }
        assert_eq!(m.series("s").unwrap().len(), 100);
        assert_eq!(m.series_points_dropped(), 0);
    }

    #[test]
    fn merge_combines_all_kinds() {
        let mut a = Metrics::new();
        a.incr("c", 1);
        a.record("h", 10);
        let mut b = Metrics::new();
        b.incr("c", 2);
        b.record("h", 20);
        b.set_gauge("g", 9.0);
        b.push_series("s", SimTime::ZERO, 0.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.gauge("g"), Some(9.0));
        assert_eq!(a.series("s").unwrap().len(), 1);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_complete() {
        let build = || {
            let mut m = Metrics::new();
            m.incr("tx.committed", 3);
            m.set_gauge("load", 0.75);
            m.record_duration("lat", SimDuration::from_micros(10));
            m.record_duration("lat", SimDuration::from_micros(30));
            m.push_series("tput", SimTime::from_secs(1), 12.5);
            m.snapshot_json()
        };
        let a = build();
        assert_eq!(a, build());
        assert!(a.contains("\"tx.committed\":3"));
        assert!(a.contains("\"load\":0.75"));
        assert!(a.contains("\"count\":2"));
        assert!(a.contains("[1000000000,12.5]"));
        // Counters come before gauges, gauges before histograms.
        let c = a.find("\"counters\"").unwrap();
        let g = a.find("\"gauges\"").unwrap();
        let h = a.find("\"histograms\"").unwrap();
        assert!(c < g && g < h);
    }

    #[test]
    fn snapshot_json_sorts_names_regardless_of_insertion_order() {
        // The registry stores slots in first-use order; exports must sort
        // lexicographically exactly like the old BTreeMap representation.
        let mut fwd = Metrics::new();
        fwd.incr("a.x", 1);
        fwd.incr("b.y", 2);
        fwd.record("h.a", 1);
        fwd.record("h.b", 2);
        let mut rev = Metrics::new();
        rev.incr("b.y", 2);
        rev.incr("a.x", 1);
        rev.record("h.b", 2);
        rev.record("h.a", 1);
        assert_eq!(fwd.snapshot_json(), rev.snapshot_json());
        assert_eq!(fwd.render(), rev.render());
        let names: Vec<&str> = rev.counters().map(|(k, _)| k).collect();
        assert_eq!(names, ["a.x", "b.y"]);
    }

    #[test]
    fn render_is_deterministic_and_nonempty() {
        let mut m = Metrics::new();
        m.incr("b", 1);
        m.incr("a", 1);
        let r = m.render();
        let pos_a = r.find("counter a").unwrap();
        let pos_b = r.find("counter b").unwrap();
        assert!(pos_a < pos_b);
    }
}
