//! # hyperprov-sim
//!
//! Deterministic discrete-event simulation kernel used by the HyperProv
//! reproduction. It provides:
//!
//! * virtual time ([`SimTime`], [`SimDuration`]),
//! * a reproducible random stream ([`DetRng`]) with labelled forking,
//! * an actor-based event loop ([`Simulation`], [`Actor`], [`Context`]),
//! * a network model with latency/bandwidth/jitter, partitions and loss
//!   ([`Network`], [`LinkSpec`]),
//! * deterministic fault injection — actor crash/restart with an
//!   [`Actor::on_restart`] recovery hook, plus seed-reproducible schedules
//!   of crash/partition/loss windows ([`FaultPlan`], [`FaultAction`]),
//! * per-actor serialising CPU resources with busy-interval accounting
//!   ([`CpuResource`]) — the basis for the energy model,
//! * a shared service runtime for node actors — deferred-send outbox,
//!   CPU charging, and bounded admission queues with backpressure
//!   ([`ServiceHarness`], [`QueueConfig`], [`OverloadPolicy`]),
//! * metrics ([`Metrics`], [`Histogram`]),
//! * virtual-time span tracing with bounded memory ([`Tracer`],
//!   [`Span`], [`TracerConfig`]),
//! * rolling-window SLO evaluation with burn-rate series and breach
//!   windows ([`SloMonitor`], [`SloSpec`]),
//! * Chrome-trace/Perfetto export of span records
//!   ([`chrome_trace_json`]), and
//! * host-side profiling of the event loop itself ([`SimProfiler`],
//!   [`HotCounters`], [`peak_rss_bytes`]).
//!
//! The paper's testbed — four machines and a switch — maps to one actor per
//! process (peer, orderer, off-chain store, client) with CPU speeds and
//! link parameters taken from device profiles.
//!
//! # Examples
//!
//! ```
//! use hyperprov_sim::{Actor, Context, Event, SimDuration, Simulation};
//!
//! struct Counter(u32);
//! impl Actor<()> for Counter {
//!     fn on_event(&mut self, ctx: &mut Context<'_, ()>, _event: Event<()>) {
//!         self.0 += 1;
//!         if self.0 < 10 {
//!             ctx.set_timer(SimDuration::from_millis(1), 0);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(0);
//! let c = sim.add_actor(Box::new(Counter(0)));
//! sim.start_timer(c, SimDuration::ZERO, 0);
//! sim.run();
//! assert_eq!(sim.now().as_nanos(), 9_000_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cpu;
mod engine;
mod equeue;
mod fault;
mod fxhash;
mod harness;
mod histogram;
pub mod json;
mod metrics;
mod net;
mod perfetto;
mod profile;
mod rng;
mod slo;
mod time;
mod trace;

pub use cpu::CpuResource;
pub use engine::{Actor, ActorId, Carries, Context, Event, Simulation, TimerId};
pub use fault::{FaultAction, FaultPlan, FaultPlanActor};
pub use harness::{
    Admission, Outbound, OverloadPolicy, QueueConfig, ServiceHarness, SpanClose, HARNESS_TOKEN_BIT,
};
pub use histogram::Histogram;
pub use metrics::{CounterId, GaugeId, HistogramId, Metrics};
pub use net::{Delivery, LinkSpec, Network};
pub use perfetto::chrome_trace_json;
pub use profile::{peak_rss_bytes, HotCounters, SimProfiler};
pub use rng::DetRng;
pub use slo::{SloBreach, SloMonitor, SloObjective, SloSpec, SloVerdict, MAX_BURN};
pub use time::{SimDuration, SimTime};
pub use trace::{Span, SpanId, TraceEvent, Tracer, TracerConfig};
