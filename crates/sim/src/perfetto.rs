//! Chrome `trace_events` / Perfetto export of a [`Tracer`]'s records.
//!
//! [`chrome_trace_json`] renders the tracer's finished spans and point
//! events in the Chrome trace-event JSON format, which both
//! `chrome://tracing` and <https://ui.perfetto.dev> load directly:
//!
//! * each finished span becomes a complete event (`"ph":"X"`) with a
//!   microsecond `ts`/`dur` pair derived from its virtual-time interval;
//! * each point event becomes a thread-scoped instant (`"ph":"i"`);
//! * metadata records (`"ph":"M"`) name the synthetic processes and
//!   threads.
//!
//! The pid/tid layout is stable across runs: each distinct span `detail`
//! (the actor-ish disambiguator, e.g. `"peer0"`) becomes a process, with
//! spans lacking a detail grouped under a `"pipeline"` process, and each
//! stage (or event name) becomes a numbered thread. Both namespaces are
//! assigned from the sorted set of names, so same-seed runs export
//! byte-identical traces.
//!
//! Only *sampled, retained* records are exported — the tracer's ring
//! buffers and `sample_every` govern what is available (aggregates in
//! `Tracer::snapshot_json` remain exact regardless).

use std::collections::BTreeMap;

use crate::json::Obj;
use crate::trace::Tracer;

/// The process name used for spans and events with an empty `detail`.
const DEFAULT_PROCESS: &str = "pipeline";

/// Virtual nanoseconds as a microsecond JSON number with sub-µs
/// precision, via integer math (no float rounding).
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Renders the tracer's retained spans and events as a Chrome
/// trace-event JSON document (`{"traceEvents":[...]}`), loadable in
/// `chrome://tracing` and <https://ui.perfetto.dev>.
///
/// # Examples
///
/// ```
/// use hyperprov_sim::{chrome_trace_json, SimTime, Tracer, TracerConfig};
///
/// let mut tr = Tracer::new(TracerConfig::default());
/// tr.span_start(SimTime::from_nanos(1_000), "tx1", "endorse", "peer0");
/// tr.span_end(SimTime::from_nanos(5_500), "tx1", "endorse", "peer0");
/// let json = chrome_trace_json(&tr);
/// assert!(json.contains("\"ph\":\"X\""));
/// assert!(json.contains("\"dur\":4.500"));
/// ```
pub fn chrome_trace_json(tracer: &Tracer) -> String {
    // Stable name → id maps: processes from span/event details, threads
    // from stage and event names, both sorted.
    let mut processes: BTreeMap<&str, u64> = BTreeMap::new();
    let mut threads: BTreeMap<&str, u64> = BTreeMap::new();
    for span in tracer.finished_spans() {
        let proc_name = if span.detail.is_empty() {
            DEFAULT_PROCESS
        } else {
            &span.detail
        };
        processes.entry(proc_name).or_insert(0);
        threads.entry(span.stage).or_insert(0);
    }
    let has_events = tracer.events().next().is_some();
    if has_events {
        processes.entry(DEFAULT_PROCESS).or_insert(0);
        for ev in tracer.events() {
            threads.entry(ev.name).or_insert(0);
        }
    }
    for (i, (_, id)) in processes.iter_mut().enumerate() {
        *id = i as u64 + 1;
    }
    for (i, (_, id)) in threads.iter_mut().enumerate() {
        *id = i as u64 + 1;
    }

    let mut records: Vec<String> = Vec::new();

    // Metadata: process names, then thread names for every (pid, tid)
    // combination in use.
    for (name, pid) in &processes {
        records.push(
            Obj::new()
                .str("name", "process_name")
                .str("ph", "M")
                .u64("pid", *pid)
                .u64("tid", 0)
                .raw("args", &Obj::new().str("name", name).build())
                .build(),
        );
    }
    let mut named_threads: BTreeMap<(u64, u64), &str> = BTreeMap::new();
    for span in tracer.finished_spans() {
        let proc_name = if span.detail.is_empty() {
            DEFAULT_PROCESS
        } else {
            &span.detail
        };
        named_threads.insert((processes[proc_name], threads[span.stage]), span.stage);
    }
    for ev in tracer.events() {
        named_threads.insert((processes[DEFAULT_PROCESS], threads[ev.name]), ev.name);
    }
    for ((pid, tid), name) in &named_threads {
        records.push(
            Obj::new()
                .str("name", "thread_name")
                .str("ph", "M")
                .u64("pid", *pid)
                .u64("tid", *tid)
                .raw("args", &Obj::new().str("name", name).build())
                .build(),
        );
    }

    // Spans as complete events, in ring-buffer (close) order.
    for span in tracer.finished_spans() {
        let proc_name = if span.detail.is_empty() {
            DEFAULT_PROCESS
        } else {
            &span.detail
        };
        let mut args = Obj::new().str("trace", &span.trace).u64("seq", span.seq);
        if !span.detail.is_empty() {
            args = args.str("detail", &span.detail);
        }
        if let Some(parent) = span.parent {
            args = args.u64("parent", parent.0);
        }
        records.push(
            Obj::new()
                .str("name", span.stage)
                .str("cat", "span")
                .str("ph", "X")
                .raw("ts", &ts_us(span.start.as_nanos()))
                .raw("dur", &ts_us(span.duration().as_nanos()))
                .u64("pid", processes[proc_name])
                .u64("tid", threads[span.stage])
                .raw("args", &args.build())
                .build(),
        );
    }

    // Point events as thread-scoped instants.
    for ev in tracer.events() {
        let mut args = Obj::new().str("trace", &ev.trace).u64("seq", ev.seq);
        if !ev.detail.is_empty() {
            args = args.str("detail", &ev.detail);
        }
        records.push(
            Obj::new()
                .str("name", ev.name)
                .str("cat", "event")
                .str("ph", "i")
                .raw("ts", &ts_us(ev.at.as_nanos()))
                .u64("pid", processes[DEFAULT_PROCESS])
                .u64("tid", threads[ev.name])
                .str("s", "t")
                .raw("args", &args.build())
                .build(),
        );
    }

    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}",
        records.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::time::SimTime;
    use crate::trace::TracerConfig;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn sample_tracer() -> Tracer {
        let mut tr = Tracer::new(TracerConfig::default());
        tr.span_start(t(0), "tx1", "e2e", "");
        tr.span_start(t(100), "tx1", "endorse", "peer0");
        tr.span_end(t(2_500), "tx1", "endorse", "peer0");
        tr.span_start(t(3_000), "tx1", "commit.apply", "peer1");
        tr.span_end(t(4_000), "tx1", "commit.apply", "peer1");
        tr.span_end(t(5_000), "tx1", "e2e", "");
        tr.event(t(2_600), "tx1", "block.cut", "txs=1");
        tr
    }

    #[test]
    fn export_is_structurally_valid_chrome_trace() {
        let json = chrome_trace_json(&sample_tracer());
        let doc = parse(&json).expect("export must be valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert!(!events.is_empty());
        for ev in events {
            let ph = ev.get("ph").unwrap().as_str().unwrap();
            assert!(matches!(ph, "X" | "i" | "M"), "unexpected ph {ph}");
            assert!(ev.get("name").unwrap().as_str().is_some());
            assert!(ev.get("pid").unwrap().as_u64().is_some());
            assert!(ev.get("tid").unwrap().as_u64().is_some());
            match ph {
                "X" => {
                    assert!(ev.get("ts").unwrap().as_f64().unwrap() >= 0.0);
                    assert!(ev.get("dur").unwrap().as_f64().unwrap() >= 0.0);
                }
                "i" => {
                    assert_eq!(ev.get("s").unwrap().as_str(), Some("t"));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn pid_tid_assignment_is_stable() {
        let a = chrome_trace_json(&sample_tracer());
        let b = chrome_trace_json(&sample_tracer());
        assert_eq!(a, b);
        // Processes: sorted details — "peer0" < "peer1" < "pipeline".
        let doc = parse(&a).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let pid_of = |name: &str| {
            events
                .iter()
                .find(|e| {
                    e.get("ph").unwrap().as_str() == Some("M")
                        && e.get("name").unwrap().as_str() == Some("process_name")
                        && e.get("args").unwrap().get("name").unwrap().as_str() == Some(name)
                })
                .unwrap()
                .get("pid")
                .unwrap()
                .as_u64()
                .unwrap()
        };
        assert_eq!(pid_of("peer0"), 1);
        assert_eq!(pid_of("peer1"), 2);
        assert_eq!(pid_of("pipeline"), 3);
    }

    #[test]
    fn timestamps_convert_to_microseconds() {
        let json = chrome_trace_json(&sample_tracer());
        // endorse: start 100ns = 0.100us, dur 2400ns = 2.400us.
        assert!(json.contains("\"ts\":0.100"));
        assert!(json.contains("\"dur\":2.400"));
        // The instant at 2600ns.
        assert!(json.contains("\"ts\":2.600"));
    }

    #[test]
    fn parent_links_survive_export() {
        let json = chrome_trace_json(&sample_tracer());
        let doc = parse(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let endorse = events
            .iter()
            .find(|e| {
                e.get("ph").unwrap().as_str() == Some("X")
                    && e.get("name").unwrap().as_str() == Some("endorse")
            })
            .unwrap();
        assert!(endorse.get("args").unwrap().get("parent").is_some());
        assert_eq!(
            endorse.get("args").unwrap().get("trace").unwrap().as_str(),
            Some("tx1")
        );
    }

    #[test]
    fn empty_tracer_exports_empty_document() {
        let tr = Tracer::disabled();
        let json = chrome_trace_json(&tr);
        let doc = parse(&json).unwrap();
        assert_eq!(doc.get("traceEvents").unwrap().as_array().unwrap().len(), 0);
    }

    #[test]
    fn instants_land_on_the_pipeline_process() {
        let json = chrome_trace_json(&sample_tracer());
        let doc = parse(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let instant = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("i"))
            .unwrap();
        assert_eq!(instant.get("pid").unwrap().as_u64(), Some(3)); // "pipeline"
        assert_eq!(instant.get("name").unwrap().as_str(), Some("block.cut"));
    }
}
