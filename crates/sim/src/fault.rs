//! Deterministic fault injection: a virtual-time schedule of
//! crash/restart, partition/heal and message-loss windows, executed by a
//! dedicated actor.
//!
//! A [`FaultPlan`] is built declaratively (typically from a handful of
//! windows derived from the experiment seed), then installed into a
//! [`Simulation`] with [`FaultPlan::install`]. The resulting
//! [`FaultPlanActor`] wakes on its own timers, applies every action due at
//! that instant, and records a `fault.*` trace event plus a metric for
//! each — so a fault campaign is fully reproducible from the seed and
//! fully visible in the exported trace.

use std::marker::PhantomData;

use crate::engine::{Actor, ActorId, Context, Event, Simulation};
use crate::time::SimTime;

/// One fault action, applied at a scheduled virtual time.
#[derive(Debug, Clone)]
pub enum FaultAction {
    /// Crash an actor: its queued events are dropped and everything sent
    /// to it while down is lost.
    Crash(ActorId),
    /// Restart a crashed actor, invoking its
    /// [`Actor::on_restart`](crate::Actor::on_restart) recovery hook.
    Restart(ActorId),
    /// Block the link between two actors in both directions.
    Partition(ActorId, ActorId),
    /// Block every pair of links across the two groups.
    PartitionGroups(Vec<ActorId>, Vec<ActorId>),
    /// Unblock the link between two actors.
    Heal(ActorId, ActorId),
    /// Unblock every partitioned link.
    HealAll,
    /// Set the global message-loss probability (0.0 disables loss).
    SetLoss(f64),
}

impl FaultAction {
    fn name(&self) -> &'static str {
        match self {
            FaultAction::Crash(_) => "fault.crash",
            FaultAction::Restart(_) => "fault.restart",
            FaultAction::Partition(..) | FaultAction::PartitionGroups(..) => "fault.partition",
            FaultAction::Heal(..) | FaultAction::HealAll => "fault.heal",
            FaultAction::SetLoss(_) => "fault.loss",
        }
    }

    fn detail(&self) -> String {
        match self {
            FaultAction::Crash(a) | FaultAction::Restart(a) => a.to_string(),
            FaultAction::Partition(a, b) | FaultAction::Heal(a, b) => format!("{a}<->{b}"),
            FaultAction::PartitionGroups(l, r) => format!("{}|{}", l.len(), r.len()),
            FaultAction::HealAll => "all".to_owned(),
            FaultAction::SetLoss(p) => format!("p={p}"),
        }
    }
}

/// A virtual-time schedule of [`FaultAction`]s.
///
/// Entries may be added in any order; [`FaultPlan::install`] sorts them by
/// time (stable, so same-instant entries apply in insertion order).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    entries: Vec<(SimTime, FaultAction)>,
}

impl FaultPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules `action` at absolute virtual time `at`.
    pub fn at(mut self, at: SimTime, action: FaultAction) -> Self {
        self.entries.push((at, action));
        self
    }

    /// Crashes `target` at `from` and restarts it at `until`.
    pub fn crash_window(self, target: ActorId, from: SimTime, until: SimTime) -> Self {
        self.at(from, FaultAction::Crash(target))
            .at(until, FaultAction::Restart(target))
    }

    /// Partitions every link across the two groups at `from` and heals
    /// those links at `until`.
    pub fn partition_window(
        self,
        left: &[ActorId],
        right: &[ActorId],
        from: SimTime,
        until: SimTime,
    ) -> Self {
        let mut plan = self.at(
            from,
            FaultAction::PartitionGroups(left.to_vec(), right.to_vec()),
        );
        for &a in left {
            for &b in right {
                plan = plan.at(until, FaultAction::Heal(a, b));
            }
        }
        plan
    }

    /// Applies message-loss probability `p` at `from` and restores
    /// loss-free delivery at `until`.
    pub fn loss_window(self, p: f64, from: SimTime, until: SimTime) -> Self {
        self.at(from, FaultAction::SetLoss(p))
            .at(until, FaultAction::SetLoss(0.0))
    }

    /// Number of scheduled actions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registers a [`FaultPlanActor`] executing this plan and arms its
    /// first timer. Returns the actor's id (no-op registration when the
    /// plan is empty — the actor exists but never wakes).
    pub fn install<M: 'static>(mut self, sim: &mut Simulation<M>) -> ActorId {
        self.entries.sort_by_key(|(t, _)| *t);
        let first = self.entries.first().map(|(t, _)| *t);
        let id = sim.add_actor(Box::new(FaultPlanActor {
            entries: self.entries,
            next: 0,
            _marker: PhantomData,
        }));
        if let Some(at) = first {
            let delay = at.saturating_duration_since(sim.now());
            sim.start_timer(id, delay, FAULT_TIMER);
        }
        id
    }
}

/// Timer token used by the fault-plan actor (actor-internal namespace).
const FAULT_TIMER: u64 = 1;

/// The actor that executes a [`FaultPlan`]. It sends no messages: it only
/// wakes on timers, mutates the network, and crashes/restarts actors.
#[derive(Debug)]
pub struct FaultPlanActor<M> {
    entries: Vec<(SimTime, FaultAction)>,
    next: usize,
    _marker: PhantomData<M>,
}

impl<M> FaultPlanActor<M> {
    fn apply(&self, ctx: &mut Context<'_, M>, action: &FaultAction) {
        ctx.trace_event("fault", action.name(), &action.detail());
        match action {
            FaultAction::Crash(a) => ctx.crash(*a),
            FaultAction::Restart(a) => ctx.restart(*a),
            FaultAction::Partition(a, b) => {
                ctx.metrics().incr("fault.partitions", 1);
                ctx.network_mut().partition(*a, *b);
            }
            FaultAction::PartitionGroups(l, r) => {
                ctx.metrics().incr("fault.partitions", 1);
                ctx.network_mut().partition_groups(l, r);
            }
            FaultAction::Heal(a, b) => {
                ctx.metrics().incr("fault.heals", 1);
                ctx.network_mut().heal(*a, *b);
            }
            FaultAction::HealAll => {
                ctx.metrics().incr("fault.heals", 1);
                ctx.network_mut().heal_all();
            }
            FaultAction::SetLoss(p) => {
                ctx.metrics().incr("fault.loss_changes", 1);
                ctx.network_mut().set_loss_probability(*p);
            }
        }
    }
}

impl<M> Actor<M> for FaultPlanActor<M> {
    fn on_event(&mut self, ctx: &mut Context<'_, M>, event: Event<M>) {
        if !matches!(event, Event::Timer { token: FAULT_TIMER }) {
            return;
        }
        let now = ctx.now();
        while self.next < self.entries.len() && self.entries[self.next].0 <= now {
            let action = self.entries[self.next].1.clone();
            self.apply(ctx, &action);
            self.next += 1;
        }
        if let Some(&(at, _)) = self.entries.get(self.next) {
            ctx.set_timer(at.saturating_duration_since(now), FAULT_TIMER);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[derive(Debug)]
    struct Beacon {
        peer: ActorId,
    }
    impl Actor<u32> for Beacon {
        fn on_event(&mut self, ctx: &mut Context<'_, u32>, event: Event<u32>) {
            match event {
                Event::Timer { .. } => {
                    ctx.send(self.peer, 8, 1);
                    ctx.set_timer(SimDuration::from_millis(10), 0);
                }
                Event::Message { .. } => {
                    ctx.metrics().incr("beacon.received", 1);
                }
            }
        }
        fn on_restart(&mut self, ctx: &mut Context<'_, u32>) {
            ctx.set_timer(SimDuration::ZERO, 0);
        }
    }

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn crash_window_suppresses_and_restores_an_actor() {
        let mut sim: Simulation<u32> = Simulation::new(3);
        let sink = sim.add_actor(Box::new(Beacon { peer: ActorId(0) }));
        let beacon = sim.add_actor(Box::new(Beacon { peer: sink }));
        sim.start_timer(beacon, SimDuration::ZERO, 0);
        FaultPlan::new()
            .crash_window(beacon, secs(1), secs(2))
            .install(&mut sim);
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.metrics().counter("fault.crashes"), 1);
        assert_eq!(sim.metrics().counter("fault.restarts"), 1);
        // ~100 beacons in [0,1), none in [1,2), ~100 in [2,3).
        let received = sim.metrics().counter("beacon.received");
        assert!(
            (190..=210).contains(&received),
            "received {received} beacons"
        );
    }

    #[test]
    fn partition_window_blocks_then_heals() {
        let mut sim: Simulation<u32> = Simulation::new(3);
        let sink = sim.add_actor(Box::new(Beacon { peer: ActorId(0) }));
        let beacon = sim.add_actor(Box::new(Beacon { peer: sink }));
        sim.start_timer(beacon, SimDuration::ZERO, 0);
        FaultPlan::new()
            .partition_window(&[beacon], &[sink], secs(1), secs(2))
            .install(&mut sim);
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.metrics().counter("fault.partitions"), 1);
        assert_eq!(sim.metrics().counter("fault.heals"), 1);
        assert!(sim.metrics().counter("net.dropped") >= 90);
        let received = sim.metrics().counter("beacon.received");
        assert!(
            (190..=210).contains(&received),
            "received {received} beacons"
        );
    }

    #[test]
    fn plan_emits_trace_events_and_is_deterministic() {
        let run = || {
            let mut sim: Simulation<u32> = Simulation::new(9);
            let sink = sim.add_actor(Box::new(Beacon { peer: ActorId(0) }));
            let beacon = sim.add_actor(Box::new(Beacon { peer: sink }));
            sim.start_timer(beacon, SimDuration::ZERO, 0);
            FaultPlan::new()
                .loss_window(0.5, secs(1), secs(2))
                .crash_window(sink, secs(2), secs(3))
                .install(&mut sim);
            sim.run_until(SimTime::from_secs(4));
            (
                sim.metrics().counter("beacon.received"),
                sim.metrics().counter("net.dropped"),
                sim.tracer().events().count(),
            )
        };
        let (a, b, events) = run();
        assert_eq!(run(), (a, b, events));
        assert_eq!(events, 4); // loss on/off + crash + restart
        assert!(b > 0, "loss window dropped nothing");
    }
}
