//! A minimal deterministic JSON writer.
//!
//! The benchmark harness serializes metrics and span summaries to
//! `results/*.json`; byte-identical output across same-seed runs is a
//! hard requirement, so this writer has no map reordering, no
//! locale-dependent number formatting and no timestamps — fields appear
//! exactly in the order the caller emits them.

/// Escapes `s` for inclusion in a JSON string literal (without quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` deterministically; non-finite values become `null`
/// (JSON has no NaN/Infinity).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        // Rust's shortest round-trip formatting is deterministic across
        // runs and platforms for the same bit pattern.
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') || s.contains("inf") {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_owned()
    }
}

/// Builds one JSON object with caller-ordered fields.
#[derive(Debug, Default)]
pub struct Obj {
    fields: Vec<String>,
}

impl Obj {
    /// Creates an empty object.
    pub fn new() -> Self {
        Obj::default()
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push(format!("\"{}\":\"{}\"", escape(key), escape(value)));
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.fields.push(format!("\"{}\":{}", escape(key), value));
        self
    }

    /// Adds a float field.
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.fields
            .push(format!("\"{}\":{}", escape(key), fmt_f64(value)));
        self
    }

    /// Adds a pre-rendered JSON value (object, array, literal).
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.fields.push(format!("\"{}\":{}", escape(key), value));
        self
    }

    /// Renders the object.
    pub fn build(self) -> String {
        format!("{{{}}}", self.fields.join(","))
    }
}

/// Renders a JSON array from pre-rendered element strings.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let items: Vec<String> = items.into_iter().collect();
    format!("[{}]", items.join(","))
}

/// Pretty-prints compact JSON produced by this module with two-space
/// indentation, so `results/*.json` stays diffable. Assumes valid JSON
/// input (as produced by [`Obj`] / [`array`]).
pub fn pretty(json: &str) -> String {
    let mut out = String::with_capacity(json.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for c in json.chars() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                indent += 1;
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(c);
            }
            ',' => {
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            ':' => {
                out.push(c);
                out.push(' ');
            }
            c => out.push(c),
        }
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn floats_format_deterministically() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(2.0), "2.0");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(0.1 + 0.2), "0.30000000000000004");
    }

    #[test]
    fn objects_preserve_field_order() {
        let o = Obj::new().str("b", "x").u64("a", 7).build();
        assert_eq!(o, "{\"b\":\"x\",\"a\":7}");
    }

    #[test]
    fn arrays_join_elements() {
        assert_eq!(array(["1".to_owned(), "2".to_owned()]), "[1,2]");
    }

    #[test]
    fn pretty_round_trips_structure() {
        let compact = Obj::new()
            .raw("a", &array(["1".into(), "2".into()]))
            .str("s", "x,y:{}")
            .build();
        let pretty = pretty(&compact);
        assert!(pretty.contains("\"a\": [\n"));
        // Punctuation inside strings is untouched.
        assert!(pretty.contains("\"x,y:{}\""));
        let reparse: String = pretty.split_whitespace().collect::<String>();
        assert!(reparse.contains("\"a\":[1,2]"));
    }
}
